"""DPipe ablation: which scheduling mechanism buys what, where.

The paper attributes cloud gains to pipelining + vector-op offloading
and edge gains to DP array load-balancing (Section 6.2).  This
benchmark isolates the two mechanisms.
"""

from repro.experiments.ablations import DPIPE_VARIANTS, dpipe_ablation
from repro.metrics.tables import format_table


def test_dpipe_ablation(benchmark, emit):
    data = benchmark.pedantic(
        dpipe_ablation, rounds=1, iterations=1,
        kwargs={"seq_len": 65536},
    )
    rows = []
    for arch, variants in data.items():
        base = variants["static"]
        for name in DPIPE_VARIANTS:
            rows.append(
                [arch, name, variants[name],
                 base / variants[name]]
            )
    table = format_table(
        ["arch", "variant", "per-layer seconds",
         "speedup vs static"],
        rows,
        title=(
            "DPipe ablation (Llama3, 64K): full vs no-pipeline vs "
            "no-DP-assignment vs static"
        ),
    )
    emit("ablation_dpipe", table)
    for arch, variants in data.items():
        assert variants["full"] <= min(variants.values()) + 1e-12
        assert variants["static"] >= max(variants.values()) - 1e-12
        # Both mechanisms contribute on their own: adding either one
        # to the static schedule speeds it up.
        assert variants["no-pipeline"] < variants["static"]
        assert variants["no-dp-assign"] < variants["static"]
