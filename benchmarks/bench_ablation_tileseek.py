"""TileSeek ablation: MCTS vs random vs exhaustive search.

Shows search quality (DRAM traffic of the chosen tiling) against
evaluation budget -- the paper's argument for MCTS over naive
exploration of the fusion-expanded tiling space.
"""

from repro.experiments.ablations import tileseek_ablation
from repro.metrics.tables import format_table


def test_tileseek_ablation(benchmark, emit):
    data = benchmark.pedantic(
        tileseek_ablation, rounds=1, iterations=1,
        kwargs={"model": "llama3", "seq_len": 65536,
                "arch_name": "edge", "iterations": 400},
    )
    optimum = data["exhaustive"]["dram_words"]
    rows = [
        [name,
         stats["evaluations"],
         stats["dram_words"],
         stats["dram_words"] / optimum]
        for name, stats in data.items()
    ]
    table = format_table(
        ["searcher", "evaluations", "dram words",
         "vs exhaustive optimum"],
        rows,
        title=(
            "TileSeek ablation (Llama3, 64K, edge): search quality "
            "vs evaluation budget"
        ),
    )
    emit("ablation_tileseek", table)
    assert data["mcts"]["dram_words"] <= optimum * 1.1
    assert (
        data["mcts"]["evaluations"]
        < 0.05 * data["exhaustive"]["evaluations"]
    )
