"""Batch-size tiling sweep (Section 3.1's deferred ``b`` discussion).

Not a paper figure; an ablation showing TileSeek adapting the ``B``
tiling factor as the batch grows while keeping the fused working set
feasible.
"""

from repro.experiments.batch_sweep import batch_sweep
from repro.metrics.tables import format_table


def test_batch_sweep(benchmark, emit):
    data = benchmark.pedantic(
        batch_sweep, rounds=1, iterations=1,
        kwargs={"model": "llama3", "seq_len": 16384},
    )
    rows = [
        [batch,
         stats["tile_b"],
         stats["tile_p"],
         stats["kv_passes"],
         stats["latency_s"],
         stats["speedup_vs_fusemax"]]
        for batch, stats in data.items()
    ]
    table = format_table(
        ["batch", "TileSeek b", "TileSeek p", "kv passes",
         "TF latency (s)", "speedup vs FuseMax"],
        rows,
        title="Batch-size tiling sweep (Llama3 @ 16K, cloud)",
    )
    emit("batch_sweep", table)
    # TransFusion keeps its advantage at every batch size, and the
    # chosen batch tile never exceeds the workload batch.
    for batch, stats in data.items():
        assert stats["speedup_vs_fusemax"] > 1.0
        assert stats["tile_b"] <= batch
    # Latency grows monotonically with batch (more work).
    latencies = [data[b]["latency_s"] for b in sorted(data)]
    assert latencies == sorted(latencies)
