"""Autoregressive-decode study (extension beyond the paper's figures).

Generation flips the paper's prefill trade-offs: with one query token
per step there is no sequence to tile, weights re-stream per resident
token group, and the Table-2 constraints that end-to-end fusion must
satisfy (per-batch K/V residency in the fused tile) bite hard.  The
measured result -- attention-only fusion (FuseMax) wins decode while
TransFusion wins prefill -- is a real consequence of the paper's own
buffer model, worth knowing before deploying the fused dataflow on a
serving path.
"""

from repro.experiments.decode import decode_sweep
from repro.metrics.tables import format_table

EXECUTORS = ("unfused", "fusemax", "transfusion")


def test_decode_sweep(benchmark, emit):
    data = benchmark.pedantic(
        decode_sweep, rounds=1, iterations=1,
        kwargs={"model": "llama3",
                "contexts": (1024, 8192, 65536, 262144)},
    )
    rows = [
        [context] + [per[name] * 1e3 for name in EXECUTORS]
        for context, per in data.items()
    ]
    table = format_table(
        ["context"] + [f"{n} (ms/step)" for n in EXECUTORS],
        rows,
        title=(
            "Batched decode (Llama3, B=64, per layer): per-step "
            "latency vs context"
        ),
    )
    emit("decode_sweep", table)
    for context, per in data.items():
        # Per-step cost grows with context for every executor.
        assert per["transfusion"] > 0
    # At long contexts the attention-fused designs beat unfused (the
    # K/V read is the whole cost and they overlap it with compute)...
    long = data[max(data)]
    assert long["fusemax"] < long["unfused"]
    # ...but end-to-end fusion's working-set constraints cost
    # TransFusion its prefill advantage: FuseMax's attention-only
    # fusion is the better decode dataflow.
    assert long["fusemax"] <= long["transfusion"] * 1.05
