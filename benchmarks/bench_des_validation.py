"""Cross-validation: analytical pipeline model vs discrete-event
execution.

The paper composes per-Einsum Timeloop results with overlap heuristics
(Section 6.1); our planner does the same analytically.  This benchmark
executes 64 epochs of each sub-layer in the event-driven simulator
(with double-buffered two-epoch staging and the cross-epoch state
dependencies modeled exactly) and reports the deviation of the
analytical steady-state period -- the error bar on every latency
number in the reproduction.
"""

from repro.arch.spec import named_architecture
from repro.dpipe.latency import build_latency_table
from repro.dpipe.planner import plan_cascade
from repro.einsum.builders import SUBLAYER_BUILDERS
from repro.metrics.tables import format_table
from repro.model.config import named_model
from repro.sim.des import simulate_epochs
from repro.sim.mapping import inner_tile_extents

EPOCHS = 64


def validation_rows():
    model = named_model("llama3")
    rows = []
    for arch_name in ("cloud", "edge"):
        arch = named_architecture(arch_name)
        extents = model.extents()
        extents.update({"p": 65536, "m0": 65536, "m1": 1})
        for layer, builder in SUBLAYER_BUILDERS.items():
            cascade = builder()
            tile = inner_tile_extents(layer, extents,
                                      arch.array_2d)
            table = build_latency_table(cascade, layer, tile, arch)
            plan = plan_cascade(cascade, layer, tile, arch,
                                n_epochs=EPOCHS)
            sim = simulate_epochs(cascade, table, EPOCHS,
                                  max_in_flight=2)
            rows.append([
                arch_name, layer,
                plan.total_seconds,
                sim.makespan,
                sim.makespan / plan.total_seconds,
            ])
    return rows


def test_des_validation(benchmark, emit):
    rows = benchmark.pedantic(validation_rows, rounds=1,
                              iterations=1)
    table = format_table(
        ["arch", "layer", "analytical (s)", "simulated (s)",
         "sim / analytical"],
        rows,
        title=(
            f"Analytical vs discrete-event makespan over {EPOCHS} "
            "epochs (Llama3 @ 64K)"
        ),
    )
    emit("des_validation", table)
    for row in rows:
        assert 0.85 <= row[4] <= 1.15, row
