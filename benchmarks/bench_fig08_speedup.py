"""Figure 8: end-to-end speedup over Unfused.

Regenerates (a) the Llama3 sequence-length sweep on cloud and edge and
(b) the model-wise comparison at 64K, printing one row per bar group.
"""

from repro.experiments.fig08_speedup import EXECUTORS, fig8a, fig8b
from repro.metrics.tables import format_table


def _rows_from_nested(nested, key_header):
    rows = []
    for arch, per_key in nested.items():
        for key, speedups in per_key.items():
            rows.append(
                [arch, key]
                + [speedups[name] for name in EXECUTORS]
            )
    return rows


def test_fig8a_llama3_sequence_sweep(benchmark, emit):
    data = benchmark.pedantic(fig8a, rounds=1, iterations=1)
    table = format_table(
        ["arch", "seq_len"] + list(EXECUTORS),
        _rows_from_nested(data, "seq_len"),
        title="Figure 8a: Llama3 speedup over Unfused (1K-1M)",
    )
    emit("fig08a_speedup", table)
    for per_seq in data.values():
        for speedups in per_seq.values():
            assert speedups["transfusion"] >= speedups["fusemax"]


def test_fig8b_modelwise_at_64k(benchmark, emit):
    data = benchmark.pedantic(fig8b, rounds=1, iterations=1)
    table = format_table(
        ["arch", "model"] + list(EXECUTORS),
        _rows_from_nested(data, "model"),
        title="Figure 8b: model-wise speedup over Unfused at 64K",
    )
    emit("fig08b_speedup_models", table)
    for per_model in data.values():
        for speedups in per_model.values():
            assert speedups["transfusion"] > 1.0
