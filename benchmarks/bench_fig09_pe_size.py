"""Figure 9: edge 2D PE size sensitivity (32x32, 64x64)."""

from repro.experiments.fig08_speedup import EXECUTORS
from repro.experiments.fig09_pe_size import fig9a, fig9b
from repro.metrics.tables import format_table


def test_fig9a_llama3_pe_size_sweep(benchmark, emit):
    data = benchmark.pedantic(fig9a, rounds=1, iterations=1)
    rows = [
        [variant, seq] + [speedups[name] for name in EXECUTORS]
        for variant, per_seq in data.items()
        for seq, speedups in per_seq.items()
    ]
    table = format_table(
        ["edge variant", "seq_len"] + list(EXECUTORS),
        rows,
        title=(
            "Figure 9a: Llama3 speedup over Unfused under 32x32 and "
            "64x64 edge PE arrays"
        ),
    )
    emit("fig09a_pe_size", table)
    for per_seq in data.values():
        for speedups in per_seq.values():
            assert speedups["transfusion"] > speedups["fusemax"]


def test_fig9b_modelwise_pe_size(benchmark, emit):
    data = benchmark.pedantic(fig9b, rounds=1, iterations=1)
    rows = [
        [variant, model]
        + [speedups[name] for name in EXECUTORS]
        for variant, per_model in data.items()
        for model, speedups in per_model.items()
    ]
    table = format_table(
        ["edge variant", "model"] + list(EXECUTORS),
        rows,
        title=(
            "Figure 9b: model-wise speedup at 64K under 32x32 and "
            "64x64 edge PE arrays"
        ),
    )
    emit("fig09b_pe_size_models", table)
    for per_model in data.values():
        for speedups in per_model.values():
            assert speedups["transfusion"] > 1.0
