"""Figure 10: 1D/2D PE array utilization on the cloud architecture."""

from repro.experiments.fig10_utilization import (
    EXECUTORS,
    fig10a,
    fig10b,
)
from repro.metrics.tables import format_table


def test_fig10a_llama3_utilization(benchmark, emit):
    data = benchmark.pedantic(fig10a, rounds=1, iterations=1)
    rows = []
    for seq, per_exec in data.items():
        for name in EXECUTORS:
            rows.append(
                [seq, name, per_exec[name]["2d"],
                 per_exec[name]["1d"]]
            )
    table = format_table(
        ["seq_len", "executor", "2D util", "1D util"],
        rows,
        title="Figure 10a: PE utilization, Llama3 on cloud",
    )
    emit("fig10a_utilization", table)
    # The paper's headline: TransFusion's 2D utilization tops the
    # field; FLAT's collapses on the large cloud array.
    for per_exec in data.values():
        assert (
            per_exec["transfusion"]["2d"]
            >= per_exec["fusemax"]["2d"]
        )


def test_fig10b_modelwise_utilization(benchmark, emit):
    data = benchmark.pedantic(fig10b, rounds=1, iterations=1)
    rows = []
    for model, per_exec in data.items():
        for name in EXECUTORS:
            rows.append(
                [model, name, per_exec[name]["2d"],
                 per_exec[name]["1d"]]
            )
    table = format_table(
        ["model", "executor", "2D util", "1D util"],
        rows,
        title="Figure 10b: PE utilization at 64K on cloud",
    )
    emit("fig10b_utilization_models", table)
