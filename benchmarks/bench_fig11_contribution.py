"""Figure 11: layer-wise speedup contributions of TransFusion over
FuseMax (Eq. 47-48)."""

from repro.experiments.fig11_contribution import fig11
from repro.metrics.tables import format_table

PHASES = ("qkv", "mha", "layernorm", "ffn")


def test_fig11_contribution_breakdown(benchmark, emit):
    data = benchmark.pedantic(fig11, rounds=1, iterations=1)
    rows = [
        [arch, seq] + [contribs[p] for p in PHASES]
        for arch, per_seq in data.items()
        for seq, contribs in per_seq.items()
    ]
    table = format_table(
        ["arch", "seq_len"] + list(PHASES),
        rows,
        title=(
            "Figure 11: speedup contribution of each layer, "
            "TransFusion over FuseMax (Llama3)"
        ),
    )
    emit("fig11_contribution", table)
    for arch, per_seq in data.items():
        seqs = sorted(per_seq)
        # Short sequences: fusion-driven LayerNorm/FFN gains dominate;
        # long sequences: the quadratic MHA term takes over.
        assert (
            per_seq[seqs[-1]]["mha"] > per_seq[seqs[0]]["mha"]
        )
        assert abs(sum(per_seq[seqs[0]].values()) - 1.0) < 1e-9
