"""Figure 12: energy consumption normalized to Unfused (lower is
better)."""

from repro.experiments.fig08_speedup import EXECUTORS
from repro.experiments.fig12_energy import fig12a, fig12b
from repro.metrics.tables import format_table


def test_fig12a_llama3_energy_sweep(benchmark, emit):
    data = benchmark.pedantic(fig12a, rounds=1, iterations=1)
    rows = [
        [arch, seq] + [ratios[name] for name in EXECUTORS]
        for arch, per_seq in data.items()
        for seq, ratios in per_seq.items()
    ]
    table = format_table(
        ["arch", "seq_len"] + list(EXECUTORS),
        rows,
        title=(
            "Figure 12a: energy over Unfused, Llama3 (1K-1M); "
            "lower is better"
        ),
    )
    emit("fig12a_energy", table)
    for per_seq in data.values():
        for ratios in per_seq.values():
            assert ratios["transfusion"] < 1.0
            assert ratios["transfusion"] < ratios["fusemax"]


def test_fig12b_modelwise_energy(benchmark, emit):
    data = benchmark.pedantic(fig12b, rounds=1, iterations=1)
    rows = [
        [arch, model] + [ratios[name] for name in EXECUTORS]
        for arch, per_model in data.items()
        for model, ratios in per_model.items()
    ]
    table = format_table(
        ["arch", "model"] + list(EXECUTORS),
        rows,
        title=(
            "Figure 12b: energy over Unfused at 64K; lower is better"
        ),
    )
    emit("fig12b_energy_models", table)
