"""Figure 13: energy breakdown across the memory hierarchy for
TransFusion and FuseMax."""

from repro.experiments.fig13_breakdown import EXECUTORS, fig13
from repro.metrics.tables import format_table

COMPONENTS = ("dram", "buffer", "rf", "pe")


def test_fig13_energy_breakdown(benchmark, emit):
    data = benchmark.pedantic(fig13, rounds=1, iterations=1)
    rows = []
    for executor in EXECUTORS:
        for arch, per_seq in data[executor].items():
            for seq, fractions in per_seq.items():
                rows.append(
                    [executor, arch, seq]
                    + [fractions[c] for c in COMPONENTS]
                )
    table = format_table(
        ["executor", "arch", "seq_len"] + list(COMPONENTS),
        rows,
        title=(
            "Figure 13: energy breakdown (DRAM / global buffer / "
            "register file / PE arrays), Llama3"
        ),
    )
    emit("fig13_breakdown", table)
    # Edge spends a larger energy share in DRAM than cloud (smaller
    # buffer, lower bandwidth -> more refetches), per Section 6.2.
    for executor in EXECUTORS:
        for seq, fractions in data[executor]["edge"].items():
            assert abs(sum(fractions.values()) - 1.0) < 1e-9
