"""Performance of the framework itself (multi-round timings).

The paper's workflow runs TileSeek + DPipe per (model, sequence,
architecture) point; a practical reproduction must keep those searches
fast.  These benchmarks time the hot paths with real repetition so
regressions in the schedulers or the evaluator show up as timing
drift, not just wrong results.

Absolute wall-clock assertions only fire when ``REPRO_BENCH_STRICT``
is set to a truthy value -- shared CI runners are too noisy for hard
latency ceilings by default.  Relative assertions (the cache
speedup ratio below) always apply.
"""

import json
import os
import random
import time

import numpy as np

from repro.arch.spec import cloud_architecture
from repro.core.serialize import tileseek_result_to_dict
from repro.dpipe.planner import plan_cascade
from repro.einsum.builders import attention_cascade
from repro.einsum.evaluator import evaluate_cascade
from repro.model.config import named_model
from repro.model.workload import Workload
from repro.sim.mapping import inner_tile_extents
from repro.tileseek.batched import BatchedTilingEvaluator
from repro.tileseek.evaluate import assess_tiling, reward_for
from repro.tileseek.search import FACTOR_ORDER, TileSeek

STRICT = os.environ.get("REPRO_BENCH_STRICT", "").lower() in (
    "1", "on", "true", "yes"
)


def _mha_planning_inputs():
    arch = cloud_architecture()
    model = named_model("llama3")
    extents = model.extents()
    extents.update({"p": 65536, "m0": 65536, "m1": 1})
    cascade = attention_cascade()
    tile = inner_tile_extents("mha", extents, arch.array_2d)
    return arch, cascade, tile


def test_dpipe_planning_speed(benchmark, perf_log):
    """The production path: fused search + kernel memo (after the
    first round every call is a memo hit)."""
    arch, cascade, tile = _mha_planning_inputs()

    plan = benchmark(
        plan_cascade, cascade, "mha", tile, arch, 4096
    )
    assert plan.total_seconds > 0
    perf_log("dpipe_planning_memoized", {
        "mean_seconds": benchmark.stats["mean"],
        "min_seconds": benchmark.stats["min"],
    })
    # Planning one layer must stay well under a second.
    if STRICT:
        assert benchmark.stats["mean"] < 1.0


def test_fused_planner_speedup_over_legacy(benchmark, perf_log,
                                           monkeypatch):
    """Fused branch-and-bound search vs. the legacy enumerate-then-
    score planner, both cold (the kernel memo is cleared every round
    and the persistent cache disabled, so the ratio measures the
    search itself, not caching).

    The ratio assertion is unconditional: it is relative, so runner
    noise cancels out.  The plans must also be identical -- speed
    without byte-identity would be a regression, not a win.
    """
    from repro.dpipe.planner import (
        clear_kernel_cache,
        plan_cascade_legacy,
    )
    from repro.validate import force_validation

    monkeypatch.setenv("REPRO_CACHE", "0")
    arch, cascade, tile = _mha_planning_inputs()

    with force_validation(False):
        legacy_timings = []
        for _ in range(3):
            start = time.perf_counter()
            legacy_plan = plan_cascade_legacy(
                cascade, "mha", tile, arch, 4096
            )
            legacy_timings.append(time.perf_counter() - start)
        legacy_seconds = min(legacy_timings)

        def fused_cold():
            clear_kernel_cache()
            return plan_cascade(cascade, "mha", tile, arch, 4096)

        plan = benchmark(fused_cold)

    assert plan == legacy_plan
    fused_seconds = benchmark.stats["min"]
    ratio = legacy_seconds / fused_seconds
    perf_log("fused_planner_speedup", {
        "legacy_seconds": legacy_seconds,
        "fused_cold_seconds": fused_seconds,
        "speedup_ratio": ratio,
        "workload": "llama3/cloud mha, n_epochs=4096",
    })
    assert ratio >= 3.0, (
        f"fused planner only {ratio:.2f}x faster than legacy"
    )


def test_tileseek_search_speed(benchmark):
    arch = cloud_architecture()
    workload = Workload(named_model("llama3"), seq_len=65536,
                        batch=64)

    def search():
        return TileSeek(iterations=400, seed=0).search(
            workload, arch
        )

    result = benchmark(search)
    assert result.feasible
    if STRICT:
        assert benchmark.stats["mean"] < 2.0


def _reference_search_inputs():
    arch = cloud_architecture()
    workload = Workload(named_model("llama3"), seq_len=65536,
                        batch=64)
    return workload, arch


def test_tileseek_batched_evaluator_throughput(benchmark, perf_log):
    """Vectorized candidate pricing vs. a scalar loop over the same
    candidates (the evaluator that MCTS rollouts, prune frontiers and
    sweep pre-screens sit on).

    The ratio assertion is unconditional and mirrors the fused-planner
    gate: relative, so runner noise cancels out.  The batched rewards
    must also be bitwise equal to the scalar ones -- speed without
    byte-identity would be a regression, not a win.
    """
    workload, arch = _reference_search_inputs()
    searcher = TileSeek(iterations=400, seed=0)
    grid = searcher.candidate_grid(workload, arch)
    fixed = searcher.fixed_factors(arch)
    rng = random.Random(0)
    candidates = [
        tuple(rng.choice(grid[name]) for name in FACTOR_ORDER)
        for _ in range(20000)
    ]
    evaluator = BatchedTilingEvaluator(
        workload, arch, m0=fixed["m0"], rows=fixed["rows"]
    )
    minimal = tuple(min(grid[name]) for name in FACTOR_ORDER)
    reference = evaluator.assessment_at(
        evaluator.assess(evaluator.matrix_from([minimal])), 0
    ).dram_words

    scalar_timings = []
    for _ in range(3):
        start = time.perf_counter()
        scalar_rewards = [
            reward_for(
                assess_tiling(
                    searcher._config_from(candidate, fixed),
                    workload, arch,
                ),
                reference,
            )
            for candidate in candidates
        ]
        scalar_timings.append(time.perf_counter() - start)
    scalar_seconds = min(scalar_timings)

    def batched():
        matrix = evaluator.matrix_from(candidates)
        return evaluator.price(matrix, reference)

    rewards, _ = benchmark(batched)
    assert list(rewards) == scalar_rewards
    batched_seconds = benchmark.stats["min"]
    ratio = scalar_seconds / batched_seconds
    perf_log("batched_vs_scalar_speedup", {
        "candidates": len(candidates),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "scalar_candidates_per_second": (
            len(candidates) / scalar_seconds
        ),
        "batched_candidates_per_second": (
            len(candidates) / batched_seconds
        ),
        "speedup_ratio": ratio,
        "workload": "llama3/cloud seq=65536 batch=64",
    })
    assert ratio >= 10.0, (
        f"batched evaluator only {ratio:.2f}x faster than scalar"
    )


def test_tileseek_search_throughput(benchmark, perf_log):
    """Full single-point search: the batched driver vs. the retained
    scalar oracle, byte-identical results required.

    The end-to-end gain is smaller than the raw evaluator ratio --
    UCB selection and the RNG-ordered tree walk stay scalar by the
    identity contract -- so the gate here is a conservative floor
    while the >= 10x evaluator gate lives in the throughput test
    above.
    """
    workload, arch = _reference_search_inputs()
    searcher = TileSeek(iterations=400, seed=0)

    scalar_timings = []
    for _ in range(3):
        start = time.perf_counter()
        scalar_result = searcher.search(workload, arch, scalar=True)
        scalar_timings.append(time.perf_counter() - start)
    scalar_seconds = min(scalar_timings)

    result = benchmark(searcher.search, workload, arch)
    assert json.dumps(tileseek_result_to_dict(result)) == (
        json.dumps(tileseek_result_to_dict(scalar_result))
    )
    batched_seconds = benchmark.stats["min"]
    ratio = scalar_seconds / batched_seconds
    evaluations = result.stats.evaluations
    perf_log("tileseek_search_throughput", {
        "iterations": result.stats.iterations,
        "evaluations": evaluations,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "scalar_candidates_per_second": (
            evaluations / scalar_seconds
        ),
        "batched_candidates_per_second": (
            evaluations / batched_seconds
        ),
        "scalar_search_units_per_second": (
            result.stats.iterations / scalar_seconds
        ),
        "batched_search_units_per_second": (
            result.stats.iterations / batched_seconds
        ),
        "speedup_ratio": ratio,
        "workload": "llama3/cloud seq=65536 batch=64",
    })
    assert ratio >= 1.5, (
        f"batched search only {ratio:.2f}x faster than scalar"
    )


def test_cascade_evaluator_speed(benchmark):
    rng = np.random.default_rng(0)
    extents = {"h": 4, "e": 32, "f": 32, "p": 64, "m1": 8,
               "m0": 32}
    inputs = {
        "Q": rng.normal(size=(4, 32, 64)),
        "BK": rng.normal(size=(4, 32, 8, 32)),
        "BV": rng.normal(size=(4, 32, 8, 32)),
    }
    cascade = attention_cascade()

    out = benchmark(evaluate_cascade, cascade, inputs, extents)
    assert np.all(np.isfinite(out["AV"]))


def test_full_executor_run_speed(benchmark):
    from repro.baselines.registry import named_executor

    arch = cloud_architecture()
    workload = Workload(named_model("llama3"), seq_len=65536,
                        batch=64)
    executor = named_executor("transfusion")
    executor.run(workload, arch)  # warm the tiling cache

    report = benchmark(executor.run, workload, arch)
    assert report.latency_seconds(arch) > 0
    if STRICT:
        assert benchmark.stats["mean"] < 1.0


def test_learned_warm_start_units(perf_log):
    """The learned-warm-start gate: on a held-out grid the predictor
    must reach within 1% of the unwarmed optimum's reward in at most
    half the search units the cold baseline needs.

    The gate is unconditional (search units are deterministic, not
    wall clock): fit on three t5/cloud sequence lengths, hold out two
    interpolated ones, and compare units-to-near-optimum with vs.
    without the predictions in the incumbent pool.
    """
    from repro.learn.corpus import record_for
    from repro.learn.evaluate import evaluate_points
    from repro.learn.predictor import KNNPredictor

    arch = cloud_architecture()
    model = named_model("t5")
    fit_seqs = (128, 512, 2048)
    held_out_seqs = (256, 1024)
    searcher = TileSeek(iterations=400, seed=0)
    records = []
    for seq in fit_seqs:
        workload = Workload(model, seq_len=seq, batch=4)
        records.append(record_for(
            workload, arch, searcher.search(workload, arch)
        ))
    predictor = KNNPredictor(records, k=3)
    report = evaluate_points(predictor, [
        (Workload(model, seq_len=seq, batch=4), arch)
        for seq in held_out_seqs
    ])
    perf_log("learned_warm_start_units", {
        "fit_seqs": list(fit_seqs),
        "held_out_seqs": list(held_out_seqs),
        "baseline_units": report["baseline_units"],
        "learned_units": report["learned_units"],
        "ratio": report["ratio"],
        "tolerance": report["tolerance"],
        "workload": "t5/cloud batch=4",
    })
    assert report["learned_units"] <= 0.5 * report["baseline_units"], (
        f"learned warm start used {report['learned_units']} units "
        f"vs. baseline {report['baseline_units']}"
    )


def test_sweep_cache_warm_speedup(benchmark, tmp_path):
    """A warm ``run_grid`` rerun must beat the cold run by >= 10x."""
    from repro.runner import GridPoint, run_grid

    points = [
        GridPoint(executor=name, model="t5", seq_len=seq,
                  arch="cloud", batch=4)
        for name in ("unfused", "transfusion")
        for seq in (1024, 2048)
    ]
    cache_dir = tmp_path / "sweep-cache"

    start = time.perf_counter()
    cold = run_grid(points, jobs=1, cache_dir=cache_dir)
    cold_seconds = time.perf_counter() - start

    warm = benchmark(run_grid, points, jobs=1, cache_dir=cache_dir)
    arch = cloud_architecture()
    assert [r.latency_seconds(arch) for r in warm.values()] == [
        r.latency_seconds(arch) for r in cold.values()
    ]
    # The ratio assertion is unconditional: it is relative, so runner
    # noise cancels out.
    assert benchmark.stats["mean"] < cold_seconds / 10.0


def test_capped_cache_warm_speedup(benchmark, perf_log, tmp_path,
                                   monkeypatch):
    """Byte-capped cache, same warm-vs-cold gate: the GC that runs
    after every write (PR 10) must not evict the working set under a
    reasonable budget, and its scan cost must not eat the cache win.

    The cap is sized to the measured working set with modest
    headroom -- tight enough that the GC actually runs on every
    write, loose enough that the grid's own entries all survive --
    and the warm rerun must still beat the cold run by >= 10x.
    """
    from repro.runner import GridPoint, run_grid
    from repro.runner.cache import PlanCache

    points = [
        GridPoint(executor=name, model="t5", seq_len=seq,
                  arch="cloud", batch=4)
        for name in ("unfused", "transfusion")
        for seq in (1024, 2048)
    ]
    # Size the budget from an uncapped cold run of the same grid.
    sizing_dir = tmp_path / "sizing-cache"
    run_grid(points, jobs=1, cache_dir=sizing_dir)
    working_set = PlanCache(sizing_dir).stats()["bytes"]
    budget = int(working_set * 1.25)
    monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", str(budget))

    cache_dir = tmp_path / "capped-cache"
    start = time.perf_counter()
    cold = run_grid(points, jobs=1, cache_dir=cache_dir)
    cold_seconds = time.perf_counter() - start
    stats = PlanCache(cache_dir).stats()
    assert stats["bytes"] <= budget
    assert stats["entries"] > 0

    warm = benchmark(run_grid, points, jobs=1, cache_dir=cache_dir)
    arch = cloud_architecture()
    assert [r.latency_seconds(arch) for r in warm.values()] == [
        r.latency_seconds(arch) for r in cold.values()
    ]
    warm_seconds = benchmark.stats["mean"]
    ratio = cold_seconds / warm_seconds
    perf_log("capped_cache_warm_speedup", {
        "points": len(points),
        "working_set_bytes": working_set,
        "budget_bytes": budget,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_ratio": ratio,
        "workload": "t5/cloud sweep, 2 executors x 2 seqs",
    })
    assert ratio >= 10.0, (
        f"capped warm rerun only {ratio:.2f}x faster than cold"
    )
