"""Grouped-query attention ablation (extension study).

Llama3-8B's production attention is GQA (8 K/V heads for 32 query
heads); the paper evaluates it MHA-style.  This benchmark prices both
under TransFusion: GQA shrinks the K/V projections, the cache
spill/reload and the Table-2 residency terms by 4x while leaving
attention compute untouched -- quantifying how much of the long-context
traffic the real model avoids.
"""

from repro.arch.spec import named_architecture
from repro.baselines.registry import named_executor
from repro.metrics.tables import format_table
from repro.model.config import named_model
from repro.model.workload import Workload


def gqa_rows():
    rows = []
    for arch_name in ("cloud", "edge"):
        arch = named_architecture(arch_name)
        for seq in (4096, 65536, 262144):
            entries = {}
            for variant in ("llama3", "llama3-gqa"):
                workload = Workload(named_model(variant),
                                    seq_len=seq, batch=64)
                report = named_executor("transfusion").run(
                    workload, arch
                )
                entries[variant] = (
                    report.latency_seconds(arch),
                    report.dram_words(),
                    report.energy(arch).total_pj,
                )
            dense, gqa = entries["llama3"], entries["llama3-gqa"]
            rows.append([
                arch_name, seq,
                dense[0] / gqa[0],   # speedup from GQA
                dense[1] / gqa[1],   # traffic reduction
                dense[2] / gqa[2],   # energy reduction
            ])
    return rows


def test_gqa_ablation(benchmark, emit):
    rows = benchmark.pedantic(gqa_rows, rounds=1, iterations=1)
    table = format_table(
        ["arch", "seq_len", "GQA speedup", "GQA traffic reduction",
         "GQA energy reduction"],
        rows,
        title=(
            "Grouped-query attention vs dense MHA under TransFusion "
            "(Llama3-8B, 32 query / 8 K/V heads)"
        ),
    )
    emit("gqa_ablation", table)
    for row in rows:
        assert row[2] >= 1.0   # never slower
        assert row[3] > 1.0    # always less traffic
