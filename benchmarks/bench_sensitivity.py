"""Memory-system sensitivity sweeps (extension study).

Complements Figure 9's compute-capability sweep with bandwidth and
buffer-capacity sweeps: bandwidth decides how much fusion's traffic
savings matter, and buffer capacity bounds the Q tile (hence the K/V
reload count TileSeek can achieve).
"""

from repro.experiments.sensitivity import (
    bandwidth_sensitivity,
    buffer_sensitivity,
)
from repro.metrics.tables import format_table


def test_bandwidth_sensitivity(benchmark, emit):
    data = benchmark.pedantic(
        bandwidth_sensitivity, rounds=1, iterations=1,
        kwargs={"seq_len": 16384},
    )
    rows = [
        [factor, stats["tf_latency_s"], stats["speedup"]]
        for factor, stats in data.items()
    ]
    table = format_table(
        ["DRAM BW factor", "TF latency (s)",
         "speedup vs FuseMax"],
        rows,
        title=(
            "Bandwidth sensitivity (Llama3 @ 16K, cloud): "
            "TransFusion vs FuseMax"
        ),
    )
    emit("sensitivity_bandwidth", table)
    # TransFusion never loses, and latency falls (weakly) as
    # bandwidth grows.
    latencies = [data[f]["tf_latency_s"] for f in sorted(data)]
    assert latencies == sorted(latencies, reverse=True)
    for stats in data.values():
        assert stats["speedup"] >= 1.0


def test_buffer_sensitivity(benchmark, emit):
    data = benchmark.pedantic(
        buffer_sensitivity, rounds=1, iterations=1,
        kwargs={"seq_len": 16384},
    )
    rows = [
        [factor, stats["q_tile"], stats["dram_words"],
         stats["speedup"]]
        for factor, stats in data.items()
    ]
    table = format_table(
        ["buffer factor", "TileSeek q-tile", "TF DRAM words",
         "speedup vs FuseMax"],
        rows,
        title=(
            "Buffer-capacity sensitivity (Llama3 @ 16K, cloud): "
            "bigger buffers -> bigger Q tiles -> less K/V traffic"
        ),
    )
    emit("sensitivity_buffer", table)
    factors = sorted(data)
    q_tiles = [data[f]["q_tile"] for f in factors]
    words = [data[f]["dram_words"] for f in factors]
    assert q_tiles == sorted(q_tiles)
    assert words == sorted(words, reverse=True)


def test_precision_sensitivity(benchmark, emit):
    from repro.experiments.sensitivity import precision_sensitivity

    data = benchmark.pedantic(
        precision_sensitivity, rounds=1, iterations=1,
        kwargs={"seq_len": 16384},
    )
    rows = [
        [f"{w * 8}-bit", stats["q_tile"], stats["dram_seconds"],
         stats["latency_s"]]
        for w, stats in sorted(data.items())
    ]
    table = format_table(
        ["precision", "TileSeek q-tile", "DRAM time (s)",
         "TF latency (s)"],
        rows,
        title=(
            "Datapath-precision sensitivity (Llama3 @ 16K, cloud): "
            "narrower words double the effective buffer"
        ),
    )
    emit("sensitivity_precision", table)
    words = sorted(data)
    assert data[words[0]]["dram_seconds"] <= (
        data[words[-1]]["dram_seconds"]
    )


def test_interlayer_overlap_headroom(benchmark, emit):
    from repro.baselines.registry import named_executor
    from repro.core.executor import TransFusionExecutor
    from repro.arch.spec import named_architecture
    from repro.model.config import named_model
    from repro.model.workload import Workload
    from repro.sim.layer_pipeline import interlayer_overlap_headroom

    def measure():
        rows = []
        for arch_name in ("cloud", "edge"):
            arch = named_architecture(arch_name)
            workload = Workload(named_model("llama3"),
                                seq_len=65536, batch=64)
            q_tile = TransFusionExecutor().tiling(
                workload, arch
            ).config.p
            for name in ("fusemax", "transfusion"):
                result = interlayer_overlap_headroom(
                    named_executor(name), workload, arch, q_tile
                )
                rows.append([arch_name, name,
                             result.overlap_headroom])
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table = format_table(
        ["arch", "executor", "cross-phase overlap headroom"],
        rows,
        title=(
            "Inter-layer pipelining headroom (Llama3 @ 64K): what a "
            "whole-layer scheduler could still win over the additive "
            "phase model"
        ),
    )
    emit("sensitivity_interlayer_overlap", table)
    for row in rows:
        assert 1.0 <= row[2] < 1.05  # <=2% in practice
