"""Table 2: per-module on-chip buffer requirements.

Regenerates the Table-2 rows for representative tile configurations on
both architectures and checks the feasibility frontier TileSeek
operates against.
"""

from repro.arch.spec import named_architecture
from repro.metrics.tables import format_table
from repro.model.config import named_model
from repro.tileseek.buffer_model import (
    FUSED_MODULES,
    TilingConfig,
    fused_buffer_requirement,
    intra_tile_p_prime,
    layer_buffer_requirement,
    max_feasible_q_tile,
)


def table2_rows():
    model = named_model("llama3")
    rows = []
    for arch_name in ("cloud", "edge"):
        arch = named_architecture(arch_name)
        rows_2d = arch.array_2d.rows
        p = max_feasible_q_tile(
            model, 65536, arch.buffer_words,
            m0=arch.array_2d.cols, rows=rows_2d,
        )
        cfg = TilingConfig(
            b=1, d=16, m1=1, m0=arch.array_2d.cols, p=p, s=16,
            p_prime=intra_tile_p_prime(p, rows_2d),
        )
        for module in FUSED_MODULES:
            words = layer_buffer_requirement(module, cfg, model)
            rows.append(
                [arch_name, module, p, words,
                 words / arch.buffer_words]
            )
    return rows


def test_table2_buffer_requirements(benchmark, emit):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    table = format_table(
        ["arch", "module", "q tile (tokens)", "buffer words",
         "fraction of buffer"],
        rows,
        title=(
            "Table 2: per-module buffer requirements at the maximal "
            "feasible Q tile (Llama3)"
        ),
    )
    emit("table2_buffer", table)
    # At the feasibility frontier the binding module uses (nearly)
    # the whole buffer, and nothing exceeds it.
    for arch_name in ("cloud", "edge"):
        fractions = [
            r[4] for r in rows if r[0] == arch_name
        ]
        assert max(fractions) <= 1.0
        assert max(fractions) > 0.8


def test_table2_fused_requirement_is_max(benchmark):
    model = named_model("llama3")
    cfg = TilingConfig(b=1, d=64, m1=2, m0=256, p=256, s=256,
                       p_prime=1)

    def check():
        return fused_buffer_requirement(cfg, model)

    total = benchmark.pedantic(check, rounds=1, iterations=1)
    assert total == max(
        layer_buffer_requirement(m, cfg, model)
        for m in FUSED_MODULES
    )
