"""Shared helpers for the per-figure benchmark harnesses.

Each benchmark regenerates one paper table/figure: it runs the
experiment generator under ``pytest-benchmark`` timing, prints the
series as an aligned table, and archives the table under
``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def _perf_records(results_dir):
    """Collects framework-perf metrics across the session and writes
    ``results/BENCH_framework.json`` at teardown (machine-readable
    counterpart of the per-figure ``.txt`` tables; CI archives it as
    an artifact so perf history is diffable across runs)."""
    records: dict = {}
    yield records
    if records:
        path = results_dir / "BENCH_framework.json"
        path.write_text(
            json.dumps(records, indent=2, sort_keys=True) + "\n"
        )


@pytest.fixture
def perf_log(_perf_records):
    """Record one benchmark's metrics under a stable key."""

    def _log(name: str, metrics: dict) -> None:
        _perf_records[name] = metrics

    return _log


@pytest.fixture
def emit(results_dir, capsys):
    """Print a rendered table and archive it as ``<name>.txt``."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
