"""Shared helpers for the per-figure benchmark harnesses.

Each benchmark regenerates one paper table/figure: it runs the
experiment generator under ``pytest-benchmark`` timing, prints the
series as an aligned table, and archives the table under
``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir, capsys):
    """Print a rendered table and archive it as ``<name>.txt``."""

    def _emit(name: str, text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
