#!/usr/bin/env python
"""Cost-model walkthrough: one Einsum, priced by hand and by the
library, step by step.

Follows Eq. 40-42 for the ``BQK`` score GEMM of 1-pass attention on
the cloud architecture, then widens out to the DP scheduler and the
pipeline window, asserting at each step that the hand arithmetic and
the library agree.  Read this file top to bottom to understand where
every latency number in the reproduction comes from.

Run:
    python examples/cost_model_walkthrough.py
"""

from repro.arch.pe import PEArrayKind
from repro.arch.spec import cloud_architecture
from repro.dpipe.latency import build_latency_table
from repro.dpipe.planner import plan_cascade
from repro.einsum.builders import attention_cascade
from repro.sim.latency import op_cycles
from repro.sim.mapping import inner_tile_extents, layer_mapping
from repro.model.config import named_model


def main() -> None:
    arch = cloud_architecture()
    model = named_model("llama3")
    cascade = attention_cascade()
    bqk = cascade.op("BQK")

    print("Step 1 -- the op.")
    print(f"  {bqk}")
    print(f"  output dims: {bqk.output_dims}, "
          f"reduction dims: {bqk.reduction_dims}")

    print("\nStep 2 -- the inner tile (Table 1).")
    extents = model.extents()
    extents.update({"p": 65536, "m0": 65536, "m1": 1})
    tile = inner_tile_extents("mha", extents, arch.array_2d)
    print(f"  p -> rows: {tile['p']}, m0 -> cols: {tile['m0']}, "
          f"h stays {tile['h']}, e stays {tile['e']}")

    print("\nStep 3 -- Eq. 40: compute load.")
    by_hand = (
        tile["h"] * tile["m0"] * tile["p"]  # output elements
        * tile["e"]                          # reduction depth
    )
    assert bqk.compute_load(tile) == by_hand
    print(f"  load = h*m0*p*e = {tile['h']}*{tile['m0']}*"
          f"{tile['p']}*{tile['e']} = {by_hand:,}")

    print("\nStep 4 -- Eq. 41: cycles on the 2D array.")
    pes = arch.array_2d.num_pes
    cycles_by_hand = by_hand / pes
    mapping = layer_mapping("mha")
    cycles = op_cycles(bqk, tile, arch.array_2d, mapping)
    assert cycles == cycles_by_hand
    print(f"  256 rows x 256 cols fully occupied -> "
          f"{by_hand:,} / {pes:,} = {cycles:,.0f} cycles")

    print("\nStep 5 -- Eq. 42: seconds at f_clk = 1 GHz.")
    seconds = arch.cycles_to_seconds(cycles)
    print(f"  {cycles:,.0f} / 1e9 = {seconds * 1e6:.3f} us per "
          "inner tile")

    print("\nStep 6 -- the same op on the 1D array (why Eq. 45 "
          "never sends it there).")
    on_1d = op_cycles(bqk, tile, arch.array_1d, mapping)
    print(f"  256 lanes instead of 65,536 PEs -> {on_1d:,.0f} "
          f"cycles ({on_1d / cycles:.0f}x slower)")

    print("\nStep 7 -- but the exp map (SLN) is a different story.")
    sln = cascade.op("SLN")
    sln_2d = op_cycles(sln, tile, arch.array_2d, mapping)
    sln_1d = op_cycles(sln, tile, arch.array_1d, mapping)
    print(f"  SLN on 1D: {sln_1d:,.0f} cycles; on 2D "
          f"(wavefront efficiency 1/256): {sln_2d:,.0f} cycles -- "
          "equal, so the DP\n  offloads it whenever the 1D array is "
          "the bottleneck.")

    print("\nStep 8 -- the full DPipe plan for this layer.")
    table = build_latency_table(cascade, "mha", tile, arch)
    plan = plan_cascade(cascade, "mha", tile, arch, n_epochs=1000)
    per_epoch_2d = sum(
        table.latency(op.name, PEArrayKind.ARRAY_2D)
        for op in cascade.all_ops if op.is_gemm_like
    )
    print(f"  GEMM work per epoch: {per_epoch_2d * 1e9:,.0f} ns; "
          f"DPipe steady-state period: "
          f"{plan.epoch_seconds * 1e9:,.0f} ns")
    print(f"  -> over 1,000 epochs: "
          f"{plan.total_seconds * 1e3:.3f} ms "
          f"(pipelined = {plan.pipelined})")
    assert plan.pipelined


if __name__ == "__main__":
    main()
