#!/usr/bin/env python
"""Bring-your-own-model: compile a custom Transformer configuration.

Defines a model that is not in the zoo, runs the full TransFusion
pipeline, and inspects the pieces a performance engineer would care
about: the TileSeek tiling with its buffer headroom, the winning DPipe
bipartition of the attention DAG, and the inter-layer residency plan.

Run:
    python examples/custom_model.py
"""

from repro import ModelConfig, TransFusion, Workload
from repro.arch.spec import edge_architecture
from repro.metrics.tables import format_table
from repro.tileseek.buffer_model import layer_buffer_requirement


def main() -> None:
    # A mid-size decoder-ish model: 2048 hidden, 16 heads, GeLU FFN.
    model = ModelConfig(
        name="custom-2b",
        d_model=2048,
        heads=16,
        e_head=128,
        ffn_hidden=5504,
        layers=24,
        activation="silu",
    )
    arch = edge_architecture(32)
    workload = Workload(model, seq_len=32768, batch=16)

    tf = TransFusion(arch, tileseek_iterations=600, seed=1)
    plan = tf.compile(workload)

    # --- TileSeek outcome -------------------------------------------
    cfg = plan.tiling.config
    print(f"Model {model.name} on {arch.name}: {plan.workload}")
    print(f"TileSeek config: {cfg}")
    rows = [
        [module,
         layer_buffer_requirement(module, cfg, model),
         layer_buffer_requirement(module, cfg, model)
         / arch.buffer_words]
        for module in ("qkv", "mha", "layernorm", "ffn")
    ]
    print(format_table(
        ["module", "buffer words", "fraction of buffer"],
        rows,
        title="Per-module buffer footprint (Table 2 model)",
    ))

    # --- DPipe schedule for MHA --------------------------------------
    mha = plan.layer_plan("mha")
    print()
    print(f"MHA schedule: pipelined={mha.pipelined}, "
          f"{mha.n_epochs:,} epochs, "
          f"{mha.epoch_seconds * 1e9:.0f} ns steady-state period")
    if mha.bipartition is not None:
        print(f"  G1 = {sorted(mha.bipartition.first)}")
        print(f"  G2 = {sorted(mha.bipartition.second)}")

    # --- Inter-layer residency (Section 3.2) -------------------------
    print()
    print("Inter-layer residency plan:")
    for boundary in plan.interlayer.boundaries:
        print(
            f"  {boundary.name:5s} {boundary.producer:>9s} ->"
            f" {boundary.consumer:<9s} {boundary.residency.value:8s}"
            f" ({boundary.reason})"
        )

    # --- Headline ----------------------------------------------------
    summary = plan.summary(arch)
    layers = model.layers
    print()
    print(
        f"Full {layers}-layer stack estimate: "
        f"{summary['latency_s'] * layers:.2f} s, "
        f"{summary['energy_pj'] * layers / 1e12:.1f} J"
    )


if __name__ == "__main__":
    main()
