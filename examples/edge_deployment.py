#!/usr/bin/env python
"""Edge-deployment exploration (the Figure 9 scenario).

Evaluates BERT-Base on the three edge variants (16x16, 32x32, 64x64
2D PE arrays) and shows how TransFusion's mechanisms shift: on small
edge arrays the 1D array rivals the 2D array, so DPipe's per-op
min-completion rule (Eq. 45) load-balances GEMMs across both.

Run:
    python examples/edge_deployment.py
"""

from repro import Workload, named_model
from repro.arch.pe import PEArrayKind
from repro.arch.spec import edge_architecture
from repro.baselines.registry import named_executor
from repro.core.executor import TransFusionExecutor
from repro.metrics.tables import format_table


def main() -> None:
    model = named_model("bert")
    workload = Workload(model, seq_len=16384, batch=64)

    rows = []
    for pe_size in (16, 32, 64):
        arch = edge_architecture(pe_size)
        fusemax = named_executor("fusemax").run(workload, arch)
        tf_exec = TransFusionExecutor()
        transfusion = tf_exec.run(workload, arch)
        util = transfusion.utilization(arch)
        tiling = tf_exec.tiling(workload, arch)
        rows.append([
            f"{pe_size}x{pe_size}",
            arch.buffer.capacity_bytes // (1 << 20),
            fusemax.latency_seconds(arch),
            transfusion.latency_seconds(arch),
            fusemax.latency_seconds(arch)
            / transfusion.latency_seconds(arch),
            util[PEArrayKind.ARRAY_1D],
            tiling.config.p,
        ])

    print(format_table(
        ["edge 2D PE", "buffer (MB)", "FuseMax (s)",
         "TransFusion (s)", "speedup", "TF 1D util",
         "TileSeek q-tile"],
        rows,
        title="BERT @ 16K on edge variants, per Transformer layer",
    ))
    print()
    print(
        "The 1D-array utilization stays high under TransFusion -- "
        "DPipe shifts GEMM\nwork onto the vector array whenever that "
        "finishes an op earlier (Eq. 45),\nwhich is exactly the "
        "paper's explanation for the edge speedups."
    )


if __name__ == "__main__":
    main()
