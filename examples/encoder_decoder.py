#!/usr/bin/env python
"""Encoder-decoder stacks: TransFusion beyond the encoder layer.

Section 3.2 notes that TransFusion's shape-consistent sub-layer
interfaces support "different model structures such as encoders,
decoders, or hybrid configurations".  This example prices a T5-style
translation stack (6 encoder + 6 decoder layers) including the
decoder's *masked* self-attention and the cross-attention blocks that
read the encoder memory.

Run:
    python examples/encoder_decoder.py
"""

from repro import Workload, cloud_architecture, named_model
from repro.baselines.registry import named_executor
from repro.core.stack import StackConfig, estimate_stack
from repro.metrics.tables import format_table


def main() -> None:
    arch = cloud_architecture()
    stack = StackConfig(
        named_model("t5"),
        encoder_layers=6,
        decoder_layers=6,
        src_len=16384,   # long source document
        tgt_len=4096,    # shorter generated target
        batch=16,
    )

    rows = []
    for executor in ("unfused", "fusemax", "transfusion"):
        estimate = estimate_stack(stack, arch, executor)
        blocks = estimate.block_latencies(arch)
        rows.append([
            executor,
            blocks["encoder"],
            blocks["decoder.self"],
            blocks["decoder.cross"],
            estimate.latency_seconds(arch),
            estimate.energy_pj(arch) / 1e12,
        ])
    baseline = rows[0][4]
    for row in rows:
        row.append(baseline / row[4])

    print(format_table(
        ["executor", "encoder (s)", "dec. self-attn (s)",
         "dec. cross-attn (s)", "total (s)", "energy (J)",
         "speedup"],
        rows,
        title=(
            "T5 translation stack (6 enc + 6 dec layers, "
            "src=16K, tgt=4K) on cloud"
        ),
    ))

    # The causal discount: masked self-attention does half the dense
    # score work, and TransFusion's schedule reflects it.
    model = named_model("t5")
    runner = named_executor("transfusion")
    dense = runner.run(Workload(model, seq_len=4096, batch=16),
                       arch)
    causal = runner.run(
        Workload(model, seq_len=4096, batch=16, causal=True), arch
    )
    print()
    print(
        "Masked vs dense self-attention (TransFusion, T5 @ 4K): "
        f"{dense.phase('mha').compute_seconds * 1e3:.2f} ms dense vs "
        f"{causal.phase('mha').compute_seconds * 1e3:.2f} ms causal"
    )


if __name__ == "__main__":
    main()
