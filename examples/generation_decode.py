#!/usr/bin/env python
"""Prefill vs decode: where end-to-end fusion pays and where it doesn't.

Prefill (processing the prompt) is the paper's regime: long query
sequences, tiled attention, weight streaming amortized over thousands
of resident tokens -- TransFusion wins.  Decode (generating one token
per step against a persistent KV cache) has no query sequence to tile:
the fused working set (Table 2) caps how many batch elements can share
a weight pass, so attention-only fusion (FuseMax) becomes the better
dataflow.  This example measures both regimes with the same cost
model.

Run:
    python examples/generation_decode.py
"""

from repro import Workload, cloud_architecture, named_model
from repro.baselines.registry import named_executor
from repro.experiments.decode import decode_workload
from repro.metrics.tables import format_table

EXECUTORS = ("unfused", "fusemax", "transfusion")


def main() -> None:
    arch = cloud_architecture()
    model = named_model("llama3")
    context = 65536
    batch = 64

    # --- Prefill: process the 64K prompt -----------------------------
    prefill = Workload(model, seq_len=context, batch=batch,
                       causal=True)
    prefill_rows = []
    for name in EXECUTORS:
        report = named_executor(name).run(prefill, arch)
        prefill_rows.append(
            [name, report.latency_seconds(arch)]
        )
    base = prefill_rows[0][1]
    for row in prefill_rows:
        row.append(base / row[1])

    # --- Decode: one token per step against the cache ----------------
    step = decode_workload("llama3", context, batch)
    decode_rows = []
    for name in EXECUTORS:
        report = named_executor(name).run(step, arch)
        decode_rows.append(
            [name, report.latency_seconds(arch) * 1e3]
        )
    base_ms = decode_rows[0][1]
    for row in decode_rows:
        row.append(base_ms / row[1])

    print(format_table(
        ["executor", "prefill (s/layer)", "speedup"],
        prefill_rows,
        title=f"Prefill: Llama3, 64K causal prompt, B={batch}",
    ))
    print()
    print(format_table(
        ["executor", "decode (ms/step/layer)", "speedup"],
        decode_rows,
        title=f"Decode: one step against a 64K KV cache, B={batch}",
    ))
    print()
    print(
        "TransFusion's end-to-end fusion dominates prefill, but its "
        "Table-2 working-set\nconstraints (per-batch K/V residency in "
        "the fused tile) limit how many decode\ntokens share a weight "
        "pass -- attention-only fusion wins the generation loop.\n"
        "A deployment would use TransFusion for prefill and a "
        "FuseMax-style schedule\nfor decode."
    )


if __name__ == "__main__":
    main()
