#!/usr/bin/env python
"""Long-context scaling study (the Figure 8a / 11 narrative).

Sweeps Llama3 from 1K to 1M tokens on the cloud architecture and shows
the two regimes the paper describes:

* short sequences are memory-bound -- inter-layer fusion (keeping
  activations on chip) is what pays;
* long sequences are compute-bound in MHA -- DPipe's pipelining and
  array load-balancing take over.

Run:
    python examples/long_context_scaling.py
"""

from repro import Workload, cloud_architecture, named_model
from repro.baselines.registry import named_executor
from repro.metrics.speedup import speedup_contributions
from repro.metrics.tables import format_table

SEQ_LENGTHS = (1024, 4096, 16384, 65536, 262144, 1048576)


def main() -> None:
    arch = cloud_architecture()
    model = named_model("llama3")

    rows = []
    contrib_rows = []
    for seq in SEQ_LENGTHS:
        workload = Workload(model, seq_len=seq, batch=64)
        fusemax = named_executor("fusemax").run(workload, arch)
        layerfuse = named_executor("fusemax+lf").run(workload, arch)
        transfusion = named_executor("transfusion").run(
            workload, arch
        )
        t_fm = fusemax.latency_seconds(arch)
        t_lf = layerfuse.latency_seconds(arch)
        t_tf = transfusion.latency_seconds(arch)
        rows.append([
            seq,
            t_fm,
            t_fm / t_lf,  # layer-fusion gain
            t_lf / t_tf,  # DPipe + TileSeek gain on top
            t_fm / t_tf,  # combined
        ])
        contribs = speedup_contributions(fusemax, transfusion, arch)
        contrib_rows.append([
            seq,
            contribs["qkv"],
            contribs["mha"],
            contribs["layernorm"],
            contribs["ffn"],
        ])

    print(format_table(
        ["seq_len", "FuseMax (s)", "layer-fusion gain",
         "DPipe/TileSeek gain", "TransFusion gain"],
        rows,
        title=(
            "Where the speedup comes from, by sequence length "
            "(Llama3, cloud)"
        ),
    ))
    print()
    print(format_table(
        ["seq_len", "qkv", "mha", "layernorm", "ffn"],
        contrib_rows,
        title=(
            "Layer-wise speedup contribution of TransFusion over "
            "FuseMax (Eq. 47-48)"
        ),
    ))
    print()
    print(
        "Note how the layer-fusion gain decays with sequence length "
        "while the MHA\ncontribution grows -- the crossover from "
        "memory-bound to compute-bound\nexecution the paper reports."
    )


if __name__ == "__main__":
    main()
