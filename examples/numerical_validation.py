#!/usr/bin/env python
"""Numerical validation of the Einsum cascades.

TransFusion's correctness claim (Section 5, "implementability and
correctness of end-to-end fusion") rests on the cascades computing
exactly what the textbook layers compute.  This example evaluates all
four cascades with the NumPy evaluator against the plain reference
implementation and reports the worst absolute error.

Run:
    python examples/numerical_validation.py
"""

import numpy as np

from repro.einsum.builders import (
    attention_cascade,
    ffn_cascade,
    layernorm_cascade,
    qkv_cascade,
)
from repro.einsum.evaluator import evaluate_cascade
from repro.metrics.tables import format_table
from repro.reference.functional import (
    feed_forward,
    layer_norm,
    multi_head_attention,
    qkv_projection,
)


def main() -> None:
    rng = np.random.default_rng(2025)
    ext = {"h": 8, "e": 32, "f": 32, "p": 24, "m1": 6, "m0": 16,
           "d": 256, "s": 96}
    h, e, f = ext["h"], ext["e"], ext["f"]
    p, m1, m0, d, s = (ext["p"], ext["m1"], ext["m0"], ext["d"],
                       ext["s"])
    m = m1 * m0

    rows = []

    # --- Cascade 2: QKV projection --------------------------------
    inp_q = rng.normal(size=(d, p))
    inp_kv = rng.normal(size=(d, m1, m0))
    wq, wk = rng.normal(size=(2, d, h, e))
    wv = rng.normal(size=(d, h, f))
    out = evaluate_cascade(
        qkv_cascade(),
        {"INP_Q": inp_q, "INP_KV": inp_kv, "WQ": wq, "WK": wk,
         "WV": wv},
        ext,
    )
    ref = qkv_projection(inp_q, inp_kv.reshape(d, m), wq, wk, wv)
    err = max(
        np.abs(out["Q"] - ref["Q"]).max(),
        np.abs(out["BK"].reshape(h, e, m) - ref["K"]).max(),
        np.abs(out["BV"].reshape(h, f, m) - ref["V"]).max(),
    )
    rows.append(["Cascade 2 (QKV)", "Eq. 25-27", err])

    # --- Cascade 1: 1-pass attention ------------------------------
    q = out["Q"]
    av = evaluate_cascade(
        attention_cascade(),
        {"Q": q, "BK": out["BK"], "BV": out["BV"]},
        ext,
    )["AV"]
    ref_av = multi_head_attention(q, ref["K"], ref["V"])
    rows.append([
        "Cascade 1 (1-pass MHA)", "Eq. 12-24",
        np.abs(av - ref_av).max(),
    ])

    # --- Cascade 3: Add & LayerNorm --------------------------------
    residual = rng.normal(size=(h, f, p))
    nr = evaluate_cascade(
        layernorm_cascade(), {"INP": residual, "AV": av}, ext
    )["NR"]
    rows.append([
        "Cascade 3 (Add & LayerNorm)", "Eq. 28-36",
        np.abs(nr - layer_norm(residual, av)).max(),
    ])

    # --- Cascade 4: FFN ---------------------------------------------
    wf1 = rng.normal(size=(h, f, s))
    bf1 = rng.normal(size=(s,))
    wf2 = rng.normal(size=(h, f, s))
    bf2 = rng.normal(size=(h, f))
    ffn = evaluate_cascade(
        ffn_cascade("gelu"),
        {"NR": nr, "WF1": wf1, "BF1": bf1, "WF2": wf2, "BF2": bf2},
        ext,
    )["FFN2"]
    rows.append([
        "Cascade 4 (FFN)", "Eq. 37-39",
        np.abs(ffn - feed_forward(nr, wf1, bf1, wf2, bf2,
                                  "gelu")).max(),
    ])

    print(format_table(
        ["cascade", "paper equations", "max abs error vs reference"],
        rows,
        title=(
            "End-to-end fused pipeline vs textbook Transformer "
            "(chained: QKV -> MHA -> LN -> FFN)"
        ),
    ))
    worst = max(row[2] for row in rows)
    print(f"\nWorst error across the chained pipeline: {worst:.2e}")
    assert worst < 1e-8, "cascades must match the reference"


if __name__ == "__main__":
    main()
