#!/usr/bin/env python
"""Quickstart: compile a Transformer layer with TransFusion.

Compiles Llama3-8B at a 64K context on the cloud architecture, prints
the headline plan summary, and compares against the paper's baselines.

Run:
    python examples/quickstart.py
"""

from repro import (
    TransFusion,
    Workload,
    cloud_architecture,
    compare_executors,
    named_model,
)
from repro.arch.pe import PEArrayKind
from repro.metrics.tables import format_table


def main() -> None:
    arch = cloud_architecture()
    workload = Workload(named_model("llama3"), seq_len=65536,
                        batch=64)

    # --- Compile: TileSeek outer tiling + DPipe schedules ----------
    tf = TransFusion(arch)
    plan = tf.compile(workload)
    summary = plan.summary(arch)

    print(f"Workload: {plan.workload} on {plan.architecture}")
    print(f"TileSeek outer tiling: {plan.tiling.config}")
    print(
        "  K/V reload passes:"
        f" {plan.tiling.assessment.kv_passes},"
        f" weight passes: {plan.tiling.assessment.weight_passes}"
    )
    print(
        "  buffer required:"
        f" {summary['buffer_words_required'] / 2**19:.2f} MiB of"
        f" {arch.buffer.capacity_bytes / 2**20:.0f} MiB"
    )
    for layer in plan.layers:
        tag = "pipelined" if layer.pipelined else "sequential"
        print(
            f"  {layer.layer:10s} {tag:10s} epochs="
            f"{layer.plan.n_epochs:>9,d} "
            f"time={layer.plan.total_seconds * 1e3:9.2f} ms"
        )
    print(
        f"Per-layer latency: {summary['latency_s'] * 1e3:.1f} ms, "
        f"energy: {summary['energy_pj'] / 1e12:.2f} J"
    )

    # --- Compare against the paper's baselines ---------------------
    reports = compare_executors(workload, arch)
    base = reports["unfused"].latency_seconds(arch)
    rows = []
    for name, report in reports.items():
        util = report.utilization(arch)
        energy = report.energy(arch)
        rows.append([
            name,
            report.latency_seconds(arch),
            base / report.latency_seconds(arch),
            util[PEArrayKind.ARRAY_2D],
            util[PEArrayKind.ARRAY_1D],
            energy.total_pj / 1e12,
        ])
    print()
    print(format_table(
        ["executor", "latency (s)", "speedup", "2D util",
         "1D util", "energy (J)"],
        rows,
        title="Llama3 @ 64K on cloud, per Transformer layer",
    ))


if __name__ == "__main__":
    main()
