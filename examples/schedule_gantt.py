#!/usr/bin/env python
"""Visualize DPipe schedules as ASCII Gantt charts.

Renders the steady-state pipeline window of the attention layer on
both architectures: ``cur.*`` ops belong to the current epoch's second
subgraph, ``nxt.*`` ops to the next epoch's first subgraph -- the
temporal overlap DPipe constructs (Figure 7d).  ``#`` bars run on the
2D array, ``=`` bars on the 1D array.

Run:
    python examples/schedule_gantt.py
"""

from repro import Workload, named_model
from repro.arch.spec import named_architecture
from repro.core.executor import TransFusionExecutor
from repro.dpipe.latency import build_latency_table
from repro.dpipe.pipeline import ROOT, best_window_schedule
from repro.dpipe.planner import plan_cascade
from repro.dpipe.visualize import (
    array_occupancy,
    render_gantt,
    schedule_timeline,
)
from repro.graph.dag import ComputationDAG


def show(arch_name: str, layer: str = "mha") -> None:
    arch = named_architecture(arch_name)
    workload = Workload(named_model("llama3"), seq_len=65536,
                        batch=64)
    executor = TransFusionExecutor()
    cascade = executor.cascades(workload.model)[layer]
    tile = executor.inner_tile(workload, layer, arch)
    n_epochs = executor.epoch_count(workload, layer, tile)
    plan = plan_cascade(cascade, layer, tile, arch, n_epochs)
    table = build_latency_table(cascade, layer, tile, arch)

    print(f"=== {layer} on {arch_name} "
          f"(steady-state period {plan.epoch_seconds * 1e9:.0f} ns, "
          f"{n_epochs:,} epochs) ===")
    if plan.bipartition is None or not plan.window_order:
        print("(static pipeline schedule selected; no window to "
              "draw)\n")
        return
    dag = ComputationDAG.from_cascade(cascade)
    window = best_window_schedule(dag, plan.bipartition, table,
                                  max_orders=48)
    timeline = schedule_timeline(window.schedule, table,
                                 zero_latency={ROOT})
    print(render_gantt(timeline))
    busy = array_occupancy(timeline)
    period = window.period_seconds
    for kind, seconds in busy.items():
        label = "2D" if kind.value == "2d" else "1D"
        print(f"  {label} occupancy within window: "
              f"{seconds / period:.0%}")
    print()


def main() -> None:
    for arch_name in ("cloud", "edge"):
        show(arch_name, "mha")
    print(
        "Note the offloaded map Einsums (SLN/SPNV/AV on the 2D array "
        "on cloud; the\nsecond GEMM on the 1D array on edge) -- "
        "Eq. 45's per-op min-completion rule\nat work."
    )


if __name__ == "__main__":
    main()
