#!/usr/bin/env python
"""A serving-mix scenario: heterogeneous prompts plus generation.

The paper's introduction motivates deployment "both in cloud
infrastructure and edge devices"; real deployments see a *mix* of
request lengths plus a generation phase.  This example prices a
synthetic serving trace -- a bucketed long-tail prompt-length
distribution and a fixed number of generated tokens per request --
under each dataflow, combining the prefill model (where TransFusion
wins) and the decode model (where attention-only fusion wins), as a
deployment study would.

Run:
    python examples/serving_mix.py
"""

from repro import Workload, cloud_architecture, named_model
from repro.baselines.registry import named_executor
from repro.experiments.decode import decode_workload
from repro.metrics.tables import format_table

#: Synthetic long-tail prompt mix: (prompt tokens, share of requests).
PROMPT_MIX = (
    (1024, 0.50),
    (4096, 0.30),
    (16384, 0.15),
    (65536, 0.05),
)

GENERATED_TOKENS = 256
REQUESTS = 1024
BATCH = 16
MODEL = "llama3-gqa"  # the production shapes


def main() -> None:
    arch = cloud_architecture()
    model = named_model(MODEL)
    layers = model.layers
    executors = ("unfused", "fusemax", "transfusion")

    rows = []
    for name in executors:
        runner = named_executor(name)
        prefill_total = 0.0
        decode_total = 0.0
        for prompt, share in PROMPT_MIX:
            n_requests = REQUESTS * share
            batches = n_requests / BATCH
            prefill = runner.run(
                Workload(model, seq_len=prompt, batch=BATCH,
                         causal=True),
                arch,
            )
            prefill_total += (
                batches * prefill.latency_seconds(arch) * layers
            )
            # Decode each generated token against the growing cache;
            # price it at the mean context (prompt + G/2).
            step = runner.run(
                decode_workload(
                    MODEL, prompt + GENERATED_TOKENS // 2, BATCH
                ),
                arch,
            )
            decode_total += (
                batches
                * GENERATED_TOKENS
                * step.latency_seconds(arch)
                * layers
            )
        rows.append([
            name,
            prefill_total,
            decode_total,
            prefill_total + decode_total,
        ])
    base = rows[0][3]
    for row in rows:
        row.append(base / row[3])

    print(format_table(
        ["executor", "prefill (s)", "decode (s)", "total (s)",
         "speedup"],
        rows,
        title=(
            f"Serving {REQUESTS} requests ({MODEL}, {layers} "
            f"layers, {GENERATED_TOKENS} generated tokens each) "
            "on cloud"
        ),
    ))
    print()
    best_prefill = min(rows, key=lambda r: r[1])
    best_decode = min(rows, key=lambda r: r[2])
    hybrid = best_prefill[1] + best_decode[2]
    print(
        f"Best per-phase dataflows: {best_prefill[0]} prefill + "
        f"{best_decode[0]} decode -> {hybrid:.0f} s "
        f"({base / hybrid:.2f}x over Unfused)."
    )
    if best_decode[0] == "transfusion":
        print(
            "With GQA's 4x-smaller K/V residency, the fused tile "
            "batches enough decode\ntokens per weight pass that "
            "end-to-end fusion wins the generation loop too\n"
            "(unlike the dense-MHA decode study in "
            "benchmarks/bench_decode.py)."
        )


if __name__ == "__main__":
    main()
