#!/usr/bin/env python
"""Regenerate the entire evaluation in one command.

Prewarms the persistent sweep cache over the figure grid (optionally
in parallel with ``--jobs``), runs the full test suite, every
per-figure benchmark harness (tables archived under
``benchmarks/results/``), and prints the headline paper-vs-measured
summary at the end.  Each benchmark harness runs in its own pytest
process; the prewarmed cache means none of them redo TileSeek/DPipe
planning from scratch.

Usage:
    python scripts/reproduce_all.py [--skip-tests] [--jobs N]
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run(args: list) -> int:
    print(f"$ {' '.join(args)}", flush=True)
    return subprocess.call(args, cwd=REPO)


def prewarm(jobs: int, retries: int, timeout: float) -> bool:
    """Populate the persistent cache over the main figure grid.

    The grid matches Figures 8-13's hot loop (Llama3 across the
    1K-1M sequence sweep plus the model suite at 64K, cloud and
    edge); warm starting is left off so the cache keys match
    the figures' cold :func:`repro.experiments.runner.get_report`
    lookups exactly.

    Runs fault-tolerantly: failed chains retry with deterministic
    backoff, completed points are journaled (so a killed prewarm
    resumes where it stopped on the next invocation), and any point
    that still fails is reported and *skipped* -- the per-figure
    benchmark that needs it will recompute it, so a flaky chain
    never sinks the whole reproduction.  Returns whether every point
    prewarmed cleanly.
    """
    from repro.experiments.fig08_speedup import EXECUTORS
    from repro.experiments.runner import (
        BATCH,
        DEFAULT_SEQ_LENGTHS,
        EVAL_MODELS,
    )
    from repro.runner import GridPoint, default_journal_path, run_grid

    executors = ("unfused",) + EXECUTORS
    points = [
        GridPoint(executor=name, model="llama3", seq_len=seq,
                  arch=arch, batch=BATCH)
        for arch in ("cloud", "edge")
        for name in executors
        for seq in DEFAULT_SEQ_LENGTHS
    ] + [
        GridPoint(executor=name, model=model, seq_len=65536,
                  arch=arch, batch=BATCH)
        for arch in ("cloud", "edge")
        for name in executors
        for model in EVAL_MODELS
    ]
    start = time.perf_counter()
    result = run_grid(
        points,
        jobs=jobs,
        retries=retries,
        timeout=timeout if timeout > 0 else None,
        strict=False,
        journal=default_journal_path(points),
        resume=True,
    )
    counts = ", ".join(
        f"{status}={count}"
        for status, count in sorted(result.counts().items())
    )
    print(
        f"prewarmed {len(result)}/{len(result.points)} grid points "
        f"in {time.perf_counter() - start:.1f}s "
        f"(jobs={jobs}; {counts})",
        flush=True,
    )
    for point in result.failed_points():
        print(f"  PREWARM {result.statuses[point].upper()}: "
              f"{result.failures[point]}", flush=True)
    return result.ok


def headline() -> None:
    from repro.experiments.fig08_speedup import fig8a
    from repro.experiments.fig10_utilization import fig10a
    from repro.metrics.speedup import geomean
    from repro.metrics.tables import format_table

    data = fig8a()
    rows = []
    paper = {
        ("cloud", "fusemax"): 1.6, ("cloud", "fusemax+lf"): 1.3,
        ("cloud", "flat"): 7.0, ("edge", "fusemax"): 2.2,
        ("edge", "fusemax+lf"): 1.8, ("edge", "flat"): 3.2,
    }
    for arch, per_seq in data.items():
        for name in ("fusemax", "fusemax+lf", "flat"):
            measured = geomean(
                per_seq[s]["transfusion"] / per_seq[s][name]
                for s in per_seq
            )
            rows.append([
                arch, f"TransFusion / {name}",
                paper[(arch, name)], measured,
            ])
    util = fig10a()
    tf_util = sum(u["transfusion"]["2d"] for u in util.values())
    tf_util /= len(util)
    rows.append(["cloud", "TransFusion 2D utilization", 0.58,
                 tf_util])
    print()
    print(format_table(
        ["arch", "quantity", "paper", "measured"],
        rows,
        title="Headline reproduction summary (geomean, Llama3 "
              "1K-1M)",
    ))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--skip-tests", action="store_true",
                        help="only run the benchmark harnesses")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="processes used to prewarm the sweep cache",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="extra attempts per failed prewarm chain",
    )
    parser.add_argument(
        "--timeout", type=float, default=0.0,
        help="per-chain prewarm timeout in seconds (0: unlimited)",
    )
    args = parser.parse_args()
    sys.path.insert(0, str(REPO / "src"))
    if not prewarm(args.jobs, args.retries, args.timeout):
        print("prewarm left gaps; benchmarks will recompute them",
              flush=True)
    if not args.skip_tests:
        rc = run([sys.executable, "-m", "pytest", "tests/"])
        if rc:
            return rc
    rc = run([
        sys.executable, "-m", "pytest", "benchmarks/",
        "--benchmark-only", "-q",
    ])
    if rc:
        return rc
    headline()
    print(
        "\nPer-figure tables archived under benchmarks/results/; "
        "see EXPERIMENTS.md for the\npaper-vs-measured index."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
