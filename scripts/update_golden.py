#!/usr/bin/env python3
"""Regenerate the golden-corpus snapshots under ``tests/golden/``.

Run after an *intentional* change to the cost model, then review the
diff: every changed number is a behavior change the commit message
should be able to explain.

    python scripts/update_golden.py

Snapshots are re-priced from scratch (the persistent plan cache is
bypassed) with the invariant auditors enabled, so a corrupted model
fails here before it can be frozen into the corpus.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

# Fresh computation with auditing on: never freeze a cached or
# unvalidated report.
os.environ["REPRO_CACHE"] = "0"
os.environ["REPRO_VALIDATE"] = "1"


def main() -> int:
    from repro.runner.parallel import compute_report
    from repro.validate.golden import (
        GOLDEN_DEGRADED_BUDGET,
        golden_degraded_document,
        golden_degraded_filename,
        golden_degraded_points,
        golden_dir,
        golden_document,
        golden_filename,
        golden_points,
        render_golden,
    )

    directory = golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    expected = set()
    for point in golden_points():
        report = compute_report(point)
        path = directory / golden_filename(point)
        path.write_text(
            render_golden(golden_document(point, report))
        )
        expected.add(path.name)
        print(f"wrote {path.relative_to(REPO)}")
    # Degraded snapshots: the same executor under a tiny search-unit
    # budget.  The auditors stay on -- fallback plans must satisfy
    # every invariant a complete search does.
    os.environ["REPRO_BUDGET"] = str(GOLDEN_DEGRADED_BUDGET)
    try:
        for point in golden_degraded_points():
            report = compute_report(point)
            path = directory / golden_degraded_filename(point)
            path.write_text(
                render_golden(golden_degraded_document(point, report))
            )
            expected.add(path.name)
            print(f"wrote {path.relative_to(REPO)}")
    finally:
        del os.environ["REPRO_BUDGET"]
    strays = sorted(
        p.name for p in directory.glob("*.json")
        if p.name not in expected
    )
    for name in strays:
        print(f"WARNING: stray snapshot {name} (corpus shrank? "
              f"delete it by hand)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
