"""TransFusion reproduction: end-to-end Transformer acceleration.

This package reproduces the MICRO 2025 paper *TransFusion: End-to-End
Transformer Acceleration via Graph Fusion and Pipelining* (Zhang, Amaral,
Niu).  It provides:

* :mod:`repro.einsum` -- an Extended-Einsum IR with cascades and a NumPy
  evaluator (Cascades 1-4 of the paper).
* :mod:`repro.graph` -- computation DAGs, bipartition enumeration and
  topological-order enumeration used by DPipe.
* :mod:`repro.arch` -- parametric cloud/edge spatial-accelerator models
  (Table 3 of the paper).
* :mod:`repro.sim` -- an analytical Timeloop/Accelergy-like latency and
  energy model (Eq. 40-42).
* :mod:`repro.dpipe` -- the DPipe DAG-pipelining DP scheduler (Eq. 43-46).
* :mod:`repro.tileseek` -- the TileSeek MCTS outer-tiling search with the
  Table-2 buffer model.
* :mod:`repro.baselines` -- Unfused, FLAT, FuseMax and FuseMax+LayerFuse
  executors.
* :mod:`repro.core` -- the TransFusion executor and public entry points.
* :mod:`repro.metrics`, :mod:`repro.experiments` -- evaluation metrics and
  per-figure experiment generators.
"""

from repro.arch.spec import (
    ArchitectureSpec,
    cloud_architecture,
    edge_architecture,
)
from repro.model.config import ModelConfig, named_model
from repro.model.workload import Workload


def __getattr__(name: str):
    """Lazily expose the core entry points.

    ``repro.core`` pulls in every subsystem (scheduler, search, cost
    model); deferring the import keeps ``import repro`` cheap for users
    who only need the IR or the architecture models.
    """
    if name in ("TransFusion", "compare_executors"):
        from repro.core import framework

        return getattr(framework, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "ArchitectureSpec",
    "ModelConfig",
    "TransFusion",
    "Workload",
    "cloud_architecture",
    "compare_executors",
    "edge_architecture",
    "named_model",
]

__version__ = "1.0.0"
