"""Parametric spatial-accelerator architecture models.

Implements the cloud/edge architecture template of Figure 1 and
Table 3: off-chip DRAM, a shared on-chip global buffer, and two compute
arrays -- a 2D PE array for matrix-dense work and a 1D PE array for
streaming/vector work.
"""

from repro.arch.energy import EnergyModel
from repro.arch.memory import MemoryLevel
from repro.arch.pe import PEArray, PEArrayKind
from repro.arch.spec import (
    ArchitectureSpec,
    cloud_architecture,
    edge_architecture,
    named_architecture,
)

__all__ = [
    "ArchitectureSpec",
    "EnergyModel",
    "MemoryLevel",
    "PEArray",
    "PEArrayKind",
    "cloud_architecture",
    "edge_architecture",
    "named_architecture",
]
