"""Accelergy-style per-access energy model (45 nm technology node).

The paper estimates energy with Accelergy [51] at 45 nm and reports the
breakdown across DRAM, global buffer, register file and PE arrays
(Figure 13).  This model reproduces that accounting analytically:
every access class has a per-event energy, and executors report event
counts.

The constants follow widely used 45 nm figures (Horowitz, ISSCC'14, and
the Accelergy technology tables): a DRAM word access costs two orders
of magnitude more than an on-chip SRAM access, and SRAM access energy
grows roughly with the square root of capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def sram_pj_per_word(capacity_bytes: int, word_bytes: int = 2) -> float:
    """Per-word SRAM access energy, scaled by capacity.

    Uses the standard ``E ~ sqrt(capacity)`` SRAM scaling anchored at
    ~5 pJ per 16-bit word for a 1 MiB array at 45 nm.
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    mib = capacity_bytes / float(1 << 20)
    per_16bit = 5.0 * math.sqrt(mib)
    return per_16bit * (word_bytes / 2.0)


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energies in picojoules.

    Attributes:
        dram_pj_per_word: One word moved across the DRAM interface.
        buffer_pj_per_word: One word read/written in the global buffer.
        rf_pj_per_word: One register-file access.
        pe_2d_pj_per_op: One MAC on the 2D array.
        pe_1d_pj_per_op: One vector op on the 1D array.
    """

    dram_pj_per_word: float = 320.0
    buffer_pj_per_word: float = 10.0
    rf_pj_per_word: float = 0.25
    pe_2d_pj_per_op: float = 2.2
    pe_1d_pj_per_op: float = 1.2

    def __post_init__(self) -> None:
        for name in (
            "dram_pj_per_word",
            "buffer_pj_per_word",
            "rf_pj_per_word",
            "pe_2d_pj_per_op",
            "pe_1d_pj_per_op",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def dram_energy_pj(self, words: float) -> float:
        """Energy for ``words`` DRAM transfers."""
        return words * self.dram_pj_per_word

    def buffer_energy_pj(self, words: float) -> float:
        """Energy for ``words`` global-buffer accesses."""
        return words * self.buffer_pj_per_word

    def rf_energy_pj(self, words: float) -> float:
        """Energy for ``words`` register-file accesses."""
        return words * self.rf_pj_per_word

    def pe_energy_pj(self, ops_2d: float, ops_1d: float) -> float:
        """Energy for compute on both PE arrays."""
        return ops_2d * self.pe_2d_pj_per_op + ops_1d * self.pe_1d_pj_per_op


def energy_model_for_buffer(
    buffer_bytes: int, word_bytes: int = 2
) -> EnergyModel:
    """An :class:`EnergyModel` whose buffer energy tracks buffer size."""
    return EnergyModel(
        buffer_pj_per_word=sram_pj_per_word(buffer_bytes, word_bytes)
    )
