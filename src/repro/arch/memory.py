"""Memory-hierarchy levels.

Three levels matter to the paper's evaluation (Figure 13): off-chip
DRAM, the shared on-chip global buffer, and per-PE register files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemoryLevelKind(enum.Enum):
    """Position in the hierarchy, outermost first."""

    DRAM = "dram"
    GLOBAL_BUFFER = "global_buffer"
    REGISTER_FILE = "register_file"


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy.

    Attributes:
        kind: Which level this is.
        capacity_bytes: Usable capacity (0 = effectively unbounded,
            used for DRAM).
        bandwidth_bytes_per_s: Sustained bandwidth to the next level
            down (DRAM -> buffer for DRAM; buffer -> PEs for the
            buffer).
    """

    kind: MemoryLevelKind
    capacity_bytes: int
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity must be >= 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def unbounded(self) -> bool:
        """Whether this level models no capacity limit."""
        return self.capacity_bytes == 0

    def fits(self, nbytes: int) -> bool:
        """Whether ``nbytes`` fits in this level."""
        return self.unbounded or nbytes <= self.capacity_bytes

    def transfer_seconds(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across this level's interface."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return nbytes / self.bandwidth_bytes_per_s
