"""Processing-element array models.

The evaluation architecture (Figure 1) pairs a 2D PE array (systolic,
matrix-dense work) with a 1D PE array (streaming/vector work).  DPipe's
DP rule (Eq. 45) chooses, per Einsum op, whichever array finishes it
earliest, so both arrays must be able to *price* any op kind -- with an
efficiency penalty when the op is a poor fit (e.g. a cross-PE reduction
on a systolic 2D array).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PEArrayKind(enum.Enum):
    """Which compute array an op runs on."""

    ARRAY_2D = "2d"
    ARRAY_1D = "1d"


@dataclass(frozen=True)
class PEArray:
    """One compute array.

    Attributes:
        kind: 2D or 1D.
        rows: Row count (1 for a 1D array).
        cols: Column count (lane count for a 1D array).
        reduction_efficiency: Throughput factor in (0, 1] applied when
            the array executes an op whose reduction must cross PEs in a
            way the array does not natively support.  A systolic 2D
            array accumulates GEMM reductions at full rate but pays this
            factor for tree-reductions of map/reduce Einsums; a 1D array
            reduces within each lane at full rate but pays it when a
            GEMM's spatial reduction exceeds the lane-local accumulator.
        map_efficiency: Throughput factor for pure element-wise map ops.
            1.0 on the 1D array; slightly below 1.0 on the 2D array to
            model operand staging through the systolic fabric.
    """

    kind: PEArrayKind
    rows: int
    cols: int
    reduction_efficiency: float = 1.0
    map_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("PE array dims must be positive")
        if not 0.0 < self.reduction_efficiency <= 1.0:
            raise ValueError("reduction_efficiency must be in (0, 1]")
        if not 0.0 < self.map_efficiency <= 1.0:
            raise ValueError("map_efficiency must be in (0, 1]")
        if self.kind is PEArrayKind.ARRAY_1D and self.rows != 1:
            raise ValueError("a 1D array has exactly one row")

    @property
    def num_pes(self) -> int:
        """Total processing elements in the array."""
        return self.rows * self.cols

    def __str__(self) -> str:
        if self.kind is PEArrayKind.ARRAY_1D:
            return f"1D[{self.cols}]"
        return f"2D[{self.rows}x{self.cols}]"
