"""Architecture specifications and the Table 3 presets.

====== ========== ========== ============== =========
name   2D PE      1D PE      on-chip buffer DRAM BW
====== ========== ========== ============== =========
cloud  256 x 256  256        16 MB          400 GB/s
edge   16 x 16    256        5 MB           30 GB/s
edge32 32 x 32    256        5 MB           30 GB/s
edge64 64 x 64    256        8 MB           30 GB/s
====== ========== ========== ============== =========

``edge32`` / ``edge64`` are the Section 6.2 "Generalization across
Computational Capability" variants (the 64 x 64 configuration raises
the buffer to 8 MB, as stated in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.arch.energy import EnergyModel, energy_model_for_buffer
from repro.arch.memory import MemoryLevel, MemoryLevelKind
from repro.arch.pe import PEArray, PEArrayKind

GB = 1_000_000_000
MB = 1 << 20


@dataclass(frozen=True)
class ArchitectureSpec:
    """A complete accelerator model (Figure 1).

    Attributes:
        name: Preset name or user label.
        array_2d: The 2D (matrix) PE array.
        array_1d: The 1D (vector) PE array.
        buffer: Shared on-chip global buffer.
        dram: Off-chip memory interface.
        clock_hz: PE clock frequency (``f_clk`` in Eq. 42).
        word_bytes: Datapath word size (2 = fp16/bf16).
        energy: Per-event energy model.
    """

    name: str
    array_2d: PEArray
    array_1d: PEArray
    buffer: MemoryLevel
    dram: MemoryLevel
    clock_hz: float = 1.0e9
    word_bytes: int = 2
    energy: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        if self.word_bytes <= 0:
            raise ValueError("word_bytes must be positive")
        if self.array_2d.kind is not PEArrayKind.ARRAY_2D:
            raise ValueError("array_2d must be a 2D PE array")
        if self.array_1d.kind is not PEArrayKind.ARRAY_1D:
            raise ValueError("array_1d must be a 1D PE array")
        if self.buffer.kind is not MemoryLevelKind.GLOBAL_BUFFER:
            raise ValueError("buffer must be a GLOBAL_BUFFER level")
        if self.dram.kind is not MemoryLevelKind.DRAM:
            raise ValueError("dram must be a DRAM level")

    @property
    def buffer_words(self) -> int:
        """Global-buffer capacity in words."""
        return self.buffer.capacity_bytes // self.word_bytes

    def array(self, kind: PEArrayKind) -> PEArray:
        """Look up a PE array by kind."""
        if kind is PEArrayKind.ARRAY_2D:
            return self.array_2d
        return self.array_1d

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert PE cycles to wall-clock seconds (Eq. 42)."""
        return cycles / self.clock_hz

    def dram_seconds(self, words: float) -> float:
        """Time to move ``words`` across the DRAM interface."""
        return self.dram.transfer_seconds(words * self.word_bytes)

    def with_2d_array(self, rows: int, cols: int) -> "ArchitectureSpec":
        """A copy of this spec with a resized 2D array.

        The wavefront efficiencies are recomputed for the new row
        count (see the preset constructor for the rationale).
        """
        return replace(
            self,
            name=f"{self.name}-{rows}x{cols}",
            array_2d=replace(
                self.array_2d,
                rows=rows,
                cols=cols,
                map_efficiency=1.0 / rows,
                reduction_efficiency=1.0 / (2 * rows),
            ),
        )


def _make_spec(
    name: str,
    pe_2d: int,
    lanes_1d: int,
    buffer_mb: float,
    dram_gb_s: float,
) -> ArchitectureSpec:
    buffer_bytes = int(buffer_mb * MB)
    return ArchitectureSpec(
        name=name,
        array_2d=PEArray(
            kind=PEArrayKind.ARRAY_2D,
            rows=pe_2d,
            cols=pe_2d,
            # A systolic array executes non-GEMM Einsums one wavefront
            # row at a time: map ops activate one row per cycle
            # (1/rows), and cross-PE reductions need a second wavefront
            # to combine partials (1/(2*rows)).  This makes the 2D
            # array's *vector* throughput comparable to a 1D array with
            # `cols` lanes -- the physical reason DPipe's offloading
            # helps but cannot trivialize the 1D bottleneck.
            reduction_efficiency=1.0 / (2 * pe_2d),
            map_efficiency=1.0 / pe_2d,
        ),
        array_1d=PEArray(
            kind=PEArrayKind.ARRAY_1D,
            rows=1,
            cols=lanes_1d,
            reduction_efficiency=1.0,
            map_efficiency=1.0,
        ),
        buffer=MemoryLevel(
            kind=MemoryLevelKind.GLOBAL_BUFFER,
            capacity_bytes=buffer_bytes,
            # On-chip buffers sustain far more bandwidth than DRAM; the
            # factor keeps buffer transfers off the critical path unless
            # tiles thrash.
            bandwidth_bytes_per_s=dram_gb_s * GB * 32.0,
        ),
        dram=MemoryLevel(
            kind=MemoryLevelKind.DRAM,
            capacity_bytes=0,
            bandwidth_bytes_per_s=dram_gb_s * GB,
        ),
        energy=energy_model_for_buffer(buffer_bytes),
    )


def cloud_architecture() -> ArchitectureSpec:
    """The Table 3 cloud (TPU-v2/v3-like) architecture."""
    return _make_spec("cloud", 256, 256, 16.0, 400.0)


def edge_architecture(pe_size: int = 16) -> ArchitectureSpec:
    """The Table 3 edge architecture (optionally resized per Fig. 9).

    Args:
        pe_size: 2D array side: 16 (default), 32, or 64.  The 64 x 64
            variant uses an 8 MB buffer per Section 6.2.
    """
    if pe_size not in (16, 32, 64):
        raise ValueError("edge 2D PE size must be 16, 32 or 64")
    buffer_mb = 8.0 if pe_size == 64 else 5.0
    return _make_spec(f"edge{pe_size if pe_size != 16 else ''}",
                      pe_size, 256, buffer_mb, 30.0)


def named_architecture(name: str) -> ArchitectureSpec:
    """Look up a preset by name: cloud / edge / edge32 / edge64."""
    presets: Dict[str, ArchitectureSpec] = {
        "cloud": cloud_architecture(),
        "edge": edge_architecture(16),
        "edge32": edge_architecture(32),
        "edge64": edge_architecture(64),
    }
    if name not in presets:
        raise KeyError(
            f"unknown architecture {name!r}; choose from "
            f"{sorted(presets)}"
        )
    return presets[name]
