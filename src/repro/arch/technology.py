"""Technology-node scaling for the energy model.

The paper builds its Accelergy models at the 45 nm node (Section 6.1).
Accelergy's technology tables let the same architecture be priced at
other nodes; this module provides that knob.  Scaling follows the
standard practice: logic (PE) energy scales roughly with the square of
the feature-size ratio, on-chip SRAM slightly sub-quadratically, and
DRAM *interface* energy improves much more slowly because it is
dominated by off-chip I/O.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.arch.energy import EnergyModel


@dataclass(frozen=True)
class TechnologyNode:
    """Energy scale factors relative to the 45 nm baseline.

    Attributes:
        name: Node label (e.g. ``"22nm"``).
        feature_nm: Feature size in nanometres.
        logic_scale: Multiplier on per-op PE energy.
        sram_scale: Multiplier on buffer/register access energy.
        dram_scale: Multiplier on DRAM interface energy.
    """

    name: str
    feature_nm: float
    logic_scale: float
    sram_scale: float
    dram_scale: float

    def __post_init__(self) -> None:
        for field_name in ("feature_nm", "logic_scale", "sram_scale",
                           "dram_scale"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")

    def apply(self, model: EnergyModel) -> EnergyModel:
        """An :class:`EnergyModel` scaled from 45 nm to this node."""
        return replace(
            model,
            dram_pj_per_word=model.dram_pj_per_word
            * self.dram_scale,
            buffer_pj_per_word=model.buffer_pj_per_word
            * self.sram_scale,
            rf_pj_per_word=model.rf_pj_per_word * self.sram_scale,
            pe_2d_pj_per_op=model.pe_2d_pj_per_op
            * self.logic_scale,
            pe_1d_pj_per_op=model.pe_1d_pj_per_op
            * self.logic_scale,
        )


def _node(name: str, nm: float) -> TechnologyNode:
    ratio = nm / 45.0
    return TechnologyNode(
        name=name,
        feature_nm=nm,
        logic_scale=ratio ** 2,
        sram_scale=ratio ** 1.6,
        dram_scale=max(ratio ** 0.5, 0.35),
    )


#: Available nodes; 45 nm is the identity (the paper's baseline).
TECHNOLOGY_NODES: Dict[str, TechnologyNode] = {
    "45nm": TechnologyNode("45nm", 45.0, 1.0, 1.0, 1.0),
    "22nm": _node("22nm", 22.0),
    "14nm": _node("14nm", 14.0),
    "7nm": _node("7nm", 7.0),
}


def scaled_energy_model(
    model: EnergyModel, node: str
) -> EnergyModel:
    """Scale a 45 nm energy model to another technology node."""
    if node not in TECHNOLOGY_NODES:
        raise KeyError(
            f"unknown node {node!r}; choose from "
            f"{sorted(TECHNOLOGY_NODES)}"
        )
    return TECHNOLOGY_NODES[node].apply(model)
