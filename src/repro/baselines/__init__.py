"""Executors: TransFusion and the Section 6.1 baselines.

All executors share one cost model (:mod:`repro.sim`); they differ only
in *dataflow* -- fusion scope (which intermediates hit DRAM), schedule
(serialized vs statically pipelined vs DPipe) and tiling policy
(heuristic vs TileSeek).  That mirrors the paper's methodology, where
every design is evaluated with the same Timeloop/Accelergy setup.
"""

from repro.baselines.base import ExecutorBase, SUBLAYERS
from repro.baselines.flat import FlatExecutor
from repro.baselines.fusemax import FuseMaxExecutor
from repro.baselines.fusemax_layerfuse import FuseMaxLayerFuseExecutor
from repro.baselines.registry import EXECUTORS, named_executor
from repro.baselines.unfused import UnfusedExecutor

__all__ = [
    "EXECUTORS",
    "ExecutorBase",
    "FlatExecutor",
    "FuseMaxExecutor",
    "FuseMaxLayerFuseExecutor",
    "SUBLAYERS",
    "UnfusedExecutor",
    "named_executor",
]
