"""Shared executor machinery.

An executor turns ``(workload, architecture)`` into a
:class:`~repro.sim.stats.RunReport` with one phase per sub-layer
(QKV, MHA, Add & LayerNorm, FFN).  This base class provides:

* per-sub-layer cascades and problem extents,
* inner-tile sizing and epoch counting,
* static schedules (serialized or 2D/1D-pipelined) over a cascade,
* buffer/register access accounting (with optional register
  retention, FuseMax's key mechanism), and
* the heuristic outer Q-tile used by non-TileSeek dataflows.

Subclasses implement :meth:`build_phases` by composing these pieces
with their dataflow's DRAM-traffic profile.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Dict, Mapping, Tuple

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec
from repro.einsum.builders import (
    attention_cascade,
    ffn_cascade,
    layernorm_cascade,
    qkv_cascade,
)
from repro.einsum.cascade import Cascade
from repro.einsum.operation import EinsumOp
from repro.model.config import ModelConfig
from repro.model.workload import Workload
from repro.sim.latency import op_cycles
from repro.sim.mapping import inner_tile_extents, layer_mapping
from repro.sim.stats import PhaseStats, RunReport
from repro.validate.config import validation_enabled

#: Sub-layer phases of one Transformer layer, in dataflow order.
#: ``layernorm`` statistics are scaled x2 (one Add & LayerNorm after
#: MHA and one after FFN, as in Figure 3's encoder layer).
SUBLAYERS: Tuple[str, ...] = ("qkv", "mha", "layernorm", "ffn")

#: Op name -> PE array kind; ``None`` entries fall back to the default
#: (GEMM-like on 2D, map/reduce on 1D).
Assignment = Callable[[EinsumOp], PEArrayKind]


def default_assignment(op: EinsumOp) -> PEArrayKind:
    """Table-1 style static assignment: contractions on 2D, rest on 1D."""
    if op.is_gemm_like:
        return PEArrayKind.ARRAY_2D
    return PEArrayKind.ARRAY_1D


class ExecutorBase(abc.ABC):
    """Base class for all executors (baselines and TransFusion)."""

    #: Human-readable executor name (set by subclasses).
    name: str = "base"

    # ------------------------------------------------------------------
    # Cascades and extents
    # ------------------------------------------------------------------
    def cascades(
        self, model: ModelConfig, masked: bool = False
    ) -> Dict[str, Cascade]:
        """The four sub-layer cascades for a model.

        Args:
            model: Shape configuration (selects the FFN activation).
            masked: Use the masked-attention variant of Cascade 1
                (decoder self-attention).
        """
        return {
            "qkv": qkv_cascade(
                kv_cost_fraction=model.kv_fraction
            ),
            "mha": attention_cascade(masked=masked),
            "layernorm": layernorm_cascade(),
            "ffn": ffn_cascade(model.activation),
        }

    def layer_extents(
        self, workload: Workload, layer: str
    ) -> Dict[str, int]:
        """Full-problem extents for one sub-layer's cascade dims.

        The key/value sequence is treated as a flat ``m0`` of length
        ``M`` (= ``P`` for self-attention) with ``m1 = 1``; the
        scheduler's epoch count (not the recurrence) covers the outer
        ``m1`` iteration.
        """
        model = workload.model
        extents = model.extents()
        m0 = workload.kv_len
        if layer == "qkv":
            # The QKV cascade's KV side only projects the tokens this
            # step produces (all of them for prefill, the new ones
            # for decode against a persistent cache).
            m0 = workload.kv_projected_len
        extents.update(
            {"p": workload.seq_len, "m0": m0, "m1": 1}
        )
        return extents

    def inner_tile(
        self,
        workload: Workload,
        layer: str,
        arch: ArchitectureSpec,
    ) -> Dict[str, int]:
        """Inner-tile extents for one sub-layer on the 2D array.

        Token-parallel layers (QKV, LayerNorm, FFN) share weights
        across the batch, so batch elements flatten into the PE rows
        -- essential for short-``P`` workloads like autoregressive
        decode, where a single step still fills the array with ``B``
        token rows.  MHA rows stay per batch element (each element
        attends its own K/V cache).
        """
        tile = inner_tile_extents(
            layer, self.layer_extents(workload, layer), arch.array_2d
        )
        if layer != "mha":
            rows = arch.array_2d.rows
            tokens = workload.batch * workload.seq_len
            tile["p"] = min(rows, tokens)
            if layer == "qkv" and "m0" in tile:
                kv_tokens = (
                    workload.batch * workload.kv_projected_len
                )
                tile["m0"] = min(rows, kv_tokens)
        return tile

    def epoch_count(
        self,
        workload: Workload,
        layer: str,
        tile: Mapping[str, int],
    ) -> int:
        """Number of inner-tile epochs covering the whole problem.

        Row and column tiles multiply.  MHA iterates per batch element
        (distinct K/V caches); the token-parallel layers iterate over
        the batch-flattened token pool.  In QKV the ``p`` and ``m0``
        row tilings advance in lockstep over the same token pool, so
        only the longer one counts.
        """
        problem = self.layer_extents(workload, layer)
        mapping = layer_mapping(layer)
        if layer == "mha":
            count = workload.batch
            for dim in mapping.row_dims + mapping.col_dims:
                if dim in problem:
                    count *= math.ceil(problem[dim] / tile[dim])
            return count
        q_tokens = workload.batch * workload.seq_len
        count = math.ceil(q_tokens / tile["p"])
        if layer == "qkv":
            kv_tokens = workload.batch * workload.kv_projected_len
            count = max(count, math.ceil(kv_tokens / tile["m0"]))
        for dim in mapping.col_dims:
            if dim in problem and dim != "m0":
                count *= math.ceil(problem[dim] / tile[dim])
        return count

    # ------------------------------------------------------------------
    # Static schedules
    # ------------------------------------------------------------------
    def static_schedule(
        self,
        cascade: Cascade,
        layer: str,
        tile: Mapping[str, int],
        arch: ArchitectureSpec,
        n_epochs: int,
        pipelined: bool,
        assignment: Assignment = default_assignment,
        vector_pass_factor: float = 1.0,
    ) -> PhaseStats:
        """Schedule a cascade with a fixed op-to-array assignment.

        Args:
            cascade: The sub-layer cascade.
            layer: Sub-layer kind (selects the Table-1 mapping).
            tile: Inner-tile extents (one epoch's work).
            arch: Target architecture.
            n_epochs: Epochs covering the full problem.
            pipelined: If True, the 2D and 1D stages of consecutive
                epochs overlap (epoch time = max of per-array sums,
                plus one fill); if False they serialize (sum).
            assignment: Op -> array mapping.
            vector_pass_factor: Multiplier on 1D work; 2-pass softmax
                dataflows (FLAT) revisit score elements an extra time.

        Returns:
            A :class:`PhaseStats` without DRAM traffic (callers add
            traffic per their fusion scope).
        """
        mapping = layer_mapping(layer)
        seconds: Dict[PEArrayKind, float] = {
            PEArrayKind.ARRAY_2D: 0.0,
            PEArrayKind.ARRAY_1D: 0.0,
        }
        loads: Dict[PEArrayKind, float] = {
            PEArrayKind.ARRAY_2D: 0.0,
            PEArrayKind.ARRAY_1D: 0.0,
        }
        for op in cascade.all_ops:
            kind = assignment(op)
            array = arch.array(kind)
            factor = (
                vector_pass_factor
                if kind is PEArrayKind.ARRAY_1D
                else 1.0
            )
            cycles = op_cycles(op, tile, array, mapping) * factor
            seconds[kind] += cycles / arch.clock_hz
            loads[kind] += op.compute_load(tile) * factor
        sum_2d = seconds[PEArrayKind.ARRAY_2D]
        sum_1d = seconds[PEArrayKind.ARRAY_1D]
        if pipelined:
            epoch = max(sum_2d, sum_1d)
            fill = min(sum_2d, sum_1d)
            makespan = n_epochs * epoch + fill
        else:
            epoch = sum_2d + sum_1d
            makespan = n_epochs * epoch
        return PhaseStats(
            name=layer,
            compute_seconds=makespan,
            busy_seconds={
                PEArrayKind.ARRAY_2D: n_epochs * sum_2d,
                PEArrayKind.ARRAY_1D: n_epochs * sum_1d,
            },
            ops_2d=n_epochs * loads[PEArrayKind.ARRAY_2D],
            ops_1d=n_epochs * loads[PEArrayKind.ARRAY_1D],
        )

    # ------------------------------------------------------------------
    # Access accounting
    # ------------------------------------------------------------------
    def add_access_counts(
        self,
        phase: PhaseStats,
        cascade: Cascade,
        tile: Mapping[str, int],
        n_epochs: int,
        register_retention: bool,
    ) -> None:
        """Fill in buffer/register access counts for a phase.

        Every operand/result tile flows between the buffer and the PE
        arrays once per epoch.  With *register retention* (FuseMax's
        expanded PE register files, kept by TransFusion), tensors both
        produced and consumed inside the cascade stay in registers, so
        their traffic books to the register file instead of the buffer.
        Register files additionally see two accesses per scalar op
        (operand fetch + accumulate).
        """
        produced = {op.output.name for op in cascade.all_ops}
        consumed = set()
        for op in cascade.all_ops:
            consumed.update(op.input_names())
        buffer_words = 0.0
        rf_words = 0.0
        for op in cascade.all_ops:
            for spec in list(op.inputs) + [op.output] + (
                [op.bias] if op.bias is not None else []
            ):
                words = float(_tile_words(spec.dims, tile))
                internal = (
                    spec.name in produced and spec.name in consumed
                )
                if register_retention and internal:
                    rf_words += words
                else:
                    buffer_words += words
        total_load = phase.ops_2d + phase.ops_1d
        phase.buffer_words += buffer_words * n_epochs
        phase.rf_words += rf_words * n_epochs + 2.0 * total_load

    # ------------------------------------------------------------------
    # Heuristic outer tiling (non-TileSeek dataflows)
    # ------------------------------------------------------------------
    def heuristic_q_tile_tokens(
        self,
        workload: Workload,
        arch: ArchitectureSpec,
        scope: str = "mha",
    ) -> int:
        """Largest feasible Q-tile under the Table-2 buffer model.

        Any dataflow that keeps a Q tile resident across the ``m1``
        loop is bound by the same physics TileSeek validates: the
        fused modules' tile footprints must fit the buffer.  The scope
        decides which modules constrain the tile:

        * ``"mha"`` -- attention-only fusion (FLAT, FuseMax): only the
          MHA row of Table 2 applies, leaving more headroom.
        * ``"fused"`` -- end-to-end fusion (FuseMax+LayerFuse): every
          module's tile must fit, so the binding row (usually
          LayerNorm's staging term) caps the tile.

        Non-searched factors take conservative minimal values
        (``b = 1``, thin weight/hidden slices), which is the generous
        assumption for a heuristic without TileSeek.
        """
        from repro.tileseek.buffer_model import (
            FUSED_MODULES,
            max_feasible_q_tile,
        )

        if scope not in ("mha", "fused"):
            raise ValueError(f"unknown tiling scope {scope!r}")
        modules = ("mha",) if scope == "mha" else FUSED_MODULES
        return max_feasible_q_tile(
            workload.model,
            workload.seq_len,
            arch.buffer_words,
            m0=arch.array_2d.cols,
            rows=arch.array_2d.rows,
            modules=modules,
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> RunReport:
        """Evaluate one Transformer layer of ``workload`` on ``arch``."""
        report = RunReport(
            executor=self.name,
            workload=workload.describe(),
            architecture=arch.name,
        )
        report.phases = self.build_phases(workload, arch)
        # Executors that run anytime searches record the worst search
        # outcome of this build; everything else stays "complete".
        report.provenance = getattr(
            self, "_run_provenance", "complete"
        )
        if validation_enabled():
            # Lazy import: the auditors sit above the sim layer.
            from repro.validate.conservation import (
                audit_conservation,
            )

            traffic = None
            if hasattr(self, "tiling"):
                from repro.tileseek.evaluate import (
                    dram_traffic_words,
                )

                tiling = self.tiling(workload, arch)
                traffic = dram_traffic_words(
                    tiling.config, workload, arch.buffer_words
                )
            audit_conservation(
                report, arch, workload=workload, traffic=traffic
            ).raise_if_failed()
        return report

    @abc.abstractmethod
    def build_phases(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> list:
        """Produce the per-sub-layer :class:`PhaseStats` list."""


def _tile_words(dims: Tuple[str, ...], tile: Mapping[str, int]) -> int:
    """Words of one tensor tile under ``tile`` extents."""
    words = 1
    for dim in dims:
        words *= int(tile[dim])
    return words
