"""The FLAT baseline (Kao et al., ASPLOS 2023; Section 6.1).

FLAT fuses the attention layer only: for each block of Q rows, the
``QK^T``, softmax and weighted-sum-with-V computations run on chip with
the output written back to DRAM.  The row-wise granularity keeps
buffer needs linear in the sequence length but strands 2D PE rows on
large arrays, and its stages do not overlap.  All other sub-layers run
unfused, exactly as in the Unfused baseline.
"""

from __future__ import annotations

from typing import List

from repro.arch.spec import ArchitectureSpec
from repro.baselines import phaselib
from repro.baselines.base import ExecutorBase
from repro.model.workload import Workload
from repro.sim.stats import PhaseStats


class FlatExecutor(ExecutorBase):
    """Row-wise fused attention; everything else unfused.

    Args:
        q_rows: Q rows processed per fused pass (FLAT's row-streaming
            granularity).  16 saturates the edge 2D array but occupies
            only 1/16 of the cloud array's rows.
    """

    name = "flat"

    def __init__(self, q_rows: int = 16) -> None:
        if q_rows <= 0:
            raise ValueError("q_rows must be positive")
        self.q_rows = q_rows

    def build_phases(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> List[PhaseStats]:
        return [
            phaselib.unfused_qkv_phase(self, workload, arch),
            phaselib.flat_mha_phase(
                self, workload, arch, q_rows=self.q_rows
            ),
            phaselib.unfused_layernorm_phase(
                self, workload, arch
            ).scaled(2.0),
            phaselib.unfused_ffn_phase(self, workload, arch),
        ]
