"""The FuseMax baseline (Nayak et al., MICRO 2024; Section 6.1).

FuseMax executes attention as the 12-operator 1-pass Einsum cascade
(Einsum Cascade 1): the 2D and 1D PE arrays run in a statically
pipelined, partially parallel fashion, intermediates are retained in
the expanded per-PE register files, and no score matrix ever reaches
DRAM.  QKV, Add & LayerNorm and FFN follow the same unfused flow as
FLAT.
"""

from __future__ import annotations

from typing import List

from repro.arch.spec import ArchitectureSpec
from repro.baselines import phaselib
from repro.baselines.base import ExecutorBase
from repro.model.workload import Workload
from repro.sim.stats import PhaseStats


class FuseMaxExecutor(ExecutorBase):
    """1-pass pipelined attention; everything else unfused."""

    name = "fusemax"

    def build_phases(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> List[PhaseStats]:
        return [
            phaselib.unfused_qkv_phase(self, workload, arch),
            phaselib.fusemax_mha_phase(self, workload, arch),
            phaselib.unfused_layernorm_phase(
                self, workload, arch
            ).scaled(2.0),
            phaselib.unfused_ffn_phase(self, workload, arch),
        ]
