"""FuseMax + LayerFuse: the paper's ablation baseline (Section 6.1).

Extends FuseMax with TransFusion-style inter-layer fusion: QKV, MHA,
Add & LayerNorm and FFN all execute within one on-chip computation
flow, so only the layer input, streamed weights, the K/V spill/reload
and the final output touch DRAM.  Crucially it does *not* use DPipe:
outside the original intra-attention pipeline, sub-layers execute
sequentially with static op-to-array assignment, and outer tiling uses
the buffer-half heuristic rather than TileSeek.
"""

from __future__ import annotations

import math
from typing import List

from repro.arch.spec import ArchitectureSpec
from repro.baselines import phaselib
from repro.baselines.base import ExecutorBase
from repro.model.workload import Workload
from repro.sim.stats import PhaseStats


class FuseMaxLayerFuseExecutor(ExecutorBase):
    """End-to-end fusion without DPipe pipelining or TileSeek tiling."""

    name = "fusemax+lf"

    def build_phases(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> List[PhaseStats]:
        mha = phaselib.fusemax_mha_phase(self, workload, arch)
        # Layer fusion: Q arrives on chip, so drop the Q read and the
        # AV write from the FuseMax MHA traffic (keep the K/V reload).
        q_tile = self.heuristic_q_tile_tokens(
            workload, arch, scope="fused"
        )
        traffic = phaselib.fused_mha_traffic(workload, arch, q_tile)
        mha.dram_words = traffic["kv_words"]
        # Weights re-stream once per resident token group over the
        # flat batch-token pool -- the same accounting TileSeek uses.
        weight_passes = max(1, math.ceil(
            workload.batch * workload.seq_len / q_tile
        ))
        return [
            phaselib.fused_qkv_phase(
                self, workload, arch, weight_passes=weight_passes
            ),
            mha,
            phaselib.fused_layernorm_phase(
                self, workload, arch
            ).scaled(2.0),
            phaselib.fused_ffn_phase(
                self, workload, arch, weight_passes=weight_passes
            ),
        ]
