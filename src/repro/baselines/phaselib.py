"""Reusable per-sub-layer phase builders.

The Section 6.1 baselines share most of their structure: Unfused, FLAT
and FuseMax all run QKV / LayerNorm / FFN the same unfused way and only
disagree inside MHA; FuseMax+LayerFuse reuses FuseMax's MHA but fuses
the rest.  Each builder returns one :class:`PhaseStats`, complete with
compute schedule, DRAM traffic and access counts.
"""

from __future__ import annotations

from typing import Dict

from repro.arch.spec import ArchitectureSpec
from repro.baselines.base import ExecutorBase
from repro.model.workload import Workload
from repro.sim.stats import PhaseStats
from repro.sim.traffic import (
    gemm_traffic_streamed,
    kv_reload_traffic,
    spill_words,
    unfused_attention_spills,
)


def _layer_cascade(exe: ExecutorBase, workload: Workload, layer: str):
    return exe.cascades(
        workload.model, masked=workload.causal
    )[layer]


def _schedule(
    exe: ExecutorBase,
    workload: Workload,
    arch: ArchitectureSpec,
    layer: str,
    pipelined: bool,
    retention: bool,
    vector_pass_factor: float = 1.0,
    p_rows_cap: int = 0,
) -> PhaseStats:
    """Common tile -> epochs -> schedule -> access-count pipeline.

    Args:
        p_rows_cap: If non-zero, cap the sequence-tile rows (models
            FLAT's row-wise streaming granularity).
    """
    cascade = _layer_cascade(exe, workload, layer)
    tile = exe.inner_tile(workload, layer, arch)
    if p_rows_cap:
        tile["p"] = min(tile["p"], p_rows_cap)
    n_epochs = exe.epoch_count(workload, layer, tile)
    phase = exe.static_schedule(
        cascade,
        layer,
        tile,
        arch,
        n_epochs,
        pipelined=pipelined,
        vector_pass_factor=vector_pass_factor,
    )
    exe.add_access_counts(phase, cascade, tile, n_epochs, retention)
    return phase


# ----------------------------------------------------------------------
# Unfused sub-layer phases (Unfused / FLAT / FuseMax outside MHA)
# ----------------------------------------------------------------------
def unfused_qkv_phase(
    exe: ExecutorBase, workload: Workload, arch: ArchitectureSpec
) -> PhaseStats:
    """QKV as three standalone streamed GEMM kernels.

    Inputs and weights stage through DRAM; the projected Q/K/V spill
    back to DRAM for the next kernel.  DRAM traffic serializes with
    compute (no cross-kernel double buffering).
    """
    phase = _schedule(exe, workload, arch, "qkv",
                      pipelined=False, retention=False)
    model = workload.model
    m = workload.batch * workload.seq_len
    kv_m = workload.batch * workload.kv_projected_len
    d = model.d_model
    kv_out = model.effective_kv_heads * model.e_head
    phase.dram_words = gemm_traffic_streamed(
        m, d, d, arch.buffer_words
    ) + 2.0 * gemm_traffic_streamed(
        kv_m, kv_out, d, arch.buffer_words
    )
    phase.overlap_dram = False
    return phase


def unfused_mha_phase(
    exe: ExecutorBase, workload: Workload, arch: ArchitectureSpec
) -> PhaseStats:
    """Attention with materialized scores.

    ``QK^T``, softmax and ``A x V`` run as separate kernels; the
    ``B*H*P^2`` score matrix round-trips DRAM twice (Section 6.1,
    "Unfused").  Vector work uses a full two-pass softmax.
    """
    phase = _schedule(
        exe, workload, arch, "mha",
        pipelined=False, retention=False, vector_pass_factor=1.5,
    )
    if workload.causal:
        # The causal mask halves the live score work on average.
        phase = phase.scaled(workload.attention_work_fraction)
    a = workload.activation_words
    phase.dram_words = (
        a  # Q read
        + workload.kv_words  # K and V reads (full M-length cache)
        + unfused_attention_spills(workload)
    )
    phase.overlap_dram = False
    return phase


def unfused_layernorm_phase(
    exe: ExecutorBase, workload: Workload, arch: ArchitectureSpec
) -> PhaseStats:
    """Add & LayerNorm as a standalone vector kernel (counted twice
    per layer by the caller via :meth:`PhaseStats.scaled`)."""
    phase = _schedule(exe, workload, arch, "layernorm",
                      pipelined=False, retention=False)
    phase.dram_words = 3.0 * workload.activation_words
    phase.overlap_dram = False
    return phase


def unfused_ffn_phase(
    exe: ExecutorBase, workload: Workload, arch: ArchitectureSpec
) -> PhaseStats:
    """FFN as two streamed GEMMs with the activation in between.

    The ``B*P*S`` hidden tensor spills to DRAM between the kernels.
    """
    phase = _schedule(exe, workload, arch, "ffn",
                      pipelined=False, retention=False)
    m = workload.batch * workload.seq_len
    d = workload.model.d_model
    s = workload.model.ffn_hidden
    hidden = float(m) * s
    phase.dram_words = (
        gemm_traffic_streamed(m, s, d, arch.buffer_words)
        + gemm_traffic_streamed(m, d, s, arch.buffer_words)
        + spill_words(hidden)
    )
    phase.overlap_dram = False
    return phase


# ----------------------------------------------------------------------
# Fused MHA variants
# ----------------------------------------------------------------------
def flat_mha_phase(
    exe: ExecutorBase,
    workload: Workload,
    arch: ArchitectureSpec,
    q_rows: int = 16,
) -> PhaseStats:
    """FLAT's row-wise fused attention.

    One small block of Q rows streams through ``QK^T`` -> softmax ->
    ``A x V`` entirely on chip (no score spill), but the stages
    serialize and the row granularity strands most 2D PE rows on large
    arrays -- the source of FLAT's low cloud utilization (Figure 10).
    Softmax is two-pass (extra max sweep before the exp/sum sweep).
    """
    phase = _schedule(
        exe, workload, arch, "mha",
        pipelined=False, retention=False,
        vector_pass_factor=1.5, p_rows_cap=q_rows,
    )
    if workload.causal:
        # The causal mask halves the live score work on average.
        phase = phase.scaled(workload.attention_work_fraction)
    a = workload.activation_words
    q_tile = exe.heuristic_q_tile_tokens(workload, arch)
    kv_words, _ = kv_reload_traffic(workload, arch, q_tile)
    phase.dram_words = 2.0 * a + kv_words
    phase.overlap_dram = True
    return phase


def fusemax_mha_phase(
    exe: ExecutorBase, workload: Workload, arch: ArchitectureSpec
) -> PhaseStats:
    """FuseMax's 1-pass pipelined attention (Einsum Cascade 1).

    The 2D (GEMM) and 1D (softmax) stages of consecutive epochs
    overlap, intermediates are retained in the expanded PE register
    files, and the softmax is single-pass.
    """
    phase = _schedule(
        exe, workload, arch, "mha",
        pipelined=True, retention=True,
    )
    if workload.causal:
        # The causal mask halves the live score work on average.
        phase = phase.scaled(workload.attention_work_fraction)
    a = workload.activation_words
    q_tile = exe.heuristic_q_tile_tokens(workload, arch)
    kv_words, _ = kv_reload_traffic(workload, arch, q_tile)
    phase.dram_words = 2.0 * a + kv_words
    phase.overlap_dram = True
    return phase


# ----------------------------------------------------------------------
# Layer-fused sub-layer phases (FuseMax+LayerFuse; TransFusion adds
# DPipe and TileSeek on top)
# ----------------------------------------------------------------------
def fused_qkv_phase(
    exe: ExecutorBase,
    workload: Workload,
    arch: ArchitectureSpec,
    weight_passes: int,
) -> PhaseStats:
    """QKV with on-chip forwarding: only the layer input and streamed
    weights touch DRAM (K/V spill is booked to the MHA phase's reload
    model).

    Args:
        weight_passes: How often the full weight set re-streams -- one
            pass per resident token group, i.e. ``ceil(B*P / (b*p))``
            under the executor's outer tiling.
    """
    phase = _schedule(exe, workload, arch, "qkv",
                      pipelined=False, retention=True)
    model = workload.model
    weights = (
        model.d_model * model.e_head
        * (model.heads + 2 * model.effective_kv_heads)
        * weight_passes
    )
    phase.dram_words = workload.activation_words + weights
    phase.overlap_dram = True
    return phase


def fused_layernorm_phase(
    exe: ExecutorBase, workload: Workload, arch: ArchitectureSpec
) -> PhaseStats:
    """Add & LayerNorm on live on-chip activations: zero DRAM traffic."""
    phase = _schedule(exe, workload, arch, "layernorm",
                      pipelined=False, retention=True)
    phase.dram_words = 0.0
    phase.overlap_dram = True
    return phase


def fused_ffn_phase(
    exe: ExecutorBase,
    workload: Workload,
    arch: ArchitectureSpec,
    weight_passes: int,
) -> PhaseStats:
    """FFN with on-chip hidden tensor; weights stream once per resident
    token group, and the layer output writes back once."""
    phase = _schedule(exe, workload, arch, "ffn",
                      pipelined=False, retention=True)
    d = workload.model.d_model
    s = workload.model.ffn_hidden
    weights = 2.0 * d * s * weight_passes
    phase.dram_words = weights + workload.activation_words
    phase.overlap_dram = True
    return phase


def fused_mha_traffic(
    workload: Workload,
    arch: ArchitectureSpec,
    q_tile_tokens: int,
) -> Dict[str, float]:
    """DRAM traffic of a layer-fused MHA: only the K/V spill/reload
    (Q arrives on chip from the fused QKV phase)."""
    kv_words, passes = kv_reload_traffic(workload, arch, q_tile_tokens)
    return {"kv_words": kv_words, "passes": float(passes)}
