"""Executor registry.

Maps the names used throughout the evaluation (figures, benchmarks,
examples) to executor factories.  ``transfusion`` resolves lazily to
avoid a circular import with :mod:`repro.core`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines.base import ExecutorBase
from repro.baselines.flat import FlatExecutor
from repro.baselines.fusemax import FuseMaxExecutor
from repro.baselines.fusemax_layerfuse import FuseMaxLayerFuseExecutor
from repro.baselines.unfused import UnfusedExecutor


def _transfusion_factory() -> ExecutorBase:
    from repro.core.executor import TransFusionExecutor

    return TransFusionExecutor()


#: Executor name -> zero-argument factory.
EXECUTORS: Dict[str, Callable[[], ExecutorBase]] = {
    "unfused": UnfusedExecutor,
    "flat": FlatExecutor,
    "fusemax": FuseMaxExecutor,
    "fusemax+lf": FuseMaxLayerFuseExecutor,
    "transfusion": _transfusion_factory,
}


def named_executor(name: str) -> ExecutorBase:
    """Instantiate an executor by registry name."""
    key = name.lower()
    if key not in EXECUTORS:
        raise KeyError(
            f"unknown executor {name!r}; choose from {sorted(EXECUTORS)}"
        )
    return EXECUTORS[key]()
