"""The Unfused baseline (Section 6.1).

Every sub-layer runs as standalone kernels with all intermediate
results -- including the quadratic attention-score matrices -- written
to off-chip memory between phases.  QKV and the attention GEMMs run on
the 2D array, softmax and Add & LayerNorm on the 1D array, FFN linears
on the 2D array with activations on the 1D array.
"""

from __future__ import annotations

from typing import List

from repro.arch.spec import ArchitectureSpec
from repro.baselines import phaselib
from repro.baselines.base import ExecutorBase
from repro.model.workload import Workload
from repro.sim.stats import PhaseStats


class UnfusedExecutor(ExecutorBase):
    """Sequential kernel-by-kernel execution with DRAM staging."""

    name = "unfused"

    def build_phases(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> List[PhaseStats]:
        return [
            phaselib.unfused_qkv_phase(self, workload, arch),
            phaselib.unfused_mha_phase(self, workload, arch),
            phaselib.unfused_layernorm_phase(
                self, workload, arch
            ).scaled(2.0),
            phaselib.unfused_ffn_phase(self, workload, arch),
        ]
