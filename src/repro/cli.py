"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``
    Run every executor on one workload and print speedups,
    utilization and energy.
``compile``
    Compile a workload with TransFusion and print the plan (TileSeek
    tiling, per-layer DPipe schedules, residency).
``inspect``
    Render the DPipe pipeline window of one sub-layer as an ASCII
    Gantt chart.
``stack``
    Price an encoder/decoder stack under the main executors.
``decode``
    Per-step autoregressive-decode cost across context lengths.
``figures``
    Regenerate one of the paper's figures as a table.
``sweep``
    Price a grid of (executor, model, sequence, architecture) points
    through the parallel sweep engine and its persistent cache.
``validate``
    Audit one grid point (served from the plan cache when possible)
    with the schedule / tiling / conservation / oracle auditors and
    optionally write the structured audit report as JSON.
``fleet``
    Run K supervised ``serve`` replicas over one shared plan cache:
    health probes, crash/wedge detection, seeded-backoff restarts on
    sticky ports.
``plan``
    Price one grid point through the serving protocol -- locally,
    against a running server with ``--remote host:port``, or against
    a replica fleet with ``--fleet host:port,...`` (consistent-hash
    routing with typed failover retries).  With
    ``--json`` the canonical response body is printed verbatim, so
    local, remote and served answers are byte-comparable.
``serve``
    Run the planning service: stdlib-asyncio HTTP (``POST /v1``,
    ``GET /stats``) or newline-delimited-JSON stdio (``--stdio``),
    multiplexing requests onto a persistent worker pool behind a
    coalescing code-salt-keyed LRU.
``learn``
    Fit (``learn fit``) or evaluate (``learn eval``) the learned
    warm-start predictor: mine the plan cache and sweep journals into
    a deterministic corpus, persist the kNN model into the plan
    cache, and measure search units saved on a held-out grid.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.arch.pe import PEArrayKind
from repro.arch.spec import named_architecture
from repro.core.framework import DEFAULT_EXECUTORS, compare_executors
from repro.metrics.tables import format_table
from repro.model.config import MODEL_ZOO, named_model
from repro.model.workload import Workload


def _positive_int(value: str) -> int:
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value!r}"
        )
    return number


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", default="llama3", choices=sorted(MODEL_ZOO),
        help="model shape preset",
    )
    parser.add_argument(
        "--arch", default="cloud",
        choices=("cloud", "edge", "edge32", "edge64"),
        help="architecture preset (Table 3)",
    )
    parser.add_argument("--seq", type=int, default=65536,
                        help="sequence length P")
    parser.add_argument("--batch", type=int, default=64,
                        help="batch size B")
    parser.add_argument("--causal", action="store_true",
                        help="causally masked self-attention")


def _workload_from(args: argparse.Namespace) -> Workload:
    return Workload(
        named_model(args.model),
        seq_len=args.seq,
        batch=args.batch,
        causal=args.causal,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    """Run every executor on one workload and print a comparison."""
    arch = named_architecture(args.arch)
    workload = _workload_from(args)
    reports = compare_executors(workload, arch,
                                executors=DEFAULT_EXECUTORS)
    base = reports["unfused"].latency_seconds(arch)
    rows = []
    for name, report in reports.items():
        util = report.utilization(arch)
        rows.append([
            name,
            report.latency_seconds(arch),
            base / report.latency_seconds(arch),
            util[PEArrayKind.ARRAY_2D],
            util[PEArrayKind.ARRAY_1D],
            report.energy(arch).total_pj / 1e12,
        ])
    print(format_table(
        ["executor", "latency (s)", "speedup", "2D util", "1D util",
         "energy (J)"],
        rows,
        title=f"{workload.describe()} on {arch.name}, per layer",
    ))
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile one workload with TransFusion and print the plan."""
    from repro.core.framework import TransFusion

    arch = named_architecture(args.arch)
    workload = _workload_from(args)
    plan = TransFusion(arch).compile(workload)
    print(f"workload: {plan.workload} on {plan.architecture}")
    print(f"tiling:   {plan.tiling.config}")
    assessment = plan.tiling.assessment
    print(
        f"          kv passes {assessment.kv_passes}, weight passes "
        f"{assessment.weight_passes}, buffer "
        f"{assessment.buffer_words_required:.3e} / "
        f"{arch.buffer_words:.3e} words"
    )
    for layer in plan.layers:
        state = "pipelined" if layer.pipelined else "sequential"
        print(
            f"  {layer.layer:10s} {state:10s}"
            f" epochs={layer.plan.n_epochs:>11,d}"
            f" total={layer.plan.total_seconds:.4e}s"
        )
    summary = plan.summary(arch)
    print(
        f"per-layer latency {summary['latency_s']:.4e}s, energy "
        f"{summary['energy_pj'] / 1e12:.3f} J, DRAM "
        f"{summary['dram_words']:.3e} words"
    )
    if args.out:
        from repro.core.serialize import save_plan

        path = save_plan(plan, arch, args.out)
        print(f"plan written to {path}")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """Render one sub-layer's DPipe schedule as an ASCII Gantt."""
    from repro.dpipe.latency import build_latency_table
    from repro.dpipe.pipeline import ROOT
    from repro.dpipe.planner import plan_cascade, plan_window_schedule
    from repro.dpipe.visualize import render_gantt, schedule_timeline
    from repro.core.executor import TransFusionExecutor
    from repro.graph.dag import ComputationDAG

    arch = named_architecture(args.arch)
    workload = _workload_from(args)
    executor = TransFusionExecutor()
    cascade = executor.cascades(
        workload.model, masked=workload.causal
    )[args.layer]
    tile = executor.inner_tile(workload, args.layer, arch)
    n_epochs = executor.epoch_count(workload, args.layer, tile)
    options = executor.dpipe_options
    plan = plan_cascade(
        cascade, args.layer, tile, arch, n_epochs, options
    )
    table = build_latency_table(cascade, args.layer, tile, arch)
    print(
        f"{args.layer} on {arch.name}: {n_epochs:,} epochs, "
        f"steady-state period {plan.epoch_seconds:.3e}s, "
        f"pipelined={plan.pipelined}"
    )
    # Re-derive the window through the planner's own search entry so
    # the rendered Gantt always matches the plan (same fused search,
    # same options -- previously this re-searched with a hardcoded
    # max_orders and could drift from the planner).
    window = plan_window_schedule(
        cascade, args.layer, tile, arch, plan, options
    )
    if window is not None:
        timeline = schedule_timeline(
            window.schedule, table, zero_latency={ROOT}
        )
        print(render_gantt(timeline))
    else:
        from repro.dpipe.scheduler import dp_schedule

        dag = ComputationDAG.from_cascade(cascade)
        result = dp_schedule(
            dag.topological_order(), dag.pred_map(), table
        )
        print(render_gantt(schedule_timeline(result, table)))
    return 0


def cmd_stack(args: argparse.Namespace) -> int:
    """Price an encoder/decoder stack under the main executors."""
    from repro.core.stack import StackConfig, estimate_stack

    arch = named_architecture(args.arch)
    stack = StackConfig(
        named_model(args.model),
        encoder_layers=args.encoder_layers,
        decoder_layers=args.decoder_layers,
        src_len=args.src or None,
        tgt_len=args.tgt or None,
        batch=args.batch,
    )
    rows = []
    for executor in ("unfused", "fusemax", "transfusion"):
        estimate = estimate_stack(stack, arch, executor)
        blocks = estimate.block_latencies(arch)
        rows.append(
            [executor]
            + [blocks.get(label, 0.0)
               for label in ("encoder", "decoder.self",
                             "decoder.cross")]
            + [estimate.latency_seconds(arch),
               estimate.energy_pj(arch) / 1e12]
        )
    print(format_table(
        ["executor", "encoder (s)", "dec.self (s)",
         "dec.cross (s)", "total (s)", "energy (J)"],
        rows,
        title=(
            f"{args.model} stack ({args.encoder_layers} enc + "
            f"{args.decoder_layers} dec) on {arch.name}"
        ),
    ))
    return 0


def cmd_decode(args: argparse.Namespace) -> int:
    """Print per-step decode latency across context lengths."""
    from repro.experiments.decode import decode_sweep

    contexts = tuple(args.contexts)
    data = decode_sweep(
        model=args.model,
        contexts=contexts,
        arch_name=args.arch,
        batch=args.batch,
    )
    executors = ("unfused", "fusemax", "transfusion")
    rows = [
        [context] + [data[context][name] * 1e3
                     for name in executors]
        for context in contexts
    ]
    print(format_table(
        ["context"] + [f"{n} (ms/step)" for n in executors],
        rows,
        title=(
            f"Per-step decode latency, {args.model} B={args.batch} "
            f"on {args.arch} (per layer)"
        ),
    ))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Price a grid of points through the sweep engine."""
    from repro.runner import (
        GridPoint,
        default_cache,
        default_journal_path,
        run_grid,
    )

    points = [
        GridPoint(
            executor=executor, model=model, seq_len=seq,
            arch=arch, batch=args.batch, causal=args.causal,
        )
        for model in args.models
        for arch in args.archs
        for executor in args.executors
        for seq in args.seqs
    ]
    if args.json:
        # Canonical serving-protocol rendering: the same builders a
        # running server uses, so this output is byte-comparable to
        # a served sweep response (the differential tests rely on
        # it).  Runs serially in-process; the fault-tolerance knobs
        # (--timeout/--retries/--journal/--resume) do not apply.
        from repro.runner.faults import SweepError
        from repro.serve.protocol import (
            ServeRequest,
            canonical_body,
            effective_budget,
            error_response,
            execute_request,
        )

        request = ServeRequest(
            op="sweep",
            points=tuple(points),
            budget=effective_budget(args.budget, args.deadline),
            no_fallback=args.no_fallback,
            warm_start=args.warm_start,
        )
        extra_env = {"REPRO_LEARN": "1"} if args.learn else None
        try:
            document = execute_request(request, extra_env=extra_env)
        except (SweepError, RuntimeError) as error:
            document = error_response(error, "sweep")
        print(canonical_body(document))
        return 0 if document.get("ok") else 1
    journal = args.journal or None
    if journal is None and args.resume:
        # --resume without --journal: the canonical per-grid journal
        # under the cache root, so a rerun of the same command line
        # finds the previous run's checkpoints automatically.
        journal = default_journal_path(points, args.warm_start)
    if journal is not None and args.no_cache:
        print(
            "warning: --no-cache disables the persistent layer; the "
            "journal cannot checkpoint or resume without it",
            file=sys.stderr,
        )
        journal = None
    reports = run_grid(
        points,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        warm_start=args.warm_start,
        timeout=args.timeout,
        retries=args.retries,
        strict=not args.keep_going,
        journal=journal,
        resume=args.resume,
        budget=args.budget,
        no_fallback=args.no_fallback,
        learn=True if args.learn else None,
    )
    rows = []
    for point, report in reports.items():
        arch = named_architecture(point.arch)
        util = report.utilization(arch)
        rows.append([
            point.executor, point.model, point.seq_len, point.arch,
            report.latency_seconds(arch),
            util[PEArrayKind.ARRAY_2D],
            report.energy(arch).total_pj / 1e12,
            report.dram_words(),
            # Search provenance: blank for a complete search, else
            # "budget_exhausted" / "fallback:<rung>".
            "" if report.provenance == "complete"
            else report.provenance,
        ])
    counts = reports.counts()
    summary = ", ".join(
        f"{status}={count}" for status, count in sorted(counts.items())
    )
    print(format_table(
        ["executor", "model", "seq", "arch", "latency (s)",
         "2D util", "energy (J)", "DRAM words", "prov"],
        rows,
        title=(
            f"sweep over {len(reports.points)} points "
            f"(B={args.batch}; {summary})"
        ),
    ))
    for point in reports.infeasible_points():
        verdict = reports.infeasible[point]
        print(
            f"INFEASIBLE {point.executor}/{point.model}/"
            f"seq={point.seq_len}/{point.arch}: {verdict}"
        )
    for point in reports.failed_points():
        failure = reports.failures[point]
        print(
            f"{reports.statuses[point].upper()} {point.executor}/"
            f"{point.model}/seq={point.seq_len}/{point.arch}: "
            f"{failure}",
            file=sys.stderr,
        )
    cache = None if args.no_cache else default_cache()
    if cache is not None:
        print(
            f"cache: {cache.root} "
            f"({cache.entry_count()} entries on disk)"
        )
    if journal is not None:
        print(f"journal: {journal}")
    return 0 if reports.ok else 1


def cmd_learn_fit(args: argparse.Namespace) -> int:
    """Mine the corpus and persist the kNN warm-start model."""
    from repro.learn.corpus import corpus_hash, extract_corpus
    from repro.learn.predictor import KNNPredictor, save_model
    from repro.runner.cache import default_cache

    cache = default_cache()
    corpus = extract_corpus(cache=cache, journals=args.journal)
    if args.corpus:
        with open(args.corpus, "w", encoding="utf-8") as handle:
            handle.write(corpus.to_json())
            handle.write("\n")
    skipped = sum(corpus.skipped.values())
    if not corpus.records:
        print(
            f"learn fit: empty corpus ({skipped} entries skipped); "
            "run a sweep first so the plan cache holds tilings",
            file=sys.stderr,
        )
        return 1
    predictor = KNNPredictor.fit(corpus, k=args.k)
    path = save_model(predictor, cache=cache)
    if args.json:
        print(json.dumps({
            "corpus": corpus_hash(corpus),
            "k": predictor.k,
            "model": str(path),
            "records": len(corpus.records),
            "skipped": dict(corpus.skipped),
        }, indent=2, sort_keys=True))
        return 0
    print(
        f"fitted k={predictor.k} kNN on {len(corpus.records)} "
        f"records ({skipped} skipped)"
    )
    if args.corpus:
        print(f"corpus: {args.corpus}")
    print(f"model: {path}")
    return 0


def cmd_learn_eval(args: argparse.Namespace) -> int:
    """Score the fitted model on a held-out grid; gate the ratio."""
    from repro.learn.evaluate import evaluate_points
    from repro.learn.predictor import load_model
    from repro.model.workload import Workload

    predictor = load_model()
    if predictor is None:
        print(
            "learn eval: no fitted model for this code version; "
            "run `repro learn fit` first",
            file=sys.stderr,
        )
        return 1
    pairs = [
        (
            Workload(
                named_model(model), seq_len=seq, batch=args.batch,
                causal=args.causal,
            ),
            named_architecture(arch),
        )
        for model in args.models
        for arch in args.archs
        for seq in args.seqs
    ]
    report = evaluate_points(
        predictor, pairs,
        iterations=args.iterations, seed=args.seed,
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        rows = [
            [
                row["workload"], row["arch"],
                row["baseline_units"], row["learned_units"],
            ]
            for row in report["points"]
        ]
        print(format_table(
            ["workload", "arch", "baseline units", "learned units"],
            rows,
            title=(
                f"learned warm-start eval "
                f"(ratio {report['ratio']:.3f})"
            ),
        ))
    if args.gate is not None and report["ratio"] > args.gate:
        print(
            f"learn eval: ratio {report['ratio']:.3f} exceeds gate "
            f"{args.gate:.3f}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Audit one grid point (cached plan or fresh computation)."""
    from repro.core.serialize import save_audit_report
    from repro.runner import GridPoint
    from repro.validate.runner import validate_point

    point = GridPoint(
        executor=args.executor, model=args.model, seq_len=args.seq,
        arch=args.arch, batch=args.batch, causal=args.causal,
    )
    audit, report = validate_point(point)
    arch = named_architecture(args.arch)
    rows = [
        [auditor, passed, total]
        for auditor, (passed, total) in sorted(
            audit.counts().items()
        )
    ]
    print(format_table(
        ["auditor", "passed", "checks"],
        rows,
        title=f"audit of {audit.subject}",
    ))
    print(
        f"report: latency {report.latency_seconds(arch):.4e}s, "
        f"DRAM {report.dram_words():.3e} words, energy "
        f"{report.energy(arch).total_pj / 1e12:.3f} J"
    )
    for check in audit.failures():
        print(f"FAIL {check.auditor}.{check.name}: {check.detail}")
    if args.out:
        path = save_audit_report(audit, args.out)
        print(f"audit report written to {path}")
    if audit.ok:
        print(f"OK: all {len(audit.checks)} checks passed")
        return 0
    return 1


def _plan_request(args: argparse.Namespace):
    """Build the admission-normalized ServeRequest for ``plan``."""
    from repro.runner import GridPoint
    from repro.serve.protocol import ServeRequest, effective_budget

    point = GridPoint(
        executor=args.executor, model=args.model, seq_len=args.seq,
        arch=args.arch, batch=args.batch, causal=args.causal,
    )
    return ServeRequest(
        op="plan",
        points=(point,),
        budget=effective_budget(args.budget, args.deadline),
        no_fallback=args.no_fallback,
        request_id=args.id or None,
    )


def cmd_plan(args: argparse.Namespace) -> int:
    """Price one point through the serving protocol."""
    from repro.core.serialize import serve_request_to_dict
    from repro.runner.faults import SweepError
    from repro.serve.protocol import (
        canonical_body,
        error_response,
        execute_request,
    )

    request = _plan_request(args)
    if args.fleet:
        from repro.serve.client import fleet_call
        from repro.serve.router import parse_fleet

        try:
            _, body, _ = fleet_call(
                parse_fleet(args.fleet),
                serve_request_to_dict(request),
            )
            document = json.loads(body)
        except SweepError as error:
            document = error_response(
                error, "plan", request.request_id
            )
            body = canonical_body(document)
        if args.json:
            print(body)
        else:
            _print_plan_summary(document)
        return 0 if document.get("ok") else 1
    if args.remote:
        from repro.runner.faults import ReplicaUnreachable
        from repro.serve.client import parse_endpoint, remote_call

        host, port = parse_endpoint(args.remote)
        try:
            _, body = remote_call(
                host, port, serve_request_to_dict(request)
            )
            document = json.loads(body)
        except OSError as error:
            # A dead or wedged server is a typed, printable error,
            # never a traceback -- same envelope the server itself
            # would send.
            document = error_response(
                ReplicaUnreachable(
                    args.remote, 0,
                    f"{type(error).__name__}: {error}",
                ),
                "plan", request.request_id,
            )
            body = canonical_body(document)
        if args.json:
            print(body)
        else:
            _print_plan_summary(document)
        return 0 if document.get("ok") else 1
    try:
        document = execute_request(request)
    except (SweepError, RuntimeError) as error:
        document = error_response(
            error, "plan", request.request_id
        )
    if args.json:
        print(canonical_body(document))
    else:
        _print_plan_summary(document)
    return 0 if document.get("ok") else 1


def _print_plan_summary(document) -> None:
    """Human rendering of one plan response document."""
    status = document.get("status", "error")
    if status == "ok":
        report = document["report"]
        print(
            f"plan ok: provenance={document['provenance']}"
            + (
                f" budget={document['budget']}"
                if "budget" in document else ""
            )
        )
        for key in sorted(report):
            if isinstance(report[key], (int, float, str)):
                print(f"  {key}: {report[key]}")
    elif status == "infeasible":
        print("plan infeasible:")
        diagnosis = document.get("infeasible", {})
        for key in sorted(diagnosis):
            if isinstance(diagnosis[key], (int, float, str)):
                print(f"  {key}: {diagnosis[key]}")
    else:
        error = document.get("error", {})
        # Typed failures carry their evidence field-by-field, not a
        # "message"; render whichever shape arrived.
        detail = error.get("message") or ", ".join(
            f"{key}={error[key]}"
            for key in sorted(error)
            if key != "type"
        )
        print(
            f"plan error: {error.get('type', 'unknown')}"
            + (f": {detail}" if detail else ""),
            file=sys.stderr,
        )


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the planning service (HTTP, or stdio with ``--stdio``)."""
    import asyncio

    from repro.runner.cache import ENV_CACHE, ENV_CACHE_DIR
    from repro.runner.parallel import resolve_jobs
    from repro.runner.pool import make_pool
    from repro.serve.app import ServeApp, resolve_lru_entries
    from repro.serve.journal import ServeJournal
    from repro.serve.lru import SaltedLRU
    from repro.serve.transport import serve_http, serve_stdio
    from repro.settings import env_int, raw_value

    env = {}
    if args.no_cache:
        env[ENV_CACHE] = "0"
    elif args.cache_dir:
        env[ENV_CACHE_DIR] = args.cache_dir
    jobs = args.jobs if args.jobs is not None else resolve_jobs()
    pool = make_pool(jobs, env)
    journal = (
        ServeJournal(args.journal) if args.journal else None
    )
    app = ServeApp(
        pool,
        lru=SaltedLRU(resolve_lru_entries(args.lru)),
        journal=journal,
        pressure=args.pressure,
        shed_budget=args.shed_budget,
        timeout=args.timeout,
        queue=args.queue,
    )
    host = args.host or raw_value("REPRO_SERVE_HOST") or "127.0.0.1"
    port = args.port
    if port is None:
        port = env_int("REPRO_SERVE_PORT", "a TCP port", minimum=0)
    if port is None:
        port = 8734
    # Deterministic replica-slow injection: delay *before* binding,
    # so the supervisor's ready-line timeout sees a genuinely slow
    # start (REPRO_FAULTS=replica-slow:...).
    from repro.runner.faults import replica_slow_start_seconds

    slow = replica_slow_start_seconds()
    if slow > 0:
        time.sleep(slow)
    try:
        if args.stdio:
            asyncio.run(serve_stdio(app))
        else:
            asyncio.run(
                serve_http(app, host, port, ready=sys.stderr)
            )
    except KeyboardInterrupt:
        pass
    finally:
        app.close()
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Run K supervised serve replicas over one shared cache."""
    from repro.runner.faults import SweepError
    from repro.serve.fleet import FleetSupervisor

    try:
        supervisor = FleetSupervisor(
            replicas=args.replicas,
            host=args.host or "127.0.0.1",
            cache_dir=args.cache_dir,
            journal_dir=args.journal_dir,
            jobs=args.jobs,
            probe_interval=args.probe_interval,
            probe_timeout=args.probe_timeout,
            max_restarts=args.max_restarts,
            backoff=args.backoff,
        )
        return supervisor.run(ready=sys.stderr)
    except SweepError as error:
        print(
            f"fleet error: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return 1


def _open_cache(args: argparse.Namespace):
    """The cache the ``repro cache`` verbs operate on.

    ``--cache-dir`` overrides the environment; otherwise the same
    resolution the sweep runner uses (``REPRO_CACHE`` /
    ``REPRO_CACHE_DIR``).  Returns ``None`` when the cache is
    disabled, which the verbs report as an error.
    """
    from repro.runner.cache import PlanCache, default_cache

    if args.cache_dir:
        return PlanCache(args.cache_dir)
    return default_cache()


def cmd_cache_stats(args: argparse.Namespace) -> int:
    """Report persistent-cache usage, budget and brownout state."""
    cache = _open_cache(args)
    if cache is None:
        print("plan cache disabled (REPRO_CACHE=0)",
              file=sys.stderr)
        return 1
    stats = cache.stats()
    if args.json:
        print(json.dumps(stats, sort_keys=True))
        return 0
    cap = stats["max_bytes"]
    print(f"root:        {stats['root']}")
    print(f"entries:     {stats['entries']}")
    print(f"bytes:       {stats['bytes']}")
    print(f"max_bytes:   {cap if cap is not None else 'unbounded'}")
    print(f"quarantined: {stats['quarantined']}")
    print(f"brownout:    {'yes' if stats['brownout'] else 'no'}")
    return 0


def cmd_cache_gc(args: argparse.Namespace) -> int:
    """Evict oldest entries until the cache fits its byte budget."""
    from repro.runner.cache import resolve_cache_max_bytes

    cache = _open_cache(args)
    if cache is None:
        print("plan cache disabled (REPRO_CACHE=0)",
              file=sys.stderr)
        return 1
    max_bytes = (
        args.max_bytes if args.max_bytes is not None
        else resolve_cache_max_bytes()
    )
    if max_bytes is None:
        print(
            "no byte budget: pass --max-bytes or set "
            "REPRO_CACHE_MAX_BYTES", file=sys.stderr,
        )
        return 1
    report = cache.gc(max_bytes)
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0
    print(
        f"removed {report['removed']} entries "
        f"({report['freed_bytes']} bytes); "
        f"{report['bytes']} bytes remain under a "
        f"{report['max_bytes']}-byte budget"
    )
    return 0


def cmd_cache_scrub(args: argparse.Namespace) -> int:
    """Read-validate every entry; quarantine the corrupt ones."""
    cache = _open_cache(args)
    if cache is None:
        print("plan cache disabled (REPRO_CACHE=0)",
              file=sys.stderr)
        return 1
    report = cache.scrub()
    if args.json:
        print(json.dumps(report, sort_keys=True))
        return 0
    print(
        f"checked {report['checked']} entries, "
        f"quarantined {report['quarantined']}"
    )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    """Re-run the benchmark harness for one paper figure."""
    import subprocess

    bench = {
        "fig8": "bench_fig08_speedup.py",
        "fig9": "bench_fig09_pe_size.py",
        "fig10": "bench_fig10_utilization.py",
        "fig11": "bench_fig11_contribution.py",
        "fig12": "bench_fig12_energy.py",
        "fig13": "bench_fig13_breakdown.py",
        "table2": "bench_table2_buffer.py",
    }[args.figure]
    return subprocess.call([
        sys.executable, "-m", "pytest", f"benchmarks/{bench}",
        "--benchmark-only", "-q",
    ])


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "TransFusion reproduction: end-to-end Transformer "
            "acceleration via graph fusion and pipelining"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser(
        "compare", help="run all executors on one workload"
    )
    _add_workload_args(compare)
    compare.set_defaults(fn=cmd_compare)

    compile_cmd = sub.add_parser(
        "compile", help="compile a workload with TransFusion"
    )
    _add_workload_args(compile_cmd)
    compile_cmd.add_argument(
        "--out", default="",
        help="write the compiled plan as JSON to this path",
    )
    compile_cmd.set_defaults(fn=cmd_compile)

    inspect = sub.add_parser(
        "inspect", help="render a sub-layer's DPipe schedule"
    )
    _add_workload_args(inspect)
    inspect.add_argument(
        "--layer", default="mha",
        choices=("qkv", "mha", "layernorm", "ffn"),
    )
    inspect.set_defaults(fn=cmd_inspect)

    stack = sub.add_parser(
        "stack", help="price an encoder/decoder stack"
    )
    stack.add_argument(
        "--model", default="t5", choices=sorted(MODEL_ZOO)
    )
    stack.add_argument("--arch", default="cloud",
                       choices=("cloud", "edge", "edge32",
                                "edge64"))
    stack.add_argument("--encoder-layers", type=int, default=6)
    stack.add_argument("--decoder-layers", type=int, default=6)
    stack.add_argument("--src", type=int, default=16384,
                       help="encoder (source) sequence length")
    stack.add_argument("--tgt", type=int, default=4096,
                       help="decoder (target) sequence length")
    stack.add_argument("--batch", type=int, default=16)
    stack.set_defaults(fn=cmd_stack)

    decode = sub.add_parser(
        "decode", help="per-step decode cost vs context length"
    )
    decode.add_argument(
        "--model", default="llama3", choices=sorted(MODEL_ZOO)
    )
    decode.add_argument("--arch", default="cloud",
                        choices=("cloud", "edge", "edge32",
                                 "edge64"))
    decode.add_argument("--batch", type=int, default=64)
    decode.add_argument(
        "--contexts", type=int, nargs="+",
        default=[1024, 8192, 65536],
    )
    decode.set_defaults(fn=cmd_decode)

    sweep = sub.add_parser(
        "sweep",
        help="price a grid of points via the parallel sweep engine",
    )
    sweep.add_argument(
        "--models", nargs="+", default=["llama3"],
        choices=sorted(MODEL_ZOO), help="model shape presets",
    )
    sweep.add_argument(
        "--seqs", type=int, nargs="+", default=[1024, 4096, 16384],
        help="sequence lengths P",
    )
    sweep.add_argument(
        "--archs", nargs="+", default=["cloud"],
        choices=("cloud", "edge", "edge32", "edge64"),
        help="architecture presets (Table 3)",
    )
    sweep.add_argument(
        "--executors", nargs="+",
        default=["unfused", "fusemax", "transfusion"],
        help="executor registry names",
    )
    sweep.add_argument("--batch", type=int, default=64,
                       help="batch size B")
    sweep.add_argument("--causal", action="store_true",
                       help="causally masked self-attention")
    sweep.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="worker processes (default: REPRO_JOBS, else 1)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="skip the persistent result cache for this sweep",
    )
    sweep.add_argument(
        "--warm-start", action="store_true",
        help=(
            "warm-start each TileSeek search from the neighboring "
            "sequence length's best assignment"
        ),
    )
    sweep.add_argument(
        "--learn", action="store_true",
        help=(
            "consult the learned warm-start predictor (the persisted "
            "`repro learn fit` model) on cold searches; equivalent "
            "to REPRO_LEARN=1 for this sweep"
        ),
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "per-chain timeout in seconds (default: REPRO_TIMEOUT, "
            "else unlimited; enforced with --jobs > 1)"
        ),
    )
    sweep.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help=(
            "extra attempts per failed chain with deterministic "
            "backoff (default: REPRO_RETRIES, else 0)"
        ),
    )
    sweep.add_argument(
        "--budget", type=_positive_int, default=None, metavar="N",
        help=(
            "deterministic search-unit budget per point (MCTS "
            "iterations + DPipe nodes; default: REPRO_BUDGET, else "
            "unlimited) -- same budget, same results on any host "
            "at any --jobs"
        ),
    )
    sweep.add_argument(
        "--no-fallback", action="store_true",
        help=(
            "fail a point whose search exhausts its budget instead "
            "of degrading to the fallback ladder"
        ),
    )
    sweep.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "advisory deadline mapped once to a deterministic "
            "search-unit budget (tighter of this and --budget wins)"
        ),
    )
    sweep.add_argument(
        "--json", action="store_true",
        help=(
            "print the canonical serving-protocol sweep response "
            "(byte-comparable to a served response; runs serially "
            "in-process)"
        ),
    )
    sweep.add_argument(
        "--keep-going", action="store_true",
        help=(
            "degrade gracefully: report per-point failures instead "
            "of aborting on the first one (exit 1 if any failed)"
        ),
    )
    sweep.add_argument(
        "--journal", default="", metavar="PATH",
        help=(
            "checkpoint each completed point's cache key to this "
            "file as chains finish"
        ),
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help=(
            "reload the journal (default: the canonical per-grid "
            "path under the cache root) and skip points already "
            "completed by a previous, possibly killed, run"
        ),
    )
    sweep.set_defaults(fn=cmd_sweep)

    validate = sub.add_parser(
        "validate",
        help="audit one grid point with every invariant auditor",
    )
    _add_workload_args(validate)
    validate.add_argument(
        "--executor", default="transfusion",
        help="executor registry name",
    )
    validate.add_argument(
        "--out", default="",
        help="write the audit report as JSON to this path",
    )
    validate.set_defaults(fn=cmd_validate)

    plan = sub.add_parser(
        "plan",
        help=(
            "price one point through the serving protocol "
            "(locally or against a running server)"
        ),
    )
    _add_workload_args(plan)
    plan.add_argument(
        "--executor", default="transfusion",
        help="executor registry name",
    )
    plan.add_argument(
        "--budget", type=_positive_int, default=None, metavar="N",
        help="deterministic search-unit budget",
    )
    plan.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "advisory deadline mapped once to a deterministic "
            "search-unit budget (tighter of this and --budget wins)"
        ),
    )
    plan.add_argument(
        "--no-fallback", action="store_true",
        help="error instead of degrading on budget exhaustion",
    )
    plan.add_argument(
        "--json", action="store_true",
        help="print the canonical response body verbatim",
    )
    plan.add_argument(
        "--remote", default="", metavar="HOST:PORT",
        help="send the request to a running `repro serve` instead",
    )
    plan.add_argument(
        "--fleet", default="", metavar="HOST:PORT,HOST:PORT",
        help=(
            "send the request to a replica fleet with "
            "consistent-hash failover (see `repro fleet`)"
        ),
    )
    plan.add_argument(
        "--id", default="", metavar="ID",
        help="correlation id echoed in the response envelope",
    )
    plan.set_defaults(fn=cmd_plan)

    serve = sub.add_parser(
        "serve",
        help="run the planning service (HTTP, or --stdio NDJSON)",
    )
    serve.add_argument(
        "--host", default="",
        help="bind host (default: REPRO_SERVE_HOST, else 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help=(
            "bind port; 0 picks an ephemeral port "
            "(default: REPRO_SERVE_PORT, else 8734)"
        ),
    )
    serve.add_argument(
        "--stdio", action="store_true",
        help=(
            "serve newline-delimited JSON on stdin/stdout instead "
            "of HTTP (deterministic harness mode)"
        ),
    )
    serve.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help=(
            "worker processes (default: REPRO_JOBS, else 1); 0 "
            "executes in-process on a single worker thread"
        ),
    )
    serve.add_argument(
        "--lru", type=int, default=None, metavar="N",
        help=(
            "response LRU capacity in entries "
            "(default: REPRO_SERVE_LRU, else 256; 0 disables)"
        ),
    )
    serve.add_argument(
        "--pressure", type=int, default=None, metavar="N",
        help=(
            "in-flight searches at which load shedding starts "
            "(default: REPRO_SERVE_PRESSURE, else 8; 0 disables)"
        ),
    )
    serve.add_argument(
        "--shed-budget", type=_positive_int, default=None,
        metavar="N",
        help=(
            "degraded search-unit budget applied while shedding "
            "(default: REPRO_SERVE_SHED_BUDGET, else 4096)"
        ),
    )
    serve.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help=(
            "wall-clock bound per worker-pool request "
            "(default: REPRO_SERVE_TIMEOUT, else unlimited)"
        ),
    )
    serve.add_argument(
        "--queue", type=int, default=None, metavar="N",
        help=(
            "in-flight searches at which new searches are rejected "
            "with a typed ServerOverloaded body "
            "(default: REPRO_SERVE_QUEUE, else unbounded; 0 "
            "disables)"
        ),
    )
    serve.add_argument(
        "--journal", default="", metavar="PATH",
        help="append one JSONL line per response to this file",
    )
    serve.add_argument(
        "--cache-dir", default="", metavar="PATH",
        help="persistent plan-cache root for the worker pool",
    )
    serve.add_argument(
        "--no-cache", action="store_true",
        help="disable the persistent plan cache in workers",
    )
    serve.set_defaults(fn=cmd_serve)

    fleet = sub.add_parser(
        "fleet",
        help=(
            "run K supervised serve replicas over one shared "
            "cache with crash/wedge restarts"
        ),
    )
    fleet.add_argument(
        "--replicas", type=int, default=None, metavar="K",
        help=(
            "replica count "
            "(default: REPRO_FLEET_REPLICAS, else 3)"
        ),
    )
    fleet.add_argument(
        "--host", default="",
        help="bind host for every replica (default: 127.0.0.1)",
    )
    fleet.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes per replica (0 = in-process)",
    )
    fleet.add_argument(
        "--cache-dir", default="", metavar="PATH",
        help="shared persistent plan-cache root for all replicas",
    )
    fleet.add_argument(
        "--journal-dir", default="", metavar="PATH",
        help=(
            "directory for the supervisor journal plus "
            "per-replica serve journals and stderr logs"
        ),
    )
    fleet.add_argument(
        "--probe-interval", type=float, default=None,
        metavar="SECONDS",
        help=(
            "seconds between health probes "
            "(default: REPRO_FLEET_PROBE_INTERVAL, else 1)"
        ),
    )
    fleet.add_argument(
        "--probe-timeout", type=float, default=None,
        metavar="SECONDS",
        help=(
            "per-probe deadline; an unanswered probe counts "
            "toward wedge detection "
            "(default: REPRO_FLEET_PROBE_TIMEOUT, else 5)"
        ),
    )
    fleet.add_argument(
        "--max-restarts", type=int, default=None, metavar="N",
        help=(
            "restarts per replica before it is abandoned "
            "(default: REPRO_FLEET_MAX_RESTARTS, else 5)"
        ),
    )
    fleet.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help=(
            "base for the seeded exponential restart backoff "
            "(default: REPRO_FLEET_BACKOFF, else 0.05)"
        ),
    )
    fleet.set_defaults(fn=cmd_fleet)

    learn = sub.add_parser(
        "learn",
        help=(
            "fit or evaluate the learned warm-start predictor "
            "mined from the sweep corpus"
        ),
    )
    learn_sub = learn.add_subparsers(
        dest="learn_command", required=True
    )
    fit = learn_sub.add_parser(
        "fit",
        help=(
            "mine the plan cache (and optional sweep journals) "
            "into a corpus and persist the kNN model"
        ),
    )
    fit.add_argument(
        "--journal", nargs="*", default=[], metavar="PATH",
        help="sweep journals to mine alongside the plan cache",
    )
    fit.add_argument(
        "--corpus", default="", metavar="PATH",
        help="also write the canonical corpus JSON to this path",
    )
    fit.add_argument(
        "--k", type=_positive_int, default=None, metavar="N",
        help="neighbors per prediction (default 3)",
    )
    fit.add_argument(
        "--json", action="store_true",
        help="print a machine-readable fit summary",
    )
    fit.set_defaults(fn=cmd_learn_fit)
    ev = learn_sub.add_parser(
        "eval",
        help=(
            "measure search units to near-optimum on a held-out "
            "grid, with vs. without the fitted model"
        ),
    )
    ev.add_argument(
        "--models", nargs="+", default=["t5"],
        choices=sorted(MODEL_ZOO), help="model shape presets",
    )
    ev.add_argument(
        "--archs", nargs="+", default=["cloud"],
        choices=("cloud", "edge", "edge32", "edge64"),
        help="architecture presets (Table 3)",
    )
    ev.add_argument(
        "--seqs", type=int, nargs="+", default=[256, 1024],
        help="held-out sequence lengths P",
    )
    ev.add_argument("--batch", type=int, default=4,
                    help="batch size B")
    ev.add_argument("--causal", action="store_true",
                    help="causally masked self-attention")
    ev.add_argument(
        "--iterations", type=_positive_int, default=400,
        help="full search size (optimum reference and probe cap)",
    )
    ev.add_argument(
        "--seed", type=int, default=0, help="search seed",
    )
    ev.add_argument(
        "--gate", type=float, default=None, metavar="RATIO",
        help=(
            "exit 1 unless learned/baseline unit ratio <= RATIO "
            "(the CI perf gate uses 0.5)"
        ),
    )
    ev.add_argument(
        "--json", action="store_true",
        help="print the full evaluation report as JSON",
    )
    ev.set_defaults(fn=cmd_learn_eval)

    cache = sub.add_parser(
        "cache",
        help=(
            "inspect and maintain the persistent plan cache "
            "(stats, byte-budget gc, corruption scrub)"
        ),
    )
    cache_sub = cache.add_subparsers(
        dest="cache_command", required=True
    )
    cache_stats = cache_sub.add_parser(
        "stats",
        help="report entry/byte usage, budget and brownout state",
    )
    cache_gc = cache_sub.add_parser(
        "gc",
        help=(
            "evict oldest-mtime entries until the cache fits its "
            "byte budget"
        ),
    )
    cache_gc.add_argument(
        "--max-bytes", type=_positive_int, default=None,
        metavar="N",
        help=(
            "byte budget to enforce "
            "(default: REPRO_CACHE_MAX_BYTES)"
        ),
    )
    cache_scrub = cache_sub.add_parser(
        "scrub",
        help=(
            "read-validate every entry, quarantining corrupt ones"
        ),
    )
    for verb, fn in (
        (cache_stats, cmd_cache_stats),
        (cache_gc, cmd_cache_gc),
        (cache_scrub, cmd_cache_scrub),
    ):
        verb.add_argument(
            "--cache-dir", default="", metavar="PATH",
            help=(
                "cache root to operate on "
                "(default: REPRO_CACHE_DIR resolution)"
            ),
        )
        verb.add_argument(
            "--json", action="store_true",
            help="print a machine-readable report",
        )
        verb.set_defaults(fn=fn)

    figures = sub.add_parser(
        "figures", help="regenerate a paper figure's table"
    )
    figures.add_argument(
        "figure",
        choices=("fig8", "fig9", "fig10", "fig11", "fig12",
                 "fig13", "table2"),
    )
    figures.set_defaults(fn=cmd_figures)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
