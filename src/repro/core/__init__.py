"""TransFusion core: the end-to-end fused executor and public API.

Combines the three contributions:

* inter-layer fusion (Section 3.2) -- activations propagate on chip;
  only weights, the K/V spill and the layer boundary touch DRAM,
* intra-layer pipelining via DPipe (Section 4), and
* outer tiling via TileSeek (Section 5).
"""

from repro.core.executor import TransFusionExecutor
from repro.core.framework import TransFusion, compare_executors
from repro.core.interlayer import InterLayerPlan, build_interlayer_plan
from repro.core.plan import CompiledLayer, CompiledPlan
from repro.core.stack import StackConfig, StackEstimate, estimate_stack

__all__ = [
    "CompiledLayer",
    "CompiledPlan",
    "InterLayerPlan",
    "StackConfig",
    "StackEstimate",
    "TransFusion",
    "TransFusionExecutor",
    "build_interlayer_plan",
    "compare_executors",
    "estimate_stack",
]
