"""The TransFusion executor.

Combines all three mechanisms on top of the shared cost model:

* **Inter-layer fusion** -- the DRAM traffic of every phase comes from
  the TileSeek assessment of the fused dataflow (input, streamed
  weights, K/V spill/reload, output); no intermediate activation ever
  leaves the chip.
* **DPipe** -- every sub-layer's compute schedule comes from the
  bipartition + topological-order + DP search of Section 4, which also
  decides per-op PE-array placement.
* **TileSeek** -- the outer tiling factors minimizing DRAM energy
  under the Table-2 buffer constraints.

TileSeek results are memoized per (model, sequence, batch,
architecture): the search is deterministic, and the evaluation sweeps
revisit the same workloads many times.  DPipe planning is memoized one
level below, inside :mod:`repro.dpipe.planner`: the ``n_epochs``-free
schedule kernel of each (cascade, layer, tile, arch, options) point is
cached in-process and persistently (plan-cache kind
``"dpipe-kernel"``), so every executor instance -- and every sweep
worker sharing the cache directory -- pays each layer's
branch-and-bound search at most once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec
from repro.baselines.base import ExecutorBase, SUBLAYERS
from repro.dpipe.planner import DPipeOptions, DPipePlan, plan_cascade
from repro.model.workload import Workload
from repro.resilience.budget import (
    fallback_enabled,
    resolve_budget,
    worst_provenance,
)
from repro.sim.stats import PhaseStats
from repro.model.config import ModelConfig
from repro.tileseek.evaluate import dram_traffic_words
from repro.tileseek.search import TileSeek, TileSeekResult
from repro.validate.config import validation_enabled

# The ModelConfig itself keys the cache (frozen dataclass): two models
# with the same *name* but different shapes must not share tilings.
# Warm-start and learned assignments are part of the key: a
# warm-started or prediction-seeded search is a different (possibly
# better) search than a cold one -- and so is a budgeted or
# fallback-disabled one (the trailing two elements).
_TilingKey = Tuple[
    ModelConfig, int, int, int, bool, str, int, int,
    Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, ...], ...],
    Optional[int], bool,
]
_TILING_CACHE: Dict[_TilingKey, TileSeekResult] = {}


class TransFusionExecutor(ExecutorBase):
    """End-to-end fused, DPipe-pipelined, TileSeek-tiled execution.

    Args:
        dpipe_options: Search budget / ablation switches for DPipe.
        tileseek_iterations: MCTS rounds per tiling search.
        seed: Seed for the (deterministic) tiling search.
    """

    name = "transfusion"

    def __init__(
        self,
        dpipe_options: DPipeOptions = DPipeOptions(),
        tileseek_iterations: int = 400,
        seed: int = 0,
    ) -> None:
        self.dpipe_options = dpipe_options
        self.tileseek_iterations = tileseek_iterations
        self.seed = seed
        self._warm_start: Tuple[Tuple[int, ...], ...] = ()

    # ------------------------------------------------------------------
    # TileSeek integration
    # ------------------------------------------------------------------
    def set_warm_start(
        self, assignments: Tuple[Tuple[int, ...], ...]
    ) -> None:
        """Inject warm-start assignments for subsequent tiling searches.

        The sweep engine (:mod:`repro.runner.parallel`) threads the
        best assignment of the neighboring sequence length through
        here before pricing each grid point; an empty tuple (the
        default) restores cold-search behavior.
        """
        self._warm_start = tuple(
            tuple(int(v) for v in a) for a in assignments
        )

    @staticmethod
    def _learned_assignments(
        workload: Workload, arch: ArchitectureSpec
    ) -> Tuple[Tuple[int, ...], ...]:
        """Predicted assignments for this point, or ``()``.

        Resolved before the memo lookup because predictions are part
        of the tiling identity.  With ``REPRO_LEARN`` off this is a
        single env check -- no model read, no key change, no byte of
        output different from a tree without :mod:`repro.learn`.
        """
        # Imported lazily: repro.learn reaches back into the runner
        # cache, which would cycle at module import time.
        from repro.learn import learn_enabled, predictions_for

        if not learn_enabled():
            return ()
        return predictions_for(workload, arch)

    def tiling(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> TileSeekResult:
        """The (memoized) TileSeek result for this workload.

        Memoized twice over: in-process (repeated sweeps in one
        process) and on disk via :mod:`repro.runner.cache` (repeated
        sweeps across processes -- every ``reproduce_all`` benchmark
        subprocess would otherwise redo the MCTS).
        """
        def audited(result: TileSeekResult) -> TileSeekResult:
            if validation_enabled():
                from repro.validate.tiling import audit_tiling

                audit_tiling(
                    result.config, result.assessment, workload, arch
                ).raise_if_failed()
            return result

        warm = self._warm_start
        budget = resolve_budget()
        allow_fallback = fallback_enabled()
        learned = self._learned_assignments(workload, arch)
        key: _TilingKey = (
            workload.model,
            workload.seq_len,
            workload.batch,
            workload.kv_len,
            workload.causal,
            arch.name,
            self.tileseek_iterations,
            self.seed,
            warm,
            learned,
            budget,
            allow_fallback,
        )
        if key in _TILING_CACHE:
            return audited(_TILING_CACHE[key])
        # Imported lazily: repro.core.__init__ imports this module, so
        # a module-level import of repro.runner would be circular.
        from repro.core.serialize import (
            tileseek_result_from_dict,
            tileseek_result_to_dict,
        )
        from repro.runner.cache import (
            arch_fingerprint,
            code_salt,
            default_cache,
            stable_hash,
            workload_fingerprint,
        )

        cache = default_cache()
        payload = disk_key = None
        if cache is not None:
            payload = {
                "kind": "tileseek",
                "salt": code_salt(),
                "workload": workload_fingerprint(workload),
                "arch": arch_fingerprint(arch),
                "iterations": self.tileseek_iterations,
                "seed": self.seed,
                "warm_start": [list(a) for a in warm],
            }
            # Conditional keys: unbudgeted searches keep their
            # pre-existing disk hashes, and so do searches without
            # learned predictions (REPRO_LEARN off or no model).
            if budget is not None:
                payload["budget"] = budget
            if not allow_fallback:
                payload["no_fallback"] = True
            if learned:
                payload["learned"] = [list(a) for a in learned]
            disk_key = stable_hash(payload)
            document = cache.get("tileseek", disk_key)
            if document is not None:
                result = tileseek_result_from_dict(document)
                _TILING_CACHE[key] = result
                return audited(result)
        searcher = TileSeek(
            iterations=self.tileseek_iterations, seed=self.seed
        )
        result = searcher.search(
            workload, arch, warm_start=warm,
            budget=budget, allow_fallback=allow_fallback,
            learned=learned,
        )
        if cache is not None:
            cache.put(
                "tileseek", disk_key,
                tileseek_result_to_dict(result), payload,
            )
        _TILING_CACHE[key] = result
        return audited(result)

    # ------------------------------------------------------------------
    # DPipe integration
    # ------------------------------------------------------------------
    def layer_plan(
        self,
        workload: Workload,
        arch: ArchitectureSpec,
        layer: str,
    ) -> DPipePlan:
        """DPipe plan for one sub-layer."""
        cascade = self.cascades(
            workload.model, masked=workload.causal
        )[layer]
        tile = self.inner_tile(workload, layer, arch)
        n_epochs = self.epoch_count(workload, layer, tile)
        return plan_cascade(
            cascade, layer, tile, arch, n_epochs, self.dpipe_options
        )

    def _phase_from_plan(
        self,
        workload: Workload,
        arch: ArchitectureSpec,
        layer: str,
        plan: DPipePlan,
    ) -> PhaseStats:
        phase = PhaseStats(
            name=layer,
            compute_seconds=plan.total_seconds,
            busy_seconds=dict(plan.busy_seconds),
            ops_2d=plan.load_split[PEArrayKind.ARRAY_2D],
            ops_1d=plan.load_split[PEArrayKind.ARRAY_1D],
            overlap_dram=True,
        )
        cascade = self.cascades(
            workload.model, masked=workload.causal
        )[layer]
        tile = self.inner_tile(workload, layer, arch)
        self.add_access_counts(
            phase, cascade, tile, plan.n_epochs, register_retention=True
        )
        return phase

    # ------------------------------------------------------------------
    # Phase construction
    # ------------------------------------------------------------------
    def build_phases(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> List[PhaseStats]:
        tiling = self.tiling(workload, arch)
        traffic = dram_traffic_words(
            tiling.config, workload, arch.buffer_words
        )
        # Aggregate the worst search outcome across the tiling search
        # and every sub-layer's schedule searches; ExecutorBase.run
        # stamps it onto the report.
        provenance = tiling.provenance
        phases: List[PhaseStats] = []
        for layer in SUBLAYERS:
            plan = self.layer_plan(workload, arch, layer)
            provenance = worst_provenance(
                provenance, plan.provenance
            )
            phase = self._phase_from_plan(workload, arch, layer, plan)
            if layer == "qkv":
                phase.dram_words = (
                    workload.activation_words
                    + traffic["qkv_weight_words"]
                )
            elif layer == "mha":
                if workload.causal:
                    # Causal mask: half the live score work.
                    phase = phase.scaled(
                        workload.attention_work_fraction
                    )
                phase.dram_words = traffic["kv_words"]
            elif layer == "layernorm":
                phase.dram_words = 0.0
                phase = phase.scaled(2.0)
            elif layer == "ffn":
                phase.dram_words = (
                    traffic["ffn_weight_words"]
                    + workload.activation_words
                )
            phases.append(phase)
        self._run_provenance = provenance
        return phases
