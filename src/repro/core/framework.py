"""Public entry points: the :class:`TransFusion` framework facade.

Typical use::

    from repro import TransFusion, Workload, named_model
    from repro import cloud_architecture

    arch = cloud_architecture()
    tf = TransFusion(arch)
    plan = tf.compile(Workload(named_model("llama3"), seq_len=65536))
    print(plan.summary(arch))

``compare_executors`` runs the same workload under every registered
dataflow and returns their reports -- the primitive behind all the
paper-figure benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.arch.spec import ArchitectureSpec
from repro.baselines.registry import named_executor
from repro.core.executor import TransFusionExecutor
from repro.core.interlayer import build_interlayer_plan
from repro.core.plan import CompiledLayer, CompiledPlan
from repro.dpipe.planner import DPipeOptions
from repro.model.workload import Workload
from repro.sim.stats import RunReport

#: Executor names in the paper's presentation order.
DEFAULT_EXECUTORS: Tuple[str, ...] = (
    "unfused",
    "flat",
    "fusemax",
    "fusemax+lf",
    "transfusion",
)


class TransFusion:
    """The TransFusion framework bound to one architecture.

    Args:
        arch: Target accelerator model.
        dpipe_options: DPipe search budget / ablation switches.
        tileseek_iterations: MCTS rounds per tiling search.
        seed: Tiling-search seed (results are deterministic).
    """

    def __init__(
        self,
        arch: ArchitectureSpec,
        dpipe_options: DPipeOptions = DPipeOptions(),
        tileseek_iterations: int = 400,
        seed: int = 0,
    ) -> None:
        self.arch = arch
        self.executor = TransFusionExecutor(
            dpipe_options=dpipe_options,
            tileseek_iterations=tileseek_iterations,
            seed=seed,
        )

    def compile(self, workload: Workload) -> CompiledPlan:
        """Compile a workload into a full fused/tiled/pipelined plan."""
        layers = tuple(
            CompiledLayer(
                layer=layer,
                plan=self.executor.layer_plan(
                    workload, self.arch, layer
                ),
            )
            for layer in ("qkv", "mha", "layernorm", "ffn")
        )
        tiling = self.executor.tiling(workload, self.arch)
        interlayer = build_interlayer_plan(
            workload,
            self.arch,
            q_tile_tokens=tiling.config.p,
            batch_tile=tiling.config.b,
        )
        report = self.executor.run(workload, self.arch)
        return CompiledPlan(
            workload=workload.describe(),
            architecture=self.arch.name,
            layers=layers,
            tiling=tiling,
            interlayer=interlayer,
            report=report,
        )

    def estimate(self, workload: Workload) -> RunReport:
        """Per-layer execution report without the full plan object."""
        return self.executor.run(workload, self.arch)


def compare_executors(
    workload: Workload,
    arch: ArchitectureSpec,
    executors: Optional[Iterable[str]] = None,
) -> Dict[str, RunReport]:
    """Run one workload under several dataflows.

    Args:
        workload: The problem instance.
        arch: Target architecture.
        executors: Registry names; defaults to the paper's five.

    Returns:
        Executor name -> report, in the requested order.
    """
    names = tuple(executors) if executors else DEFAULT_EXECUTORS
    return {
        name: named_executor(name).run(workload, arch)
        for name in names
    }
