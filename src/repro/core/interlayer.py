"""Inter-layer fusion planning (Section 3.2).

TransFusion keeps intermediate activations on chip and forwards them
directly between sub-layers.  This module makes that residency plan
explicit and checkable: for every tensor crossing a sub-layer boundary
it records where the tensor lives (on-chip buffer vs DRAM) and why.

Two tensors are special: ``BK`` and ``BV`` spill to off-chip memory by
design, because every Q tile must re-read the *entire* key/value
sequence (Figure 3) -- keeping them on chip is impossible once
``2 * P * D`` exceeds the buffer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.arch.spec import ArchitectureSpec
from repro.model.workload import Workload


class Residency(enum.Enum):
    """Where a boundary tensor lives between producer and consumer."""

    ON_CHIP = "on_chip"
    DRAM = "dram"


@dataclass(frozen=True)
class BoundaryTensor:
    """A tensor crossing a sub-layer boundary in the fused dataflow."""

    name: str
    producer: str
    consumer: str
    words_per_tile: float
    residency: Residency
    reason: str


@dataclass(frozen=True)
class InterLayerPlan:
    """The residency plan for one fused encoder layer."""

    boundaries: Tuple[BoundaryTensor, ...]

    def on_chip(self) -> List[BoundaryTensor]:
        """Boundary tensors forwarded on chip."""
        return [
            b for b in self.boundaries
            if b.residency is Residency.ON_CHIP
        ]

    def spilled(self) -> List[BoundaryTensor]:
        """Boundary tensors staged through DRAM."""
        return [
            b for b in self.boundaries if b.residency is Residency.DRAM
        ]

    def spill_words_per_tile(self) -> float:
        """Per-tile words spilled to DRAM."""
        return sum(b.words_per_tile for b in self.spilled())


def build_interlayer_plan(
    workload: Workload,
    arch: ArchitectureSpec,
    q_tile_tokens: int,
    batch_tile: int = 1,
) -> InterLayerPlan:
    """Derive the Section 3.2 residency plan for a tile configuration.

    Args:
        workload: The problem instance.
        arch: Target architecture.
        q_tile_tokens: Q-tile tokens per batch element (``P`` factor).
        batch_tile: Batch elements per tile (``B`` factor).

    Returns:
        The boundary-tensor residency plan.
    """
    model = workload.model
    tile_tokens = q_tile_tokens * batch_tile
    act_tile = float(tile_tokens * model.d_model)
    kv_full = 2.0 * workload.seq_len * model.d_model * batch_tile
    kv_fits = kv_full <= 0.5 * arch.buffer_words
    boundaries = (
        BoundaryTensor(
            name="Q",
            producer="qkv",
            consumer="mha",
            words_per_tile=act_tile,
            residency=Residency.ON_CHIP,
            reason="Q tile is consumed immediately by the MHA loop",
        ),
        BoundaryTensor(
            name="BK",
            producer="qkv",
            consumer="mha",
            words_per_tile=kv_full / 2.0,
            residency=(
                Residency.ON_CHIP if kv_fits else Residency.DRAM
            ),
            reason=(
                "full K sequence fits in the buffer"
                if kv_fits
                else "every Q tile re-reads the full K sequence "
                "(exceeds buffer)"
            ),
        ),
        BoundaryTensor(
            name="BV",
            producer="qkv",
            consumer="mha",
            words_per_tile=kv_full / 2.0,
            residency=(
                Residency.ON_CHIP if kv_fits else Residency.DRAM
            ),
            reason=(
                "full V sequence fits in the buffer"
                if kv_fits
                else "every Q tile re-reads the full V sequence "
                "(exceeds buffer)"
            ),
        ),
        BoundaryTensor(
            name="AV",
            producer="mha",
            consumer="layernorm",
            words_per_tile=act_tile,
            residency=Residency.ON_CHIP,
            reason="shape-consistent [B,H,F,P] forwarding (Sec. 3.2)",
        ),
        BoundaryTensor(
            name="NR",
            producer="layernorm",
            consumer="ffn",
            words_per_tile=act_tile,
            residency=Residency.ON_CHIP,
            reason="shape-consistent [B,H,F,P] forwarding (Sec. 3.2)",
        ),
        BoundaryTensor(
            name="FFN2",
            producer="ffn",
            consumer="layernorm",
            words_per_tile=act_tile,
            residency=Residency.ON_CHIP,
            reason="residual add of the second Add & LayerNorm",
        ),
    )
    return InterLayerPlan(boundaries=boundaries)
