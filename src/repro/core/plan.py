"""Compiled-plan data structures returned by the public API."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.spec import ArchitectureSpec
from repro.core.interlayer import InterLayerPlan
from repro.dpipe.planner import DPipePlan
from repro.sim.stats import RunReport
from repro.tileseek.search import TileSeekResult


@dataclass(frozen=True)
class CompiledLayer:
    """One sub-layer's schedule within a compiled plan."""

    layer: str
    plan: DPipePlan

    @property
    def pipelined(self) -> bool:
        return self.plan.pipelined


@dataclass(frozen=True)
class CompiledPlan:
    """A full TransFusion compilation result for one workload.

    Attributes:
        workload: Human-readable workload label.
        architecture: Architecture name.
        layers: Per-sub-layer DPipe schedules.
        tiling: The TileSeek outer-tiling result.
        interlayer: The Section 3.2 residency plan.
        report: Per-layer execution statistics.
    """

    workload: str
    architecture: str
    layers: Tuple[CompiledLayer, ...]
    tiling: TileSeekResult
    interlayer: InterLayerPlan
    report: RunReport

    def layer_plan(self, layer: str) -> DPipePlan:
        """Look up one sub-layer's DPipe plan."""
        for compiled in self.layers:
            if compiled.layer == layer:
                return compiled.plan
        raise KeyError(f"no plan for layer {layer!r}")

    def summary(self, arch: ArchitectureSpec) -> Dict[str, float]:
        """Headline numbers: latency, energy, DRAM traffic."""
        energy = self.report.energy(arch)
        return {
            "latency_s": self.report.latency_seconds(arch),
            "energy_pj": energy.total_pj,
            "dram_words": self.report.dram_words(),
            "buffer_words_required": (
                self.tiling.assessment.buffer_words_required
            ),
        }
