"""Plan serialization: export compiled plans as JSON documents.

A compiled plan is the artifact a downstream compiler or runtime would
consume -- the outer tiling factors, each sub-layer's pipeline
bipartition and op-to-array assignment hints, and the cost estimates.
This module flattens :class:`~repro.core.plan.CompiledPlan` into a
JSON-safe dictionary (and back to disk), so plans can be archived,
diffed and shipped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.arch.spec import ArchitectureSpec
from repro.core.plan import CompiledPlan


def plan_to_dict(
    plan: CompiledPlan, arch: ArchitectureSpec
) -> Dict[str, Any]:
    """Flatten a compiled plan into JSON-safe primitives."""
    tiling = plan.tiling
    document: Dict[str, Any] = {
        "workload": plan.workload,
        "architecture": plan.architecture,
        "tiling": {
            "factors": tiling.config.as_dict(),
            "feasible": tiling.feasible,
            "buffer_words_required": (
                tiling.assessment.buffer_words_required
            ),
            "dram_words": tiling.assessment.dram_words,
            "kv_passes": tiling.assessment.kv_passes,
            "weight_passes": tiling.assessment.weight_passes,
            "search_evaluations": tiling.stats.evaluations,
        },
        "layers": [],
        "interlayer": [
            {
                "tensor": boundary.name,
                "producer": boundary.producer,
                "consumer": boundary.consumer,
                "residency": boundary.residency.value,
                "words_per_tile": boundary.words_per_tile,
                "reason": boundary.reason,
            }
            for boundary in plan.interlayer.boundaries
        ],
        "summary": plan.summary(arch),
    }
    for compiled in plan.layers:
        layer_plan = compiled.plan
        entry: Dict[str, Any] = {
            "layer": compiled.layer,
            "pipelined": layer_plan.pipelined,
            "n_epochs": layer_plan.n_epochs,
            "epoch_seconds": layer_plan.epoch_seconds,
            "total_seconds": layer_plan.total_seconds,
            "busy_seconds": {
                kind.value: seconds
                for kind, seconds in layer_plan.busy_seconds.items()
            },
            "load_split": {
                kind.value: load
                for kind, load in layer_plan.load_split.items()
            },
        }
        if layer_plan.bipartition is not None:
            entry["bipartition"] = {
                "first": sorted(layer_plan.bipartition.first),
                "second": sorted(layer_plan.bipartition.second),
            }
        if layer_plan.window_order:
            entry["window_order"] = list(layer_plan.window_order)
        document["layers"].append(entry)
    return document


def save_plan(
    plan: CompiledPlan,
    arch: ArchitectureSpec,
    path: Union[str, Path],
) -> Path:
    """Write a compiled plan to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(plan_to_dict(plan, arch), indent=2,
                   sort_keys=True)
        + "\n"
    )
    return path


def load_plan_dict(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a plan document written by :func:`save_plan`."""
    return json.loads(Path(path).read_text())
