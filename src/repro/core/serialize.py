"""Plan serialization: export compiled plans as JSON documents.

A compiled plan is the artifact a downstream compiler or runtime would
consume -- the outer tiling factors, each sub-layer's pipeline
bipartition and op-to-array assignment hints, and the cost estimates.
This module flattens :class:`~repro.core.plan.CompiledPlan` into a
JSON-safe dictionary (and back to disk), so plans can be archived,
diffed and shipped.

It also provides exact (bit-preserving) round-trips for
:class:`~repro.sim.stats.RunReport` and
:class:`~repro.tileseek.search.TileSeekResult` -- the value types the
persistent sweep cache (:mod:`repro.runner.cache`) stores on disk.
JSON float serialization uses ``repr``, so every ``float`` survives a
dump/load cycle bit-identically.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec
from repro.core.plan import CompiledPlan
from repro.resilience.budget import PROVENANCE_COMPLETE
from repro.sim.stats import PhaseStats, RunReport
from repro.tileseek.buffer_model import TilingConfig
from repro.tileseek.evaluate import TilingAssessment
from repro.tileseek.mcts import MCTSStats
from repro.tileseek.search import TileSeekResult
from repro.validate.report import AuditCheck, AuditReport


def plan_to_dict(
    plan: CompiledPlan, arch: ArchitectureSpec
) -> Dict[str, Any]:
    """Flatten a compiled plan into JSON-safe primitives."""
    tiling = plan.tiling
    document: Dict[str, Any] = {
        "workload": plan.workload,
        "architecture": plan.architecture,
        "tiling": {
            "factors": tiling.config.as_dict(),
            "feasible": tiling.feasible,
            "buffer_words_required": (
                tiling.assessment.buffer_words_required
            ),
            "dram_words": tiling.assessment.dram_words,
            "kv_passes": tiling.assessment.kv_passes,
            "weight_passes": tiling.assessment.weight_passes,
            "search_evaluations": tiling.stats.evaluations,
        },
        "layers": [],
        "interlayer": [
            {
                "tensor": boundary.name,
                "producer": boundary.producer,
                "consumer": boundary.consumer,
                "residency": boundary.residency.value,
                "words_per_tile": boundary.words_per_tile,
                "reason": boundary.reason,
            }
            for boundary in plan.interlayer.boundaries
        ],
        "summary": plan.summary(arch),
    }
    for compiled in plan.layers:
        layer_plan = compiled.plan
        entry: Dict[str, Any] = {
            "layer": compiled.layer,
            "pipelined": layer_plan.pipelined,
            "n_epochs": layer_plan.n_epochs,
            "epoch_seconds": layer_plan.epoch_seconds,
            "total_seconds": layer_plan.total_seconds,
            "busy_seconds": {
                kind.value: seconds
                for kind, seconds in layer_plan.busy_seconds.items()
            },
            "load_split": {
                kind.value: load
                for kind, load in layer_plan.load_split.items()
            },
        }
        if layer_plan.bipartition is not None:
            entry["bipartition"] = {
                "first": sorted(layer_plan.bipartition.first),
                "second": sorted(layer_plan.bipartition.second),
            }
        if layer_plan.window_order:
            entry["window_order"] = list(layer_plan.window_order)
        document["layers"].append(entry)
    return document


def save_plan(
    plan: CompiledPlan,
    arch: ArchitectureSpec,
    path: Union[str, Path],
) -> Path:
    """Write a compiled plan to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.write_text(
        json.dumps(plan_to_dict(plan, arch), indent=2,
                   sort_keys=True)
        + "\n"
    )
    return path


def load_plan_dict(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a plan document written by :func:`save_plan`."""
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# RunReport round-trip
# ----------------------------------------------------------------------
def phase_to_dict(phase: PhaseStats) -> Dict[str, Any]:
    """Flatten one :class:`PhaseStats` into JSON-safe primitives."""
    return {
        "name": phase.name,
        "compute_seconds": phase.compute_seconds,
        "busy_seconds": {
            kind.value: seconds
            for kind, seconds in phase.busy_seconds.items()
        },
        "dram_words": phase.dram_words,
        "overlap_dram": phase.overlap_dram,
        "ops_2d": phase.ops_2d,
        "ops_1d": phase.ops_1d,
        "buffer_words": phase.buffer_words,
        "rf_words": phase.rf_words,
    }


def phase_from_dict(document: Dict[str, Any]) -> PhaseStats:
    """Rebuild a :class:`PhaseStats` written by :func:`phase_to_dict`."""
    return PhaseStats(
        name=document["name"],
        compute_seconds=document["compute_seconds"],
        busy_seconds={
            PEArrayKind(kind): seconds
            for kind, seconds in document["busy_seconds"].items()
        },
        dram_words=document["dram_words"],
        overlap_dram=document["overlap_dram"],
        ops_2d=document["ops_2d"],
        ops_1d=document["ops_1d"],
        buffer_words=document["buffer_words"],
        rf_words=document["rf_words"],
    )


def report_to_dict(report: RunReport) -> Dict[str, Any]:
    """Flatten a :class:`RunReport` into JSON-safe primitives.

    ``provenance`` is emitted only when the report is degraded, so
    documents of complete runs are byte-identical to those written
    before provenance tracking existed.
    """
    document = {
        "executor": report.executor,
        "workload": report.workload,
        "architecture": report.architecture,
        "phases": [phase_to_dict(ph) for ph in report.phases],
    }
    if report.provenance != PROVENANCE_COMPLETE:
        document["provenance"] = report.provenance
    return document


def report_from_dict(document: Dict[str, Any]) -> RunReport:
    """Rebuild a :class:`RunReport` written by :func:`report_to_dict`."""
    return RunReport(
        executor=document["executor"],
        workload=document["workload"],
        architecture=document["architecture"],
        phases=[phase_from_dict(ph) for ph in document["phases"]],
        provenance=document.get("provenance", PROVENANCE_COMPLETE),
    )


# ----------------------------------------------------------------------
# SweepResult / failure-taxonomy round-trip
# ----------------------------------------------------------------------
#: Constructor-aligned fields per serializable failure type.
_FAILURE_FIELDS = {
    "PointFailure": (
        "point", "chain_index", "attempt", "error_type", "message",
    ),
    "ChainTimeout": ("chain_index", "seconds", "attempt"),
    "WorkerCrash": ("chain_index", "attempt", "detail"),
    "CacheCorruption": ("path", "detail"),
    "CacheClearFailure": ("path", "detail"),
    "CacheBrownout": ("path", "detail"),
    "JournalTruncation": ("path", "detail"),
    "ReplicaUnreachable": ("endpoint", "attempt", "detail"),
    "FleetUnavailable": ("attempts",),
    "ServerOverloaded": ("inflight", "bound", "retry_after_ms"),
    "InfeasiblePoint": ("subject", "diagnosis", "point"),
}

#: Failure types whose ``point`` field round-trips as a GridPoint.
_POINTED_FAILURES = ("PointFailure", "InfeasiblePoint")

#: Message-only failure types (configuration / protocol errors):
#: the concrete type survives the wire, the message is the payload.
_MESSAGE_FAILURES = (
    "SweepConfigError", "FaultSpecError", "ServeProtocolError",
)


def _message_failure_type(name: str) -> Any:
    from repro.runner import faults

    if name == "ServeProtocolError":
        from repro.serve.protocol import ServeProtocolError

        return ServeProtocolError
    return getattr(faults, name)


def failure_to_dict(failure: Any) -> Dict[str, Any]:
    """Flatten one :class:`~repro.runner.faults.SweepError` into
    JSON-safe primitives.

    Typed failures round-trip field by field; message-only types
    (config/protocol errors) round-trip as type + message; anything
    else degrades to a generic ``SweepError`` entry carrying its
    message.
    """
    name = type(failure).__name__
    if name in _MESSAGE_FAILURES:
        return {"type": name, "message": str(failure)}
    fields = _FAILURE_FIELDS.get(name)
    if fields is None:
        return {"type": "SweepError", "message": str(failure)}
    document: Dict[str, Any] = {"type": name}
    for field in fields:
        value = getattr(failure, field)
        if dataclasses.is_dataclass(value) and not isinstance(
            value, type
        ):
            value = dataclasses.asdict(value)
        elif isinstance(value, Path):
            value = str(value)
        document[field] = value
    return document


def failure_from_dict(document: Dict[str, Any]) -> Any:
    """Rebuild a failure written by :func:`failure_to_dict`."""
    from repro.runner import faults
    from repro.runner.parallel import GridPoint

    name = document["type"]
    if name in _MESSAGE_FAILURES:
        return _message_failure_type(name)(
            document.get("message", "")
        )
    fields = _FAILURE_FIELDS.get(name)
    if fields is None:
        return faults.SweepError(document.get("message", ""))
    values = []
    for field in fields:
        value = document[field]
        if (
            name in _POINTED_FAILURES
            and field == "point"
            and isinstance(value, dict)
        ):
            value = GridPoint(**value)
        values.append(value)
    return getattr(faults, name)(*values)


def sweep_result_to_dict(result: Any) -> Dict[str, Any]:
    """Flatten a :class:`~repro.runner.parallel.SweepResult` into
    JSON-safe primitives (reports, statuses and typed failures, all
    aligned with the point list).  The ``infeasible`` list (typed
    buffer diagnoses) is emitted only when non-empty, so documents of
    all-feasible sweeps keep their historical byte layout."""
    points = result.points
    infeasible = getattr(result, "infeasible", {})
    document = {
        "points": [dataclasses.asdict(point) for point in points],
        "statuses": [result.statuses[point] for point in points],
        "reports": [
            report_to_dict(result[point])
            if point in result else None
            for point in points
        ],
        "failures": [
            failure_to_dict(result.failures[point])
            if point in result.failures else None
            for point in points
        ],
    }
    if infeasible:
        document["infeasible"] = [
            failure_to_dict(infeasible[point])
            if point in infeasible else None
            for point in points
        ]
    return document


def sweep_result_from_dict(document: Dict[str, Any]) -> Any:
    """Rebuild a :class:`~repro.runner.parallel.SweepResult` written
    by :func:`sweep_result_to_dict`."""
    from repro.runner.parallel import GridPoint, SweepResult

    points = [GridPoint(**entry) for entry in document["points"]]
    reports = {
        point: report_from_dict(entry)
        for point, entry in zip(points, document["reports"])
        if entry is not None
    }
    statuses = dict(zip(points, document["statuses"]))
    failures = {
        point: failure_from_dict(entry)
        for point, entry in zip(points, document["failures"])
        if entry is not None
    }
    infeasible = {
        point: failure_from_dict(entry)
        for point, entry in zip(
            points, document.get("infeasible", ())
        )
        if entry is not None
    }
    return SweepResult(
        points, reports, statuses, failures, infeasible
    )


def save_sweep_result(
    result: Any, path: Union[str, Path]
) -> Path:
    """Write a sweep result to ``path`` as canonical JSON (key-sorted,
    ``repr``-rendered floats -- byte-stable across processes)."""
    path = Path(path)
    path.write_text(
        json.dumps(sweep_result_to_dict(result), indent=2,
                   sort_keys=True)
        + "\n"
    )
    return path


# ----------------------------------------------------------------------
# TileSeekResult round-trip
# ----------------------------------------------------------------------
def tileseek_result_to_dict(result: TileSeekResult) -> Dict[str, Any]:
    """Flatten a :class:`TileSeekResult` into JSON-safe primitives.

    Degradation bookkeeping (``provenance``, ``dead_ends``,
    ``exhausted``) is emitted only when it deviates from the healthy
    defaults, so complete-search documents keep their historical byte
    layout (and disk hashes).
    """
    assessment = result.assessment
    stats = result.stats
    stats_document: Dict[str, Any] = {
        "iterations": stats.iterations,
        "evaluations": stats.evaluations,
        "best_reward": stats.best_reward,
        "best_assignment": list(stats.best_assignment),
        "tree_nodes": stats.tree_nodes,
    }
    if stats.dead_ends:
        stats_document["dead_ends"] = stats.dead_ends
    if stats.exhausted:
        stats_document["exhausted"] = True
    document: Dict[str, Any] = {
        "config": result.config.as_dict(),
        "assessment": {
            "feasible": assessment.feasible,
            "buffer_words_required": assessment.buffer_words_required,
            "dram_words": assessment.dram_words,
            "dram_seconds": assessment.dram_seconds,
            "energy_pj": assessment.energy_pj,
            "kv_passes": assessment.kv_passes,
            "weight_passes": assessment.weight_passes,
        },
        "stats": stats_document,
    }
    if result.provenance != PROVENANCE_COMPLETE:
        document["provenance"] = result.provenance
    return document


def audit_report_to_dict(report: AuditReport) -> Dict[str, Any]:
    """Flatten an :class:`AuditReport` into JSON-safe primitives."""
    return {
        "subject": report.subject,
        "passed": report.ok,
        "checks": [
            {
                "auditor": check.auditor,
                "name": check.name,
                "passed": check.passed,
                "detail": check.detail,
            }
            for check in report.checks
        ],
    }


def audit_report_from_dict(document: Dict[str, Any]) -> AuditReport:
    """Rebuild an :class:`AuditReport` written by
    :func:`audit_report_to_dict`."""
    return AuditReport(
        subject=document["subject"],
        checks=[
            AuditCheck(
                auditor=check["auditor"],
                name=check["name"],
                passed=check["passed"],
                detail=check["detail"],
            )
            for check in document["checks"]
        ],
    )


def save_audit_report(
    report: AuditReport, path: Union[str, Path]
) -> Path:
    """Write an audit report to ``path`` as canonical JSON.

    Key-sorted, ``repr``-rendered floats: byte-stable across processes
    and ``PYTHONHASHSEED`` values (the determinism suite asserts it).
    """
    path = Path(path)
    path.write_text(
        json.dumps(audit_report_to_dict(report), indent=2,
                   sort_keys=True)
        + "\n"
    )
    return path


def tileseek_result_from_dict(
    document: Dict[str, Any]
) -> TileSeekResult:
    """Rebuild a :class:`TileSeekResult` written by
    :func:`tileseek_result_to_dict`."""
    stats = document["stats"]
    return TileSeekResult(
        config=TilingConfig(**document["config"]),
        assessment=TilingAssessment(**document["assessment"]),
        stats=MCTSStats(
            iterations=stats["iterations"],
            evaluations=stats["evaluations"],
            best_reward=stats["best_reward"],
            best_assignment=tuple(stats["best_assignment"]),
            tree_nodes=stats["tree_nodes"],
            dead_ends=stats.get("dead_ends", 0),
            exhausted=stats.get("exhausted", False),
        ),
        provenance=document.get(
            "provenance", PROVENANCE_COMPLETE
        ),
    )


# ----------------------------------------------------------------------
# Serving wire schemas (repro.serve)
# ----------------------------------------------------------------------
def canonical_json(document: Dict[str, Any]) -> str:
    """The canonical wire rendering used by the serving layer.

    Sorted keys, compact separators, ``repr``-rendered floats: the
    same document always serializes to the same bytes, and a
    ``loads``/``dumps`` round-trip is a fixed point -- which is what
    lets the server stamp a correlation id into a cached body
    without perturbing anything else.
    """
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    )


def point_to_dict(point: Any) -> Dict[str, Any]:
    """One :class:`~repro.runner.parallel.GridPoint` in wire form."""
    return dataclasses.asdict(point)


def serve_request_to_dict(request: Any) -> Dict[str, Any]:
    """A :class:`~repro.serve.protocol.ServeRequest` in wire form.

    The inverse of :func:`repro.serve.protocol.parse_request` (up to
    admission normalization: the budget here is the already-folded
    effective budget, so the round-trip is stable).  Defaulted
    fields are omitted, keeping wire documents minimal and their
    fingerprint-relevant content explicit.
    """
    document: Dict[str, Any] = {"op": request.op}
    if request.op == "sweep":
        document["points"] = [
            point_to_dict(point) for point in request.points
        ]
    elif request.points:
        document["point"] = point_to_dict(request.points[0])
    if request.budget is not None:
        document["budget"] = request.budget
    if request.no_fallback:
        document["no_fallback"] = True
    if request.warm_start:
        document["warm_start"] = True
    if request.request_id is not None:
        document["id"] = request.request_id
    return document
