"""Encoder/decoder stack composition (Section 3.2's model structures).

TransFusion composes sub-layers by their shape-consistent
``[B, H, F, P]`` interfaces, "supporting different model structures
such as encoders, decoders, or hybrid configurations".  This module
models the three structures at stack granularity:

* **encoder layer** -- dense self-attention + FFN (the layer every
  executor prices directly),
* **decoder layer** -- *masked* self-attention, a cross-attention
  block reading the encoder memory, and the FFN,
* **stacks** -- N encoder layers, M decoder layers, or both.

Cross-attention reuses the same cascades with a key/value length
``M != P``; masked self-attention uses Cascade 1's masked variant and
halves the live score work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.spec import ArchitectureSpec
from repro.baselines.base import ExecutorBase
from repro.baselines.registry import named_executor
from repro.model.config import ModelConfig
from repro.model.workload import Workload
from repro.sim.stats import RunReport


@dataclass(frozen=True)
class StackConfig:
    """A full Transformer stack.

    Attributes:
        model: Shared shape configuration.
        encoder_layers: Encoder layer count (0 = decoder-only).
        decoder_layers: Decoder layer count (0 = encoder-only).
        src_len: Encoder (source) sequence length; required whenever
            encoder or cross-attention layers exist.
        tgt_len: Decoder (target) sequence length; required whenever
            decoder layers exist.
        batch: Batch size.
    """

    model: ModelConfig
    encoder_layers: int = 0
    decoder_layers: int = 0
    src_len: Optional[int] = None
    tgt_len: Optional[int] = None
    batch: int = 64

    def __post_init__(self) -> None:
        if self.encoder_layers < 0 or self.decoder_layers < 0:
            raise ValueError("layer counts must be >= 0")
        if self.encoder_layers + self.decoder_layers == 0:
            raise ValueError("stack needs at least one layer")
        if self.encoder_layers and not self.src_len:
            raise ValueError("encoder layers require src_len")
        if self.decoder_layers and not self.tgt_len:
            raise ValueError("decoder layers require tgt_len")
        if self.decoder_layers and self.encoder_layers \
                and not self.src_len:
            raise ValueError("cross-attention requires src_len")

    # ------------------------------------------------------------------
    # Per-block workloads
    # ------------------------------------------------------------------
    def encoder_workload(self) -> Workload:
        """Dense self-attention workload of one encoder layer."""
        return Workload(self.model, seq_len=self.src_len,
                        batch=self.batch)

    def decoder_self_workload(self) -> Workload:
        """Masked self-attention workload of one decoder layer."""
        return Workload(self.model, seq_len=self.tgt_len,
                        batch=self.batch, causal=True)

    def cross_attention_workload(self) -> Workload:
        """Cross-attention workload (decoder queries over encoder
        memory); only defined for hybrid stacks."""
        if not self.encoder_layers:
            raise ValueError(
                "decoder-only stacks have no cross-attention"
            )
        return Workload(
            self.model,
            seq_len=self.tgt_len,
            batch=self.batch,
            kv_seq_len=self.src_len,
        )


@dataclass
class StackEstimate:
    """Latency/energy estimate for a whole stack under one executor.

    Attributes:
        executor: Executor registry name.
        blocks: Per-block (label, layer count, report) entries.
    """

    executor: str
    architecture: str
    blocks: List[Tuple[str, int, RunReport]] = field(
        default_factory=list
    )

    def latency_seconds(self, arch: ArchitectureSpec) -> float:
        """Total stack latency (layers execute sequentially)."""
        return sum(
            count * report.latency_seconds(arch)
            for _, count, report in self.blocks
        )

    def energy_pj(self, arch: ArchitectureSpec) -> float:
        """Total stack energy."""
        return sum(
            count * report.energy(arch).total_pj
            for _, count, report in self.blocks
        )

    def block_latencies(
        self, arch: ArchitectureSpec
    ) -> Dict[str, float]:
        """Block label -> total latency contribution."""
        return {
            label: count * report.latency_seconds(arch)
            for label, count, report in self.blocks
        }


def estimate_stack(
    stack: StackConfig,
    arch: ArchitectureSpec,
    executor: str = "transfusion",
) -> StackEstimate:
    """Price a full encoder/decoder stack under one executor.

    Decoder layers are modeled as one masked self-attention layer plus
    (in hybrid stacks) the attention-side phases of a cross-attention
    block reading the encoder memory; the decoder FFN is already part
    of the self-attention layer's report.

    Args:
        stack: The stack structure.
        arch: Target architecture.
        executor: Executor registry name.

    Returns:
        The per-block composition with stack totals.
    """
    runner: ExecutorBase = named_executor(executor)
    estimate = StackEstimate(executor=executor,
                             architecture=arch.name)
    if stack.encoder_layers:
        report = runner.run(stack.encoder_workload(), arch)
        estimate.blocks.append(
            ("encoder", stack.encoder_layers, report)
        )
    if stack.decoder_layers:
        self_report = runner.run(stack.decoder_self_workload(), arch)
        estimate.blocks.append(
            ("decoder.self", stack.decoder_layers, self_report)
        )
        if stack.encoder_layers:
            cross_full = runner.run(
                stack.cross_attention_workload(), arch
            )
            # Cross-attention adds the K/V projections of the memory
            # and the attention itself; LayerNorm rides along, but the
            # FFN belongs to the self-attention layer's report.
            cross = RunReport(
                executor=cross_full.executor,
                workload=cross_full.workload + " (cross)",
                architecture=cross_full.architecture,
                phases=[
                    phase
                    for phase in cross_full.phases
                    if phase.name in ("qkv", "mha", "layernorm")
                ],
            )
            estimate.blocks.append(
                ("decoder.cross", stack.decoder_layers, cross)
            )
    return estimate
