"""DPipe: the DAG-pipelining dynamic-programming scheduler (Section 4).

DPipe turns an Einsum-cascade DAG into a latency-aware pipelined
schedule in three steps:

1. enumerate valid DAG bipartitions (:mod:`repro.graph.partition`),
2. interleave consecutive epochs of the two subgraphs under a virtual
   root and enumerate topological orderings (Section 4.1), and
3. score every candidate with the earliest-finish DP of Eq. 43-46,
   which also picks, per op, whichever PE array completes it first --
   the mechanism behind DPipe's load balancing across the 2D and 1D
   arrays.
"""

from repro.dpipe.latency import LatencyTable, build_latency_table
from repro.dpipe.planner import (
    DPipeOptions,
    DPipePlan,
    clear_kernel_cache,
    kernel_cache_size,
    plan_cascade,
    plan_cascade_legacy,
    plan_window_schedule,
)
from repro.dpipe.scheduler import ScheduleResult, dp_schedule
from repro.dpipe.search import InternedProblem, fused_best_order

__all__ = [
    "DPipeOptions",
    "DPipePlan",
    "InternedProblem",
    "LatencyTable",
    "ScheduleResult",
    "build_latency_table",
    "clear_kernel_cache",
    "dp_schedule",
    "fused_best_order",
    "kernel_cache_size",
    "plan_cascade",
    "plan_cascade_legacy",
    "plan_window_schedule",
]
