"""Per-op, per-array latency tables for the DP scheduler (Section 4.2).

The DP rule (Eq. 45) compares each op's completion time on the 1D and
2D arrays, so it needs ``Latency[op][pe]`` for both.  Latencies come
from the shared Eq. 40-42 model; the array-fit efficiency inside
:func:`repro.sim.latency.op_cycles` prices mismatched placements
(GEMMs on the narrow 1D array, vector work on the systolic 2D array).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec
from repro.einsum.cascade import Cascade
from repro.sim.latency import op_cycles
from repro.sim.mapping import layer_mapping


@dataclass(frozen=True)
class LatencyTable:
    """Seconds and compute loads per (op, PE array).

    Attributes:
        seconds: ``(op name, array kind) -> latency seconds``.
        loads: ``op name -> Eq. 40 compute load`` (array independent).
    """

    seconds: Mapping[Tuple[str, PEArrayKind], float]
    loads: Mapping[str, float]

    def latency(self, op_name: str, kind: PEArrayKind) -> float:
        """Latency of one op on one array."""
        return self.seconds[(op_name, kind)]

    def load(self, op_name: str) -> float:
        """Scalar-op count of one op execution."""
        return self.loads[op_name]


def build_latency_table(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
) -> LatencyTable:
    """Price every cascade op on both PE arrays at tile granularity."""
    mapping = layer_mapping(layer)
    seconds: Dict[Tuple[str, PEArrayKind], float] = {}
    loads: Dict[str, float] = {}
    for op in cascade.all_ops:
        loads[op.name] = op.compute_load(tile)
        for kind in (PEArrayKind.ARRAY_2D, PEArrayKind.ARRAY_1D):
            array = arch.array(kind)
            cycles = op_cycles(op, tile, array, mapping)
            seconds[(op.name, kind)] = cycles / arch.clock_hz
    return LatencyTable(seconds=seconds, loads=loads)
