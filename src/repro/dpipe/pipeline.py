"""Epoch-interleaved pipeline windows (Section 4.1, Figure 7d).

For a bipartition ``(G1, G2)`` of a layer DAG, the steady-state
pipeline executes epoch ``e``'s second subgraph concurrently with epoch
``e+1``'s first subgraph.  DPipe models one such *window*: the induced
``G2`` of the current epoch and ``G1`` of the next epoch, joined under
a virtual ROOT node, over which it enumerates topological orderings
and runs the Eq. 43-46 DP.  The best window makespan is the pipeline's
steady-state period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.arch.pe import PEArrayKind
from repro.dpipe.latency import LatencyTable
from repro.dpipe.scheduler import ScheduleResult, dp_schedule
from repro.graph.dag import ComputationDAG
from repro.graph.partition import Bipartition
from repro.graph.toposort import (
    all_topological_orders,
    critical_path_order,
)

#: Virtual root node name (Figure 7d).
ROOT = "ROOT"

#: Epoch prefixes inside a window.
CURRENT = "cur."
NEXT = "nxt."


def build_window(
    dag: ComputationDAG, bipartition: Bipartition
) -> ComputationDAG:
    """The one-window DAG: ``G2`` of epoch ``e`` + ``G1`` of ``e+1``.

    A zero-latency virtual ROOT precedes every source of both
    subgraphs, connecting them into a single DAG as the paper
    prescribes before topological-order enumeration.
    """
    g1 = dag.induced(bipartition.first)
    g2 = dag.induced(bipartition.second)
    nodes: List[str] = [ROOT]
    nodes.extend(CURRENT + n for n in g2.nodes)
    nodes.extend(NEXT + n for n in g1.nodes)
    edges: Set[Tuple[str, str]] = set()
    edges.update((CURRENT + u, CURRENT + v) for u, v in g2.edges)
    edges.update((NEXT + u, NEXT + v) for u, v in g1.edges)
    for source in g2.sources():
        edges.add((ROOT, CURRENT + source))
    for source in g1.sources():
        edges.add((ROOT, NEXT + source))
    return ComputationDAG(nodes=tuple(nodes), edges=frozenset(edges))


@dataclass(frozen=True)
class WindowSchedule:
    """Best schedule found for one bipartition's window."""

    bipartition: Bipartition
    order: Tuple[str, ...]
    schedule: ScheduleResult

    @property
    def period_seconds(self) -> float:
        """Steady-state seconds per epoch."""
        return self.schedule.makespan


def _window_weights(
    window: ComputationDAG, table: LatencyTable
) -> dict:
    """Best-case (min-over-arrays) op latencies for the critical-path
    heuristic order."""
    return {
        node: min(
            table.latency(node.split(".", 1)[1], kind)
            for kind in (
                PEArrayKind.ARRAY_2D, PEArrayKind.ARRAY_1D,
            )
        )
        if node != ROOT
        else 0.0
        for node in window.nodes
    }


def best_window_schedule(
    dag: ComputationDAG,
    bipartition: Bipartition,
    table: LatencyTable,
    max_orders: int,
) -> WindowSchedule:
    """DP-evaluate candidate topological orders of the window and
    keep the one with the smallest makespan.

    Candidates: up to ``max_orders`` enumerated orders, plus the
    critical-path list-scheduling order (long chains first) -- cheap
    insurance against the enumeration cap missing good interleavings
    on wide windows.

    Runs the fused branch-and-bound search
    (:func:`repro.dpipe.search.fused_best_order`), which evaluates the
    identical candidate set in the identical order and returns a
    byte-identical winner; :func:`legacy_window_schedule` keeps the
    original two-pass search as the differential reference.
    """
    schedule, _ = best_window_schedule_ex(
        dag, bipartition, table, max_orders
    )
    return schedule


def best_window_schedule_ex(
    dag: ComputationDAG,
    bipartition: Bipartition,
    table: LatencyTable,
    max_orders: int,
    units=None,
) -> Tuple[WindowSchedule, str]:
    """:func:`best_window_schedule` under an optional anytime unit
    budget (:class:`repro.resilience.budget.Budget`).

    Returns the schedule plus its provenance (``complete`` /
    ``budget_exhausted`` / ``fallback:first_order``); the
    critical-path candidate order is always evaluated, budget or not.
    """
    from repro.dpipe.search import fused_best_order_ex

    window = build_window(dag, bipartition)
    order, result, provenance = fused_best_order_ex(
        window, table, max_orders, zero_latency={ROOT},
        extra_orders=(
            critical_path_order(window, _window_weights(window,
                                                        table)),
        ),
        units=units,
    )
    return WindowSchedule(
        bipartition=bipartition, order=order, schedule=result
    ), provenance


def legacy_window_schedule(
    dag: ComputationDAG,
    bipartition: Bipartition,
    table: LatencyTable,
    max_orders: int,
) -> WindowSchedule:
    """The original enumerate-then-score window search.

    Kept verbatim as the differential reference for
    :func:`best_window_schedule`: property tests and the framework
    benchmarks assert the fused search returns identical results at a
    fraction of the cost.
    """
    window = build_window(dag, bipartition)
    preds = window.pred_map()
    candidates = list(
        all_topological_orders(window, limit=max_orders)
    )
    candidates.append(
        critical_path_order(window, _window_weights(window, table))
    )
    best: Optional[WindowSchedule] = None
    for order in candidates:
        result = dp_schedule(
            order, preds, table, zero_latency={ROOT}
        )
        if best is None or result.makespan < best.schedule.makespan:
            best = WindowSchedule(
                bipartition=bipartition,
                order=order,
                schedule=result,
            )
    assert best is not None  # every DAG has >= 1 topological order
    return best


def subgraph_makespan(
    dag: ComputationDAG,
    subset: FrozenSet[str],
    table: LatencyTable,
) -> float:
    """DP makespan of one subgraph alone (pipeline fill/drain term)."""
    sub = dag.induced(subset)
    order = sub.topological_order()
    return dp_schedule(order, sub.pred_map(), table).makespan


def cross_epoch_state_edges(cascade) -> List[Tuple[str, str]]:
    """Dependencies spanning consecutive epochs.

    An op reading recurrent state depends on the previous epoch's
    update op for that state, and each update op serializes with its
    own previous instance (the state-register handoff of Cascade 1's
    running max / denominator / numerator).
    """
    edges: List[Tuple[str, str]] = []
    update_ops = {}
    for state_name, sspec in cascade.state.items():
        producer = cascade.producer_of(sspec.update_from)
        if producer is not None:
            update_ops[state_name] = producer.name
    for op in cascade.all_ops:
        for state_name in op.state_inputs:
            if state_name in update_ops:
                edges.append((update_ops[state_name], op.name))
    for producer in update_ops.values():
        edges.append((producer, producer))
    return edges


def build_paired_window(
    dag: ComputationDAG,
    cascade,
) -> ComputationDAG:
    """Two *complete* consecutive epochs as one DAG.

    Unlike the bipartition window (half of each epoch), the paired
    window carries both epochs whole, joined only by the cross-epoch
    state edges.  It prices the overlap available to DAGs with no
    valid bipartition -- e.g. QKV's three independent projections,
    which can spread across both PE arrays *and* across epochs.
    """
    nodes: List[str] = [ROOT]
    nodes.extend(CURRENT + n for n in dag.nodes)
    nodes.extend(NEXT + n for n in dag.nodes)
    edges = set()
    edges.update((CURRENT + u, CURRENT + v) for u, v in dag.edges)
    edges.update((NEXT + u, NEXT + v) for u, v in dag.edges)
    for producer, consumer in cross_epoch_state_edges(cascade):
        edges.add((CURRENT + producer, NEXT + consumer))
    with_preds = {v for _, v in edges}
    for node in nodes[1:]:
        if node not in with_preds:
            edges.add((ROOT, node))
    return ComputationDAG(nodes=tuple(nodes),
                          edges=frozenset(edges))
