"""The DPipe planner: bipartition search + DP scheduling per layer.

``plan_cascade`` is DPipe's top-level entry: given a sub-layer cascade,
an inner tile and an epoch count it

1. DP-schedules a single epoch (array load balancing without
   pipelining) as the fallback plan,
2. enumerates valid bipartitions, DP-schedules each epoch-interleaved
   window over up to ``max_orders`` topological orders, and
3. returns the plan with the smallest end-to-end makespan
   ``t_G1 + (n_epochs - 1) * t_window + t_G2``.

The returned plan carries busy time and compute-load splits per PE
array so executors can report utilization and energy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec
from repro.dpipe.latency import LatencyTable, build_latency_table
from repro.dpipe.pipeline import (
    WindowSchedule,
    best_window_schedule,
    subgraph_makespan,
)
from repro.dpipe.scheduler import ARRAYS, ScheduleResult, dp_schedule
from repro.einsum.cascade import Cascade
from repro.graph.dag import ComputationDAG
from repro.graph.partition import Bipartition, enumerate_bipartitions
from repro.graph.toposort import all_topological_orders


@dataclass(frozen=True)
class DPipeOptions:
    """Search-budget knobs for the planner.

    Attributes:
        max_bipartitions: Cap on bipartitions evaluated per layer.
        max_orders: Cap on topological orders DP-evaluated per window.
        enable_pipelining: If False, only the single-epoch DP runs
            (used by the DPipe ablation benchmark).
        enable_dp_assignment: If False, ops are pinned to their natural
            array (GEMMs on 2D, vector on 1D) instead of Eq. 45's
            min-completion choice (second ablation axis).
        objective: What candidate schedules compete on --
            ``"latency"`` (the paper's), ``"energy"`` (compute energy
            of the load split; offloading vector work to the 2D array
            costs more pJ/op), or ``"edp"`` (energy-delay product).
    """

    max_bipartitions: int = 32
    max_orders: int = 48
    enable_pipelining: bool = True
    enable_dp_assignment: bool = True
    objective: str = "latency"

    def __post_init__(self) -> None:
        if self.max_bipartitions <= 0 or self.max_orders <= 0:
            raise ValueError("search caps must be positive")
        if self.objective not in ("latency", "energy", "edp"):
            raise ValueError(
                f"unknown objective {self.objective!r}"
            )


@dataclass(frozen=True)
class DPipePlan:
    """A complete DPipe schedule for one sub-layer.

    Attributes:
        layer: Sub-layer kind.
        n_epochs: Inner-tile epochs covering the problem.
        epoch_seconds: Steady-state seconds per epoch.
        total_seconds: End-to-end makespan across all epochs.
        busy_seconds: Busy time per array, totalled over all epochs.
        load_split: Compute load (scalar ops) per array, totalled.
        bipartition: The winning bipartition (None = unpipelined).
        window_order: The winning topological order of the window.
        pipelined: Whether epoch interleaving beat the fallback.
    """

    layer: str
    n_epochs: int
    epoch_seconds: float
    total_seconds: float
    busy_seconds: Mapping[PEArrayKind, float]
    load_split: Mapping[PEArrayKind, float]
    bipartition: Optional[Bipartition] = None
    window_order: Tuple[str, ...] = field(default_factory=tuple)
    pipelined: bool = False


def _pinned_table(
    cascade: Cascade, table: LatencyTable
) -> LatencyTable:
    """Forbid cross-array placement: natural array keeps its latency,
    the other becomes prohibitively slow (ablation mode)."""
    seconds: Dict[Tuple[str, PEArrayKind], float] = {}
    for op in cascade.all_ops:
        natural = (
            PEArrayKind.ARRAY_2D
            if op.is_gemm_like
            else PEArrayKind.ARRAY_1D
        )
        for kind in ARRAYS:
            base = table.latency(op.name, kind)
            seconds[(op.name, kind)] = (
                base if kind is natural else base * 1e9
            )
    return LatencyTable(seconds=seconds, loads=dict(table.loads))


def _best_single_epoch(
    dag: ComputationDAG,
    table: LatencyTable,
    max_orders: int,
) -> ScheduleResult:
    """Best single-epoch DP schedule over enumerated topo orders."""
    preds = dag.pred_map()
    best: Optional[ScheduleResult] = None
    for order in all_topological_orders(dag, limit=max_orders):
        result = dp_schedule(order, preds, table)
        if best is None or result.makespan < best.makespan:
            best = result
    assert best is not None
    return best


def _static_pipeline_plan(
    cascade: Cascade,
    layer: str,
    table: LatencyTable,
    n_epochs: int,
) -> DPipePlan:
    """The FuseMax-style static pipeline as a schedule candidate.

    Ops keep their natural arrays and the two per-array stages of
    consecutive epochs fully overlap in steady state: epoch period =
    max of the per-array latency sums, plus one fill.  This schedule
    is a member of DPipe's search space (a source/sink bipartition
    with stage-ordered interleaving); enumerating it explicitly
    guarantees the capped window search never returns anything worse.
    """
    sums: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    loads: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    for op in cascade.all_ops:
        natural = (
            PEArrayKind.ARRAY_2D
            if op.is_gemm_like
            else PEArrayKind.ARRAY_1D
        )
        sums[natural] += table.latency(op.name, natural)
        loads[natural] += table.load(op.name)
    period = max(sums.values())
    fill = min(sums.values())
    return DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=period,
        total_seconds=n_epochs * period + fill,
        busy_seconds={
            kind: n_epochs * sums[kind] for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * loads[kind] for kind in ARRAYS
        },
        pipelined=True,
    )


def _paired_window_plan(
    cascade: Cascade,
    dag: ComputationDAG,
    layer: str,
    table: LatencyTable,
    n_epochs: int,
    single: ScheduleResult,
    max_orders: int,
) -> Optional[DPipePlan]:
    """Epoch overlap for DAGs regardless of bipartition validity.

    Prices two *whole* consecutive epochs as one DP problem (joined by
    the cross-epoch state edges) and takes half the pair makespan as
    the steady-state period.  This captures overlap the bipartition
    window cannot express -- e.g. QKV's three independent projections
    spreading over both PE arrays *and* two epochs.
    """
    from repro.dpipe.pipeline import (
        ROOT,
        build_paired_window,
    )

    if n_epochs < 2:
        return None
    window = build_paired_window(dag, cascade)
    preds = window.pred_map()
    best: Optional[ScheduleResult] = None
    for order in all_topological_orders(window, limit=max_orders):
        result = dp_schedule(order, preds, table,
                             zero_latency={ROOT})
        if best is None or result.makespan < best.makespan:
            best = result
    assert best is not None
    period = best.makespan / 2.0
    total = single.makespan + (n_epochs - 1) * period
    # The pair carries two epochs of work: halve its busy/load totals
    # to get the per-epoch split.
    split = best.load_split(table)
    return DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=period,
        total_seconds=total,
        busy_seconds={
            kind: n_epochs * best.busy_seconds[kind] / 2.0
            for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * load / 2.0
            for kind, load in split.items()
        },
        pipelined=True,
    )


def plan_cascade(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
    n_epochs: int,
    options: DPipeOptions = DPipeOptions(),
) -> DPipePlan:
    """Produce the best DPipe schedule for one sub-layer.

    Args:
        cascade: The sub-layer's Einsum cascade.
        layer: Sub-layer kind (Table-1 mapping selection).
        tile: Inner-tile extents (one epoch's work).
        arch: Target architecture.
        n_epochs: Epochs needed to cover the full problem.
        options: Search budget / ablation switches.

    Returns:
        The minimum-makespan plan found.
    """
    if n_epochs <= 0:
        raise ValueError("n_epochs must be positive")
    dag = ComputationDAG.from_cascade(cascade)
    table = build_latency_table(cascade, layer, tile, arch)
    if not options.enable_dp_assignment:
        table = _pinned_table(cascade, table)

    def compute_energy_pj(plan: DPipePlan) -> float:
        return arch.energy.pe_energy_pj(
            plan.load_split[PEArrayKind.ARRAY_2D],
            plan.load_split[PEArrayKind.ARRAY_1D],
        )

    def score(plan: DPipePlan) -> float:
        if options.objective == "latency":
            return plan.total_seconds
        if options.objective == "energy":
            return compute_energy_pj(plan)
        return plan.total_seconds * compute_energy_pj(plan)  # edp

    single = _best_single_epoch(dag, table, options.max_orders)
    best_plan = DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=single.makespan,
        total_seconds=n_epochs * single.makespan,
        busy_seconds={
            kind: n_epochs * single.busy_seconds[kind]
            for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * load
            for kind, load in single.load_split(table).items()
        },
        pipelined=False,
    )
    if not options.enable_pipelining or n_epochs < 2:
        return best_plan

    candidates = [
        _static_pipeline_plan(cascade, layer, table, n_epochs),
    ]
    paired = _paired_window_plan(
        cascade, dag, layer, table, n_epochs, single,
        options.max_orders,
    )
    if paired is not None:
        candidates.append(paired)

    bipartitions = enumerate_bipartitions(
        dag, limit=options.max_bipartitions
    )
    for bipartition in bipartitions:
        window = best_window_schedule(
            dag, bipartition, table, options.max_orders
        )
        fill = subgraph_makespan(dag, bipartition.first, table)
        drain = subgraph_makespan(dag, bipartition.second, table)
        total = fill + (n_epochs - 1) * window.period_seconds + drain
        split = window.schedule.load_split(table)
        candidates.append(DPipePlan(
            layer=layer,
            n_epochs=n_epochs,
            epoch_seconds=window.period_seconds,
            total_seconds=total,
            busy_seconds={
                kind: n_epochs
                * window.schedule.busy_seconds[kind]
                for kind in ARRAYS
            },
            load_split={
                kind: n_epochs * load
                for kind, load in split.items()
            },
            bipartition=bipartition,
            window_order=window.order,
            pipelined=True,
        ))
    for candidate in candidates:
        if score(candidate) < score(best_plan):
            best_plan = candidate
    return best_plan
