"""The DPipe planner: bipartition search + DP scheduling per layer.

``plan_cascade`` is DPipe's top-level entry: given a sub-layer cascade,
an inner tile and an epoch count it

1. DP-schedules a single epoch (array load balancing without
   pipelining) as the fallback plan,
2. enumerates valid bipartitions, DP-schedules each epoch-interleaved
   window over up to ``max_orders`` topological orders, and
3. returns the plan with the smallest end-to-end makespan
   ``t_G1 + (n_epochs - 1) * t_window + t_G2``.

The returned plan carries busy time and compute-load splits per PE
array so executors can report utilization and energy.

Two performance layers sit between the public API and the DP:

* **Fused search** -- every candidate-order evaluation goes through
  :func:`repro.dpipe.search.fused_best_order`, a branch-and-bound DFS
  that schedules shared order prefixes once and prunes against the
  incumbent (byte-identical winners; see that module's docstring).
* **Kernel memoization** -- everything scheduled here depends only on
  ``(cascade, layer, tile, arch, options)``; ``n_epochs`` merely
  scales totals.  ``plan_cascade`` therefore computes an
  ``n_epochs``-free *schedule kernel* (per-epoch periods, fill/drain
  makespans, per-epoch busy/load splits and the winning orders) and
  caches it in-process across layers, executors and sweep points,
  plus persistently through :mod:`repro.runner.cache` (kind
  ``dpipe-kernel``, salted by the code version).  Building a
  :class:`DPipePlan` from a cached kernel replays the exact legacy
  float expressions, so plans are byte-identical to a from-scratch
  search.  When validation is enabled the memo is bypassed and the
  kernel rebuilt with the schedule auditor armed, so ``repro
  validate`` always replays real DP passes.

``plan_cascade_legacy`` keeps the original enumerate-then-score
implementation verbatim as the differential reference; the property
suite and ``benchmarks/bench_framework_perf.py`` assert fused == legacy.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec
from repro.dpipe.latency import LatencyTable, build_latency_table
from repro.dpipe.pipeline import (
    ROOT,
    WindowSchedule,
    best_window_schedule,
    best_window_schedule_ex,
    build_paired_window,
    legacy_window_schedule,
    subgraph_makespan,
)
from repro.dpipe.scheduler import ARRAYS, ScheduleResult, dp_schedule
from repro.dpipe.search import fused_best_order_ex
from repro.resilience.budget import (
    PROVENANCE_COMPLETE,
    Budget,
    resolve_budget,
    worst_provenance,
)
from repro.einsum.cascade import Cascade
from repro.graph.dag import ComputationDAG
from repro.graph.partition import Bipartition, enumerate_bipartitions
from repro.graph.toposort import all_topological_orders
from repro.validate.config import validation_enabled


@dataclass(frozen=True)
class DPipeOptions:
    """Search-budget knobs for the planner.

    Attributes:
        max_bipartitions: Cap on bipartitions evaluated per layer.
        max_orders: Cap on topological orders DP-evaluated per window.
        enable_pipelining: If False, only the single-epoch DP runs
            (used by the DPipe ablation benchmark).
        enable_dp_assignment: If False, ops are pinned to their natural
            array (GEMMs on 2D, vector on 1D) instead of Eq. 45's
            min-completion choice (second ablation axis).
        objective: What candidate schedules compete on --
            ``"latency"`` (the paper's), ``"energy"`` (compute energy
            of the load split; offloading vector work to the 2D array
            costs more pJ/op), or ``"edp"`` (energy-delay product).
    """

    max_bipartitions: int = 32
    max_orders: int = 48
    enable_pipelining: bool = True
    enable_dp_assignment: bool = True
    objective: str = "latency"

    def __post_init__(self) -> None:
        if self.max_bipartitions <= 0 or self.max_orders <= 0:
            raise ValueError("search caps must be positive")
        if self.objective not in ("latency", "energy", "edp"):
            raise ValueError(
                f"unknown objective {self.objective!r}"
            )


@dataclass(frozen=True)
class DPipePlan:
    """A complete DPipe schedule for one sub-layer.

    Attributes:
        layer: Sub-layer kind.
        n_epochs: Inner-tile epochs covering the problem.
        epoch_seconds: Steady-state seconds per epoch.
        total_seconds: End-to-end makespan across all epochs.
        busy_seconds: Busy time per array, totalled over all epochs.
        load_split: Compute load (scalar ops) per array, totalled.
        bipartition: The winning bipartition (None = unpipelined).
        window_order: The winning topological order of the window.
        pipelined: Whether epoch interleaving beat the fallback.
        provenance: How the schedule searches behind this plan ended:
            ``complete``, ``budget_exhausted`` (anytime incumbents
            under a spent ``REPRO_BUDGET``) or ``fallback:<rung>``.
    """

    layer: str
    n_epochs: int
    epoch_seconds: float
    total_seconds: float
    busy_seconds: Mapping[PEArrayKind, float]
    load_split: Mapping[PEArrayKind, float]
    bipartition: Optional[Bipartition] = None
    window_order: Tuple[str, ...] = field(default_factory=tuple)
    pipelined: bool = False
    provenance: str = PROVENANCE_COMPLETE


def _pinned_table(
    cascade: Cascade, table: LatencyTable
) -> LatencyTable:
    """Forbid cross-array placement: natural array keeps its latency,
    the other becomes prohibitively slow (ablation mode)."""
    seconds: Dict[Tuple[str, PEArrayKind], float] = {}
    for op in cascade.all_ops:
        natural = (
            PEArrayKind.ARRAY_2D
            if op.is_gemm_like
            else PEArrayKind.ARRAY_1D
        )
        for kind in ARRAYS:
            base = table.latency(op.name, kind)
            seconds[(op.name, kind)] = (
                base if kind is natural else base * 1e9
            )
    return LatencyTable(seconds=seconds, loads=dict(table.loads))


def _planning_table(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
    options: DPipeOptions,
) -> LatencyTable:
    """The latency table the search prices candidates with."""
    table = build_latency_table(cascade, layer, tile, arch)
    if not options.enable_dp_assignment:
        table = _pinned_table(cascade, table)
    return table


# ----------------------------------------------------------------------
# Schedule kernels: everything n_epochs-free about a layer's search
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SingleKernel:
    """Best single-epoch schedule (the unpipelined fallback)."""

    makespan: float
    busy: Mapping[PEArrayKind, float]
    load: Mapping[PEArrayKind, float]


@dataclass(frozen=True)
class _StaticKernel:
    """FuseMax-style static pipeline (per-array latency sums)."""

    period: float
    fill: float
    sums: Mapping[PEArrayKind, float]
    loads: Mapping[PEArrayKind, float]


@dataclass(frozen=True)
class _PairedKernel:
    """Two whole consecutive epochs priced as one DP problem."""

    pair_makespan: float
    busy: Mapping[PEArrayKind, float]
    load: Mapping[PEArrayKind, float]


@dataclass(frozen=True)
class _WindowKernel:
    """One bipartition's window search outcome + fill/drain terms."""

    bipartition: Bipartition
    order: Tuple[str, ...]
    period: float
    fill: float
    drain: float
    busy: Mapping[PEArrayKind, float]
    load: Mapping[PEArrayKind, float]


@dataclass(frozen=True)
class _PipelineKernel:
    static: _StaticKernel
    paired: _PairedKernel
    windows: Tuple[_WindowKernel, ...]


@dataclass(frozen=True)
class _CascadeKernel:
    """The n_epochs-free factor of ``plan_cascade``.

    ``single`` is always present; ``pipeline`` is populated lazily
    (only plans with ``enable_pipelining`` and ``n_epochs >= 2`` need
    it, and building it is the expensive part).  ``provenance``
    aggregates the worst outcome over every internal search the kernel
    ran (complete kernels -- the only ones built without a budget --
    keep the default, so serialization stays byte-identical).
    """

    single: _SingleKernel
    pipeline: Optional[_PipelineKernel]
    provenance: str = PROVENANCE_COMPLETE


#: In-process kernel memo: key is the content hash of everything the
#: kernel depends on (cascade, layer, tile, arch, search caps,
#: assignment mode, code salt).  ``objective`` and
#: ``enable_pipelining`` are deliberately excluded -- the objective
#: only reweighs candidates at plan-construction time and pipelining
#: only gates which kernel half is consulted -- so energy/EDP sweeps
#: and ablation variants share kernels.
_KERNEL_CACHE: Dict[str, _CascadeKernel] = {}


def clear_kernel_cache() -> None:
    """Drop the in-process kernel memo (tests and benchmarks)."""
    _KERNEL_CACHE.clear()


def kernel_cache_size() -> int:
    """Number of kernels currently memoized in-process."""
    return len(_KERNEL_CACHE)


def _kernel_payload(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
    options: DPipeOptions,
    salt: str,
    units_limit: Optional[int] = None,
) -> Dict[str, Any]:
    # Lazy import: repro.runner sits above the planner in the layer
    # diagram; only its content-hash helpers are borrowed here.
    from repro.runner.cache import arch_fingerprint

    payload = {
        "kind": "dpipe-kernel",
        "salt": salt,
        "cascade": dataclasses.asdict(cascade),
        "layer": layer,
        "tile": {key: int(value) for key, value in
                 sorted(tile.items())},
        "arch": arch_fingerprint(arch),
        "max_bipartitions": options.max_bipartitions,
        "max_orders": options.max_orders,
        "enable_dp_assignment": options.enable_dp_assignment,
    }
    if units_limit is not None:
        # Only budgeted kernels grow the key: unbudgeted runs keep
        # their pre-existing cache entries (and byte-identical keys).
        payload["budget"] = units_limit
    return payload


def _split_to_list(
    split: Mapping[PEArrayKind, float]
) -> List[List[Any]]:
    return [[kind.value, split[kind]] for kind in ARRAYS]


def _split_from_list(items: List[List[Any]]) -> Dict[PEArrayKind, float]:
    # Reconstruction preserves ARRAYS insertion order, so later
    # ``.items()`` float accumulation iterates exactly as the legacy
    # dicts built from ``{kind: 0.0 for kind in ARRAYS}`` did.
    return {PEArrayKind(kind): value for kind, value in items}


def _kernel_to_dict(kernel: _CascadeKernel) -> Dict[str, Any]:
    """JSON-safe kernel serialization (floats round-trip exactly)."""
    document: Dict[str, Any] = {
        "single": {
            "makespan": kernel.single.makespan,
            "busy": _split_to_list(kernel.single.busy),
            "load": _split_to_list(kernel.single.load),
        },
        "pipeline": None,
    }
    if kernel.provenance != PROVENANCE_COMPLETE:
        # Conditional: complete kernels serialize exactly as before.
        document["provenance"] = kernel.provenance
    if kernel.pipeline is not None:
        pipe = kernel.pipeline
        document["pipeline"] = {
            "static": {
                "period": pipe.static.period,
                "fill": pipe.static.fill,
                "sums": _split_to_list(pipe.static.sums),
                "loads": _split_to_list(pipe.static.loads),
            },
            "paired": {
                "pair_makespan": pipe.paired.pair_makespan,
                "busy": _split_to_list(pipe.paired.busy),
                "load": _split_to_list(pipe.paired.load),
            },
            "windows": [
                {
                    "first": sorted(window.bipartition.first),
                    "second": sorted(window.bipartition.second),
                    "order": list(window.order),
                    "period": window.period,
                    "fill": window.fill,
                    "drain": window.drain,
                    "busy": _split_to_list(window.busy),
                    "load": _split_to_list(window.load),
                }
                for window in pipe.windows
            ],
        }
    return document


def _kernel_from_dict(document: Mapping[str, Any]) -> _CascadeKernel:
    single = _SingleKernel(
        makespan=document["single"]["makespan"],
        busy=_split_from_list(document["single"]["busy"]),
        load=_split_from_list(document["single"]["load"]),
    )
    pipeline = None
    if document.get("pipeline") is not None:
        pipe = document["pipeline"]
        pipeline = _PipelineKernel(
            static=_StaticKernel(
                period=pipe["static"]["period"],
                fill=pipe["static"]["fill"],
                sums=_split_from_list(pipe["static"]["sums"]),
                loads=_split_from_list(pipe["static"]["loads"]),
            ),
            paired=_PairedKernel(
                pair_makespan=pipe["paired"]["pair_makespan"],
                busy=_split_from_list(pipe["paired"]["busy"]),
                load=_split_from_list(pipe["paired"]["load"]),
            ),
            windows=tuple(
                _WindowKernel(
                    bipartition=Bipartition(
                        first=frozenset(window["first"]),
                        second=frozenset(window["second"]),
                    ),
                    order=tuple(window["order"]),
                    period=window["period"],
                    fill=window["fill"],
                    drain=window["drain"],
                    busy=_split_from_list(window["busy"]),
                    load=_split_from_list(window["load"]),
                )
                for window in pipe["windows"]
            ),
        )
    return _CascadeKernel(
        single=single,
        pipeline=pipeline,
        provenance=document.get("provenance", PROVENANCE_COMPLETE),
    )


def _build_kernel(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
    options: DPipeOptions,
    with_pipeline: bool,
    units_limit: Optional[int] = None,
) -> _CascadeKernel:
    """Run the fused searches and record their n_epochs-free results.

    ``units_limit`` caps the *total* DFS node visits across every
    internal search of this kernel with one shared
    :class:`~repro.resilience.budget.Budget`: the searches run
    serially in a fixed order, so the cut point -- and therefore the
    (possibly degraded) kernel -- is identical on every host.
    """
    dag = ComputationDAG.from_cascade(cascade)
    table = _planning_table(cascade, layer, tile, arch, options)
    units = Budget(units_limit) if units_limit is not None else None

    _, single, single_prov = fused_best_order_ex(
        dag, table, options.max_orders, units=units
    )
    provenance = single_prov
    single_kernel = _SingleKernel(
        makespan=single.makespan,
        busy=dict(single.busy_seconds),
        load=single.load_split(table),
    )
    if not with_pipeline:
        return _CascadeKernel(
            single=single_kernel, pipeline=None,
            provenance=provenance,
        )

    sums: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    loads: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    for op in cascade.all_ops:
        natural = (
            PEArrayKind.ARRAY_2D
            if op.is_gemm_like
            else PEArrayKind.ARRAY_1D
        )
        sums[natural] += table.latency(op.name, natural)
        loads[natural] += table.load(op.name)
    static = _StaticKernel(
        period=max(sums.values()),
        fill=min(sums.values()),
        sums=sums,
        loads=loads,
    )

    paired_window = build_paired_window(dag, cascade)
    _, paired_best, paired_prov = fused_best_order_ex(
        paired_window, table, options.max_orders,
        zero_latency={ROOT}, units=units,
    )
    provenance = worst_provenance(provenance, paired_prov)
    paired = _PairedKernel(
        pair_makespan=paired_best.makespan,
        busy=dict(paired_best.busy_seconds),
        load=paired_best.load_split(table),
    )

    windows: List[_WindowKernel] = []
    for bipartition in enumerate_bipartitions(
        dag, limit=options.max_bipartitions
    ):
        window, window_prov = best_window_schedule_ex(
            dag, bipartition, table, options.max_orders,
            units=units,
        )
        provenance = worst_provenance(provenance, window_prov)
        windows.append(_WindowKernel(
            bipartition=bipartition,
            order=window.order,
            period=window.period_seconds,
            fill=subgraph_makespan(dag, bipartition.first, table),
            drain=subgraph_makespan(dag, bipartition.second, table),
            busy=dict(window.schedule.busy_seconds),
            load=window.schedule.load_split(table),
        ))
    return _CascadeKernel(
        single=single_kernel,
        pipeline=_PipelineKernel(
            static=static, paired=paired, windows=tuple(windows)
        ),
        provenance=provenance,
    )


def _cached_kernel(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
    options: DPipeOptions,
    with_pipeline: bool,
    units_limit: Optional[int] = None,
) -> _CascadeKernel:
    """The memoized kernel, consulting memory then the plan cache."""
    from repro.runner.cache import (
        code_salt,
        default_cache,
        stable_hash,
    )

    payload = _kernel_payload(
        cascade, layer, tile, arch, options, code_salt(),
        units_limit=units_limit,
    )
    key = stable_hash(payload)

    def satisfies(kernel: Optional[_CascadeKernel]) -> bool:
        return kernel is not None and (
            kernel.pipeline is not None or not with_pipeline
        )

    kernel = _KERNEL_CACHE.get(key)
    if satisfies(kernel):
        return kernel  # type: ignore[return-value]
    cache = default_cache()
    if cache is not None:
        document = cache.get("dpipe-kernel", key)
        if document is not None:
            loaded = _kernel_from_dict(document)
            if satisfies(loaded):
                _KERNEL_CACHE[key] = loaded
                return loaded
    kernel = _build_kernel(
        cascade, layer, tile, arch, options, with_pipeline,
        units_limit=units_limit,
    )
    _KERNEL_CACHE[key] = kernel
    if cache is not None:
        cache.put("dpipe-kernel", key, _kernel_to_dict(kernel),
                  payload)
    return kernel


def _plan_from_kernel(
    kernel: _CascadeKernel,
    layer: str,
    n_epochs: int,
    options: DPipeOptions,
    arch: ArchitectureSpec,
) -> DPipePlan:
    """Scale a kernel by ``n_epochs`` and pick the winning candidate.

    Every float expression below matches the legacy plan construction
    term for term (same addition and multiplication order), so a plan
    built from a cached kernel is byte-identical to one built by
    ``plan_cascade_legacy``.
    """
    def compute_energy_pj(plan: DPipePlan) -> float:
        return arch.energy.pe_energy_pj(
            plan.load_split[PEArrayKind.ARRAY_2D],
            plan.load_split[PEArrayKind.ARRAY_1D],
        )

    def score(plan: DPipePlan) -> float:
        if options.objective == "latency":
            return plan.total_seconds
        if options.objective == "energy":
            return compute_energy_pj(plan)
        return plan.total_seconds * compute_energy_pj(plan)  # edp

    single = kernel.single
    best_plan = DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=single.makespan,
        total_seconds=n_epochs * single.makespan,
        busy_seconds={
            kind: n_epochs * single.busy[kind] for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * load
            for kind, load in single.load.items()
        },
        pipelined=False,
        provenance=kernel.provenance,
    )
    if not options.enable_pipelining or n_epochs < 2:
        return best_plan

    pipe = kernel.pipeline
    assert pipe is not None  # caller requested the pipeline half
    static = pipe.static
    candidates = [DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=static.period,
        total_seconds=n_epochs * static.period + static.fill,
        busy_seconds={
            kind: n_epochs * static.sums[kind] for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * static.loads[kind] for kind in ARRAYS
        },
        pipelined=True,
        provenance=kernel.provenance,
    )]
    paired = pipe.paired
    period = paired.pair_makespan / 2.0
    candidates.append(DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=period,
        total_seconds=single.makespan + (n_epochs - 1) * period,
        busy_seconds={
            kind: n_epochs * paired.busy[kind] / 2.0
            for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * load / 2.0
            for kind, load in paired.load.items()
        },
        pipelined=True,
        provenance=kernel.provenance,
    ))
    for window in pipe.windows:
        total = (
            window.fill
            + (n_epochs - 1) * window.period
            + window.drain
        )
        candidates.append(DPipePlan(
            layer=layer,
            n_epochs=n_epochs,
            epoch_seconds=window.period,
            total_seconds=total,
            busy_seconds={
                kind: n_epochs * window.busy[kind]
                for kind in ARRAYS
            },
            load_split={
                kind: n_epochs * load
                for kind, load in window.load.items()
            },
            bipartition=window.bipartition,
            window_order=window.order,
            pipelined=True,
        ))
    for candidate in candidates:
        if score(candidate) < score(best_plan):
            best_plan = candidate
    return best_plan


def plan_cascade(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
    n_epochs: int,
    options: DPipeOptions = DPipeOptions(),
) -> DPipePlan:
    """Produce the best DPipe schedule for one sub-layer.

    Runs the fused branch-and-bound search over an interned DAG and
    memoizes the ``n_epochs``-free schedule kernel (in-process and
    through the persistent plan cache), so repeated sweep points --
    and different epoch counts over the same layer -- skip the search
    entirely.  Plans are byte-identical to
    :func:`plan_cascade_legacy`.

    Args:
        cascade: The sub-layer's Einsum cascade.
        layer: Sub-layer kind (Table-1 mapping selection).
        tile: Inner-tile extents (one epoch's work).
        arch: Target architecture.
        n_epochs: Epochs needed to cover the full problem.
        options: Search budget / ablation switches.

    Returns:
        The minimum-makespan plan found.
    """
    if n_epochs <= 0:
        raise ValueError("n_epochs must be positive")
    with_pipeline = options.enable_pipelining and n_epochs >= 2
    # The anytime unit budget (REPRO_BUDGET / REPRO_DEADLINE) caps
    # each kernel build's total DFS node visits; budgeted kernels get
    # distinct cache keys, so degraded results never masquerade as
    # complete ones (or vice versa).
    units_limit = resolve_budget()
    if validation_enabled():
        # Auditors must see real DP passes, not cached floats: rebuild
        # the kernel with the schedule auditor armed (every winning
        # search pass and every fill/drain DP is replay-checked).
        kernel = _build_kernel(
            cascade, layer, tile, arch, options, with_pipeline,
            units_limit=units_limit,
        )
    else:
        kernel = _cached_kernel(
            cascade, layer, tile, arch, options, with_pipeline,
            units_limit=units_limit,
        )
    return _plan_from_kernel(kernel, layer, n_epochs, options, arch)


def plan_window_schedule(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
    plan: DPipePlan,
    options: DPipeOptions = DPipeOptions(),
) -> Optional[WindowSchedule]:
    """The :class:`WindowSchedule` behind a plan's winning bipartition.

    Consumers that render or inspect a plan's steady-state window (the
    CLI ``inspect`` command) go through here so they price the window
    with exactly the planner's fused search and options -- the two
    code paths cannot drift.  Returns ``None`` for unpipelined plans
    or pipelined plans without a bipartition window (static / paired
    winners).
    """
    if plan.bipartition is None:
        return None
    dag = ComputationDAG.from_cascade(cascade)
    table = _planning_table(cascade, layer, tile, arch, options)
    return best_window_schedule(
        dag, plan.bipartition, table, options.max_orders
    )


# ----------------------------------------------------------------------
# Legacy reference implementation (differential baseline)
# ----------------------------------------------------------------------
def _best_single_epoch(
    dag: ComputationDAG,
    table: LatencyTable,
    max_orders: int,
) -> ScheduleResult:
    """Best single-epoch DP schedule over enumerated topo orders."""
    preds = dag.pred_map()
    best: Optional[ScheduleResult] = None
    for order in all_topological_orders(dag, limit=max_orders):
        result = dp_schedule(order, preds, table)
        if best is None or result.makespan < best.makespan:
            best = result
    assert best is not None
    return best


def _static_pipeline_plan(
    cascade: Cascade,
    layer: str,
    table: LatencyTable,
    n_epochs: int,
) -> DPipePlan:
    """The FuseMax-style static pipeline as a schedule candidate.

    Ops keep their natural arrays and the two per-array stages of
    consecutive epochs fully overlap in steady state: epoch period =
    max of the per-array latency sums, plus one fill.  This schedule
    is a member of DPipe's search space (a source/sink bipartition
    with stage-ordered interleaving); enumerating it explicitly
    guarantees the capped window search never returns anything worse.
    """
    sums: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    loads: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    for op in cascade.all_ops:
        natural = (
            PEArrayKind.ARRAY_2D
            if op.is_gemm_like
            else PEArrayKind.ARRAY_1D
        )
        sums[natural] += table.latency(op.name, natural)
        loads[natural] += table.load(op.name)
    period = max(sums.values())
    fill = min(sums.values())
    return DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=period,
        total_seconds=n_epochs * period + fill,
        busy_seconds={
            kind: n_epochs * sums[kind] for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * loads[kind] for kind in ARRAYS
        },
        pipelined=True,
    )


def _paired_window_plan(
    cascade: Cascade,
    dag: ComputationDAG,
    layer: str,
    table: LatencyTable,
    n_epochs: int,
    single: ScheduleResult,
    max_orders: int,
) -> Optional[DPipePlan]:
    """Epoch overlap for DAGs regardless of bipartition validity.

    Prices two *whole* consecutive epochs as one DP problem (joined by
    the cross-epoch state edges) and takes half the pair makespan as
    the steady-state period.  This captures overlap the bipartition
    window cannot express -- e.g. QKV's three independent projections
    spreading over both PE arrays *and* two epochs.
    """
    if n_epochs < 2:
        return None
    window = build_paired_window(dag, cascade)
    preds = window.pred_map()
    best: Optional[ScheduleResult] = None
    for order in all_topological_orders(window, limit=max_orders):
        result = dp_schedule(order, preds, table,
                             zero_latency={ROOT})
        if best is None or result.makespan < best.makespan:
            best = result
    assert best is not None
    period = best.makespan / 2.0
    total = single.makespan + (n_epochs - 1) * period
    # The pair carries two epochs of work: halve its busy/load totals
    # to get the per-epoch split.
    split = best.load_split(table)
    return DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=period,
        total_seconds=total,
        busy_seconds={
            kind: n_epochs * best.busy_seconds[kind] / 2.0
            for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * load / 2.0
            for kind, load in split.items()
        },
        pipelined=True,
    )


def plan_cascade_legacy(
    cascade: Cascade,
    layer: str,
    tile: Mapping[str, int],
    arch: ArchitectureSpec,
    n_epochs: int,
    options: DPipeOptions = DPipeOptions(),
) -> DPipePlan:
    """The original enumerate-then-score planner, unfused and
    unmemoized.

    Kept verbatim as the differential reference: the property suite
    and the framework benchmarks assert
    ``plan_cascade(...) == plan_cascade_legacy(...)`` while timing the
    speedup of the fused path.
    """
    if n_epochs <= 0:
        raise ValueError("n_epochs must be positive")
    dag = ComputationDAG.from_cascade(cascade)
    table = build_latency_table(cascade, layer, tile, arch)
    if not options.enable_dp_assignment:
        table = _pinned_table(cascade, table)

    def compute_energy_pj(plan: DPipePlan) -> float:
        return arch.energy.pe_energy_pj(
            plan.load_split[PEArrayKind.ARRAY_2D],
            plan.load_split[PEArrayKind.ARRAY_1D],
        )

    def score(plan: DPipePlan) -> float:
        if options.objective == "latency":
            return plan.total_seconds
        if options.objective == "energy":
            return compute_energy_pj(plan)
        return plan.total_seconds * compute_energy_pj(plan)  # edp

    single = _best_single_epoch(dag, table, options.max_orders)
    best_plan = DPipePlan(
        layer=layer,
        n_epochs=n_epochs,
        epoch_seconds=single.makespan,
        total_seconds=n_epochs * single.makespan,
        busy_seconds={
            kind: n_epochs * single.busy_seconds[kind]
            for kind in ARRAYS
        },
        load_split={
            kind: n_epochs * load
            for kind, load in single.load_split(table).items()
        },
        pipelined=False,
    )
    if not options.enable_pipelining or n_epochs < 2:
        return best_plan

    candidates = [
        _static_pipeline_plan(cascade, layer, table, n_epochs),
    ]
    paired = _paired_window_plan(
        cascade, dag, layer, table, n_epochs, single,
        options.max_orders,
    )
    if paired is not None:
        candidates.append(paired)

    bipartitions = enumerate_bipartitions(
        dag, limit=options.max_bipartitions
    )
    for bipartition in bipartitions:
        window = legacy_window_schedule(
            dag, bipartition, table, options.max_orders
        )
        fill = subgraph_makespan(dag, bipartition.first, table)
        drain = subgraph_makespan(dag, bipartition.second, table)
        total = fill + (n_epochs - 1) * window.period_seconds + drain
        split = window.schedule.load_split(table)
        candidates.append(DPipePlan(
            layer=layer,
            n_epochs=n_epochs,
            epoch_seconds=window.period_seconds,
            total_seconds=total,
            busy_seconds={
                kind: n_epochs
                * window.schedule.busy_seconds[kind]
                for kind in ARRAYS
            },
            load_split={
                kind: n_epochs * load
                for kind, load in split.items()
            },
            bipartition=bipartition,
            window_order=window.order,
            pipelined=True,
        ))
    for candidate in candidates:
        if score(candidate) < score(best_plan):
            best_plan = candidate
    return best_plan
