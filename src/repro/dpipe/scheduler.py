"""The earliest-finish DP scheduler (Section 4.3, Eq. 43-46).

Given a topological ordering of ops and per-(op, array) latencies, the
scheduler walks the order once.  For each op it computes, per array,

* ``StartT[op][pe] = max(Time[pe], max over deps of EndT[dep])``
  (Eq. 43),
* ``EndT_PE[op][pe] = StartT + Latency[op][pe]`` (Eq. 44),

assigns the op to the array with the earliest completion (Eq. 45) and
advances that array's timeline (Eq. 46).  The result respects both
data dependencies and per-array resource exclusivity, and balances
work across the arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Set, Tuple

from repro.arch.pe import PEArrayKind
from repro.dpipe.latency import LatencyTable
from repro.validate.config import validation_enabled

#: Both scheduling resources, in deterministic tie-break order: the 2D
#: array wins ties so GEMM-heavy schedules stay on the wide array.
ARRAYS: Tuple[PEArrayKind, ...] = (
    PEArrayKind.ARRAY_2D,
    PEArrayKind.ARRAY_1D,
)


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of one DP scheduling pass.

    Attributes:
        makespan: Completion time of the last op (seconds).
        assignment: Op name -> PE array chosen by Eq. 45.
        end_times: Op name -> completion time.
        busy_seconds: Total assigned latency per array.
    """

    makespan: float
    assignment: Mapping[str, PEArrayKind]
    end_times: Mapping[str, float]
    busy_seconds: Mapping[PEArrayKind, float]

    def load_split(
        self, table: LatencyTable
    ) -> Dict[PEArrayKind, float]:
        """Compute-load (scalar ops) executed per array."""
        split: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
        for name, kind in self.assignment.items():
            base = _strip_epoch(name)
            if base in table.loads:  # virtual ROOT carries no load
                split[kind] += table.load(base)
        return split


def _strip_epoch(name: str) -> str:
    """Remove an epoch prefix (``cur.`` / ``nxt.``) from a node name."""
    return name.split(".", 1)[1] if "." in name else name


def dp_schedule(
    order: Sequence[str],
    preds: Mapping[str, Set[str]],
    table: LatencyTable,
    zero_latency: Set[str] = frozenset(),
) -> ScheduleResult:
    """Run the Eq. 43-46 DP over one topological order.

    Args:
        order: Ops in a valid topological order (epoch-prefixed names
            are resolved to cascade op names for latency lookup).
        preds: Direct dependencies of each op (names as in ``order``).
        table: Per-(op, array) latencies.
        zero_latency: Nodes scheduled at zero cost on any array (the
            virtual ROOT).

    Returns:
        The schedule with makespan, assignment and busy times.
    """
    time: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    end: Dict[str, float] = {}
    assignment: Dict[str, PEArrayKind] = {}
    busy: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    for node in order:
        dep_ready = max(
            (end[p] for p in preds.get(node, ()) if p in end),
            default=0.0,
        )
        # Strip the epoch prefix once per node, not once per array:
        # this loop is the differential reference for the fused search
        # (repro.dpipe.search) and is still run per candidate order by
        # the legacy path benchmarks compare against.
        base = None if node in zero_latency else _strip_epoch(node)
        best_kind = ARRAYS[0]
        best_end = float("inf")
        best_latency = 0.0
        for kind in ARRAYS:
            if base is None:
                latency = 0.0
            else:
                latency = table.latency(base, kind)
            start = max(time[kind], dep_ready)  # Eq. 43
            finish = start + latency  # Eq. 44
            if finish < best_end:  # Eq. 45 (strict: 2D wins ties)
                best_kind = kind
                best_end = finish
                best_latency = latency
        end[node] = best_end
        assignment[node] = best_kind
        time[best_kind] = best_end  # Eq. 46
        busy[best_kind] += best_latency
    makespan = max(end.values(), default=0.0)
    result = ScheduleResult(
        makespan=makespan,
        assignment=assignment,
        end_times=end,
        busy_seconds=busy,
    )
    if validation_enabled():
        # Lazy import: the auditor imports this module for the replay.
        from repro.validate.schedule import audit_schedule

        audit_schedule(
            order, preds, table, result, zero_latency
        ).raise_if_failed()
    return result
