"""Fused branch-and-bound search over topological orders (Section 4.3).

The legacy DPipe pipeline (kept as the differential reference) first
materializes up to ``max_orders`` full topological orders of a window
(:func:`repro.graph.toposort.all_topological_orders`) and then runs the
Eq. 43-46 earliest-finish DP over each order from scratch
(:func:`repro.dpipe.scheduler.dp_schedule`).  Orders produced by the
enumeration share long prefixes, so the bulk of that DP work is
repeated, and every DP step pays string hashing (epoch-prefix
stripping, ``(op, array)`` dict lookups) per node per array.

This module fuses the two passes into a single DFS:

* **Interning** -- node names become integer ids once per search;
  epoch prefixes (``cur.`` / ``nxt.``) are pre-stripped and the
  per-(op, array) latencies resolved into flat float lists, so the
  inner loop does zero string hashing or splitting.
* **Incremental DP** -- the DFS carries the DP state (per-array
  clocks, per-node end times, busy totals) down the enumeration tree
  and snapshots/restores it on backtrack, so a prefix shared by many
  orders is scheduled once.  Restores are snapshots, never float
  subtraction, so the state at any leaf is bit-identical to running
  the legacy DP over that order from scratch.
* **Branch and bound** -- once an incumbent (first completed order's
  makespan) exists, a branch is pruned when a lower bound on every
  completion of its prefix is already ``>=`` the incumbent.  Because
  incumbent replacement is strict (``<``, matching the legacy
  first-found-minimum scan), no pruned leaf could ever have replaced
  the winner, so the returned schedule is identical.
* **Exact cap accounting** -- the legacy search evaluates exactly the
  first ``limit`` orders in enumeration order.  When a branch is
  pruned, its leaves are still *counted* (a cheap structural descent
  with no DP work, capped by the remaining budget), so the search
  stops after exactly the same set of orders the legacy path would
  have scored.

Lower-bound soundness (see DESIGN.md for the full argument): with
scheduled prefix ends ``E``, per-array clocks ``c``, and
``tail_min[v]`` the heaviest min-over-arrays-latency path from ``v``,

``LB = max(max(E), min(c) + max(tail_min[r] for r in ready))``

Every unscheduled node is a descendant of some ready node, array
clocks never decrease, and a chain executes sequentially at no less
than min-array latency per op, so any completion's makespan is
``>= LB``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.arch.pe import PEArrayKind
from repro.dpipe.latency import LatencyTable
from repro.dpipe.scheduler import ARRAYS, ScheduleResult, _strip_epoch
from repro.graph.dag import ComputationDAG
from repro.resilience.budget import (
    PROVENANCE_BUDGET_EXHAUSTED,
    PROVENANCE_COMPLETE,
    Budget,
    fallback_provenance,
)
from repro.resilience.ladder import RUNG_FIRST_ORDER
from repro.validate.config import validation_enabled


class InternedProblem:
    """One window/DAG interned for the fused search.

    Node names map to integer ids in DAG insertion order (the same
    order :func:`all_topological_orders` uses for its deterministic
    tie-breaks), predecessor/successor lists are id-based with
    successors rank-sorted, and latencies are flat per-array float
    lists with epoch prefixes already stripped and zero-latency nodes
    (the virtual ROOT) already resolved to 0.0.
    """

    __slots__ = (
        "names", "preds", "succs", "lat2", "lat1", "tail_min",
        "pred_map", "zero_latency",
    )

    def __init__(
        self,
        dag: ComputationDAG,
        table: LatencyTable,
        zero_latency: Set[str] = frozenset(),
    ) -> None:
        names = dag.nodes
        index = {name: i for i, name in enumerate(names)}
        pred_map = dag.pred_map()
        succ_map = dag.succ_map()
        self.names: Tuple[str, ...] = names
        self.pred_map: Dict[str, Set[str]] = pred_map
        self.zero_latency: Set[str] = set(zero_latency)
        self.preds: List[List[int]] = [
            [index[p] for p in pred_map[name]] for name in names
        ]
        # Rank-sorted successors: ids are insertion ranks, so a plain
        # ascending sort reproduces all_topological_orders' child
        # order exactly.
        self.succs: List[List[int]] = [
            sorted(index[s] for s in succ_map[name]) for name in names
        ]
        lat2: List[float] = []
        lat1: List[float] = []
        for name in names:
            if name in zero_latency:
                lat2.append(0.0)
                lat1.append(0.0)
            else:
                base = _strip_epoch(name)
                lat2.append(table.latency(base, ARRAYS[0]))
                lat1.append(table.latency(base, ARRAYS[1]))
        self.lat2 = lat2
        self.lat1 = lat1
        self.tail_min = self._tails()

    def _tails(self) -> List[float]:
        """Min-over-arrays critical path from each node (inclusive)."""
        n = len(self.names)
        indegree = [len(p) for p in self.preds]
        topo: List[int] = [v for v in range(n) if indegree[v] == 0]
        cursor = 0
        while cursor < len(topo):
            for s in self.succs[topo[cursor]]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    topo.append(s)
            cursor += 1
        tail = [0.0] * n
        for v in reversed(topo):
            heaviest = 0.0
            for s in self.succs[v]:
                if tail[s] > heaviest:
                    heaviest = tail[s]
            own = self.lat2[v] if self.lat2[v] < self.lat1[v] \
                else self.lat1[v]
            tail[v] = own + heaviest
        return tail


def _dp_over_ids(
    problem: InternedProblem, order_ids: Sequence[int]
) -> Tuple[float, List[float], List[int], float, float]:
    """Straight Eq. 43-46 DP over one interned order.

    Used for the extra (critical-path) candidate orders that the
    legacy path appends after enumeration.  Arithmetic matches
    :func:`dp_schedule` exactly.
    """
    lat2, lat1, preds = problem.lat2, problem.lat1, problem.preds
    n_total = len(problem.names)
    ends = [0.0] * n_total
    scheduled = [False] * n_total
    ends_by_pos: List[float] = []
    assign_by_pos: List[int] = []
    clock2 = clock1 = 0.0
    busy2 = busy1 = 0.0
    makespan = 0.0
    for v in order_ids:
        dep_ready = 0.0
        for p in preds[v]:
            if scheduled[p] and ends[p] > dep_ready:
                dep_ready = ends[p]
        finish2 = (clock2 if clock2 > dep_ready else dep_ready) \
            + lat2[v]
        finish1 = (clock1 if clock1 > dep_ready else dep_ready) \
            + lat1[v]
        if finish1 < finish2:  # Eq. 45 (strict: 2D wins ties)
            clock1 = finish1  # Eq. 46
            busy1 += lat1[v]
            ends[v] = finish1
            assign_by_pos.append(1)
        else:
            clock2 = finish2
            busy2 += lat2[v]
            ends[v] = finish2
            assign_by_pos.append(0)
        scheduled[v] = True
        ends_by_pos.append(ends[v])
        if ends[v] > makespan:
            makespan = ends[v]
    return makespan, ends_by_pos, assign_by_pos, busy2, busy1


class _FusedSearch:
    """DFS state for one fused enumerate-and-schedule pass."""

    def __init__(
        self,
        problem: InternedProblem,
        limit: int,
        units: Optional[Budget] = None,
    ) -> None:
        self.problem = problem
        self.budget = limit  # the legacy max-orders cap, not units
        self.units = units
        self.exhausted = False
        n = len(problem.names)
        self.n = n
        self.indegree = [len(p) for p in problem.preds]
        self.ready: List[int] = [
            v for v in range(n) if self.indegree[v] == 0
        ]
        self.order: List[int] = []
        self.ends = [0.0] * n
        self.ends_by_pos: List[float] = []
        self.assign_by_pos: List[int] = []
        self.clock2 = 0.0
        self.clock1 = 0.0
        self.busy2 = 0.0
        self.busy1 = 0.0
        self.max_end = 0.0
        # Incumbent (first-found strict minimum, as in the legacy
        # enumerate-then-score loop).
        self.best_makespan: Optional[float] = None
        self.best_order: Optional[Tuple[int, ...]] = None
        self.best_ends: List[float] = []
        self.best_assign: List[int] = []
        self.best_busy2 = 0.0
        self.best_busy1 = 0.0

    # ------------------------------------------------------------------
    # Fused DFS
    # ------------------------------------------------------------------
    def run(self) -> None:
        if self.budget > 0:
            self._descend()

    def _descend(self) -> bool:
        """Extend the current prefix; False once the budget is spent."""
        if self.units is not None and not self.units.charge():
            # Deterministic unit budget spent: stop expanding and keep
            # whatever incumbent exists (anytime behaviour).  Charged
            # per DFS node visit, so the cut point is identical on
            # every host.
            self.exhausted = True
            return False
        if len(self.order) == self.n:
            self.budget -= 1
            makespan = self.max_end
            if (
                self.best_makespan is None
                or makespan < self.best_makespan
            ):
                self.best_makespan = makespan
                self.best_order = tuple(self.order)
                self.best_ends = list(self.ends_by_pos)
                self.best_assign = list(self.assign_by_pos)
                self.best_busy2 = self.busy2
                self.best_busy1 = self.busy1
            return self.budget > 0
        if self.best_makespan is not None and self._bounded():
            # Every completion of this prefix scores >= the incumbent;
            # count its leaves against the cap without scheduling them.
            return self._count_skipped()
        problem = self.problem
        lat2, lat1 = problem.lat2, problem.lat1
        preds, succs = problem.preds, problem.succs
        ready, indegree = self.ready, self.indegree
        ends = self.ends
        for i in range(len(ready)):
            v = ready.pop(i)
            self.order.append(v)
            dep_ready = 0.0
            for p in preds[v]:
                if ends[p] > dep_ready:
                    dep_ready = ends[p]
            clock2, clock1 = self.clock2, self.clock1
            finish2 = (clock2 if clock2 > dep_ready else dep_ready) \
                + lat2[v]
            finish1 = (clock1 if clock1 > dep_ready else dep_ready) \
                + lat1[v]
            saved_busy2, saved_busy1 = self.busy2, self.busy1
            saved_max = self.max_end
            if finish1 < finish2:  # Eq. 45 (strict: 2D wins ties)
                finish = finish1
                self.clock1 = finish1  # Eq. 46
                self.busy1 += lat1[v]
                self.assign_by_pos.append(1)
            else:
                finish = finish2
                self.clock2 = finish2
                self.busy2 += lat2[v]
                self.assign_by_pos.append(0)
            ends[v] = finish
            self.ends_by_pos.append(finish)
            if finish > self.max_end:
                self.max_end = finish
            opened: List[int] = []
            for s in succs[v]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    opened.append(s)
            ready.extend(opened)
            keep_going = self._descend()
            for s in opened:
                ready.remove(s)
            for s in succs[v]:
                indegree[s] += 1
            self.order.pop()
            self.ends_by_pos.pop()
            self.assign_by_pos.pop()
            # Snapshot restore (never float subtraction): the DP state
            # seen by every sibling is bit-identical to a from-scratch
            # replay of the shared prefix.
            self.clock2, self.clock1 = clock2, clock1
            self.busy2, self.busy1 = saved_busy2, saved_busy1
            self.max_end = saved_max
            ready.insert(i, v)
            if not keep_going:
                return False
        return True

    # ------------------------------------------------------------------
    # Bound
    # ------------------------------------------------------------------
    def _bounded(self) -> bool:
        """Whether no completion of the prefix can beat the incumbent."""
        bound = self.max_end
        tail_min = self.problem.tail_min
        heaviest = 0.0
        for r in self.ready:
            if tail_min[r] > heaviest:
                heaviest = tail_min[r]
        floor = (
            self.clock2 if self.clock2 < self.clock1 else self.clock1
        ) + heaviest
        if floor > bound:
            bound = floor
        assert self.best_makespan is not None
        return bound >= self.best_makespan

    def _count_skipped(self) -> bool:
        """Count the pruned prefix's leaves against the cap.

        The legacy search would have enumerated (and scored) these
        orders, so the cap must consume them; the structural descent
        visits children in the identical deterministic order and does
        no DP work.  Total cost is bounded by the remaining budget.
        """
        if len(self.order) == self.n:
            self.budget -= 1
            return self.budget > 0
        ready, indegree = self.ready, self.indegree
        succs = self.problem.succs
        for i in range(len(ready)):
            v = ready.pop(i)
            self.order.append(v)
            opened: List[int] = []
            for s in succs[v]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    opened.append(s)
            ready.extend(opened)
            keep_going = self._count_skipped()
            for s in opened:
                ready.remove(s)
            for s in succs[v]:
                indegree[s] += 1
            self.order.pop()
            ready.insert(i, v)
            if not keep_going:
                return False
        return True


def _first_topo_order(problem: InternedProblem) -> List[int]:
    """The first topological order in the deterministic enumeration
    order (always-pick-the-lowest-ranked-ready-node), used as the
    legacy fallback when a unit budget expires before the fused DFS
    completes its first leaf."""
    indegree = [len(p) for p in problem.preds]
    ready = [v for v in range(len(problem.names)) if indegree[v] == 0]
    order: List[int] = []
    while ready:
        v = ready.pop(0)
        order.append(v)
        opened = []
        for s in problem.succs[v]:
            indegree[s] -= 1
            if indegree[s] == 0:
                opened.append(s)
        ready.extend(opened)
        ready.sort()
    return order


def fused_best_order(
    dag: ComputationDAG,
    table: LatencyTable,
    limit: int,
    zero_latency: Set[str] = frozenset(),
    extra_orders: Sequence[Tuple[str, ...]] = (),
) -> Tuple[Tuple[str, ...], ScheduleResult]:
    """Best (order, schedule) over enumerated + extra candidate orders.

    Byte-identical to the legacy two-pass search: evaluate the first
    ``limit`` topological orders of ``dag`` (in
    :func:`all_topological_orders`' deterministic enumeration order)
    with the Eq. 43-46 DP, then any ``extra_orders`` (e.g. the
    critical-path heuristic order), keeping the first strict-minimum
    makespan.

    Args:
        dag: The (window) DAG to search.
        limit: Cap on enumerated orders (the ``max_orders`` budget).
        zero_latency: Nodes scheduled at zero cost (the virtual ROOT).
        extra_orders: Candidate orders appended after enumeration,
            exactly as the legacy path appends the critical-path
            order.

    Returns:
        The winning order and its schedule.  When validation is
        enabled the winning schedule is audited in place (exact
        Eq. 43-46 replay) before being returned.
    """
    names, result, _ = fused_best_order_ex(
        dag, table, limit, zero_latency, extra_orders
    )
    return names, result


def fused_best_order_ex(
    dag: ComputationDAG,
    table: LatencyTable,
    limit: int,
    zero_latency: Set[str] = frozenset(),
    extra_orders: Sequence[Tuple[str, ...]] = (),
    units: Optional[Budget] = None,
) -> Tuple[Tuple[str, ...], ScheduleResult, str]:
    """:func:`fused_best_order` plus an anytime unit budget.

    With ``units=None`` (or an unexhausted budget) this is exactly
    :func:`fused_best_order` with ``complete`` provenance.  When the
    budget runs out mid-DFS the best incumbent so far is returned with
    ``budget_exhausted`` provenance; if no leaf was reached at all,
    the first topological order is scheduled directly (the legacy
    capped-enumeration degenerate case) and the provenance is
    ``fallback:first_order``.  ``extra_orders`` are always evaluated
    -- they are O(n) deterministic candidates, the DPipe analogue of
    the TileSeek fallback ladder.

    Returns:
        ``(order, schedule, provenance)``.
    """
    if limit <= 0:
        raise ValueError("limit must be positive")
    problem = InternedProblem(dag, table, zero_latency)
    search = _FusedSearch(problem, limit, units=units)
    search.run()
    provenance = PROVENANCE_COMPLETE
    if search.best_order is not None:
        best_names: Tuple[str, ...] = tuple(
            problem.names[v] for v in search.best_order
        )
        best = (
            search.best_makespan, search.best_ends,
            search.best_assign, search.best_busy2, search.best_busy1,
        )
        if search.exhausted:
            provenance = PROVENANCE_BUDGET_EXHAUSTED
    else:
        # Budget expired before the DFS completed any order: fall
        # back to scheduling the first topological order directly.
        first = _first_topo_order(problem)
        makespan, ends, assign, busy2, busy1 = _dp_over_ids(
            problem, first
        )
        best_names = tuple(problem.names[v] for v in first)
        best = (makespan, ends, assign, busy2, busy1)
        provenance = fallback_provenance(RUNG_FIRST_ORDER)
    index = {name: i for i, name in enumerate(problem.names)}
    for extra in extra_orders:
        ids = [index[name] for name in extra]
        makespan, ends, assign, busy2, busy1 = _dp_over_ids(
            problem, ids
        )
        if makespan < best[0]:  # strict: first-found winner stands
            best_names = tuple(extra)
            best = (makespan, ends, assign, busy2, busy1)
    makespan, ends_by_pos, assign_by_pos, busy2, busy1 = best
    end_times: Dict[str, float] = {}
    assignment: Dict[str, PEArrayKind] = {}
    for name, end, kind in zip(best_names, ends_by_pos,
                               assign_by_pos):
        end_times[name] = end
        assignment[name] = ARRAYS[kind]
    result = ScheduleResult(
        makespan=makespan,
        assignment=assignment,
        end_times=end_times,
        busy_seconds={ARRAYS[0]: busy2, ARRAYS[1]: busy1},
    )
    if validation_enabled():
        # The legacy path audits every DP pass; the fused search
        # audits the pass that becomes the plan -- an exact Eq. 43-46
        # replay of the winning schedule under the recorded choices.
        from repro.validate.schedule import audit_schedule

        audit_schedule(
            best_names, problem.pred_map, table, result,
            problem.zero_latency,
        ).raise_if_failed()
    return best_names, result, provenance
