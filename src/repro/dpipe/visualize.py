"""Schedule introspection and ASCII Gantt rendering.

DPipe's value is easiest to see on a timeline: which Einsum ran on
which array, when, and where the overlap between epochs happens.
These helpers reconstruct per-op intervals from a
:class:`~repro.dpipe.scheduler.ScheduleResult` and render them as a
text Gantt chart (used by ``examples/schedule_gantt.py`` and the
``repro`` CLI's ``inspect`` command).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set

from repro.arch.pe import PEArrayKind
from repro.dpipe.latency import LatencyTable
from repro.dpipe.scheduler import ScheduleResult, _strip_epoch


@dataclass(frozen=True)
class OpInterval:
    """One scheduled op's execution interval."""

    name: str
    array: PEArrayKind
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def schedule_timeline(
    result: ScheduleResult,
    table: LatencyTable,
    zero_latency: Set[str] = frozenset(),
) -> List[OpInterval]:
    """Reconstruct per-op intervals from a DP schedule.

    Args:
        result: The DP schedule.
        table: The latency table it was computed against.
        zero_latency: Virtual nodes (ROOT) to omit.

    Returns:
        Intervals sorted by start time.
    """
    intervals: List[OpInterval] = []
    for name, end in result.end_times.items():
        if name in zero_latency:
            continue
        kind = result.assignment[name]
        latency = table.latency(_strip_epoch(name), kind)
        intervals.append(
            OpInterval(name=name, array=kind,
                       start=end - latency, end=end)
        )
    return sorted(intervals, key=lambda iv: (iv.start, iv.name))


def render_gantt(
    intervals: Sequence[OpInterval],
    width: int = 64,
) -> str:
    """Render op intervals as an ASCII Gantt chart.

    One row per op, ``#`` for 2D-array execution and ``=`` for the 1D
    array, scaled to ``width`` columns over the schedule makespan.
    """
    if not intervals:
        return "(empty schedule)"
    if width < 8:
        raise ValueError("width must be at least 8 columns")
    makespan = max(iv.end for iv in intervals)
    if makespan <= 0:
        return "(zero-length schedule)"
    name_width = max(len(iv.name) for iv in intervals)
    lines = [
        f"{'op'.ljust(name_width)} | array | 0 {'-' * (width - 4)} "
        f"{makespan:.3e}s"
    ]
    for iv in intervals:
        begin = int(round(iv.start / makespan * width))
        finish = max(begin + 1, int(round(iv.end / makespan * width)))
        finish = min(finish, width)
        glyph = "#" if iv.array is PEArrayKind.ARRAY_2D else "="
        bar = (
            " " * begin
            + glyph * (finish - begin)
            + " " * (width - finish)
        )
        label = "2D" if iv.array is PEArrayKind.ARRAY_2D else "1D"
        lines.append(f"{iv.name.ljust(name_width)} | {label}    |"
                     f" {bar}")
    return "\n".join(lines)


def array_occupancy(
    intervals: Sequence[OpInterval],
) -> dict:
    """Busy-time totals per array over a timeline."""
    busy = {kind: 0.0 for kind in PEArrayKind}
    for iv in intervals:
        busy[iv.array] += iv.duration
    return busy
