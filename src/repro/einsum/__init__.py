"""Extended-Einsum intermediate representation.

The paper expresses every Transformer sub-layer as a *Cascade of Einsums*
(Section 2.4 and 3.1).  This package provides the IR for those cascades:

* :mod:`repro.einsum.tensor` -- named tensors with symbolic dimensions.
* :mod:`repro.einsum.operation` -- the three Extended-Einsum op kinds
  (contraction, map, reduction) plus compute-load accounting (Eq. 40).
* :mod:`repro.einsum.cascade` -- ordered op sequences with shape
  inference, dataflow queries and recurrence (running-state) support.
* :mod:`repro.einsum.evaluator` -- a NumPy reference evaluator used to
  prove the cascades numerically equivalent to textbook formulations.
* :mod:`repro.einsum.builders` -- constructors for Einsum Cascades 1-4
  (1-pass attention, QKV projection, Add & LayerNorm, FFN).
* :mod:`repro.einsum.parser` -- a tiny ``"h e p, h e m -> h m p"`` spec
  parser for concise op construction.
"""

from repro.einsum.cascade import Cascade
from repro.einsum.operation import (
    EinsumOp,
    OpKind,
    contraction,
    map_op,
    reduction,
)
from repro.einsum.parser import parse_signature
from repro.einsum.tensor import TensorSpec

__all__ = [
    "Cascade",
    "EinsumOp",
    "OpKind",
    "TensorSpec",
    "contraction",
    "map_op",
    "parse_signature",
    "reduction",
]
