"""Builders for the paper's Einsum Cascades 1-4 (Section 3.1).

Dimension-name conventions, matching the paper:

====  =====================================================
name  meaning
====  =====================================================
p     query-sequence tile length (tokens processed per tile)
m1    outer key/value sequence-tile index (recurrence loop)
m0    inner key/value sequence-tile length
d     model (hidden) dimension, ``d = h * e``
h     number of attention heads
e     query/key per-head embedding dimension
f     value per-head embedding dimension (``e == f`` in Table 2)
s     FFN hidden dimension
====  =====================================================

Each builder returns a symbolic :class:`~repro.einsum.cascade.Cascade`;
concrete sizes are supplied at evaluation/scheduling time via an
``extents`` mapping.
"""

from __future__ import annotations

from dataclasses import replace

from repro.einsum.cascade import Cascade, StateSpec
from repro.einsum.operation import contraction, map_op, reduction
from repro.einsum.tensor import tensor


def qkv_cascade(kv_cost_fraction: float = 1.0) -> Cascade:
    """Einsum Cascade 2: tiled Q/K/V projections with shared input.

    Implements Eq. 25-27: the query-side input tile ``INP_Q[d, p]`` and
    the key/value-side input ``INP_KV[d, m1, m0]`` are projected by three
    weight matrices into ``Q``, ``BK`` and ``BV``.  The three
    contractions are mutually independent (Section 3.3, "QKV").

    Args:
        kv_cost_fraction: Compute-cost multiplier on the K and V
            projections: ``kv_heads / heads`` under grouped-query
            attention, 1.0 for classic MHA.  (The symbolic shapes keep
            the full head dim; the cost weight prices the smaller
            GQA projection matrices.)
    """
    if not 0.0 < kv_cost_fraction <= 1.0:
        raise ValueError("kv_cost_fraction must be in (0, 1]")
    inp_q = tensor("INP_Q", "d", "p")
    inp_kv = tensor("INP_KV", "d", "m1", "m0")
    wq = tensor("WQ", "d", "h", "e")
    wk = tensor("WK", "d", "h", "e")
    wv = tensor("WV", "d", "h", "f")
    ops = (
        contraction("Q", (inp_q, wq), tensor("Q", "h", "e", "p")),
        replace(
            contraction(
                "BK", (inp_kv, wk),
                tensor("BK", "h", "e", "m1", "m0"),
            ),
            cost_weight=kv_cost_fraction,
        ),
        replace(
            contraction(
                "BV", (inp_kv, wv),
                tensor("BV", "h", "f", "m1", "m0"),
            ),
            cost_weight=kv_cost_fraction,
        ),
    )
    return Cascade(
        name="qkv",
        ops=ops,
        external_inputs=(inp_q, inp_kv, wq, wk, wv),
        outputs=("Q", "BK", "BV"),
    )


def attention_cascade(masked: bool = False) -> Cascade:
    """Einsum Cascade 1: FuseMax's 1-pass attention (Eq. 12-24).

    The cascade loops over the outer key/value tile index ``m1``,
    carrying three recurrent states across iterations:

    * ``RM`` -- running max (init ``-inf``, updated by Eq. 14),
    * ``RD`` -- running softmax denominator (init 0, Eq. 20),
    * ``RNV`` -- running numerator-times-V product (init 0, Eq. 22).

    After the last tile, the epilogue computes the attention output
    ``AV = RNV / RD`` (Eq. 23).  The twelve loop-body operations match
    FuseMax's "12 primitive Einsum operators" (Section 6.1).

    Args:
        masked: If True, an additive attention mask (0 for visible,
            ``-inf`` for hidden positions) is applied to the score
            block before the running-max update -- the decoder's
            masked self-attention (Section 3.2's decoder structures).
            Adds one map Einsum (``BQKM``) to the loop body.
    """
    # Per-iteration views: the m1 index is stripped from BK/BV inside
    # the loop body (the evaluator slices the external tensors).
    q = tensor("Q", "h", "e", "p")
    bk_step = tensor("BK", "h", "e", "m0")
    bv_step = tensor("BV", "h", "f", "m0")
    bqk = tensor("BQK", "h", "m0", "p")
    lm = tensor("LM", "h", "p")
    rm = tensor("RM", "h", "p")
    rmn = tensor("RMn", "h", "p")
    sln = tensor("SLN", "h", "m0", "p")
    sld = tensor("SLD", "h", "p")
    slnv = tensor("SLNV", "h", "f", "p")
    prm = tensor("PRM", "h", "p")
    rd = tensor("RD", "h", "p")
    spd = tensor("SPD", "h", "p")
    rdn = tensor("RDn", "h", "p")
    rnv = tensor("RNV", "h", "f", "p")
    spnv = tensor("SPNV", "h", "f", "p")
    rnvn = tensor("RNVn", "h", "f", "p")

    mask_step = tensor("MASK", "m0", "p")
    bqkm = tensor("BQKM", "h", "m0", "p")
    score = bqkm if masked else bqk
    mask_ops = (
        (map_op("BQKM", "add", (bqk, mask_step), bqkm),)
        if masked
        else ()
    )

    ops = (
        # Eq. 12: block dot product Q x BK.
        contraction("BQK", (q, bk_step), bqk),
        # Decoder-only: additive mask on the score block.
        *mask_ops,
        # Eq. 13: local max across the inner tile.
        reduction("LM", "max", score, lm),
        # Eq. 14: running-max update (reads previous RM state).
        map_op("RMn", "max", (rm, lm), rmn, state_inputs=("RM",)),
        # Eq. 15: local softmax numerator exp(BQK - RM).
        map_op("SLN", "exp_diff", (score, rmn), sln),
        # Eq. 16: local softmax denominator.
        reduction("SLD", "sum", sln, sld),
        # Eq. 17: numerator times V for the current tile.
        contraction("SLNV", (sln, bv_step), slnv),
        # Eq. 18: correction factor for previously accumulated tiles.
        map_op("PRM", "exp_diff", (rm, rmn), prm, state_inputs=("RM",)),
        # Eq. 19: rescale the past denominator.
        map_op("SPD", "mul", (rd, prm), spd, state_inputs=("RD",)),
        # Eq. 20: running-denominator update.
        map_op("RDn", "add", (sld, spd), rdn),
        # Eq. 21: rescale the past numerator-times-V.
        map_op(
            "SPNV", "mul", (rnv, prm), spnv, state_inputs=("RNV",)
        ),
        # Eq. 22: running numerator-times-V update.
        map_op("RNVn", "add", (slnv, spnv), rnvn),
    )
    epilogue = (
        # Eq. 23: final normalization AV = RNV / RD.
        map_op("AV", "div", (rnv, rd), tensor("AV", "h", "f", "p")),
    )
    external = [
        q,
        tensor("BK", "h", "e", "m1", "m0"),
        tensor("BV", "h", "f", "m1", "m0"),
    ]
    if masked:
        external.append(tensor("MASK", "m1", "m0", "p"))
    return Cascade(
        name="mha_1pass_masked" if masked else "mha_1pass",
        ops=ops,
        external_inputs=tuple(external),
        outputs=("AV",),
        loop_dim="m1",
        state={
            "RM": StateSpec(rm, float("-inf"), "RMn"),
            "RD": StateSpec(rd, 0.0, "RDn"),
            "RNV": StateSpec(rnv, 0.0, "RNVn"),
        },
        epilogue=epilogue,
    )


def layernorm_cascade(eps: float = 0.0) -> Cascade:
    """Einsum Cascade 3: Add & LayerNorm (Eq. 28-36).

    Normalizes over the flattened ``(h, f)`` feature vector of each
    token ``p`` after adding the residual input.  Per Li et al. (the
    paper's [23]), the affine ``gamma`` / ``beta`` are deferred into the
    next layer, so the cascade ends at the normalized ``NR`` tensor.

    Args:
        eps: Variance epsilon.  The paper's Eq. 35 has none; a non-zero
            value is accepted for numerically robust comparisons.
    """
    inp = tensor("INP", "h", "f", "p")
    av = tensor("AV", "h", "f", "p")
    iav = tensor("IAV", "h", "f", "p")
    sav = tensor("SAV", "p")
    mav = tensor("MAV", "p")
    dav = tensor("DAV", "h", "f", "p")
    qav = tensor("QAV", "h", "f", "p")
    sqav = tensor("SQAV", "p")
    mqav = tensor("MQAV", "p")
    sr = tensor("SR", "p")

    variance_in = mqav
    variance_ops = ()
    if eps:
        veps = tensor("VEPS", "p")
        variance_ops = (
            map_op("VEPS", "add_const", (mqav,), veps, const=eps),
        )
        variance_in = veps

    ops = (
        # Eq. 28: residual add.
        map_op("IAV", "add", (inp, av), iav),
        # Eq. 29: sum over the (h, f) feature vector.
        reduction("SAV", "sum", iav, sav),
        # Eq. 30: per-token mean, const = 1 / (H * F).
        map_op("MAV", "scale", (sav,), mav, inv_extent_dims=("h", "f")),
        # Eq. 31: de-meaned activations.
        map_op("DAV", "sub", (iav, mav), dav),
        # Eq. 32: squared deviations (DAV x DAV).
        map_op("QAV", "square", (dav,), qav),
        # Eq. 33: sum of squared deviations.
        reduction("SQAV", "sum", qav, sqav),
        # Eq. 34: per-token variance, const = 1 / (H * F).
        map_op(
            "MQAV", "scale", (sqav,), mqav, inv_extent_dims=("h", "f")
        ),
        *variance_ops,
        # Eq. 35: reciprocal standard deviation.
        map_op("SR", "rsqrt", (variance_in,), sr),
        # Eq. 36: normalized output.
        map_op(
            "NR", "mul", (dav, sr), tensor("NR", "h", "f", "p")
        ),
    )
    return Cascade(
        name="add_layernorm",
        ops=ops,
        external_inputs=(inp, av),
        outputs=("NR",),
    )


def ffn_cascade(activation: str = "gelu") -> Cascade:
    """Einsum Cascade 4: the feed-forward network (Eq. 37-39).

    ``FFN1`` expands to the hidden dimension ``s`` with bias, the
    activation is applied in a pipelined manner, and ``FFN2`` projects
    back to ``(h, f)`` with bias.  Partial FFN2 fragments accumulate
    on-chip across tiles (Section 3.3, "FFN").

    Args:
        activation: One of ``"relu"``, ``"gelu"``, ``"silu"``.
    """
    if activation not in ("relu", "gelu", "silu"):
        raise ValueError(f"unsupported activation {activation!r}")
    nr = tensor("NR", "h", "f", "p")
    wf1 = tensor("WF1", "h", "f", "s")
    bf1 = tensor("BF1", "s")
    wf2 = tensor("WF2", "h", "f", "s")
    bf2 = tensor("BF2", "h", "f")
    ffn1 = tensor("FFN1", "s", "p")
    ar = tensor("AR", "s", "p")

    ops = (
        # Eq. 37: first linear layer with bias.
        contraction("FFN1", (nr, wf1), ffn1, bias=bf1),
        # Eq. 38: activation, pipelined right behind FFN1 tiles.
        map_op("AR", activation, (ffn1,), ar),
        # Eq. 39: second linear layer with bias (consumes the
        # activated tile AR; the paper's FFN1 in Eq. 39 is a typo).
        contraction(
            "FFN2", (ar, wf2), tensor("FFN2", "h", "f", "p"), bias=bf2
        ),
    )
    return Cascade(
        name="ffn",
        ops=ops,
        external_inputs=(nr, wf1, bf1, wf2, bf2),
        outputs=("FFN2",),
    )


#: Sub-layer name -> cascade builder, in encoder-layer order.
SUBLAYER_BUILDERS = {
    "qkv": qkv_cascade,
    "mha": attention_cascade,
    "layernorm": layernorm_cascade,
    "ffn": ffn_cascade,
}
