"""Cascades of Einsums.

A :class:`Cascade` is an ordered sequence of Extended-Einsum operations
whose intermediate results feed later operations (Section 2.4).  Cascades
may be *recurrent*: Einsum Cascade 1 (1-pass attention) loops over the
outer sequence tile ``m1``, carrying running state (``RM``, ``RD``,
``RNV``) across iterations and finishing with an epilogue
(``AV = RNV / RD``, Eq. 23).

The cascade is the single source of truth consumed by

* the NumPy evaluator (numerical correctness),
* the DAG builder (DPipe bipartitioning and scheduling), and
* the cost model (per-op compute loads, Eq. 40).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.einsum.operation import EinsumOp
from repro.einsum.tensor import TensorSpec


@dataclass(frozen=True)
class StateSpec:
    """Recurrent state carried across loop iterations of a cascade.

    Attributes:
        spec: Tensor spec of the state (dims exclude the loop dim).
        init: Scalar initial value (e.g. ``-inf`` for a running max).
        update_from: Name of the op output assigned to this state at the
            end of each loop iteration (e.g. ``RM <- RMn``).
    """

    spec: TensorSpec
    init: float
    update_from: str


@dataclass(frozen=True)
class Cascade:
    """An ordered, validated cascade of Einsum operations.

    Attributes:
        name: Cascade name (e.g. ``"mha_1pass"``).
        ops: Loop-body operations in a valid evaluation order.  For
            non-recurrent cascades these are simply all operations.
        external_inputs: Tensors supplied from outside the cascade.
        outputs: Names of tensors the cascade exposes as results.
        loop_dim: Name of the recurrence dimension (``"m1"`` for 1-pass
            attention) or ``None`` for straight-line cascades.
        state: Recurrent state tensors by name.
        epilogue: Operations evaluated once after the loop finishes
            (may read final state values).
    """

    name: str
    ops: Tuple[EinsumOp, ...]
    external_inputs: Tuple[TensorSpec, ...]
    outputs: Tuple[str, ...]
    loop_dim: Optional[str] = None
    state: Mapping[str, StateSpec] = field(default_factory=dict)
    epilogue: Tuple[EinsumOp, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if self.loop_dim is None and self.state:
            raise ValueError(
                f"cascade {self.name!r}: state requires a loop_dim"
            )
        external = {t.name for t in self.external_inputs}
        produced: set = set()
        all_ops = list(self.ops) + list(self.epilogue)
        names = [op.name for op in all_ops]
        if len(set(names)) != len(names):
            raise ValueError(f"cascade {self.name!r}: duplicate op names")
        out_names = [op.output.name for op in all_ops]
        if len(set(out_names)) != len(out_names):
            raise ValueError(
                f"cascade {self.name!r}: duplicate output tensors"
            )
        clash = external & set(out_names)
        if clash:
            raise ValueError(
                f"cascade {self.name!r}: ops overwrite external inputs "
                f"{sorted(clash)}"
            )
        for op in self.ops:
            for inp in op.input_names():
                ok = (
                    inp in external
                    or inp in produced
                    or inp in self.state
                )
                if not ok:
                    raise ValueError(
                        f"cascade {self.name!r}: op {op.name!r} reads "
                        f"{inp!r} before it is available"
                    )
            produced.add(op.output.name)
        for op in self.epilogue:
            for inp in op.input_names():
                if not (inp in external or inp in produced
                        or inp in self.state):
                    raise ValueError(
                        f"cascade {self.name!r}: epilogue op {op.name!r} "
                        f"reads unknown tensor {inp!r}"
                    )
            produced.add(op.output.name)
        for state_name, sspec in self.state.items():
            if sspec.update_from not in produced:
                raise ValueError(
                    f"cascade {self.name!r}: state {state_name!r} updates "
                    f"from unproduced tensor {sspec.update_from!r}"
                )
        for out in self.outputs:
            if out not in produced and out not in self.state:
                raise ValueError(
                    f"cascade {self.name!r}: declared output {out!r} is "
                    "never produced"
                )

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def all_ops(self) -> Tuple[EinsumOp, ...]:
        """Loop-body plus epilogue ops, in evaluation order."""
        return tuple(self.ops) + tuple(self.epilogue)

    def op(self, name: str) -> EinsumOp:
        """Look up an op by name."""
        for candidate in self.all_ops:
            if candidate.name == name:
                return candidate
        raise KeyError(f"cascade {self.name!r} has no op {name!r}")

    def producer_of(self, tensor_name: str) -> Optional[EinsumOp]:
        """The op producing ``tensor_name``; state names resolve to the
        op producing their ``update_from`` tensor."""
        if tensor_name in self.state:
            tensor_name = self.state[tensor_name].update_from
        for candidate in self.all_ops:
            if candidate.output.name == tensor_name:
                return candidate
        return None

    def external_input(self, name: str) -> TensorSpec:
        """Look up a declared external input spec by name."""
        for spec in self.external_inputs:
            if spec.name == name:
                return spec
        raise KeyError(f"cascade {self.name!r} has no input {name!r}")

    def tensors(self) -> Dict[str, TensorSpec]:
        """All tensor specs visible in the cascade, keyed by name."""
        specs: Dict[str, TensorSpec] = {
            t.name: t for t in self.external_inputs
        }
        for state_name, sspec in self.state.items():
            specs[state_name] = sspec.spec
        for op in self.all_ops:
            specs[op.output.name] = op.output
            if op.bias is not None:
                specs.setdefault(op.bias.name, op.bias)
        return specs

    def intermediate_tensors(self) -> List[TensorSpec]:
        """Tensors produced by ops but not exposed as cascade outputs."""
        outs = set(self.outputs)
        return [
            op.output for op in self.all_ops if op.output.name not in outs
        ]

    def dims_used(self) -> Tuple[str, ...]:
        """All dimension names referenced anywhere in the cascade."""
        dims: List[str] = []
        for spec in self.tensors().values():
            for d in spec.dims:
                if d not in dims:
                    dims.append(d)
        if self.loop_dim and self.loop_dim not in dims:
            dims.append(self.loop_dim)
        return tuple(dims)

    def total_compute_load(self, extents: Mapping[str, int]) -> float:
        """Sum of Eq. 40 loads over all ops for one full evaluation.

        Loop-body loads are multiplied by the loop trip count
        (``extents[loop_dim]``); epilogue loads count once.
        """
        trips = int(extents[self.loop_dim]) if self.loop_dim else 1
        body = sum(op.compute_load(extents) for op in self.ops)
        epi = sum(op.compute_load(extents) for op in self.epilogue)
        return body * trips + epi

    def __iter__(self) -> Iterable[EinsumOp]:
        return iter(self.all_ops)

    def __len__(self) -> int:
        return len(self.ops) + len(self.epilogue)
