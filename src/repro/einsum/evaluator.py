"""NumPy reference evaluator for Einsum cascades.

This evaluator exists to prove that the cascades TransFusion schedules
are *numerically* the computation they claim to be: 1-pass attention
(Cascade 1) must equal softmax attention, the LayerNorm cascade
(Cascade 3) must equal textbook LayerNorm, and so on.  Tests pair this
module with :mod:`repro.reference`.

The evaluator is intentionally simple and explicit -- it mirrors the
cascade semantics step by step, including the ``m1`` recurrence loop of
1-pass attention with its running max / denominator / numerator state.
"""

from __future__ import annotations

import string
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.einsum.cascade import Cascade
from repro.einsum.operation import (
    MAP_FUNCTIONS,
    REDUCE_FUNCTIONS,
    EinsumOp,
    OpKind,
)

def _aligned(
    array: np.ndarray,
    in_dims: Tuple[str, ...],
    out_dims: Tuple[str, ...],
) -> np.ndarray:
    """Broadcast-align ``array`` (dims ``in_dims``) to ``out_dims``.

    Input dims must be a subset of output dims; missing dims become
    broadcast axes of extent 1.
    """
    order = [d for d in out_dims if d in in_dims]
    perm = [in_dims.index(d) for d in order]
    array = np.transpose(array, perm)
    shape = [
        array.shape[order.index(d)] if d in order else 1 for d in out_dims
    ]
    return array.reshape(shape)


def _einsum_subscripts(op: EinsumOp) -> str:
    """Build a ``np.einsum`` subscript string for a contraction op."""
    letters: Dict[str, str] = {}
    pool = iter(string.ascii_lowercase)
    for spec in list(op.inputs) + [op.output]:
        for d in spec.dims:
            if d not in letters:
                letters[d] = next(pool)
    ins = ",".join(
        "".join(letters[d] for d in t.dims) for t in op.inputs
    )
    out = "".join(letters[d] for d in op.output.dims)
    return f"{ins}->{out}"


def evaluate_op(
    op: EinsumOp,
    env: Mapping[str, np.ndarray],
    extents: Mapping[str, int],
) -> np.ndarray:
    """Evaluate one Extended-Einsum op against an environment.

    Args:
        op: The operation to evaluate.
        env: Tensor name -> concrete array.  Must contain every input
            (and bias) of ``op``.
        extents: Dimension extents, used for extent-dependent constants
            such as LayerNorm's ``1 / (H * F)``.

    Returns:
        The output array, with axes ordered as ``op.output.dims``.
    """
    arrays = [np.asarray(env[t.name], dtype=np.float64) for t in op.inputs]
    if op.kind is OpKind.CONTRACTION:
        result = np.einsum(_einsum_subscripts(op), *arrays)
        if op.bias is not None:
            bias = np.asarray(env[op.bias.name], dtype=np.float64)
            result = result + _aligned(
                bias, op.bias.dims, op.output.dims
            )
        return result
    if op.kind is OpKind.MAP:
        fn = MAP_FUNCTIONS[op.fn][1]
        aligned = [
            _aligned(arr, t.dims, op.output.dims)
            for arr, t in zip(arrays, op.inputs)
        ]
        return fn(*aligned, const=op.effective_const(extents))
    # REDUCTION
    source = op.inputs[0]
    reducer = REDUCE_FUNCTIONS[op.fn]
    axes = tuple(
        i for i, d in enumerate(source.dims) if d not in op.output.dims
    )
    reduced = reducer(arrays[0], axis=axes)
    kept = [d for d in source.dims if d in op.output.dims]
    perm = [kept.index(d) for d in op.output.dims]
    return np.transpose(reduced, perm)


def _check_input_shapes(
    cascade: Cascade,
    inputs: Mapping[str, np.ndarray],
    extents: Mapping[str, int],
) -> None:
    for spec in cascade.external_inputs:
        if spec.name not in inputs:
            raise KeyError(
                f"cascade {cascade.name!r}: missing input {spec.name!r}"
            )
        got = np.asarray(inputs[spec.name]).shape
        want = spec.shape(extents)
        if got != want:
            raise ValueError(
                f"cascade {cascade.name!r}: input {spec.name!r} has shape "
                f"{got}, expected {want}"
            )


def _slice_loop_inputs(
    cascade: Cascade,
    inputs: Mapping[str, np.ndarray],
    step: int,
) -> Dict[str, np.ndarray]:
    """Slice loop-indexed external inputs at iteration ``step``."""
    env: Dict[str, np.ndarray] = {}
    for spec in cascade.external_inputs:
        arr = np.asarray(inputs[spec.name], dtype=np.float64)
        if cascade.loop_dim in spec.dims:
            axis = spec.dims.index(cascade.loop_dim)
            arr = np.take(arr, step, axis=axis)
        env[spec.name] = arr
    return env


def evaluate_cascade(
    cascade: Cascade,
    inputs: Mapping[str, np.ndarray],
    extents: Mapping[str, int],
) -> Dict[str, np.ndarray]:
    """Evaluate a cascade and return its declared outputs.

    Args:
        cascade: The cascade to run.
        inputs: External input arrays keyed by tensor name, shaped per
            the cascade's external specs under ``extents``.
        extents: Dimension extents (must cover the loop dim if any).

    Returns:
        Output tensor name -> array.
    """
    _check_input_shapes(cascade, inputs, extents)
    if cascade.loop_dim is None:
        env: Dict[str, np.ndarray] = {
            name: np.asarray(arr, dtype=np.float64)
            for name, arr in inputs.items()
        }
        for op in cascade.ops:
            env[op.output.name] = evaluate_op(op, env, extents)
        for op in cascade.epilogue:
            env[op.output.name] = evaluate_op(op, env, extents)
        return {name: env[name] for name in cascade.outputs}

    trips = int(extents[cascade.loop_dim])
    if trips <= 0:
        raise ValueError(
            f"loop dim {cascade.loop_dim!r} must have positive extent"
        )
    state: Dict[str, np.ndarray] = {
        name: np.full(sspec.spec.shape(extents), sspec.init)
        for name, sspec in cascade.state.items()
    }
    last_env: Dict[str, np.ndarray] = {}
    for step in range(trips):
        env = _slice_loop_inputs(cascade, inputs, step)
        env.update(state)
        for op in cascade.ops:
            env[op.output.name] = evaluate_op(op, env, extents)
        for name, sspec in cascade.state.items():
            state[name] = env[sspec.update_from]
        last_env = env
    epilogue_env = dict(last_env)
    epilogue_env.update(state)
    for op in cascade.epilogue:
        epilogue_env[op.output.name] = evaluate_op(op, epilogue_env, extents)
    results: Dict[str, np.ndarray] = {}
    for name in cascade.outputs:
        if name in cascade.state:
            results[name] = state[name]
        else:
            results[name] = epilogue_env[name]
    return results
