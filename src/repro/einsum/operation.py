"""Extended-Einsum operations.

The Extended Einsum abstraction (Section 2.4 of the paper) generalizes
classic tensor contraction with user-defined *map* and *reduce*
operations.  Three operation kinds cover every equation in Einsum
Cascades 1-4:

* :data:`OpKind.CONTRACTION` -- multiplicative contraction over shared
  indices (Eq. 5), optionally followed by a broadcast bias add, e.g.
  ``FFN1[s,p] = NR[h,f,p] x WF1[h,f,s] + BF1[s]`` (Eq. 37).
* :data:`OpKind.MAP` -- element-wise map over broadcast-aligned inputs,
  e.g. ``SLN = exp(BQK - RM)`` (Eq. 15).
* :data:`OpKind.REDUCTION` -- reduce one input over the dims absent from
  the output, e.g. ``LM[h,p] = max over m0 of BQK[h,m0,p]`` (Eq. 13).

Every op reports its *compute load* per Eq. 40: the product of its output
dimension extents and its reduction dimension extents.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.einsum.tensor import TensorSpec


class OpKind(enum.Enum):
    """The three Extended-Einsum operation kinds."""

    CONTRACTION = "contraction"
    MAP = "map"
    REDUCTION = "reduction"


def _gelu(x: np.ndarray) -> np.ndarray:
    """Exact GeLU using the Gaussian CDF (erf form)."""
    from math import sqrt

    from scipy.special import erf  # scipy is an allowed dependency

    return 0.5 * x * (1.0 + erf(x / sqrt(2.0)))


#: Registry of map functions: name -> (arity, callable).  The callable
#: receives broadcast-aligned input arrays plus an optional ``const``.
MAP_FUNCTIONS: Dict[str, Tuple[int, Callable[..., np.ndarray]]] = {
    "identity": (1, lambda a, const=None: a),
    "add": (2, lambda a, b, const=None: a + b),
    "sub": (2, lambda a, b, const=None: a - b),
    "mul": (2, lambda a, b, const=None: a * b),
    "div": (2, lambda a, b, const=None: a / b),
    "max": (2, lambda a, b, const=None: np.maximum(a, b)),
    "exp": (1, lambda a, const=None: np.exp(a)),
    "exp_diff": (2, lambda a, b, const=None: np.exp(a - b)),
    "scale": (1, lambda a, const=None: a * const),
    "add_const": (1, lambda a, const=None: a + const),
    "square": (1, lambda a, const=None: a * a),
    "rsqrt": (1, lambda a, const=None: 1.0 / np.sqrt(a)),
    "relu": (1, lambda a, const=None: np.maximum(a, 0.0)),
    "gelu": (1, lambda a, const=None: _gelu(a)),
    "silu": (1, lambda a, const=None: a / (1.0 + np.exp(-a))),
}

#: Registry of reduction functions: name -> numpy reducer.
REDUCE_FUNCTIONS: Dict[str, Callable[..., np.ndarray]] = {
    "sum": np.sum,
    "max": np.max,
}


@dataclass(frozen=True)
class EinsumOp:
    """One Extended-Einsum operation inside a cascade.

    Attributes:
        name: Unique op name within its cascade (e.g. ``"BQK"``).
        kind: Operation kind (contraction / map / reduction).
        inputs: Input tensor specs, in evaluation order.
        output: Output tensor spec.
        fn: Map- or reduce-function name, looked up in the registries
            above.  ``None`` for plain contractions.
        const: Optional scalar used by ``scale`` / ``add_const`` maps.
        bias: Optional bias tensor added (broadcast) after a contraction.
        state_inputs: Names of inputs that are *recurrent state* --
            values carried from the previous loop step (e.g. ``RM`` in
            Eq. 14).  State inputs do not create intra-epoch DAG edges.
        inv_extent_dims: Dimension names whose extent product divides
            the constant at evaluation time.  LayerNorm's mean uses
            ``const = 1 / (H * F)`` (Eq. 30) without baking shapes into
            the symbolic cascade.
        cost_weight: Multiplier on the Eq. 40 compute load; 1.0 for all
            paper ops, exposed for sensitivity studies.
    """

    name: str
    kind: OpKind
    inputs: Tuple[TensorSpec, ...]
    output: TensorSpec
    fn: Optional[str] = None
    const: Optional[float] = None
    bias: Optional[TensorSpec] = None
    state_inputs: Tuple[str, ...] = field(default_factory=tuple)
    inv_extent_dims: Tuple[str, ...] = field(default_factory=tuple)
    cost_weight: float = 1.0

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        if not self.inputs:
            raise ValueError(f"op {self.name!r} has no inputs")
        input_names = {t.name for t in self.inputs}
        unknown_state = set(self.state_inputs) - input_names
        if unknown_state:
            raise ValueError(
                f"op {self.name!r}: state_inputs {sorted(unknown_state)} "
                "are not inputs"
            )
        if self.kind is OpKind.CONTRACTION:
            all_in = set().union(*(t.dims for t in self.inputs))
            stray = set(self.output.dims) - all_in
            if stray:
                raise ValueError(
                    f"contraction {self.name!r}: output dims {sorted(stray)} "
                    "do not appear in any input"
                )
            if self.bias is not None:
                stray_bias = set(self.bias.dims) - set(self.output.dims)
                if stray_bias:
                    raise ValueError(
                        f"contraction {self.name!r}: bias dims "
                        f"{sorted(stray_bias)} not in output"
                    )
        elif self.kind is OpKind.MAP:
            if self.fn not in MAP_FUNCTIONS:
                raise ValueError(
                    f"map op {self.name!r}: unknown fn {self.fn!r}"
                )
            arity = MAP_FUNCTIONS[self.fn][0]
            if len(self.inputs) != arity:
                raise ValueError(
                    f"map op {self.name!r}: fn {self.fn!r} expects {arity} "
                    f"inputs, got {len(self.inputs)}"
                )
            for t in self.inputs:
                stray = set(t.dims) - set(self.output.dims)
                if stray:
                    raise ValueError(
                        f"map op {self.name!r}: input {t.name!r} dims "
                        f"{sorted(stray)} not in output (no implicit "
                        "reduction in map ops)"
                    )
        elif self.kind is OpKind.REDUCTION:
            if self.fn not in REDUCE_FUNCTIONS:
                raise ValueError(
                    f"reduction {self.name!r}: unknown fn {self.fn!r}"
                )
            if len(self.inputs) != 1:
                raise ValueError(
                    f"reduction {self.name!r}: expects exactly one input"
                )
            stray = set(self.output.dims) - set(self.inputs[0].dims)
            if stray:
                raise ValueError(
                    f"reduction {self.name!r}: output dims {sorted(stray)} "
                    "not in input"
                )
            if set(self.output.dims) == set(self.inputs[0].dims):
                raise ValueError(
                    f"reduction {self.name!r}: nothing to reduce"
                )

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def reduction_dims(self) -> Tuple[str, ...]:
        """Dims reduced away, in first-appearance order (Eq. 40)."""
        out = set(self.output.dims)
        seen = []
        for t in self.inputs:
            for d in t.dims:
                if d not in out and d not in seen:
                    seen.append(d)
        return tuple(seen)

    @property
    def output_dims(self) -> Tuple[str, ...]:
        """The output dimension names."""
        return self.output.dims

    @property
    def is_gemm_like(self) -> bool:
        """Whether this op is a multiply-accumulate contraction.

        GEMM-like ops prefer the 2D PE array (Table 1); map and
        reduction ops are streaming/vector work for the 1D array.
        """
        return (
            self.kind is OpKind.CONTRACTION and bool(self.reduction_dims)
        )

    def effective_const(self, extents: Mapping[str, int]) -> Optional[float]:
        """The scalar constant after applying :attr:`inv_extent_dims`."""
        if self.const is None and not self.inv_extent_dims:
            return None
        value = 1.0 if self.const is None else float(self.const)
        for dim in self.inv_extent_dims:
            value /= float(extents[dim])
        return value

    def input_names(self) -> Tuple[str, ...]:
        """Names of all input tensors (including state inputs)."""
        return tuple(t.name for t in self.inputs) + (
            (self.bias.name,) if self.bias is not None else ()
        )

    def dataflow_input_names(self) -> Tuple[str, ...]:
        """Input names that create DAG edges (state inputs excluded)."""
        state = set(self.state_inputs)
        return tuple(n for n in self.input_names() if n not in state)

    # ------------------------------------------------------------------
    # Cost model (Eq. 40)
    # ------------------------------------------------------------------
    def compute_load(self, extents: Mapping[str, int]) -> float:
        """Scalar-operation count: Eq. 40 of the paper.

        ``load = prod(output dims) * prod(reduction dims)``, scaled by
        :attr:`cost_weight`.
        """
        out = math.prod(int(extents[d]) for d in self.output.dims) or 1
        red = math.prod(int(extents[d]) for d in self.reduction_dims) or 1
        return float(out * red) * self.cost_weight

    def __str__(self) -> str:
        ins = ", ".join(str(t) for t in self.inputs)
        tag = self.fn or "x"
        return f"{self.output} = {tag}({ins})"


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def contraction(
    name: str,
    inputs: Tuple[TensorSpec, ...],
    output: TensorSpec,
    bias: Optional[TensorSpec] = None,
) -> EinsumOp:
    """Build a contraction op (optionally with a broadcast bias add)."""
    return EinsumOp(
        name=name,
        kind=OpKind.CONTRACTION,
        inputs=inputs,
        output=output,
        bias=bias,
    )


def map_op(
    name: str,
    fn: str,
    inputs: Tuple[TensorSpec, ...],
    output: TensorSpec,
    const: Optional[float] = None,
    state_inputs: Tuple[str, ...] = (),
    inv_extent_dims: Tuple[str, ...] = (),
) -> EinsumOp:
    """Build an element-wise map op."""
    return EinsumOp(
        name=name,
        kind=OpKind.MAP,
        inputs=inputs,
        output=output,
        fn=fn,
        const=const,
        state_inputs=state_inputs,
        inv_extent_dims=inv_extent_dims,
    )


def reduction(
    name: str,
    fn: str,
    input_spec: TensorSpec,
    output: TensorSpec,
) -> EinsumOp:
    """Build a reduction op (``fn`` is ``"sum"`` or ``"max"``)."""
    return EinsumOp(
        name=name,
        kind=OpKind.REDUCTION,
        inputs=(input_spec,),
        output=output,
        fn=fn,
    )
