"""Tiny signature parser for Einsum specs.

Signatures use whitespace-separated dimension names so multi-character
dims (``m0``, ``m1``) are unambiguous::

    parse_signature("h e p, h e m0 -> h m0 p")
    == ((("h", "e", "p"), ("h", "e", "m0")), ("h", "m0", "p"))
"""

from __future__ import annotations

from typing import Tuple


def parse_signature(
    signature: str,
) -> Tuple[Tuple[Tuple[str, ...], ...], Tuple[str, ...]]:
    """Parse ``"in1, in2 -> out"`` into dim tuples.

    Args:
        signature: Einsum-like signature with whitespace-separated dims.

    Returns:
        ``(input_dim_tuples, output_dims)``.

    Raises:
        ValueError: If the signature is malformed.
    """
    if signature.count("->") != 1:
        raise ValueError(f"signature needs exactly one '->': {signature!r}")
    lhs, rhs = signature.split("->")
    inputs = tuple(
        tuple(part.split()) for part in lhs.split(",")
    )
    output = tuple(rhs.split())
    if any(len(dims) == 0 for dims in inputs):
        raise ValueError(f"empty input term in signature {signature!r}")
    for dims in inputs + (output,):
        if len(set(dims)) != len(dims):
            raise ValueError(
                f"repeated dim within one term of {signature!r}"
            )
    return inputs, output
