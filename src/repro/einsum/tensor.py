"""Symbolic tensor specifications.

A :class:`TensorSpec` names a tensor and lists its dimensions by *name*
(e.g. ``("h", "e", "p")``).  Concrete sizes live in a separate ``extents``
mapping (dimension name -> integer extent) so the same cascade can be
instantiated for any model shape or tile size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Tuple


@dataclass(frozen=True)
class TensorSpec:
    """A named tensor with symbolic dimensions.

    Attributes:
        name: Unique tensor name within a cascade (e.g. ``"BQK"``).
        dims: Ordered dimension names (e.g. ``("h", "m0", "p")``).
    """

    name: str
    dims: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tensor name must be non-empty")
        if len(set(self.dims)) != len(self.dims):
            raise ValueError(
                f"tensor {self.name!r} has repeated dims: {self.dims}"
            )

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.dims)

    def shape(self, extents: Mapping[str, int]) -> Tuple[int, ...]:
        """Concrete shape under the given dimension extents."""
        missing = [d for d in self.dims if d not in extents]
        if missing:
            raise KeyError(
                f"tensor {self.name!r}: extents missing dims {missing}"
            )
        return tuple(int(extents[d]) for d in self.dims)

    def size(self, extents: Mapping[str, int]) -> int:
        """Number of elements under the given extents."""
        return math.prod(self.shape(extents)) if self.dims else 1

    def bytes(self, extents: Mapping[str, int], word_bytes: int = 2) -> int:
        """Footprint in bytes assuming ``word_bytes`` bytes per element."""
        if word_bytes <= 0:
            raise ValueError("word_bytes must be positive")
        return self.size(extents) * word_bytes

    def has_dim(self, dim: str) -> bool:
        """Whether ``dim`` appears in this tensor."""
        return dim in self.dims

    def __str__(self) -> str:
        return f"{self.name}[{','.join(self.dims)}]"


def tensor(name: str, *dims: str) -> TensorSpec:
    """Convenience constructor: ``tensor("Q", "h", "e", "p")``."""
    return TensorSpec(name=name, dims=tuple(dims))
