"""Per-figure experiment generators (Section 6.2).

Each ``figNN`` module produces the data series of the corresponding
paper figure; the :mod:`benchmarks` harnesses print them as tables and
the examples visualize them.  All generators share the memoized
:mod:`repro.experiments.runner`.
"""

from repro.experiments.runner import (
    DEFAULT_SEQ_LENGTHS,
    EVAL_MODELS,
    get_report,
)

__all__ = ["DEFAULT_SEQ_LENGTHS", "EVAL_MODELS", "get_report"]

#: Extension-study modules (importable on demand): batch_sweep,
#: decode, sensitivity, ablations.
