"""Ablation experiments for the two schedulers.

*DPipe ablation* -- disable epoch pipelining and/or the DP per-op array
assignment (Eq. 45) and measure the slowdown, isolating which DPipe
mechanism matters on which architecture (pipelining on cloud,
array load-balancing on edge).

*TileSeek ablation* -- compare MCTS against random search at equal
evaluation budget and against exhaustive grid search (the optimum).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.arch.spec import named_architecture
from repro.core.executor import TransFusionExecutor
from repro.dpipe.planner import DPipeOptions
from repro.model.config import named_model
from repro.model.workload import Workload
from repro.tileseek.baseline_search import (
    ExhaustiveTilingSearch,
    RandomTilingSearch,
)
from repro.tileseek.search import TileSeek

#: DPipe variants: name -> options.
DPIPE_VARIANTS: Dict[str, DPipeOptions] = {
    "full": DPipeOptions(),
    "no-pipeline": DPipeOptions(enable_pipelining=False),
    "no-dp-assign": DPipeOptions(enable_dp_assignment=False),
    "static": DPipeOptions(
        enable_pipelining=False, enable_dp_assignment=False
    ),
}


def dpipe_ablation(
    model: str = "llama3",
    seq_len: int = 65536,
    archs: Sequence[str] = ("cloud", "edge"),
    batch: int = 64,
) -> Dict[str, Dict[str, float]]:
    """Per-layer latency of each DPipe variant.

    Returns:
        ``{arch: {variant: latency_seconds}}``.
    """
    workload = Workload(named_model(model), seq_len=seq_len,
                        batch=batch)
    results: Dict[str, Dict[str, float]] = {}
    for arch_name in archs:
        arch = named_architecture(arch_name)
        per_variant: Dict[str, float] = {}
        for name, options in DPIPE_VARIANTS.items():
            executor = TransFusionExecutor(dpipe_options=options)
            report = executor.run(workload, arch)
            per_variant[name] = report.latency_seconds(arch)
        results[arch_name] = per_variant
    return results


def tileseek_ablation(
    model: str = "llama3",
    seq_len: int = 65536,
    arch_name: str = "edge",
    iterations: int = 400,
    seed: int = 0,
    batch: int = 64,
) -> Dict[str, Dict[str, float]]:
    """Search-quality comparison: MCTS vs random vs exhaustive.

    Returns:
        ``{searcher: {"dram_words": w, "evaluations": n,
        "best_reward": r}}``.
    """
    workload = Workload(named_model(model), seq_len=seq_len,
                        batch=batch)
    arch = named_architecture(arch_name)
    searchers = {
        "mcts": TileSeek(iterations=iterations, seed=seed),
        "random": RandomTilingSearch(
            iterations=iterations, seed=seed
        ),
        "exhaustive": ExhaustiveTilingSearch(iterations=1),
    }
    results: Dict[str, Dict[str, float]] = {}
    for name, searcher in searchers.items():
        outcome = searcher.search(workload, arch)
        results[name] = {
            "dram_words": outcome.assessment.dram_words,
            "evaluations": float(outcome.stats.evaluations),
            "best_reward": outcome.stats.best_reward,
        }
    return results
