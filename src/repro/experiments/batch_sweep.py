"""Batch-size tiling study (Section 3.1/5: the ``b`` factor).

The paper fixes ``B = 64`` for its figures but notes that batch-size
tiling is handled by TileSeek's ``B`` factor.  This experiment sweeps
the batch size and records (a) the executor speedups and (b) the
batch tile TileSeek selects under the Table-2 constraints.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.arch.spec import named_architecture
from repro.baselines.registry import named_executor
from repro.core.executor import TransFusionExecutor
from repro.model.config import named_model
from repro.model.workload import Workload

DEFAULT_BATCHES = (1, 4, 16, 64, 256)


def batch_sweep(
    model: str = "llama3",
    seq_len: int = 16384,
    batches: Sequence[int] = DEFAULT_BATCHES,
    arch_name: str = "cloud",
) -> Dict[int, Dict[str, float]]:
    """Per-batch-size results.

    Returns:
        ``{batch: {"speedup_vs_fusemax": s, "tile_b": b,
        "tile_p": p, "kv_passes": k}}``.
    """
    arch = named_architecture(arch_name)
    results: Dict[int, Dict[str, float]] = {}
    for batch in batches:
        workload = Workload(named_model(model), seq_len=seq_len,
                            batch=batch)
        fusemax = named_executor("fusemax").run(workload, arch)
        tf_exec = TransFusionExecutor()
        transfusion = tf_exec.run(workload, arch)
        tiling = tf_exec.tiling(workload, arch)
        results[batch] = {
            "speedup_vs_fusemax": (
                fusemax.latency_seconds(arch)
                / transfusion.latency_seconds(arch)
            ),
            "tile_b": float(tiling.config.b),
            "tile_p": float(tiling.config.p),
            "kv_passes": float(tiling.assessment.kv_passes),
            "latency_s": transfusion.latency_seconds(arch),
        }
    return results
