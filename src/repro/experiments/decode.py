"""Autoregressive decode study (incremental generation).

During generation each step processes one new token (``P = 1`` per
batch element) against the accumulated KV cache of length ``M`` --
structurally a cross-attention workload.  The regime flips relative
to prefill: there is no sequence-level parallelism to fill PE rows,
weights stream per step, and everything becomes bandwidth-bound.  This
study measures per-token decode cost vs. context length under each
executor -- a scenario the paper's framework supports but does not
evaluate.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.arch.spec import named_architecture
from repro.baselines.registry import named_executor
from repro.model.config import named_model
from repro.model.workload import Workload

DEFAULT_CONTEXTS = (1024, 8192, 65536, 262144)


def decode_workload(
    model: str, context: int, batch: int
) -> Workload:
    """One generation step: a single query token per batch element
    attending over a ``context``-token KV cache."""
    return Workload(
        named_model(model),
        seq_len=1,
        batch=batch,
        kv_seq_len=context,
        project_kv=False,
    )


def decode_sweep(
    model: str = "llama3",
    contexts: Sequence[int] = DEFAULT_CONTEXTS,
    arch_name: str = "cloud",
    batch: int = 64,
    executors: Sequence[str] = ("unfused", "fusemax",
                                "transfusion"),
) -> Dict[int, Dict[str, float]]:
    """Per-step decode latency by context length.

    Returns:
        ``{context: {executor: seconds_per_step_per_layer}}``.
    """
    arch = named_architecture(arch_name)
    results: Dict[int, Dict[str, float]] = {}
    for context in contexts:
        workload = decode_workload(model, context, batch)
        results[context] = {
            name: named_executor(name).run(workload, arch)
            .latency_seconds(arch)
            for name in executors
        }
    return results
