"""Figure 8: end-to-end speedup over Unfused.

(a) Llama3 across sequence lengths 1K-1M on cloud and edge.
(b) Model-wise comparison (BERT, TrXL, T5, XLM, Llama3) at 64K.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.runner import (
    DEFAULT_SEQ_LENGTHS,
    EVAL_MODELS,
    architecture,
    get_report,
)
from repro.metrics.speedup import speedup

#: Executors plotted in Figure 8, in bar order.
EXECUTORS: Tuple[str, ...] = (
    "flat", "fusemax", "fusemax+lf", "transfusion",
)


def fig8a(
    model: str = "llama3",
    seq_lengths: Sequence[int] = DEFAULT_SEQ_LENGTHS,
    archs: Sequence[str] = ("cloud", "edge"),
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Speedup over Unfused across sequence lengths.

    Returns:
        ``{arch: {seq_len: {executor: speedup}}}``.
    """
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for arch_name in archs:
        arch = architecture(arch_name)
        per_seq: Dict[int, Dict[str, float]] = {}
        for seq in seq_lengths:
            base = get_report("unfused", model, seq, arch_name)
            per_seq[seq] = {
                name: speedup(
                    base, get_report(name, model, seq, arch_name),
                    arch,
                )
                for name in EXECUTORS
            }
        results[arch_name] = per_seq
    return results


def fig8b(
    seq_len: int = 65536,
    models: Sequence[str] = EVAL_MODELS,
    archs: Sequence[str] = ("cloud", "edge"),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Model-wise speedup over Unfused at one sequence length.

    Returns:
        ``{arch: {model: {executor: speedup}}}``.
    """
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for arch_name in archs:
        arch = architecture(arch_name)
        per_model: Dict[str, Dict[str, float]] = {}
        for model in models:
            base = get_report("unfused", model, seq_len, arch_name)
            per_model[model] = {
                name: speedup(
                    base,
                    get_report(name, model, seq_len, arch_name),
                    arch,
                )
                for name in EXECUTORS
            }
        results[arch_name] = per_model
    return results
