"""Figure 9: impact of the edge 2D PE array size (32x32, 64x64).

(a) Llama3 speedup over Unfused across sequence lengths under both
PE configurations.  (b) Model-wise comparison at 64K.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.fig08_speedup import EXECUTORS
from repro.experiments.runner import (
    DEFAULT_SEQ_LENGTHS,
    EVAL_MODELS,
    architecture,
    get_report,
)
from repro.metrics.speedup import speedup

#: The Section 6.2 edge variants (Table 3 edge resized; 64x64 raises
#: the buffer to 8 MB).
EDGE_VARIANTS = ("edge32", "edge64")


def fig9a(
    model: str = "llama3",
    seq_lengths: Sequence[int] = DEFAULT_SEQ_LENGTHS,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Speedup over Unfused per edge PE variant and sequence length."""
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for arch_name in EDGE_VARIANTS:
        arch = architecture(arch_name)
        per_seq: Dict[int, Dict[str, float]] = {}
        for seq in seq_lengths:
            base = get_report("unfused", model, seq, arch_name)
            per_seq[seq] = {
                name: speedup(
                    base, get_report(name, model, seq, arch_name),
                    arch,
                )
                for name in EXECUTORS
            }
        results[arch_name] = per_seq
    return results


def fig9b(
    seq_len: int = 65536,
    models: Sequence[str] = EVAL_MODELS,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Model-wise speedup at 64K per edge PE variant."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for arch_name in EDGE_VARIANTS:
        arch = architecture(arch_name)
        per_model: Dict[str, Dict[str, float]] = {}
        for model in models:
            base = get_report("unfused", model, seq_len, arch_name)
            per_model[model] = {
                name: speedup(
                    base,
                    get_report(name, model, seq_len, arch_name),
                    arch,
                )
                for name in EXECUTORS
            }
        results[arch_name] = per_model
    return results
