"""Figure 10: 1D and 2D PE array utilization on the cloud architecture.

(a) Llama3 across sequence lengths.  (b) Model-wise at 64K.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.arch.pe import PEArrayKind
from repro.experiments.runner import (
    DEFAULT_SEQ_LENGTHS,
    EVAL_MODELS,
    architecture,
    get_report,
)

#: Executors shown in Figure 10.
EXECUTORS: Tuple[str, ...] = (
    "unfused", "flat", "fusemax", "fusemax+lf", "transfusion",
)


def _utilization(
    executor: str, model: str, seq_len: int, arch_name: str
) -> Dict[str, float]:
    arch = architecture(arch_name)
    util = get_report(executor, model, seq_len, arch_name).utilization(
        arch
    )
    return {
        "2d": util[PEArrayKind.ARRAY_2D],
        "1d": util[PEArrayKind.ARRAY_1D],
    }


def fig10a(
    model: str = "llama3",
    seq_lengths: Sequence[int] = DEFAULT_SEQ_LENGTHS,
    arch_name: str = "cloud",
) -> Dict[int, Dict[str, Dict[str, float]]]:
    """Utilization per sequence length.

    Returns:
        ``{seq_len: {executor: {"2d": u, "1d": u}}}``.
    """
    return {
        seq: {
            name: _utilization(name, model, seq, arch_name)
            for name in EXECUTORS
        }
        for seq in seq_lengths
    }


def fig10b(
    seq_len: int = 65536,
    models: Sequence[str] = EVAL_MODELS,
    arch_name: str = "cloud",
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Utilization per model at one sequence length."""
    return {
        model: {
            name: _utilization(name, model, seq_len, arch_name)
            for name in EXECUTORS
        }
        for model in models
    }
