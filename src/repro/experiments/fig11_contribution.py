"""Figure 11: layer-wise speedup-contribution breakdown.

Decomposes TransFusion's speedup over FuseMax per sub-layer (QKV, MHA,
Add & LayerNorm, FFN) using Eq. 47-48, for Llama3 across sequence
lengths on both architectures.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.runner import (
    DEFAULT_SEQ_LENGTHS,
    architecture,
    get_report,
)
from repro.metrics.speedup import speedup_contributions


def fig11(
    model: str = "llama3",
    seq_lengths: Sequence[int] = DEFAULT_SEQ_LENGTHS,
    archs: Sequence[str] = ("cloud", "edge"),
    baseline: str = "fusemax",
    candidate: str = "transfusion",
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Speedup contributions per layer.

    Returns:
        ``{arch: {seq_len: {phase: contribution}}}`` with contributions
        summing to 1 per (arch, seq_len).
    """
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for arch_name in archs:
        arch = architecture(arch_name)
        per_seq: Dict[int, Dict[str, float]] = {}
        for seq in seq_lengths:
            base = get_report(baseline, model, seq, arch_name)
            cand = get_report(candidate, model, seq, arch_name)
            per_seq[seq] = speedup_contributions(base, cand, arch)
        results[arch_name] = per_seq
    return results
