"""Figure 12: energy consumption normalized to Unfused.

(a) Llama3 across sequence lengths on cloud and edge.
(b) Model-wise comparison at 64K.

Lower is better (the paper plots energy *consumption over Unfused*).
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.fig08_speedup import EXECUTORS
from repro.experiments.runner import (
    DEFAULT_SEQ_LENGTHS,
    EVAL_MODELS,
    architecture,
    get_report,
)
from repro.metrics.energy import energy_ratio


def fig12a(
    model: str = "llama3",
    seq_lengths: Sequence[int] = DEFAULT_SEQ_LENGTHS,
    archs: Sequence[str] = ("cloud", "edge"),
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Normalized energy per sequence length.

    Returns:
        ``{arch: {seq_len: {executor: energy / unfused_energy}}}``.
    """
    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for arch_name in archs:
        arch = architecture(arch_name)
        per_seq: Dict[int, Dict[str, float]] = {}
        for seq in seq_lengths:
            base = get_report("unfused", model, seq, arch_name)
            per_seq[seq] = {
                name: energy_ratio(
                    base, get_report(name, model, seq, arch_name),
                    arch,
                )
                for name in EXECUTORS
            }
        results[arch_name] = per_seq
    return results


def fig12b(
    seq_len: int = 65536,
    models: Sequence[str] = EVAL_MODELS,
    archs: Sequence[str] = ("cloud", "edge"),
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized energy per model at one sequence length."""
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for arch_name in archs:
        arch = architecture(arch_name)
        per_model: Dict[str, Dict[str, float]] = {}
        for model in models:
            base = get_report("unfused", model, seq_len, arch_name)
            per_model[model] = {
                name: energy_ratio(
                    base,
                    get_report(name, model, seq_len, arch_name),
                    arch,
                )
                for name in EXECUTORS
            }
        results[arch_name] = per_model
    return results
