"""Figure 13: energy breakdown across the memory hierarchy.

Fractions of total energy spent in DRAM, the global buffer, the
register files and the PE arrays, for TransFusion and FuseMax on
Llama3 across sequence lengths under both architectures.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.experiments.runner import (
    DEFAULT_SEQ_LENGTHS,
    architecture,
    get_report,
)
from repro.metrics.energy import normalized_breakdown

#: Executors shown in Figure 13 (one sub-plot each).
EXECUTORS = ("transfusion", "fusemax")


def fig13(
    model: str = "llama3",
    seq_lengths: Sequence[int] = DEFAULT_SEQ_LENGTHS,
    archs: Sequence[str] = ("cloud", "edge"),
) -> Dict[str, Dict[str, Dict[int, Dict[str, float]]]]:
    """Energy breakdowns.

    Returns:
        ``{executor: {arch: {seq_len: {component: fraction}}}}`` with
        components ``dram`` / ``buffer`` / ``rf`` / ``pe`` summing to 1.
    """
    results: Dict[str, Dict[str, Dict[int, Dict[str, float]]]] = {}
    for executor in EXECUTORS:
        per_arch: Dict[str, Dict[int, Dict[str, float]]] = {}
        for arch_name in archs:
            arch = architecture(arch_name)
            per_arch[arch_name] = {
                seq: normalized_breakdown(
                    get_report(executor, model, seq, arch_name), arch
                )
                for seq in seq_lengths
            }
        results[executor] = per_arch
    return results
