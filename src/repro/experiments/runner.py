"""Shared experiment runner with memoized reports.

Every figure sweeps the same (executor, model, sequence, architecture)
grid; reports are deterministic, so they are computed once per process
(the ``lru_cache`` layer) and once per machine (the persistent
:mod:`repro.runner.cache` layer -- every ``reproduce_all`` benchmark
subprocess hits disk instead of re-running TileSeek + DPipe).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.arch.spec import ArchitectureSpec, named_architecture
from repro.runner.faults import PointFailure, SweepError
from repro.runner.parallel import GridPoint, compute_report
from repro.sim.stats import RunReport
from repro.validate.config import validation_enabled

#: The paper's sequence-length sweep (1K - 1M).
DEFAULT_SEQ_LENGTHS: Tuple[int, ...] = (
    1024, 4096, 16384, 65536, 262144, 1048576,
)

#: The paper's Section 6.1 model suite.
EVAL_MODELS: Tuple[str, ...] = ("bert", "trxl", "t5", "xlm", "llama3")

#: Fixed batch size (Section 6.1: ``B = 64`` throughout).
BATCH = 64


@lru_cache(maxsize=None)
def get_report(
    executor: str,
    model: str,
    seq_len: int,
    arch_name: str,
    batch: int = BATCH,
) -> RunReport:
    """One executor's per-layer report, memoized in-process and
    served from the persistent sweep cache when available.

    Failures surface as typed
    :class:`~repro.runner.faults.PointFailure`\\ s naming the exact
    grid point, so a figure generator that dies deep inside
    TileSeek/DPipe still reports *which* of its hundreds of points
    was responsible.
    """
    point = GridPoint(
        executor=executor, model=model, seq_len=seq_len,
        arch=arch_name, batch=batch,
    )
    try:
        report = compute_report(point)
    except (SweepError, KeyboardInterrupt):
        raise
    except Exception as error:
        raise PointFailure(
            point, chain_index=-1, attempt=0,
            error_type=type(error).__name__, message=str(error),
        ) from error
    if validation_enabled():
        # Cache-served reports skip the executor's run() hook; audit
        # their conservation invariants here instead.
        from repro.validate.conservation import audit_conservation

        audit_conservation(
            report, architecture(arch_name)
        ).raise_if_failed()
    return report


@lru_cache(maxsize=None)
def architecture(arch_name: str) -> ArchitectureSpec:
    """Memoized architecture preset lookup (stable identity helps the
    report cache)."""
    return named_architecture(arch_name)
