"""Architecture-sensitivity study: bandwidth and buffer sweeps.

The paper varies compute capability (Figure 9); this extension varies
the *memory system* instead: DRAM bandwidth and on-chip buffer
capacity, the two knobs that decide where the memory-bound /
compute-bound boundary sits and hence which TransFusion mechanism
(fusion vs pipelining) carries the speedup.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

from repro.arch.energy import energy_model_for_buffer
from repro.arch.spec import ArchitectureSpec, named_architecture
from repro.baselines.registry import named_executor
from repro.model.config import named_model
from repro.model.workload import Workload


def scale_bandwidth(
    arch: ArchitectureSpec, factor: float
) -> ArchitectureSpec:
    """A copy of ``arch`` with DRAM bandwidth scaled by ``factor``."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    return replace(
        arch,
        name=f"{arch.name}-bw{factor:g}x",
        dram=replace(
            arch.dram,
            bandwidth_bytes_per_s=(
                arch.dram.bandwidth_bytes_per_s * factor
            ),
        ),
    )


def scale_buffer(
    arch: ArchitectureSpec, factor: float
) -> ArchitectureSpec:
    """A copy of ``arch`` with buffer capacity scaled by ``factor``
    (access energy re-derived for the new capacity)."""
    if factor <= 0:
        raise ValueError("factor must be positive")
    capacity = int(arch.buffer.capacity_bytes * factor)
    return replace(
        arch,
        name=f"{arch.name}-buf{factor:g}x",
        buffer=replace(arch.buffer, capacity_bytes=capacity),
        energy=energy_model_for_buffer(capacity, arch.word_bytes),
    )


def scale_precision(
    arch: ArchitectureSpec, word_bytes: int
) -> ArchitectureSpec:
    """A copy of ``arch`` with a different datapath word size.

    Halving the word (fp16 -> int8) halves every tensor's bytes --
    traffic, residency and spill all shrink -- while the op counts are
    unchanged.  The Table-2 buffer model works in words, so the same
    capacity holds twice as many of them.
    """
    if word_bytes <= 0:
        raise ValueError("word_bytes must be positive")
    return replace(
        arch,
        name=f"{arch.name}-w{word_bytes}",
        word_bytes=word_bytes,
    )


def precision_sensitivity(
    model: str = "llama3",
    seq_len: int = 16384,
    arch_name: str = "cloud",
    word_sizes: Sequence[int] = (1, 2, 4),
    batch: int = 64,
) -> Dict[int, Dict[str, float]]:
    """TransFusion behaviour across datapath precisions.

    Returns:
        ``{word_bytes: {"latency_s": t, "q_tile": p,
        "dram_seconds": d}}``.
    """
    from repro.core.executor import TransFusionExecutor

    workload = Workload(named_model(model), seq_len=seq_len,
                        batch=batch)
    base = named_architecture(arch_name)
    results: Dict[int, Dict[str, float]] = {}
    for word_bytes in word_sizes:
        arch = scale_precision(base, word_bytes)
        executor = TransFusionExecutor()
        report = executor.run(workload, arch)
        tiling = executor.tiling(workload, arch)
        results[word_bytes] = {
            "latency_s": report.latency_seconds(arch),
            "q_tile": float(tiling.config.p),
            "dram_seconds": arch.dram_seconds(
                report.dram_words()
            ),
        }
    return results


def bandwidth_sensitivity(
    model: str = "llama3",
    seq_len: int = 16384,
    arch_name: str = "cloud",
    factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    batch: int = 64,
) -> Dict[float, Dict[str, float]]:
    """TransFusion-vs-FuseMax speedup as DRAM bandwidth varies.

    Returns:
        ``{factor: {"speedup": s, "tf_latency_s": t}}``.
    """
    workload = Workload(named_model(model), seq_len=seq_len,
                        batch=batch)
    base = named_architecture(arch_name)
    results: Dict[float, Dict[str, float]] = {}
    for factor in factors:
        arch = scale_bandwidth(base, factor)
        fusemax = named_executor("fusemax").run(workload, arch)
        transfusion = named_executor("transfusion").run(
            workload, arch
        )
        results[factor] = {
            "speedup": (
                fusemax.latency_seconds(arch)
                / transfusion.latency_seconds(arch)
            ),
            "tf_latency_s": transfusion.latency_seconds(arch),
        }
    return results


def buffer_sensitivity(
    model: str = "llama3",
    seq_len: int = 16384,
    arch_name: str = "cloud",
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    batch: int = 64,
) -> Dict[float, Dict[str, float]]:
    """TransFusion behaviour as the on-chip buffer scales.

    A bigger buffer admits larger Q tiles (fewer K/V reload passes),
    so TransFusion's DRAM traffic should fall monotonically.

    Returns:
        ``{factor: {"speedup": s, "dram_words": w,
        "q_tile": p}}``.
    """
    from repro.core.executor import TransFusionExecutor

    workload = Workload(named_model(model), seq_len=seq_len,
                        batch=batch)
    base = named_architecture(arch_name)
    results: Dict[float, Dict[str, float]] = {}
    for factor in factors:
        arch = scale_buffer(base, factor)
        fusemax = named_executor("fusemax").run(workload, arch)
        executor = TransFusionExecutor()
        transfusion = executor.run(workload, arch)
        tiling = executor.tiling(workload, arch)
        results[factor] = {
            "speedup": (
                fusemax.latency_seconds(arch)
                / transfusion.latency_seconds(arch)
            ),
            "dram_words": transfusion.dram_words(),
            "q_tile": float(tiling.config.p),
        }
    return results
