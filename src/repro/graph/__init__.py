"""Computation DAGs over Einsum cascades.

DPipe (Section 4) models each fused layer as an operation-level DAG,
partitions it into two weakly connected subgraphs under four validity
constraints, and enumerates topological orderings of the pipelined
(epoch-interleaved) graph.  This package implements those graph
mechanics; the scheduling cost model lives in :mod:`repro.dpipe`.
"""

from repro.graph.dag import ComputationDAG
from repro.graph.partition import Bipartition, enumerate_bipartitions
from repro.graph.toposort import all_topological_orders

__all__ = [
    "Bipartition",
    "ComputationDAG",
    "all_topological_orders",
    "enumerate_bipartitions",
]
