"""Directed acyclic graphs over Einsum operations.

Nodes are op names; edges encode producer -> consumer data dependencies
derived from cascade dataflow (recurrent-state reads do not create
intra-epoch edges -- they are cross-epoch dependencies handled by the
pipeline model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.einsum.cascade import Cascade
from repro.einsum.operation import EinsumOp


@dataclass(frozen=True)
class ComputationDAG:
    """An immutable DAG over named operations.

    Attributes:
        nodes: Node names in insertion order.
        edges: Directed ``(producer, consumer)`` pairs.
        ops: Optional mapping from node name to its Einsum op, used by
            the cost model.
    """

    nodes: Tuple[str, ...]
    edges: FrozenSet[Tuple[str, str]]
    ops: Mapping[str, EinsumOp] = field(default_factory=dict)

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        if len(node_set) != len(self.nodes):
            raise ValueError("duplicate node names")
        for u, v in self.edges:
            if u not in node_set or v not in node_set:
                raise ValueError(f"edge ({u!r}, {v!r}) references "
                                 "unknown node")
            if u == v:
                raise ValueError(f"self-loop on {u!r}")
        if self._has_cycle():
            raise ValueError("graph contains a cycle")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_cascade(cls, cascade: Cascade) -> "ComputationDAG":
        """Build the op-level DAG of a cascade (Figure 7a-c).

        Epilogue reads of recurrent state resolve to the producer of
        the state's update tensor (e.g. ``AV`` depends on ``RNVn`` and
        ``RDn``); loop-body state reads create no intra-epoch edge.
        """
        producers: Dict[str, str] = {}
        for op in cascade.all_ops:
            producers[op.output.name] = op.name
        edges: Set[Tuple[str, str]] = set()
        for op in cascade.ops:
            for tensor_name in op.dataflow_input_names():
                if tensor_name in producers:
                    edges.add((producers[tensor_name], op.name))
        for op in cascade.epilogue:
            for tensor_name in op.dataflow_input_names():
                resolved = tensor_name
                if tensor_name in cascade.state:
                    resolved = cascade.state[tensor_name].update_from
                if resolved in producers:
                    edges.add((producers[resolved], op.name))
        ops = {op.name: op for op in cascade.all_ops}
        return cls(
            nodes=tuple(op.name for op in cascade.all_ops),
            edges=frozenset(edges),
            ops=ops,
        )

    @classmethod
    def compose(
        cls,
        dags: Sequence["ComputationDAG"],
        links: Iterable[Tuple[str, str]] = (),
        prefixes: Optional[Sequence[str]] = None,
    ) -> "ComputationDAG":
        """Concatenate several DAGs into one, with explicit link edges.

        Args:
            dags: Component DAGs, e.g. one per sub-layer.
            links: Extra ``(producer, consumer)`` edges between
                components, written with prefixed names.
            prefixes: Per-component node-name prefixes; defaults to
                ``g0.``, ``g1.``, ...

        Returns:
            The merged DAG.
        """
        if prefixes is None:
            prefixes = [f"g{i}." for i in range(len(dags))]
        if len(prefixes) != len(dags):
            raise ValueError("one prefix per DAG required")
        nodes: List[str] = []
        edges: Set[Tuple[str, str]] = set()
        ops: Dict[str, EinsumOp] = {}
        for dag, prefix in zip(dags, prefixes):
            nodes.extend(prefix + n for n in dag.nodes)
            edges.update(
                (prefix + u, prefix + v) for u, v in dag.edges
            )
            ops.update({prefix + n: op for n, op in dag.ops.items()})
        edges.update(links)
        return cls(nodes=tuple(nodes), edges=frozenset(edges), ops=ops)

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def predecessors(self, node: str) -> FrozenSet[str]:
        """Direct predecessors of ``node``."""
        return frozenset(u for u, v in self.edges if v == node)

    def successors(self, node: str) -> FrozenSet[str]:
        """Direct successors of ``node``."""
        return frozenset(v for u, v in self.edges if u == node)

    def pred_map(self) -> Dict[str, Set[str]]:
        """Node -> set of predecessors, for all nodes."""
        preds: Dict[str, Set[str]] = {n: set() for n in self.nodes}
        for u, v in self.edges:
            preds[v].add(u)
        return preds

    def succ_map(self) -> Dict[str, Set[str]]:
        """Node -> set of successors, for all nodes."""
        succs: Dict[str, Set[str]] = {n: set() for n in self.nodes}
        for u, v in self.edges:
            succs[u].add(v)
        return succs

    def sources(self) -> FrozenSet[str]:
        """Nodes with zero in-degree."""
        with_preds = {v for _, v in self.edges}
        return frozenset(n for n in self.nodes if n not in with_preds)

    def sinks(self) -> FrozenSet[str]:
        """Nodes with zero out-degree."""
        with_succs = {u for u, _ in self.edges}
        return frozenset(n for n in self.nodes if n not in with_succs)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _has_cycle(self) -> bool:
        preds: Dict[str, Set[str]] = {n: set() for n in self.nodes}
        for u, v in self.edges:
            preds[v].add(u)
        ready = [n for n in self.nodes if not preds[n]]
        seen = 0
        succs: Dict[str, Set[str]] = {n: set() for n in self.nodes}
        for u, v in self.edges:
            succs[u].add(v)
        while ready:
            node = ready.pop()
            seen += 1
            for succ in succs[node]:
                preds[succ].discard(node)
                if not preds[succ]:
                    ready.append(succ)
        return seen != len(self.nodes)

    def topological_order(self) -> Tuple[str, ...]:
        """One deterministic topological order (Kahn, insertion-stable)."""
        preds = self.pred_map()
        succs = self.succ_map()
        order: List[str] = []
        ready = [n for n in self.nodes if not preds[n]]
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in sorted(succs[node],
                               key=self.nodes.index):
                preds[succ].discard(node)
                if not preds[succ]:
                    ready.append(succ)
        return tuple(order)

    def is_weakly_connected(
        self, subset: Optional[AbstractSet[str]] = None
    ) -> bool:
        """Whether ``subset`` (default: all nodes) is weakly connected
        in the undirected view of this DAG."""
        nodes = set(subset) if subset is not None else set(self.nodes)
        if not nodes:
            return False
        undirected: Dict[str, Set[str]] = {n: set() for n in nodes}
        for u, v in self.edges:
            if u in nodes and v in nodes:
                undirected[u].add(v)
                undirected[v].add(u)
        stack = [next(iter(nodes))]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(undirected[node] - seen)
        return seen == nodes

    def reachable_from(
        self,
        roots: Iterable[str],
        within: Optional[AbstractSet[str]] = None,
    ) -> FrozenSet[str]:
        """Nodes reachable from ``roots`` along edges, optionally
        restricted to the induced subgraph on ``within``."""
        allowed = set(within) if within is not None else set(self.nodes)
        succs = self.succ_map()
        stack = [r for r in roots if r in allowed]
        seen: Set[str] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(s for s in succs[node] if s in allowed)
        return frozenset(seen)

    def induced(self, subset: AbstractSet[str]) -> "ComputationDAG":
        """The induced subgraph on ``subset`` (node order preserved)."""
        keep = set(subset)
        unknown = keep - set(self.nodes)
        if unknown:
            raise KeyError(f"unknown nodes {sorted(unknown)}")
        return ComputationDAG(
            nodes=tuple(n for n in self.nodes if n in keep),
            edges=frozenset(
                (u, v) for u, v in self.edges if u in keep and v in keep
            ),
            ops={n: op for n, op in self.ops.items() if n in keep},
        )

    def __len__(self) -> int:
        return len(self.nodes)
