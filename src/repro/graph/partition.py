"""DAG bipartition enumeration for DPipe (Section 4.1).

DPipe partitions a layer's computation DAG into two weakly connected
subgraphs ``(G1, G2)`` subject to four constraints:

1. **Source-Sink Alignment** -- every source node is in ``G1`` and
   every sink node is in ``G2``.
2. **Weak Connectivity** -- each subgraph is weakly connected in the
   original DAG.
3. **Dependency Completeness** -- ``G1`` contains all of its own
   dependencies (it is a *down-set* / order ideal of the DAG).
4. **Reachability** -- every node of ``G1`` is reachable from the
   DAG's sources inside ``G1``.

Because ``G1`` must be dependency-complete, candidates are exactly the
order ideals of the DAG; we enumerate ideals directly instead of all
``2^n`` subsets so larger fused DAGs stay tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Set

from repro.graph.dag import ComputationDAG


@dataclass(frozen=True)
class Bipartition:
    """A valid DPipe bipartition of a computation DAG."""

    first: FrozenSet[str]
    second: FrozenSet[str]

    def __post_init__(self) -> None:
        if self.first & self.second:
            raise ValueError("subgraphs must be disjoint")
        if not self.first or not self.second:
            raise ValueError("subgraphs must be non-empty")

    @property
    def size(self) -> int:
        return len(self.first) + len(self.second)


def is_valid_bipartition(
    dag: ComputationDAG, first: FrozenSet[str]
) -> bool:
    """Check the four Section 4.1 constraints for ``first`` as G1."""
    all_nodes = frozenset(dag.nodes)
    second = all_nodes - first
    if not first or not second:
        return False
    sources = dag.sources()
    sinks = dag.sinks()
    # (1) Source-sink alignment.
    if not sources <= first or not sinks <= second:
        return False
    # (3) Dependency completeness: G1 is a down-set.
    preds = dag.pred_map()
    for node in first:
        if not preds[node] <= first:
            return False
    # (2) Weak connectivity of both subgraphs.
    if not dag.is_weakly_connected(first):
        return False
    if not dag.is_weakly_connected(second):
        return False
    # (4) Reachability of all G1 nodes from the sources within G1.
    reachable = dag.reachable_from(sources, within=first)
    if reachable != first:
        return False
    return True


def _ideals(dag: ComputationDAG) -> Iterator[FrozenSet[str]]:
    """Enumerate all non-empty proper order ideals (down-sets).

    Walks nodes in topological order; at each node the ideal either
    stops (excluding this node and, implicitly, everything after it
    that depends on excluded nodes) or continues.  A node may join the
    ideal only once all its predecessors have.
    """
    order = dag.topological_order()
    preds = dag.pred_map()
    n = len(order)

    def recurse(i: int, included: Set[str]) -> Iterator[FrozenSet[str]]:
        if i == n:
            if included and len(included) < n:
                yield frozenset(included)
            return
        node = order[i]
        # Branch 1: exclude node (always allowed; dependants of an
        # excluded node are pruned by the preds check below).
        yield from recurse(i + 1, included)
        # Branch 2: include node if dependency-complete.
        if preds[node] <= included:
            included.add(node)
            yield from recurse(i + 1, included)
            included.discard(node)

    yield from recurse(0, set())


def enumerate_bipartitions(
    dag: ComputationDAG, limit: Optional[int] = None
) -> List[Bipartition]:
    """All valid DPipe bipartitions of ``dag``.

    Args:
        dag: The layer computation DAG.
        limit: Optional cap on the number of bipartitions returned
            (enumeration order is deterministic).

    Returns:
        Valid bipartitions; empty if the DAG admits none (e.g. a
        single-node graph).
    """
    results: List[Bipartition] = []
    for first in _ideals(dag):
        if is_valid_bipartition(dag, first):
            results.append(
                Bipartition(
                    first=first, second=frozenset(dag.nodes) - first
                )
            )
            if limit is not None and len(results) >= limit:
                break
    return results
