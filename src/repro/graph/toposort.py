"""Topological-order enumeration.

DPipe evaluates candidate pipeline schedules by enumerating topological
orderings of the epoch-interleaved DAG (Section 4.1).  The number of
orderings can be factorial, so enumeration is capped; the cap is an
explicit parameter surfaced all the way up to the public API.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.dag import ComputationDAG


def all_topological_orders(
    dag: ComputationDAG, limit: Optional[int] = None
) -> List[Tuple[str, ...]]:
    """Enumerate topological orders of ``dag``, up to ``limit``.

    Uses Knuth-style backtracking: at each step any in-degree-zero node
    may come next.  Enumeration order is deterministic (node insertion
    order breaks ties), so results are reproducible and the first order
    returned equals :meth:`ComputationDAG.topological_order`.

    Args:
        dag: The graph to order.
        limit: Maximum number of orders to return (``None`` = all;
            beware factorial blow-up on wide graphs).

    Returns:
        A list of node-name tuples, each a valid topological order.
    """
    preds = dag.pred_map()
    rank = {n: i for i, n in enumerate(dag.nodes)}
    # Successor sets iterate in hash order, which varies between
    # processes (PYTHONHASHSEED); fix the order so truncated
    # enumeration (``limit``) explores the same orders in every run.
    succs: Dict[str, List[str]] = {
        n: sorted(s, key=rank.__getitem__)
        for n, s in dag.succ_map().items()
    }
    indegree: Dict[str, int] = {n: len(preds[n]) for n in dag.nodes}
    ready: List[str] = [n for n in dag.nodes if indegree[n] == 0]
    order: List[str] = []
    results: List[Tuple[str, ...]] = []

    def backtrack() -> bool:
        """Returns False once the limit is reached (stops recursion)."""
        if limit is not None and len(results) >= limit:
            return False
        if len(order) == len(dag.nodes):
            results.append(tuple(order))
            return limit is None or len(results) < limit
        for i in range(len(ready)):
            node = ready.pop(i)
            order.append(node)
            opened: List[str] = []
            for succ in succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    opened.append(succ)
            ready.extend(opened)
            keep_going = backtrack()
            for succ in opened:
                ready.remove(succ)
            for succ in succs[node]:
                indegree[succ] += 1
            order.pop()
            ready.insert(i, node)
            if not keep_going:
                return False
        return True

    backtrack()
    return results


def count_topological_orders(
    dag: ComputationDAG, cap: int = 1_000_000
) -> int:
    """Count topological orders, stopping early at ``cap``.

    Uses the same backtracking as :func:`all_topological_orders` but
    never materializes an order: counting an antichain at the default
    cap previously stored up to one million full node tuples just to
    take their length.  Memory is now O(nodes) regardless of the
    count.
    """
    if cap <= 0:
        return 0
    preds = dag.pred_map()
    succs = dag.succ_map()
    indegree: Dict[str, int] = {n: len(preds[n]) for n in dag.nodes}
    ready: List[str] = [n for n in dag.nodes if indegree[n] == 0]
    n = len(dag.nodes)
    count = 0

    def backtrack(depth: int) -> bool:
        """Returns False once the cap is reached (stops recursion)."""
        nonlocal count
        if depth == n:
            count += 1
            return count < cap
        for i in range(len(ready)):
            node = ready.pop(i)
            opened: List[str] = []
            for succ in succs[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    opened.append(succ)
            ready.extend(opened)
            keep_going = backtrack(depth + 1)
            for succ in opened:
                ready.remove(succ)
            for succ in succs[node]:
                indegree[succ] += 1
            ready.insert(i, node)
            if not keep_going:
                return False
        return True

    backtrack(0)
    return count


def critical_path_order(
    dag: ComputationDAG,
    weights: Dict[str, float],
) -> Tuple[str, ...]:
    """A topological order prioritizing the longest remaining path.

    Classic list-scheduling heuristic: among ready nodes, schedule the
    one whose downstream critical path (sum of ``weights`` along the
    heaviest successor chain, including itself) is longest.  Capped
    exhaustive enumeration can miss good orders on wide DAGs; this
    order is cheap and usually near the front of the quality
    distribution, so DPipe always evaluates it too.

    Args:
        dag: The graph to order.
        weights: Node name -> cost (e.g. best-case op latency).

    Returns:
        One valid topological order.
    """
    succs = dag.succ_map()
    # Downstream critical path via reverse topological traversal.
    critical: Dict[str, float] = {}
    for node in reversed(dag.topological_order()):
        tail = max(
            (critical[s] for s in succs[node]), default=0.0
        )
        critical[node] = weights.get(node, 0.0) + tail
    preds = dag.pred_map()
    indegree = {n: len(preds[n]) for n in dag.nodes}
    ready = [n for n in dag.nodes if indegree[n] == 0]
    order: List[str] = []
    while ready:
        ready.sort(key=lambda n: (-critical[n], n))
        node = ready.pop(0)
        order.append(node)
        for succ in succs[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    return tuple(order)
