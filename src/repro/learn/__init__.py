"""Learned warm-starts mined from the sweep corpus.

Cold-miss searches are the one cost the serving stack still pays in
full.  This package turns the artifacts every sweep already persists
-- ``tileseek`` plan-cache entries and sweep journals -- into a
training corpus (:mod:`repro.learn.corpus`), fits a byte-reproducible
k-nearest-neighbor predictor over normalized shape/arch features
(:mod:`repro.learn.predictor`), and feeds its predictions into
TileSeek's incumbent pool as ``learned`` candidates -- a new rung of
the degradation ladder between ``warm_start`` and ``heuristic``
(:mod:`repro.resilience.ladder`).

Everything is opt-in behind ``REPRO_LEARN``: with the knob unset (or
``0``/``off``/``false``/``no``) no prediction is made, no payload key
changes, and every plan, sweep and served response stays byte-
identical to a tree without this package.  ``REPRO_LEARN_K`` bounds
the neighbor count per prediction.

:func:`predictions_for` is the one call sites use: it resolves the
knobs, loads the current code version's fitted model from the plan
cache (kind ``learn-model``; stale-salt artifacts are never served)
and returns validated assignments -- or ``()`` whenever any of that
is unavailable, which downstream means "cold search, unchanged".
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.settings import env_bool, env_int

#: Master switch: consult the learned warm-start predictor.
ENV_LEARN = "REPRO_LEARN"

#: Neighbor count per prediction (>= 1; default 3).
ENV_LEARN_K = "REPRO_LEARN_K"


def learn_enabled() -> bool:
    """Whether learned warm-starts are switched on (default off)."""
    return env_bool(ENV_LEARN, default=False)


def learn_k() -> int:
    """Resolved neighbor count (``REPRO_LEARN_K``, else 3)."""
    from repro.learn.predictor import DEFAULT_K

    value = env_int(ENV_LEARN_K, "a neighbor count", minimum=1)
    return DEFAULT_K if value is None else value


def predictions_for(
    workload, arch, cache=None
) -> Tuple[Tuple[int, ...], ...]:
    """Predicted assignments for one point, or ``()``.

    Empty whenever learning is disabled, the plan cache is off, or no
    current-salt model has been fitted -- all the cases where a cold
    search should proceed exactly as before.  The model is re-read
    from the cache per call (one small file): predictions must see a
    just-fitted model without any process restart, and the off path
    never pays the read at all.
    """
    if not learn_enabled():
        return ()
    from repro.learn.predictor import load_model

    model = load_model(cache)
    if model is None:
        return ()
    return model.predict_for(workload, arch, k=learn_k())


def model_signature(cache=None) -> Optional[str]:
    """Corpus hash of the active model, or ``None``.

    Report cache payloads embed this when learning is enabled, so
    reports produced under different fitted models (or none) never
    collide on disk.
    """
    if not learn_enabled():
        return None
    from repro.learn.predictor import load_model

    model = load_model(cache)
    return None if model is None else model.corpus


__all__ = [
    "ENV_LEARN",
    "ENV_LEARN_K",
    "learn_enabled",
    "learn_k",
    "model_signature",
    "predictions_for",
]
