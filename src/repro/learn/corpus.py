"""Corpus extraction: mine searches already paid for into a dataset.

Every completed sweep leaves two artifacts behind: ``tileseek``
entries in the content-addressed :class:`~repro.runner.cache.PlanCache`
(payload = the full workload/arch fingerprints, value = the winning
assignment and its reward) and sweep-journal lines pointing back at
them.  :func:`extract_corpus` walks both and produces a
deterministic, deduplicated dataset of normalized shape/arch features
-> best tiling, the training set for :mod:`repro.learn.predictor`.

Determinism is the design constraint, not an afterthought:

* Features are a fixed, alphabetized vector (:data:`FEATURE_ORDER`)
  of ``log2``-scaled dimensions and 0/1 flags -- pure functions of
  the fingerprints, independent of dict ordering or hash seeds.
* Records are keyed by a :func:`~repro.runner.cache.stable_hash` of
  their features; duplicates collapse to the best reward (ties to the
  lexically smallest assignment), an order-independent fold -- so any
  file enumeration order and any ``PYTHONHASHSEED`` produce the same
  corpus.
* The corpus document is canonical JSON (sorted keys, compact
  separators) stamped with the :func:`~repro.runner.cache.code_salt`
  of the tree that wrote it, mirroring every other on-disk artifact.

Unusable inputs are *counted*, never fatal: entries from another code
salt, malformed documents, infeasible results and journal lines whose
cache entry has been evicted each increment a named skip counter (and
surface a swallowed :class:`CorpusSkip` warning where the skip is
noteworthy), so corpus extraction survives the messy cache directory
of a long-lived deployment.
"""

from __future__ import annotations

import json
import math
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.arch.spec import ArchitectureSpec, named_architecture
from repro.model.workload import Workload
from repro.runner.cache import (
    PlanCache,
    arch_fingerprint,
    code_salt,
    stable_hash,
    workload_fingerprint,
)
from repro.runner.faults import SweepConfigError

#: Corpus schema version; bump on incompatible record-format changes.
CORPUS_VERSION = 1

#: Document ``kind`` stamped into every corpus file.
CORPUS_KIND = "learn-corpus"

#: The normalized feature vector, in fixed (alphabetical) order.
#: Dimensions are ``log2``-scaled -- tiling factors respond to the
#: *magnitude* of a dimension, so 512 -> 1024 should be as near as
#: 1024 -> 2048 -- and flags are 0.0/1.0.
FEATURE_ORDER: Tuple[str, ...] = (
    "array_cols",
    "array_rows",
    "batch",
    "buffer_words",
    "causal",
    "d_model",
    "e_head",
    "ffn_hidden",
    "heads",
    "kv_heads",
    "kv_len",
    "lanes_1d",
    "layers",
    "project_kv",
    "seq_len",
)

#: Skip-counter names (every extraction reports all of them).
SKIP_OTHER_SALT = "other_salt"
SKIP_MALFORMED = "malformed"
SKIP_INFEASIBLE = "infeasible"
SKIP_UNMATCHED = "unmatched"

_SKIP_KEYS = (
    SKIP_INFEASIBLE, SKIP_MALFORMED, SKIP_OTHER_SALT, SKIP_UNMATCHED,
)


class CorpusSkip(UserWarning):
    """One unusable cache entry or journal line skipped during
    extraction (counted in the corpus's ``skipped`` tally)."""


def _warn_skip(subject: Any, detail: str) -> None:
    """Surface one skip as a warning without ever escalating.

    Under error warning filters (``python -W error``) ``warn()``
    raises the instance itself; a skip is recoverable by design --
    the record is simply not mined -- so the escalation is swallowed,
    mirroring the cache-quarantine discipline.
    """
    try:
        warnings.warn(
            CorpusSkip(f"{subject}: {detail}"), stacklevel=3
        )
    except CorpusSkip:
        pass


def _log2(value: Any) -> float:
    return math.log2(float(value)) if float(value) > 0 else 0.0


def features_from_fingerprints(
    workload_fp: Mapping[str, Any], arch_fp: Mapping[str, Any]
) -> Dict[str, float]:
    """The normalized feature vector of one (workload, arch) pair,
    computed from their cache fingerprints.

    Must stay the exact float-for-float mirror of
    :func:`features_for` -- records mined from cache payloads and
    records synthesized from live objects land on the same feature
    key or deduplication silently breaks.
    """
    model = workload_fp["model"]
    heads = model["heads"]
    kv_heads = model.get("kv_heads") or heads
    seq_len = workload_fp["seq_len"]
    kv_len = workload_fp.get("kv_seq_len") or seq_len
    word_bytes = arch_fp["word_bytes"]
    buffer_words = arch_fp["buffer"]["capacity_bytes"] // word_bytes
    features = {
        "array_cols": _log2(arch_fp["array_2d"]["cols"]),
        "array_rows": _log2(arch_fp["array_2d"]["rows"]),
        "batch": _log2(workload_fp["batch"]),
        "buffer_words": _log2(buffer_words),
        "causal": 1.0 if workload_fp["causal"] else 0.0,
        "d_model": _log2(model["d_model"]),
        "e_head": _log2(model["e_head"]),
        "ffn_hidden": _log2(model["ffn_hidden"]),
        "heads": _log2(heads),
        "kv_heads": _log2(kv_heads),
        "kv_len": _log2(kv_len),
        "lanes_1d": _log2(arch_fp["array_1d"]["cols"]),
        "layers": _log2(model["layers"]),
        "project_kv": 1.0 if workload_fp.get("project_kv", True)
        else 0.0,
        "seq_len": _log2(seq_len),
    }
    assert tuple(sorted(features)) == FEATURE_ORDER
    return features


def features_for(
    workload: Workload, arch: ArchitectureSpec
) -> Dict[str, float]:
    """The normalized feature vector of one live (workload, arch)
    pair (same floats as :func:`features_from_fingerprints`)."""
    return features_from_fingerprints(
        workload_fingerprint(workload), arch_fingerprint(arch)
    )


def feature_key(features: Mapping[str, float]) -> str:
    """Content address of one feature vector (the dedup key)."""
    return stable_hash({"features": dict(features)})


def record_for(
    workload: Workload, arch: ArchitectureSpec, result: Any
) -> Dict[str, Any]:
    """Synthesize one corpus record from a live
    :class:`~repro.tileseek.search.TileSeekResult` (what the mining
    paths reconstruct from cache documents)."""
    features = features_for(workload, arch)
    return {
        "assignment": [
            int(v) for v in result.stats.best_assignment
        ],
        "features": features,
        "key": feature_key(features),
        "reward": float(result.stats.best_reward),
    }


@dataclass(frozen=True)
class Corpus:
    """One extracted training set, plus its skip bookkeeping.

    ``records`` are sorted by feature key and individually hold
    ``{key, features, assignment, reward}``; ``skipped`` counts the
    inputs extraction could not use.
    """

    salt: str
    records: Tuple[Dict[str, Any], ...]
    skipped: Mapping[str, int]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "v": CORPUS_VERSION,
            "kind": CORPUS_KIND,
            "salt": self.salt,
            "records": [dict(r) for r in self.records],
            "skipped": {
                name: int(self.skipped.get(name, 0))
                for name in _SKIP_KEYS
            },
        }

    def to_json(self) -> str:
        """Canonical byte rendering (sorted keys, compact
        separators): the same inputs always produce the same file."""
        from repro.core.serialize import canonical_json

        return canonical_json(self.to_dict())


def corpus_hash(corpus: Corpus) -> str:
    """Content address of the corpus's training content (records
    only -- skip counts are diagnostics, not training data)."""
    return stable_hash({
        "records": [dict(r) for r in corpus.records],
        "salt": corpus.salt,
    })


def _mine_tileseek_document(
    document: Any,
    subject: Any,
    salt: str,
    records: List[Dict[str, Any]],
    skipped: Dict[str, int],
    count_other_salt: bool = True,
) -> bool:
    """Fold one ``{"payload", "value"}`` tileseek cache document into
    ``records``.  Returns whether a record was appended."""
    if not isinstance(document, dict):
        skipped[SKIP_MALFORMED] += 1
        _warn_skip(subject, "not a JSON object")
        return False
    payload = document.get("payload")
    value = document.get("value")
    if not isinstance(payload, dict) or not isinstance(value, dict):
        skipped[SKIP_MALFORMED] += 1
        _warn_skip(subject, "missing payload/value")
        return False
    if payload.get("salt") != salt:
        if count_other_salt:
            skipped[SKIP_OTHER_SALT] += 1
        return False
    try:
        assessment = value["assessment"]
        stats = value["stats"]
        if not assessment["feasible"]:
            skipped[SKIP_INFEASIBLE] += 1
            return False
        assignment = [int(v) for v in stats["best_assignment"]]
        reward = float(stats["best_reward"])
        features = features_from_fingerprints(
            payload["workload"], payload["arch"]
        )
    except (KeyError, TypeError, ValueError) as error:
        skipped[SKIP_MALFORMED] += 1
        _warn_skip(subject, f"unusable document: {error}")
        return False
    records.append({
        "assignment": assignment,
        "features": features,
        "key": feature_key(features),
        "reward": reward,
    })
    return True


def _scan_cache(
    cache: PlanCache,
    salt: str,
    records: List[Dict[str, Any]],
    skipped: Dict[str, int],
) -> None:
    """Mine every ``tileseek`` entry under the cache root.

    The walk is sorted, but nothing depends on it: the dedup fold is
    order-independent, so the corpus is byte-identical whatever order
    the filesystem returns entries in.
    """
    root = Path(cache.root) / "tileseek"
    if not root.is_dir():
        return
    for path in sorted(root.rglob("*.json")):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            skipped[SKIP_MALFORMED] += 1
            _warn_skip(path, f"unreadable cache entry: {error}")
            continue
        _mine_tileseek_document(
            document, path, salt, records, skipped
        )


def _journal_chains(
    entries: Iterable[Mapping[str, Any]],
    path: Any,
    salt: str,
    skipped: Dict[str, int],
) -> List[Tuple[Any, bool]]:
    """Validate journal lines into ``(point, warm flag)`` pairs.

    Other-salt lines are skipped with a counted warning (stale
    journals are expected around code edits, and their cache keys
    would be stale too); malformed lines are counted likewise.
    """
    from repro.runner.journal import (
        JOURNAL_VERSION,
        point_fingerprint,
    )
    from repro.runner.parallel import GridPoint

    mined: List[Tuple[Any, bool]] = []
    for entry in entries:
        if entry.get("v") != JOURNAL_VERSION:
            skipped[SKIP_MALFORMED] += 1
            _warn_skip(path, "journal line without a known version")
            continue
        if entry.get("salt") != salt:
            skipped[SKIP_OTHER_SALT] += 1
            _warn_skip(
                path, "journal line written by another code version"
            )
            continue
        if "key" not in entry:
            # Infeasible verdicts have no tiling to learn from.
            skipped[SKIP_INFEASIBLE] += 1
            continue
        point_doc = entry.get("point")
        try:
            point = GridPoint(**point_doc)
        except TypeError:
            skipped[SKIP_MALFORMED] += 1
            _warn_skip(path, "journal line with unusable point")
            continue
        warm = entry.get("fingerprint") == point_fingerprint(
            point, True
        )
        mined.append((point, warm))
    return mined


def _scan_journal(
    path: Union[str, os.PathLike],
    cache: PlanCache,
    salt: str,
    records: List[Dict[str, Any]],
    skipped: Dict[str, int],
) -> None:
    """Mine one sweep journal's completed points.

    The journal names *report* cache keys, not tileseek ones, so each
    point's tiling entry is recovered by reconstructing the executor's
    tileseek payload -- threading warm-started chains forward exactly
    the way :func:`~repro.runner.parallel._run_chain` does -- and
    looking it up in the cache.  Points whose tiling entry is gone
    (evicted, cache cleared) count as ``unmatched``.
    """
    from repro.baselines.registry import named_executor
    from repro.runner.journal import tolerant_lines
    from repro.runner.parallel import _chains

    mined = _journal_chains(
        tolerant_lines(path), path, salt, skipped
    )
    if not mined:
        return
    warm_flags = {point: warm for point, warm in mined}
    for chain in _chains([point for point, _ in mined]):
        warm: Tuple[Tuple[int, ...], ...] = ()
        for point in chain:
            try:
                executor = named_executor(point.executor)
                workload = point.workload()
                arch = named_architecture(point.arch)
            except (KeyError, ValueError) as error:
                skipped[SKIP_UNMATCHED] += 1
                _warn_skip(path, f"unknown point {point}: {error}")
                continue
            iterations = getattr(
                executor, "tileseek_iterations", None
            )
            seed = getattr(executor, "seed", None)
            if iterations is None or seed is None:
                # Closed-form executors run no tiling search; there
                # is nothing to learn from them.
                skipped[SKIP_UNMATCHED] += 1
                continue
            candidates = [warm] if warm_flags[point] else [()]
            if () not in candidates:
                candidates.append(())
            document = None
            for warm_try in candidates:
                payload = {
                    "kind": "tileseek",
                    "salt": salt,
                    "workload": workload_fingerprint(workload),
                    "arch": arch_fingerprint(arch),
                    "iterations": iterations,
                    "seed": seed,
                    "warm_start": [list(a) for a in warm_try],
                }
                value = cache.get(
                    "tileseek", stable_hash(payload)
                )
                if value is not None:
                    document = {"payload": payload, "value": value}
                    break
            if document is None:
                skipped[SKIP_UNMATCHED] += 1
                _warn_skip(
                    path,
                    f"no cached tiling behind journaled {point}",
                )
                continue
            if _mine_tileseek_document(
                document, path, salt, records, skipped
            ):
                warm = (tuple(
                    int(v)
                    for v in document["value"]["stats"]
                    ["best_assignment"]
                ),)


def _dedup(
    records: Sequence[Dict[str, Any]],
) -> Tuple[Dict[str, Any], ...]:
    """Collapse records onto unique feature keys, order-independently.

    Best reward wins; exact reward ties break to the lexically
    smallest assignment, so the fold commutes and the corpus bytes do
    not depend on mining order.
    """
    best: Dict[str, Dict[str, Any]] = {}
    for record in records:
        current = best.get(record["key"])
        if current is None or (
            record["reward"], [-v for v in record["assignment"]]
        ) > (
            current["reward"], [-v for v in current["assignment"]]
        ):
            best[record["key"]] = record
    return tuple(best[key] for key in sorted(best))


def extract_corpus(
    cache: Optional[PlanCache] = None,
    journals: Sequence[Union[str, os.PathLike]] = (),
) -> Corpus:
    """Mine the plan cache (and optional sweep journals) into a
    :class:`Corpus`.

    Args:
        cache: The plan cache to mine; ``None`` resolves the
            environment default.  Extraction needs the persistent
            layer -- with ``REPRO_CACHE=0`` there is nothing to mine.
        journals: Sweep-journal files whose completed points should
            also be mined (their tiling entries are recovered from
            the same cache; lines from other code versions are
            skipped with a counted warning).
    """
    if cache is None:
        from repro.runner.cache import default_cache

        cache = default_cache()
    if cache is None:
        raise SweepConfigError(
            "corpus extraction needs the persistent plan cache "
            "(REPRO_CACHE=0 disables it)"
        )
    salt = code_salt()
    records: List[Dict[str, Any]] = []
    skipped: Dict[str, int] = {name: 0 for name in _SKIP_KEYS}
    _scan_cache(cache, salt, records, skipped)
    for journal in journals:
        _scan_journal(journal, cache, salt, records, skipped)
    return Corpus(
        salt=salt, records=_dedup(records), skipped=skipped
    )
