"""Measuring what the predictor buys: search units to near-optimum.

The serving motivation is cold-miss latency, and the deterministic
unit of search cost in this repo is the MCTS iteration
(:mod:`repro.resilience.budget`).  So the predictor is scored the way
PR 5 scored budgets: for each held-out point, find the smallest
power-of-two unit budget at which a search reaches within
``tolerance`` (default 1%) of the *unwarmed optimum's* reward -- once
with the learned predictions in the incumbent pool, once without --
and compare the unit totals.  Learned candidates are priced as
incumbents (never budget-charged, like warm starts), so a good
prediction hits the target at a one-unit budget and the ratio
collapses; a useless prediction degenerates to the baseline exactly.

Everything here is deterministic: the searches are seeded, the probe
schedule is a fixed doubling ladder capped at the full iteration
count (a budget >= iterations runs the search to completion, so the
probe always terminates), and the report is plain sorted-key data.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.arch.spec import ArchitectureSpec
from repro.learn.corpus import features_for
from repro.model.workload import Workload
from repro.tileseek.search import TileSeek

#: Default relative reward tolerance ("within 1% of the optimum").
DEFAULT_TOLERANCE = 0.01


def units_to_target(
    workload: Workload,
    arch: ArchitectureSpec,
    target_reward: float,
    learned: Sequence[Sequence[int]] = (),
    iterations: int = 400,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
) -> int:
    """Smallest probed unit budget reaching the target reward.

    Probes budgets 1, 2, 4, ... capped at ``iterations`` (at which
    point the search is complete and its reward *is* the optimum, so
    the probe is guaranteed to terminate at a finite answer).
    """
    searcher = TileSeek(iterations=iterations, seed=seed)
    floor = (1.0 - tolerance) * target_reward
    budget = 1
    while True:
        result = searcher.search(
            workload, arch, budget=budget, allow_fallback=True,
            learned=learned,
        )
        if result.stats.best_reward >= floor:
            return budget
        if budget >= iterations:
            return budget
        budget = min(iterations, budget * 2)


def evaluate_points(
    predictor: Optional[Any],
    pairs: Sequence[Tuple[Workload, ArchitectureSpec]],
    iterations: int = 400,
    seed: int = 0,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Dict[str, Any]:
    """Units-to-near-optimum with vs. without the predictor.

    Args:
        predictor: A fitted :class:`~repro.learn.predictor.Predictor`
            (``None`` scores an empty prediction set -- the report
            then shows a ratio of exactly 1.0).
        pairs: The held-out (workload, arch) grid.
        iterations: Full search size (the unwarmed optimum and the
            probe cap).
        seed: Search seed.
        tolerance: Relative reward slack defining "near-optimum".

    Returns:
        ``{"points": [...], "baseline_units", "learned_units",
        "ratio", "tolerance"}``; per-point rows carry the optimum
        reward, both unit counts and the predictions used.
    """
    rows: List[Dict[str, Any]] = []
    baseline_total = 0
    learned_total = 0
    for workload, arch in pairs:
        searcher = TileSeek(iterations=iterations, seed=seed)
        optimum = searcher.search(
            workload, arch, budget=iterations * 2,
            allow_fallback=True,
        ).stats.best_reward
        learned: Tuple[Tuple[int, ...], ...] = ()
        if predictor is not None:
            learned = predictor.predict(
                features_for(workload, arch)
            )
        baseline = units_to_target(
            workload, arch, optimum,
            iterations=iterations, seed=seed, tolerance=tolerance,
        )
        warmed = units_to_target(
            workload, arch, optimum, learned=learned,
            iterations=iterations, seed=seed, tolerance=tolerance,
        )
        baseline_total += baseline
        learned_total += warmed
        rows.append({
            "workload": workload.describe(),
            "arch": arch.name,
            "optimum_reward": float(optimum),
            "baseline_units": baseline,
            "learned_units": warmed,
            "predictions": [list(a) for a in learned],
        })
    ratio = (
        learned_total / baseline_total if baseline_total else 1.0
    )
    return {
        "points": rows,
        "baseline_units": baseline_total,
        "learned_units": learned_total,
        "ratio": ratio,
        "tolerance": tolerance,
    }
