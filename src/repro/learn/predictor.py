"""The learned warm-start predictor.

A deliberately small model: k-nearest-neighbor over the normalized
feature vectors of :mod:`repro.learn.corpus`.  The corpus holds one
record per distinct feature vector (best reward wins), so prediction
is a sort of the training set by squared distance -- tie-broken by
record key, lexically, so the neighbor order (and therefore every
prediction) is byte-reproducible on any platform and hash seed.

The fitted model is itself a plan-cache artifact (kind
``learn-model``), content-addressed and salt-stamped like every other
cached result: one slot per code version, so a model fitted by an
older tree is simply never *found* by a newer one, and
:func:`load_model` re-checks the stored salt besides -- a stale model
cannot be served even if a foreign process wrote into the current
slot.  Same corpus in, byte-identical artifact out.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.learn.corpus import FEATURE_ORDER, Corpus, corpus_hash
from repro.runner.cache import PlanCache, code_salt, stable_hash

#: Model schema version; bump on incompatible artifact changes.
MODEL_VERSION = 1

#: Plan-cache kind of the persisted artifact.
MODEL_KIND = "learn-model"

#: Default neighbor count (overridable per call or via
#: ``REPRO_LEARN_K``).
DEFAULT_K = 3


class Predictor:
    """The minimal predictor interface the wiring layers consume."""

    def predict(
        self,
        features: Mapping[str, float],
        k: Optional[int] = None,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Up to ``k`` distinct predicted assignments, best first."""
        raise NotImplementedError


class KNNPredictor(Predictor):
    """k-nearest-neighbor over normalized shape/arch features.

    Args:
        records: Corpus records (``{key, features, assignment,
            reward}``); stored sorted by key so the artifact bytes
            are independent of input order.
        k: Default neighbor count per prediction.
        salt: Code salt of the corpus the model was fitted on
            (defaults to the current tree's).
        corpus: Content hash of the training corpus (recomputed from
            the records when omitted).
    """

    def __init__(
        self,
        records: Sequence[Mapping[str, Any]],
        k: int = DEFAULT_K,
        salt: Optional[str] = None,
        corpus: Optional[str] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.records: Tuple[Dict[str, Any], ...] = tuple(sorted(
            (dict(record) for record in records),
            key=lambda record: record["key"],
        ))
        self.k = int(k)
        self.salt = code_salt() if salt is None else salt
        self.corpus = corpus if corpus is not None else stable_hash({
            "records": [dict(r) for r in self.records],
            "salt": self.salt,
        })

    @classmethod
    def fit(
        cls, corpus: Corpus, k: Optional[int] = None
    ) -> "KNNPredictor":
        """Fit on an extracted corpus (kNN "fitting" is storage; the
        value is in the normalized, deduplicated records)."""
        return cls(
            corpus.records,
            k=DEFAULT_K if k is None else k,
            salt=corpus.salt,
            corpus=corpus_hash(corpus),
        )

    def predict(
        self,
        features: Mapping[str, float],
        k: Optional[int] = None,
    ) -> Tuple[Tuple[int, ...], ...]:
        """Up to ``k`` distinct nearest-neighbor assignments.

        Neighbors are ordered by squared feature distance, ties by
        record key (lexical) -- a total, platform-independent order.
        Distinct means distinct *assignments*: several neighbors
        voting for the same tiling yield one candidate.
        """
        limit = self.k if k is None else k
        if limit < 1:
            raise ValueError(f"k must be >= 1, got {limit}")
        scored = sorted(
            (
                (_distance(features, record["features"]),
                 record["key"], record)
                for record in self.records
            ),
            key=lambda entry: (entry[0], entry[1]),
        )
        predictions: List[Tuple[int, ...]] = []
        for _, _, record in scored:
            assignment = tuple(
                int(v) for v in record["assignment"]
            )
            if assignment not in predictions:
                predictions.append(assignment)
            if len(predictions) >= limit:
                break
        return tuple(predictions)

    def predict_for(
        self, workload: Any, arch: Any, k: Optional[int] = None
    ) -> Tuple[Tuple[int, ...], ...]:
        """Convenience: predict from live workload/arch objects."""
        from repro.learn.corpus import features_for

        return self.predict(features_for(workload, arch), k=k)

    def to_dict(self) -> Dict[str, Any]:
        """The persisted artifact document (pure primitives)."""
        return {
            "v": MODEL_VERSION,
            "kind": MODEL_KIND,
            "salt": self.salt,
            "k": self.k,
            "corpus": self.corpus,
            "records": [dict(r) for r in self.records],
        }


def _distance(
    query: Mapping[str, float], other: Mapping[str, float]
) -> float:
    """Squared feature distance, summed in :data:`FEATURE_ORDER`.

    The fixed summation order keeps the float deterministic; missing
    features read as 0.0 so records from older corpus versions stay
    comparable.
    """
    return sum(
        (query.get(name, 0.0) - other.get(name, 0.0)) ** 2
        for name in FEATURE_ORDER
    )


def model_cache_key(salt: Optional[str] = None) -> str:
    """The one artifact slot of the current code version.

    Addressing by salt (rather than by corpus content) means loading
    needs no directory listing -- and a model fitted by any other
    code version lands in a different slot, so stale models are
    structurally unreachable.
    """
    return stable_hash({
        "kind": MODEL_KIND,
        "salt": code_salt() if salt is None else salt,
    })


def save_model(
    predictor: KNNPredictor, cache: Optional[PlanCache] = None
):
    """Persist the fitted model into the plan cache.

    Returns the entry path.  The same corpus always writes the same
    bytes (sorted records, canonical document, atomic replace).
    """
    if cache is None:
        from repro.runner.cache import default_cache

        cache = default_cache()
    if cache is None:
        from repro.runner.faults import SweepConfigError

        raise SweepConfigError(
            "persisting a learn model needs the plan cache "
            "(REPRO_CACHE=0 disables it)"
        )
    return cache.put(
        MODEL_KIND,
        model_cache_key(predictor.salt),
        predictor.to_dict(),
        payload={"kind": MODEL_KIND, "salt": predictor.salt},
    )


def load_model(
    cache: Optional[PlanCache] = None,
) -> Optional[KNNPredictor]:
    """The current code version's fitted model, or ``None``.

    Salt is checked twice -- the slot address embeds it and the
    stored document restates it -- so a stale-salt artifact is
    ignored, never served.  Unknown schema versions are ignored the
    same way.
    """
    if cache is None:
        from repro.runner.cache import default_cache

        cache = default_cache()
    if cache is None:
        return None
    document = cache.get(MODEL_KIND, model_cache_key())
    if not isinstance(document, dict):
        return None
    if document.get("v") != MODEL_VERSION:
        return None
    if document.get("salt") != code_salt():
        return None
    records = document.get("records")
    k = document.get("k")
    if not isinstance(records, list) or not isinstance(k, int):
        return None
    try:
        return KNNPredictor(
            records,
            k=k,
            salt=document["salt"],
            corpus=document.get("corpus"),
        )
    except (KeyError, TypeError, ValueError):
        return None
