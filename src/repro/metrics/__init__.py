"""Evaluation metrics used by the paper's figures.

* :mod:`repro.metrics.speedup` -- speedups and the Eq. 47-48 layer-wise
  speedup-contribution decomposition (Figure 11).
* :mod:`repro.metrics.energy` -- normalized energy and breakdown
  comparisons (Figures 12 and 13).
* :mod:`repro.metrics.tables` -- plain-text table rendering for the
  benchmark harnesses.
"""

from repro.metrics.energy import energy_ratio, normalized_breakdown
from repro.metrics.speedup import (
    geomean,
    speedup,
    speedup_contributions,
)
from repro.metrics.tables import format_table

__all__ = [
    "energy_ratio",
    "format_table",
    "geomean",
    "normalized_breakdown",
    "speedup",
    "speedup_contributions",
]
