"""Energy metrics (Figures 12 and 13)."""

from __future__ import annotations

from typing import Dict

from repro.arch.spec import ArchitectureSpec
from repro.sim.stats import RunReport


def energy_ratio(
    baseline: RunReport,
    candidate: RunReport,
    arch: ArchitectureSpec,
) -> float:
    """``candidate`` energy normalized to ``baseline`` (Figure 12;
    lower is better)."""
    base = baseline.energy(arch).total_pj
    if base <= 0:
        raise ValueError("baseline energy must be positive")
    return candidate.energy(arch).total_pj / base


def normalized_breakdown(
    report: RunReport, arch: ArchitectureSpec
) -> Dict[str, float]:
    """Energy fractions by memory-hierarchy component (Figure 13).

    Keys: ``dram``, ``buffer``, ``rf``, ``pe``; values sum to 1.
    """
    return report.energy(arch).fractions()
