"""Speedup metrics (Section 6.1).

Besides plain end-to-end speedup, the paper decomposes *where* a
speedup comes from with a weighted attribution scheme: for each layer
``i``, the per-layer speedup ``S_i = T_i_baseline / T_i_transfusion``
(Eq. 47) is weighted by the baseline time it applies to and normalized
(Eq. 48), so the contributions sum to one.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable

from repro.arch.spec import ArchitectureSpec
from repro.sim.stats import RunReport


def speedup(
    baseline: RunReport,
    candidate: RunReport,
    arch: ArchitectureSpec,
) -> float:
    """End-to-end speedup of ``candidate`` over ``baseline``."""
    denom = candidate.latency_seconds(arch)
    if denom <= 0:
        raise ValueError("candidate latency must be positive")
    return baseline.latency_seconds(arch) / denom


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate across sequences)."""
    values = list(values)
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedup_contributions(
    baseline: RunReport,
    candidate: RunReport,
    arch: ArchitectureSpec,
) -> Dict[str, float]:
    """Layer-wise speedup contributions (Eq. 47-48).

    Args:
        baseline: The reference executor's report (FuseMax in Fig. 11).
        candidate: The accelerated executor's report (TransFusion).
        arch: Target architecture.

    Returns:
        Phase name -> contribution in [0, 1]; contributions sum to 1.
    """
    base_lat = baseline.phase_latencies(arch)
    cand_lat = candidate.phase_latencies(arch)
    if set(base_lat) != set(cand_lat):
        raise ValueError(
            "reports have different phases: "
            f"{sorted(base_lat)} vs {sorted(cand_lat)}"
        )
    weighted: Dict[str, float] = {}
    for name, t_base in base_lat.items():
        t_cand = cand_lat[name]
        if t_cand <= 0:
            raise ValueError(f"phase {name!r} has zero latency")
        s_i = t_base / t_cand  # Eq. 47
        weighted[name] = s_i * t_base
    total = sum(weighted.values())
    if total <= 0:
        raise ValueError("degenerate reports: zero total weight")
    return {name: w / total for name, w in weighted.items()}  # Eq. 48
