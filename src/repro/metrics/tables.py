"""Plain-text table rendering for the benchmark harnesses."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Floats render with four significant digits; everything else with
    ``str``.  Used by the per-figure benchmarks to print the same rows
    and series the paper reports.
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    cells: List[List[str]] = [[render(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(
        h.ljust(widths[i]) for i, h in enumerate(headers)
    )
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            " | ".join(c.ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)
