"""Transformer model shape configurations and workloads.

Scheduling cost depends only on tensor shapes, so models are described
by their dimensions: hidden size ``d``, heads ``h``, per-head embedding
``e = f``, FFN hidden ``s`` and layer count.
"""

from repro.model.config import (
    MODEL_ZOO,
    ModelConfig,
    named_model,
)
from repro.model.workload import Workload

__all__ = ["MODEL_ZOO", "ModelConfig", "Workload", "named_model"]
