"""Model shape configurations (the paper's Section 6.1 workloads).

The evaluation covers BERT-Base, Transformer-XL (wt103), T5-small, XLM
and Llama3-8B, adopted from the FLAT / FuseMax benchmark suites.  Only
shapes matter to the scheduler, so each model is a handful of integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class ModelConfig:
    """Transformer shape parameters.

    Attributes:
        name: Model name.
        d_model: Hidden size ``d`` (= ``heads * e_head``).
        heads: Query head count ``h``.
        e_head: Query/key per-head dim ``e`` (= value dim ``f``).
        ffn_hidden: FFN hidden size ``s``.
        layers: Encoder/decoder layer count (scales totals; never
            changes per-layer schedules).
        activation: FFN activation function name.
        kv_heads: Key/value head count for grouped-query attention
            (GQA); ``None`` means classic MHA (``kv_heads = heads``).
            GQA shrinks the K/V projections, the K/V cache and the
            Table-2 K/V residency terms by ``kv_heads / heads``;
            attention *compute* is unchanged (every query head still
            attends, sharing K/V within its group).
    """

    name: str
    d_model: int
    heads: int
    e_head: int
    ffn_hidden: int
    layers: int
    activation: str = "gelu"
    kv_heads: Optional[int] = None

    def __post_init__(self) -> None:
        if min(self.d_model, self.heads, self.e_head, self.ffn_hidden,
               self.layers) <= 0:
            raise ValueError(f"{self.name}: all dims must be positive")
        if self.heads * self.e_head != self.d_model:
            raise ValueError(
                f"{self.name}: heads*e_head = {self.heads * self.e_head} "
                f"!= d_model = {self.d_model}"
            )
        if self.kv_heads is not None:
            if self.kv_heads <= 0 or self.kv_heads > self.heads:
                raise ValueError(
                    f"{self.name}: kv_heads must be in [1, heads]"
                )
            if self.heads % self.kv_heads:
                raise ValueError(
                    f"{self.name}: heads ({self.heads}) must be a "
                    f"multiple of kv_heads ({self.kv_heads})"
                )

    @property
    def f_head(self) -> int:
        """Value per-head dim ``f`` (the paper assumes ``E = F``)."""
        return self.e_head

    @property
    def effective_kv_heads(self) -> int:
        """K/V head count (``heads`` for MHA, fewer for GQA)."""
        return self.heads if self.kv_heads is None else self.kv_heads

    @property
    def kv_fraction(self) -> float:
        """``kv_heads / heads``: the GQA shrink factor on everything
        K/V-sized (projections, cache, residency)."""
        return self.effective_kv_heads / self.heads

    def extents(self) -> Dict[str, int]:
        """Model-side dimension extents (sequence dims added later)."""
        return {
            "d": self.d_model,
            "h": self.heads,
            "e": self.e_head,
            "f": self.f_head,
            "s": self.ffn_hidden,
        }


#: The five Section 6.1 evaluation models.
MODEL_ZOO: Dict[str, ModelConfig] = {
    "bert": ModelConfig(
        name="bert", d_model=768, heads=12, e_head=64,
        ffn_hidden=3072, layers=12, activation="gelu",
    ),
    "trxl": ModelConfig(
        name="trxl", d_model=1024, heads=16, e_head=64,
        ffn_hidden=4096, layers=18, activation="relu",
    ),
    "t5": ModelConfig(
        name="t5", d_model=512, heads=8, e_head=64,
        ffn_hidden=2048, layers=6, activation="relu",
    ),
    "xlm": ModelConfig(
        name="xlm", d_model=2048, heads=16, e_head=128,
        ffn_hidden=8192, layers=12, activation="gelu",
    ),
    "llama3": ModelConfig(
        name="llama3", d_model=4096, heads=32, e_head=128,
        ffn_hidden=14336, layers=32, activation="silu",
    ),
    # Llama3-8B's actual attention is grouped-query (8 K/V heads);
    # the dense "llama3" preset above matches the paper's MHA-style
    # evaluation, this one prices the real cache/projection shapes.
    "llama3-gqa": ModelConfig(
        name="llama3-gqa", d_model=4096, heads=32, e_head=128,
        ffn_hidden=14336, layers=32, activation="silu", kv_heads=8,
    ),
}


def named_model(name: str) -> ModelConfig:
    """Look up a model preset by (case-insensitive) name."""
    key = name.lower()
    if key not in MODEL_ZOO:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(MODEL_ZOO)}"
        )
    return MODEL_ZOO[key]
