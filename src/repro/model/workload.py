"""Workloads: a model at a sequence length and batch size.

A :class:`Workload` owns the *problem-space* dimension extents.  Tiling
decisions (``p`` tile length, ``m1``/``m0`` split, batch tile) come
later, from TileSeek or a baseline tiler, and produce the per-tile
``extents`` mapping consumed by cascades and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.model.config import ModelConfig


@dataclass(frozen=True)
class Workload:
    """One inference problem instance.

    Attributes:
        model: Shape configuration.
        seq_len: Query sequence length ``P``.
        batch: Batch size (the paper fixes ``B = 64``).
        kv_seq_len: Key/value sequence length ``M``; ``None`` means
            self-attention (``M = P``).  Set it for the decoder's
            cross-attention, where K/V come from the encoder memory.
        causal: Whether attention is causally masked (decoder
            self-attention).  A causal mask halves the useful score
            work and K/V reads on average.
        project_kv: Whether this step computes the K/V projections of
            the whole key/value sequence (True for prefill and
            encoder layers).  False models autoregressive decode
            against a persistent KV cache: only the ``seq_len`` new
            tokens are projected and spilled, while attention still
            reads the full ``kv_seq_len`` cache.
    """

    model: ModelConfig
    seq_len: int
    batch: int = 64
    kv_seq_len: Optional[int] = None
    causal: bool = False
    project_kv: bool = True

    def __post_init__(self) -> None:
        if self.seq_len <= 0:
            raise ValueError("seq_len must be positive")
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.kv_seq_len is not None and self.kv_seq_len <= 0:
            raise ValueError("kv_seq_len must be positive")
        if self.causal and self.kv_seq_len not in (None,
                                                   self.seq_len):
            raise ValueError(
                "causal masking requires self-attention "
                "(kv_seq_len == seq_len)"
            )

    @property
    def kv_len(self) -> int:
        """Key/value sequence length (``M``)."""
        return (
            self.seq_len if self.kv_seq_len is None
            else self.kv_seq_len
        )

    @property
    def attention_work_fraction(self) -> float:
        """Fraction of the dense ``P x M`` score work that is live.

        1.0 for dense attention; 0.5 under a causal mask (the lower
        triangle), which also halves average K/V reads per Q tile.
        """
        return 0.5 if self.causal else 1.0

    def problem_extents(self) -> Dict[str, int]:
        """Full-problem extents: model dims plus sequence and batch."""
        extents = self.model.extents()
        extents.update({"P": self.seq_len, "M": self.kv_len,
                        "B": self.batch})
        return extents

    # ------------------------------------------------------------------
    # Per-layer operation counts (exact, from the cascade structure).
    # ------------------------------------------------------------------
    @property
    def qkv_macs(self) -> float:
        """MACs for Q/K/V projections of one layer (Eq. 25-27):
        the Q projection over ``P`` tokens plus K and V projections
        over the tokens actually projected this step."""
        d2 = self.model.d_model ** 2
        q = self.batch * self.seq_len * d2
        kv = (
            2.0 * self.batch * self.kv_projected_len * d2
            * self.model.kv_fraction
        )
        return q + kv

    @property
    def attention_macs(self) -> float:
        """MACs for QK^T plus attention-times-V of one layer (live
        work only: a causal mask halves the dense count)."""
        m = self.model
        per_head = self.seq_len * self.kv_len * (m.e_head + m.f_head)
        return (
            self.batch * m.heads * per_head
            * self.attention_work_fraction
        )

    @property
    def ffn_macs(self) -> float:
        """MACs for both FFN linear layers of one layer (Eq. 37, 39)."""
        m = self.model
        return 2.0 * self.batch * self.seq_len * m.d_model * m.ffn_hidden

    @property
    def layer_macs(self) -> float:
        """Total MACs of one encoder layer."""
        return self.qkv_macs + self.attention_macs + self.ffn_macs

    @property
    def score_elements(self) -> float:
        """Live attention-score elements per layer (``B * H * P * M``
        scaled by the causal fraction)."""
        return (
            self.batch * self.model.heads * self.seq_len
            * self.kv_len * self.attention_work_fraction
        )

    @property
    def activation_words(self) -> float:
        """Words in one full activation tensor (``B * P * D``)."""
        return float(self.batch * self.seq_len * self.model.d_model)

    @property
    def kv_words(self) -> float:
        """Words in the K/V cache of one layer
        (``2 * B * M * Hk * E``; ``Hk = H`` for MHA)."""
        per_token = (
            self.model.effective_kv_heads * self.model.e_head
        )
        return 2.0 * self.batch * self.kv_len * per_token

    @property
    def kv_projected_len(self) -> int:
        """Tokens whose K/V this step actually projects: the full
        sequence for prefill, only the new tokens for decode."""
        return self.kv_len if self.project_kv else self.seq_len

    @property
    def kv_spill_words(self) -> float:
        """Words of freshly projected K/V written to the cache."""
        per_token = (
            self.model.effective_kv_heads * self.model.e_head
        )
        return (
            2.0 * self.batch * self.kv_projected_len * per_token
        )

    def describe(self) -> str:
        """Short human-readable label."""
        label = f"{self.model.name} P={self.seq_len} B={self.batch}"
        if self.kv_seq_len is not None:
            label += f" M={self.kv_seq_len}"
        if self.causal:
            label += " causal"
        if not self.project_kv:
            label += " decode"
        return label
