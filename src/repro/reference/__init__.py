"""Textbook NumPy Transformer reference implementations.

Used only to validate the Einsum cascades numerically; never used by the
scheduler or cost model.
"""

from repro.reference.functional import (
    feed_forward,
    layer_norm,
    multi_head_attention,
    qkv_projection,
    transformer_layer,
)

__all__ = [
    "feed_forward",
    "layer_norm",
    "multi_head_attention",
    "qkv_projection",
    "transformer_layer",
]
