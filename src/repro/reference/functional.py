"""Plain-NumPy Transformer building blocks (Eq. 1-4 of the paper).

These functions compute attention, LayerNorm and FFN the *textbook* way
(full softmax matrix materialized, two-pass statistics) and serve as the
golden reference for the streaming Einsum cascades.

Array layout convention matches the cascades: heads-first tensors
``[h, e, p]`` / ``[h, f, p]`` with the token (sequence) axis last.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.einsum.operation import MAP_FUNCTIONS


def qkv_projection(
    inp_q: np.ndarray,
    inp_kv: np.ndarray,
    wq: np.ndarray,
    wk: np.ndarray,
    wv: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Project inputs into per-head Q/K/V tensors (Eq. 25-27 semantics).

    Args:
        inp_q: Query-side input, shape ``[d, p]``.
        inp_kv: Key/value-side input, shape ``[d, m]`` (full sequence).
        wq: Query weights ``[d, h, e]``.
        wk: Key weights ``[d, h, e]``.
        wv: Value weights ``[d, h, f]``.

    Returns:
        ``{"Q": [h, e, p], "K": [h, e, m], "V": [h, f, m]}``.
    """
    return {
        "Q": np.einsum("dp,dhe->hep", inp_q, wq),
        "K": np.einsum("dm,dhe->hem", inp_kv, wk),
        "V": np.einsum("dm,dhf->hfm", inp_kv, wv),
    }


def softmax(scores: np.ndarray, axis: int) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = scores - np.max(scores, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def multi_head_attention(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    scale: Optional[float] = None,
    mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scaled dot-product attention per head (Eq. 1).

    Args:
        q: Queries ``[h, e, p]``.
        k: Keys ``[h, e, m]``.
        v: Values ``[h, f, m]``.
        scale: Score scale; defaults to 1 to match Cascade 1, which (like
            FuseMax) folds the ``1/sqrt(d_k)`` factor into Q upstream.
        mask: Optional additive mask ``[m, p]`` (0 = visible, ``-inf``
            = hidden), broadcast over heads -- the decoder's masked
            self-attention.

    Returns:
        Attention output ``[h, f, p]``.
    """
    scores = np.einsum("hep,hem->hmp", q, k)
    if scale is not None:
        scores = scores * scale
    if mask is not None:
        scores = scores + mask[None, :, :]
    weights = softmax(scores, axis=1)
    return np.einsum("hmp,hfm->hfp", weights, v)


def causal_mask(m: int, p: int) -> np.ndarray:
    """Additive causal mask ``[m, p]``: query ``j`` sees keys
    ``0..j`` (query and key sequences aligned at position 0)."""
    if m <= 0 or p <= 0:
        raise ValueError("mask dims must be positive")
    keys = np.arange(m)[:, None]
    queries = np.arange(p)[None, :]
    return np.where(keys <= queries, 0.0, -np.inf)


def layer_norm(
    inp: np.ndarray, av: np.ndarray, eps: float = 0.0
) -> np.ndarray:
    """Residual add followed by per-token LayerNorm (Eq. 3 / 28-36).

    Normalizes each token's flattened ``(h, f)`` feature vector using
    the biased (population) variance, exactly as Cascade 3 does.

    Args:
        inp: Residual input ``[h, f, p]``.
        av: Sub-layer output ``[h, f, p]``.
        eps: Variance epsilon (0 matches the paper's Eq. 35).

    Returns:
        Normalized activations ``[h, f, p]``.
    """
    x = inp + av
    mean = x.mean(axis=(0, 1), keepdims=True)
    centered = x - mean
    variance = np.square(centered).mean(axis=(0, 1), keepdims=True)
    return centered / np.sqrt(variance + eps)


def feed_forward(
    nr: np.ndarray,
    wf1: np.ndarray,
    bf1: np.ndarray,
    wf2: np.ndarray,
    bf2: np.ndarray,
    activation: str = "gelu",
) -> np.ndarray:
    """Two-layer FFN with activation (Eq. 4 / 37-39).

    Args:
        nr: Input activations ``[h, f, p]``.
        wf1: First weights ``[h, f, s]``.
        bf1: First bias ``[s]``.
        wf2: Second weights ``[h, f, s]``.
        bf2: Second bias ``[h, f]``.
        activation: ``"relu"``, ``"gelu"`` or ``"silu"``.

    Returns:
        FFN output ``[h, f, p]``.
    """
    act = MAP_FUNCTIONS[activation][1]
    hidden = np.einsum("hfp,hfs->sp", nr, wf1) + bf1[:, None]
    activated = act(hidden)
    return (
        np.einsum("sp,hfs->hfp", activated, wf2) + bf2[:, :, None]
    )


def transformer_layer(
    inp: np.ndarray,
    weights: Dict[str, np.ndarray],
    activation: str = "gelu",
    eps: float = 0.0,
) -> np.ndarray:
    """One full post-norm encoder layer, textbook formulation.

    Pipeline: QKV projection -> MHA -> Add & LayerNorm -> FFN ->
    Add & LayerNorm, mirroring the TransFusion dataflow of Figure 3.

    Args:
        inp: Input activations ``[d, p]`` with ``d = h * e``.
        weights: ``{"WQ", "WK", "WV", "WF1", "BF1", "WF2", "BF2"}``.
        activation: FFN activation name.
        eps: LayerNorm epsilon.

    Returns:
        Layer output ``[h, f, p]``.
    """
    d, p = inp.shape
    h, e = weights["WQ"].shape[1], weights["WQ"].shape[2]
    if h * e != d:
        raise ValueError(f"d={d} must equal h*e={h * e}")
    qkv = qkv_projection(inp, inp, weights["WQ"], weights["WK"],
                         weights["WV"])
    av = multi_head_attention(qkv["Q"], qkv["K"], qkv["V"])
    residual = inp.reshape(h, e, p)
    nr = layer_norm(residual, av, eps=eps)
    ffn_out = feed_forward(
        nr,
        weights["WF1"],
        weights["BF1"],
        weights["WF2"],
        weights["BF2"],
        activation=activation,
    )
    return layer_norm(nr, ffn_out, eps=eps)
