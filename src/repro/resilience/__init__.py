"""Anytime-search resilience: budgets, degradation, diagnostics.

Three pieces turn the framework's two search layers (TileSeek's MCTS,
DPipe's branch-and-bound DFS) into anytime algorithms that degrade
instead of dying:

* :mod:`repro.resilience.budget` -- deterministic unit budgets
  (``REPRO_BUDGET`` / the advisory ``REPRO_DEADLINE``) threaded
  cooperatively through both searches, plus the provenance vocabulary
  (``complete`` / ``budget_exhausted`` / ``fallback:<rung>``) every
  result carries.
* :mod:`repro.resilience.ladder` -- the graceful-degradation ladder a
  budget-exhausted or empty search descends (warm-start reuse ->
  learned prediction -> greedy Table-2-validated heuristic tiling ->
  minimal mapping), and the rung classification recorded into plans
  and reports.
* :mod:`repro.resilience.diagnostics` -- typed infeasibility: when no
  tiling fits the Table-2 buffer model, a :class:`BufferDiagnosis`
  names the overflowing module, the overflow in words and the
  smallest violating tile, carried by
  :class:`~repro.runner.faults.InfeasiblePoint`.
"""

from repro.resilience.budget import (
    ENV_BUDGET,
    ENV_DEADLINE,
    ENV_NO_FALLBACK,
    PROVENANCE_BUDGET_EXHAUSTED,
    PROVENANCE_COMPLETE,
    UNITS_PER_SECOND,
    Budget,
    fallback_enabled,
    fallback_provenance,
    is_degraded,
    resolve_budget,
    worst_provenance,
)
from repro.resilience.diagnostics import (
    BufferDiagnosis,
    diagnose_infeasible,
)
from repro.resilience.ladder import (
    RUNG_FIRST_ORDER,
    RUNG_HEURISTIC,
    RUNG_LEARNED,
    RUNG_MINIMAL,
    RUNG_WARM_START,
    classify_rung,
)

__all__ = [
    "ENV_BUDGET",
    "ENV_DEADLINE",
    "ENV_NO_FALLBACK",
    "PROVENANCE_BUDGET_EXHAUSTED",
    "PROVENANCE_COMPLETE",
    "RUNG_FIRST_ORDER",
    "RUNG_HEURISTIC",
    "RUNG_LEARNED",
    "RUNG_MINIMAL",
    "RUNG_WARM_START",
    "UNITS_PER_SECOND",
    "Budget",
    "BufferDiagnosis",
    "classify_rung",
    "diagnose_infeasible",
    "fallback_enabled",
    "fallback_provenance",
    "is_degraded",
    "resolve_budget",
    "worst_provenance",
]
