"""Deterministic search budgets and result provenance.

A :class:`Budget` counts *deterministic units* of search work -- MCTS
iterations for TileSeek, DFS node visits for DPipe's branch-and-bound
-- never wall-clock time.  Two runs of the same search under the same
budget therefore spend it at exactly the same point regardless of host
speed or worker count, which is what preserves the sweep engine's
"serial == parallel byte-identical" invariant under degradation.

Wall clocks enter only *advisorily*: ``REPRO_DEADLINE`` (seconds) is
mapped to a unit budget **once at entry** through the fixed
:data:`UNITS_PER_SECOND` rate.  The mapping never re-reads a clock, so
a slow machine produces the same (possibly degraded) result as a fast
one -- the deadline biases how much work is attempted, not what the
answer is.

Every search result carries a *provenance* string:

``complete``
    The search ran to its configured iteration/order caps.
``budget_exhausted``
    The budget ran out mid-search; the best-so-far incumbent was
    returned (an anytime result, still fully validated).
``fallback:<rung>``
    The search produced nothing usable and a degradation-ladder rung
    (:mod:`repro.resilience.ladder`) supplied the result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.settings import env_bool, env_float, env_int

ENV_BUDGET = "REPRO_BUDGET"
ENV_DEADLINE = "REPRO_DEADLINE"
ENV_NO_FALLBACK = "REPRO_NO_FALLBACK"

#: Fixed advisory rate mapping a soft deadline to search units.  The
#: constant is part of the contract, not a measurement: changing it
#: changes results under ``REPRO_DEADLINE``, so it must never be
#: derived from the host.
UNITS_PER_SECOND = 50_000

PROVENANCE_COMPLETE = "complete"
PROVENANCE_BUDGET_EXHAUSTED = "budget_exhausted"
_FALLBACK_PREFIX = "fallback:"


def fallback_provenance(rung: str) -> str:
    """The provenance string recorded for one ladder rung."""
    return f"{_FALLBACK_PREFIX}{rung}"


def is_degraded(provenance: str) -> bool:
    """Whether a provenance marks anything short of a complete search."""
    return provenance != PROVENANCE_COMPLETE


def _severity(provenance: str) -> int:
    if provenance.startswith(_FALLBACK_PREFIX):
        return 2
    if provenance == PROVENANCE_BUDGET_EXHAUSTED:
        return 1
    return 0


def worst_provenance(*provenances: str) -> str:
    """Aggregate per-component provenances into one report-level label.

    ``fallback:<rung>`` outranks ``budget_exhausted`` outranks
    ``complete``; ties keep the first (deterministic: callers pass
    components in a fixed order).
    """
    worst = PROVENANCE_COMPLETE
    for provenance in provenances:
        if _severity(provenance) > _severity(worst):
            worst = provenance
    return worst


@dataclass
class Budget:
    """A cooperative, deterministic unit budget for one search.

    Args:
        limit: Maximum units; ``None`` is unlimited (spending is
            still counted, for stats).

    Each search invocation gets a *fresh* budget -- sharing one across
    memoized searches would make results depend on execution order.
    """

    limit: Optional[int]
    spent: int = 0

    def charge(self, units: int = 1) -> bool:
        """Consume ``units``; ``False`` once the budget is exhausted.

        The unit of work gated by a ``True`` return may still run --
        exhaustion is reported *before* the next unit, so a budget of
        ``n`` performs exactly ``n`` units.
        """
        if self.limit is not None and self.spent >= self.limit:
            return False
        self.spent += units
        return True

    def exhausted(self) -> bool:
        """Whether no further units remain."""
        return self.limit is not None and self.spent >= self.limit

    @property
    def remaining(self) -> Optional[int]:
        """Units left, or ``None`` when unlimited."""
        if self.limit is None:
            return None
        return max(0, self.limit - self.spent)


def resolve_budget(limit: Optional[int] = None) -> Optional[int]:
    """The per-search unit limit: argument, else environment, else none.

    ``REPRO_BUDGET`` sets the limit directly; ``REPRO_DEADLINE``
    (seconds) maps to units once through :data:`UNITS_PER_SECOND` and
    the tighter of the two wins.  Returns ``None`` when unbudgeted.
    """
    if limit is None:
        limit = env_int(
            ENV_BUDGET, "a search unit budget", minimum=1
        )
    deadline = env_float(ENV_DEADLINE, "a number of seconds")
    if deadline is not None and deadline > 0:
        units = max(1, int(deadline * UNITS_PER_SECOND))
        limit = units if limit is None else min(limit, units)
    return limit


def fallback_enabled() -> bool:
    """Whether the degradation ladder may run (``REPRO_NO_FALLBACK``)."""
    return not env_bool(ENV_NO_FALLBACK, default=False)
