"""Typed infeasibility diagnostics for the Table-2 buffer model.

When *no* outer tiling fits the on-chip buffer, the right output is
not an exception trace out of an auditor -- it is a diagnosis: which
Table-2 module overflows, by how many words, under the smallest tile
the search space contains.  The Table-2 footprints are monotone in
every tiling factor, so if the minimal configuration overflows, every
configuration does; the minimal tile therefore *is* the smallest
violating tile, and its per-module footprints pinpoint the binding
constraint (usually the weight-slice or staging terms that no tiling
factor can shrink below the model's own shapes).

:func:`diagnose_infeasible` packages that evidence as a
:class:`BufferDiagnosis`; the search layer attaches it to an
:class:`~repro.runner.faults.InfeasiblePoint`, which the sweep engine
surfaces as a distinct ``infeasible`` status (never retried -- the
diagnosis cannot change).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.model.config import ModelConfig
from repro.tileseek.buffer_model import (
    FUSED_MODULES,
    MIN_COMPANION_FACTORS,
    TilingConfig,
    intra_tile_p_prime,
    layer_buffer_requirement,
)


@dataclass(frozen=True)
class BufferDiagnosis:
    """Why no tiling fits: the minimal tile's Table-2 evidence.

    Attributes:
        capacity_words: On-chip buffer capacity in words.
        required_words: Peak footprint of the minimal tile (the
            smallest any configuration can need).
        overflow_words: ``required_words - capacity_words`` (> 0).
        worst_module: The Table-2 module with the peak footprint
            (first in Table-2 order on ties).
        module_words: Per-module footprints of the minimal tile.
        smallest_tile: The minimal (violating) tiling factors.
    """

    capacity_words: int
    required_words: int
    overflow_words: int
    worst_module: str
    module_words: Mapping[str, int]
    smallest_tile: Mapping[str, int]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe rendering (journal / CLI / failure documents)."""
        return {
            "capacity_words": self.capacity_words,
            "required_words": self.required_words,
            "overflow_words": self.overflow_words,
            "worst_module": self.worst_module,
            "module_words": dict(self.module_words),
            "smallest_tile": dict(self.smallest_tile),
        }

    def describe(self) -> str:
        """One-line human rendering for CLI summaries."""
        return (
            f"{self.worst_module} needs {self.required_words:,} of "
            f"{self.capacity_words:,} words "
            f"({self.overflow_words:,} over) even at the minimal "
            f"tile {dict(self.smallest_tile)}"
        )

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "BufferDiagnosis":
        """Rebuild a diagnosis written by :meth:`as_dict`."""
        return cls(
            capacity_words=document["capacity_words"],
            required_words=document["required_words"],
            overflow_words=document["overflow_words"],
            worst_module=document["worst_module"],
            module_words=dict(document["module_words"]),
            smallest_tile=dict(document["smallest_tile"]),
        )


def minimal_config(
    model: ModelConfig, m0: int, rows: int
) -> TilingConfig:
    """The most conservative tiling the search space contains.

    :data:`MIN_COMPANION_FACTORS` for the companion factors (clamped
    to the model's own extents, mirroring TileSeek's candidate-grid
    floors) with a one-token Q tile.
    """
    return TilingConfig(
        b=MIN_COMPANION_FACTORS["b"],
        d=min(MIN_COMPANION_FACTORS["d"], model.d_model),
        m1=MIN_COMPANION_FACTORS["m1"],
        m0=m0,
        p=1,
        s=min(MIN_COMPANION_FACTORS["s"], model.ffn_hidden),
        p_prime=intra_tile_p_prime(1, rows),
    )


def diagnose_infeasible(
    model: ModelConfig,
    buffer_words: int,
    m0: int,
    rows: int,
    cfg: Optional[TilingConfig] = None,
) -> Optional[BufferDiagnosis]:
    """Diagnose why nothing fits, or ``None`` if the minimal tile fits.

    Args:
        model: Model shapes (they set the irreducible footprint terms).
        buffer_words: On-chip capacity.
        m0: Inner K/V tile length (2D-array columns).
        rows: 2D-array rows (sets ``p'``).
        cfg: The minimal configuration to indict; defaults to
            :func:`minimal_config`.  Pass the search's own grid
            minimum so the diagnosis matches what the search proved.
    """
    if cfg is None:
        cfg = minimal_config(model, m0=m0, rows=rows)
    module_words = {
        module: layer_buffer_requirement(module, cfg, model)
        for module in FUSED_MODULES
    }
    worst_module = max(
        FUSED_MODULES, key=lambda module: module_words[module]
    )
    required = module_words[worst_module]
    if required <= buffer_words:
        return None
    return BufferDiagnosis(
        capacity_words=int(buffer_words),
        required_words=int(required),
        overflow_words=int(required - buffer_words),
        worst_module=worst_module,
        module_words=module_words,
        smallest_tile=cfg.as_dict(),
    )


def diagnose_infeasible_batch(
    model: ModelConfig,
    buffer_words: int,
    m0: int,
    rows: int,
    cfgs: Sequence[Optional[TilingConfig]],
) -> List[Optional[BufferDiagnosis]]:
    """Batched :func:`diagnose_infeasible` over many minimal tiles.

    Prices every configuration's Table-2 footprints in one vectorized
    pass (the batched search path's minimal-tile check, also useful
    for sweep-wide pre-flight screening).  Per entry the result is
    exactly what :func:`diagnose_infeasible` returns -- same
    integers, same first-in-Table-2-order tie-break for
    ``worst_module`` -- or ``None`` when that tile fits.

    Args:
        model: Model shapes.
        buffer_words: On-chip capacity.
        m0: Inner K/V tile length, used for defaulted entries.
        rows: 2D-array rows, used for defaulted entries.
        cfgs: Minimal configurations to indict; a ``None`` entry
            defaults to :func:`minimal_config`.
    """
    # Imported lazily: the batched kernel imports the buffer model
    # from this package's sibling, and keeping diagnostics NumPy-free
    # at import time preserves the historical import graph.
    import numpy as np

    from repro.tileseek.batched import (
        table2_module_words,
        words_dtype_for,
    )

    resolved = [
        cfg if cfg is not None
        else minimal_config(model, m0=m0, rows=rows)
        for cfg in cfgs
    ]
    if not resolved:
        return []
    corner = TilingConfig(
        b=max(c.b for c in resolved),
        d=max(c.d for c in resolved),
        m1=max(c.m1 for c in resolved),
        m0=max(c.m0 for c in resolved),
        p=max(c.p for c in resolved),
        s=max(c.s for c in resolved),
        p_prime=max(c.p_prime for c in resolved),
    )
    dtype = words_dtype_for(model, corner)
    columns = {
        name: np.array(
            [getattr(c, name) for c in resolved], dtype=dtype
        )
        for name in ("b", "d", "m1", "m0", "p", "s", "p_prime")
    }
    words = table2_module_words(
        model, columns["b"], columns["d"], columns["m1"],
        columns["m0"], columns["p"], columns["s"],
        columns["p_prime"],
    )
    # First-max tie-break in Table-2 order, like the scalar ``max``:
    # strictly-greater comparisons leave earlier modules in place.
    required = words[FUSED_MODULES[0]]
    worst = np.zeros(len(resolved), dtype=np.int64)
    for index, module in enumerate(FUSED_MODULES[1:], start=1):
        better = words[module] > required
        required = np.where(better, words[module], required)
        worst = np.where(better, index, worst)
    results: List[Optional[BufferDiagnosis]] = []
    for row, cfg in enumerate(resolved):
        need = int(required[row])
        if need <= buffer_words:
            results.append(None)
            continue
        results.append(BufferDiagnosis(
            capacity_words=int(buffer_words),
            required_words=need,
            overflow_words=int(need - buffer_words),
            worst_module=FUSED_MODULES[int(worst[row])],
            module_words={
                module: int(words[module][row])
                for module in FUSED_MODULES
            },
            smallest_tile=cfg.as_dict(),
        ))
    return results
