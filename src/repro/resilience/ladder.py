"""The graceful-degradation ladder for TileSeek results.

When the MCTS either exhausts its budget without a feasible incumbent
or (pathologically) converges on nothing usable, TileSeek descends a
fixed ladder instead of failing the point:

1. ``warm_start`` -- reuse a caller-provided tiling from a neighbouring
   point (the sweep engine threads the previous seq-len's winner along
   each chain), re-validated against the Table-2 buffer model.
2. ``learned`` -- a tiling predicted by the fitted corpus model
   (:mod:`repro.learn`): the k-nearest-neighbour lookup over
   normalized shape/arch features, evaluated as an extra incumbent
   exactly like a warm start.  Sits above ``heuristic`` because a
   prediction mined from real searches of similar shapes is a
   stronger prior than the greedy divisor rule.
3. ``heuristic`` -- the greedy divisor-based tiling: the largest
   feasible Q tile with minimal companion factors, found by the same
   monotone bound the pruner uses, so it is feasible by construction.
4. ``minimal`` -- the minimal unfused mapping (every factor at its
   grid floor), the most conservative point the space contains.

Each rung is *deterministic* (no search, no randomness) and is always
validated by the same auditors as a complete search -- legality holds
at every rung.  If even the minimal rung overflows the buffer, the
point is infeasible outright and is diagnosed by
:mod:`repro.resilience.diagnostics` instead.

The rung that actually supplied a result is recorded as
``fallback:<rung>`` provenance (:func:`repro.resilience.budget.fallback_provenance`).
"""

from __future__ import annotations

#: Rung 1: a warm-start tiling reused from a neighbouring point.
RUNG_WARM_START = "warm_start"
#: Rung 2: a tiling predicted by the fitted corpus model
#: (:mod:`repro.learn`), evaluated exactly like a warm start.
RUNG_LEARNED = "learned"
#: Rung 3: greedy divisor-based heuristic tiling (largest feasible Q
#: tile, minimal companions), validated against Table 2.
RUNG_HEURISTIC = "heuristic"
#: Rung 4: the minimal unfused mapping -- every factor at its floor.
RUNG_MINIMAL = "minimal"
#: DPipe analogue: schedule the first topological order directly when
#: the branch-and-bound DFS has no incumbent at budget exhaustion.
RUNG_FIRST_ORDER = "first_order"

#: Descent order; lower index = preferred (less degraded) rung.
LADDER = (RUNG_WARM_START, RUNG_LEARNED, RUNG_HEURISTIC, RUNG_MINIMAL)


def classify_rung(
    winner_index: int,
    n_warm: int,
    anchor_is_minimal: bool,
    n_learned: int = 0,
) -> str:
    """Which ladder rung a winning fallback candidate belongs to.

    TileSeek evaluates its fallback candidates in a fixed order: the
    heuristic anchor first, then each validated warm start, then each
    validated learned prediction.  Given the index of the winner in
    that sequence, classify it:

    Args:
        winner_index: 0 for the anchor, ``1..n_warm`` for warm starts,
            ``n_warm+1..n_warm+n_learned`` for learned predictions.
        n_warm: How many validated warm starts were evaluated.
        anchor_is_minimal: Whether the heuristic anchor collapsed to
            the minimal mapping (no Q tile larger than the floor fits),
            in which case the "heuristic" rung is really "minimal".
        n_learned: How many validated learned predictions were
            evaluated (after the warm starts in the candidate order).
    """
    if 1 <= winner_index <= n_warm:
        return RUNG_WARM_START
    if n_warm < winner_index <= n_warm + n_learned:
        return RUNG_LEARNED
    if anchor_is_minimal:
        return RUNG_MINIMAL
    return RUNG_HEURISTIC
