"""The sweep engine: persistent caching + parallel grid evaluation.

Three layers make the framework's own hot path (full figure sweeps)
fast and incremental:

* :mod:`repro.runner.cache` -- a content-addressed on-disk cache of
  serialized reports and tiling results, keyed by workload,
  architecture, search parameters and a code-version salt.
* :mod:`repro.runner.parallel` -- :func:`run_grid`, a deterministic
  process-pool fan-out over grid points whose serial and parallel
  outputs are byte-identical.
* warm-start hooks in :meth:`repro.tileseek.search.TileSeek.search`,
  fed by :func:`run_grid`'s per-chain threading of best assignments
  across neighboring sequence lengths.
"""

from repro.runner.cache import (
    PlanCache,
    cache_enabled,
    code_salt,
    default_cache,
    stable_hash,
)
from repro.runner.parallel import (
    DEFAULT_BATCH,
    GridPoint,
    compute_report,
    report_cache_payload,
    resolve_jobs,
    run_grid,
)

__all__ = [
    "DEFAULT_BATCH",
    "GridPoint",
    "PlanCache",
    "cache_enabled",
    "code_salt",
    "compute_report",
    "default_cache",
    "report_cache_payload",
    "resolve_jobs",
    "run_grid",
    "stable_hash",
]
