"""The sweep engine: caching + parallel + fault-tolerant execution.

Four layers make the framework's own hot path (full figure sweeps)
fast, incremental and crash-safe:

* :mod:`repro.runner.cache` -- a content-addressed on-disk cache of
  serialized reports and tiling results, keyed by workload,
  architecture, search parameters and a code-version salt; corrupted
  entries are quarantined with a :class:`CacheCorruption` warning.
* :mod:`repro.runner.parallel` -- :func:`run_grid`, a deterministic
  process-pool fan-out over grid points whose serial and parallel
  outputs are byte-identical, returning a :class:`SweepResult` with
  per-point statuses.
* :mod:`repro.runner.faults` -- the typed failure taxonomy
  (:class:`SweepError` and friends), per-chain timeouts + bounded
  deterministic retries (``REPRO_TIMEOUT`` / ``REPRO_RETRIES``), and
  the ``REPRO_FAULTS`` deterministic fault-injection harness.
* :mod:`repro.runner.journal` -- a sweep journal checkpointing every
  completed point's cache key, so ``run_grid(..., resume=True)`` /
  ``sweep --resume`` skips finished work after a crash.
* :mod:`repro.runner.pool` -- persistent, crash-respawning worker
  pools (:class:`WorkerPool` / :class:`InlineWorkerPool`) factored
  out for request serving (:mod:`repro.serve`), reusing the sweep
  engine's worker initializer and wedged-worker kill discipline.

Warm-start hooks in :meth:`repro.tileseek.search.TileSeek.search` are
fed by :func:`run_grid`'s per-chain threading of best assignments
across neighboring sequence lengths.
"""

from repro.runner.cache import (
    PlanCache,
    cache_enabled,
    code_salt,
    default_cache,
    stable_hash,
)
from repro.runner.faults import (
    CacheCorruption,
    ChainTimeout,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InfeasiblePoint,
    PointFailure,
    SweepConfigError,
    SweepError,
    WorkerCrash,
    active_plan,
    backoff_seconds,
    parse_faults,
    resolve_retries,
    resolve_timeout,
)
from repro.runner.journal import (
    SweepJournal,
    default_journal_path,
    point_fingerprint,
)
from repro.runner.pool import (
    InlineWorkerPool,
    WorkerPool,
    make_pool,
)
from repro.runner.parallel import (
    DEFAULT_BATCH,
    STATUS_FAILED,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_TIMEOUT,
    GridPoint,
    SweepResult,
    compute_report,
    report_cache_payload,
    resolve_jobs,
    run_grid,
)

__all__ = [
    "DEFAULT_BATCH",
    "STATUS_FAILED",
    "STATUS_INFEASIBLE",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "STATUS_TIMEOUT",
    "CacheCorruption",
    "ChainTimeout",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "GridPoint",
    "InfeasiblePoint",
    "InlineWorkerPool",
    "PlanCache",
    "PointFailure",
    "SweepConfigError",
    "SweepError",
    "SweepJournal",
    "SweepResult",
    "WorkerCrash",
    "WorkerPool",
    "active_plan",
    "backoff_seconds",
    "cache_enabled",
    "code_salt",
    "compute_report",
    "default_cache",
    "default_journal_path",
    "make_pool",
    "parse_faults",
    "point_fingerprint",
    "report_cache_payload",
    "resolve_jobs",
    "resolve_retries",
    "resolve_timeout",
    "run_grid",
    "stable_hash",
]
