"""Content-addressed persistent result cache for sweep runs.

Every paper figure re-prices the same (executor, model, sequence,
architecture) grid, and :mod:`scripts.reproduce_all` spawns one
benchmark process per figure -- without a persistent cache each
process pays the full TileSeek + DPipe planning cost from scratch.
This module keys each result by a stable content hash of *everything
that determines it*:

* the executor name and its search parameters,
* the full workload shape (model config, sequence, batch, masking),
* the full architecture spec (arrays, buffer, DRAM, energy model),
* any warm-start assignments injected into the tiling search, and
* a code-version salt (a hash of the ``repro`` source tree), so any
  change to the cost model or schedulers invalidates every entry
  automatically.

Values are the JSON documents produced by
:mod:`repro.core.serialize` (:class:`~repro.sim.stats.RunReport` and
:class:`~repro.tileseek.search.TileSeekResult` round-trip exactly, so
a cache hit is byte-identical to a recomputation).  The DPipe planner
also persists its ``n_epochs``-free schedule kernels here (kind
``"dpipe-kernel"``, see :mod:`repro.dpipe.planner`), so a fresh
process skips the branch-and-bound searches for layers any earlier
run has already planned.

Environment variables:

* ``REPRO_CACHE_DIR`` -- cache root (default
  ``~/.cache/repro-transfusion``).
* ``REPRO_CACHE`` -- set to ``0``/``off``/``false`` to disable the
  persistent layer entirely (in-process memoization still applies).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.runner.faults import CacheCorruption
from repro.settings import env_bool

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE = "REPRO_CACHE"

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"

#: Monotonic per-process counter making quarantine filenames unique:
#: two quarantines of the same entry name (same process or -- via the
#: pid component -- concurrent replicas) never collide or clobber
#: each other's evidence.
_quarantine_counter = itertools.count()

#: Bump to invalidate every cache entry across a format change.
CACHE_SCHEMA = "1"

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Hash of the installed ``repro`` source tree (plus the schema
    version).

    Any edit to any module under ``src/repro`` -- cost model, search,
    scheduler -- changes the salt and therefore every cache key, so
    stale results can never leak across code versions.  Computed once
    per process (~1 MB of source, a few milliseconds).
    """
    global _code_salt
    if _code_salt is None:
        import repro

        digest = hashlib.sha256()
        digest.update(CACHE_SCHEMA.encode())
        digest.update(repro.__version__.encode())
        package_root = Path(repro.__file__).resolve().parent
        for source in sorted(package_root.rglob("*.py")):
            digest.update(
                str(source.relative_to(package_root)).encode()
            )
            digest.update(source.read_bytes())
        _code_salt = digest.hexdigest()
    return _code_salt


def _jsonable(value: Any) -> Any:
    """Fallback encoder for key payloads (enums, dataclasses, sets)."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(
        f"cannot hash {type(value).__name__} into a cache key"
    )


def stable_hash(payload: Mapping[str, Any]) -> str:
    """Deterministic SHA-256 over a canonical JSON rendering."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"),
        default=_jsonable,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def workload_fingerprint(workload: Any) -> Dict[str, Any]:
    """JSON-safe identity of a workload (model shapes included).

    Two models with the same *name* but different shapes must never
    share cache entries, so the full :class:`ModelConfig` is part of
    the fingerprint.
    """
    return dataclasses.asdict(workload)


def arch_fingerprint(arch: Any) -> Dict[str, Any]:
    """JSON-safe identity of an architecture spec.

    The full spec content is hashed -- arrays, buffer, DRAM, clock,
    word size and energy model -- so resized (:meth:`with_2d_array`)
    or sensitivity-scaled variants never collide with the presets
    they were derived from.
    """
    fingerprint = dataclasses.asdict(arch)
    for key in ("array_2d", "array_1d", "buffer", "dram"):
        fingerprint[key]["kind"] = fingerprint[key]["kind"].value
    return fingerprint


class PlanCache:
    """A content-addressed on-disk cache of serialized results.

    Entries live under ``<root>/<kind>/<key[:2]>/<key>.json`` as
    pretty-printed JSON holding the key payload (for inspection) and
    the serialized value.  Writes are atomic (temp file + rename);
    corrupted or truncated entries are moved to
    ``<root>/quarantine/`` on read -- surfacing a
    :class:`~repro.runner.faults.CacheCorruption` warning and leaving
    the bad bytes inspectable -- and treated as misses, so a killed
    process can never poison later runs.

    Args:
        root: Cache directory.  ``None`` resolves ``REPRO_CACHE_DIR``
            and falls back to ``~/.cache/repro-transfusion``.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get(ENV_CACHE_DIR) or (
                Path.home() / ".cache" / "repro-transfusion"
            )
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, kind: str, key: str) -> Path:
        """Entry path for one (kind, key) pair."""
        return self.root / kind / key[:2] / f"{key}.json"

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """The stored value document, or ``None`` on miss.

        A corrupted entry (unreadable, invalid JSON, or missing the
        value field) is quarantined with a
        :class:`~repro.runner.faults.CacheCorruption` warning and
        reported as a miss.
        """
        path = self.path_for(kind, key)
        try:
            document = json.loads(path.read_text())
            value = document["value"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            self.quarantine(path, error)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def quarantine(self, path: Path, error: Exception) -> None:
        """Move a corrupted entry aside and surface a warning.

        The bad file is preserved under ``<root>/quarantine/`` for
        post-mortem inspection (falling back to deletion if the move
        itself fails), and a
        :class:`~repro.runner.faults.CacheCorruption` warning names
        both the entry and the parse error -- silent data loss is
        how cost-model bugs hide.

        Quarantine filenames are ``<entry>.<pid>.<n>`` -- unique per
        (process, call) -- so two replicas racing on the same corrupt
        entry, or the same entry corrupted and quarantined twice,
        never clobber earlier evidence.  The loser of a race finds
        the entry already gone (the winner moved it) and reports
        that, rather than deleting or overwriting anything.
        """
        detail = f"{type(error).__name__}: {error}"
        destination = self.root / QUARANTINE_DIR / (
            f"{path.stem}.{os.getpid()}."
            f"{next(_quarantine_counter)}{path.suffix}"
        )
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            detail = f"{detail} (quarantined to {destination})"
        except FileNotFoundError:
            # A concurrent reader already quarantined (or a writer
            # already replaced) this entry; its evidence is safe
            # elsewhere and there is nothing left to move.
            detail = (
                f"{detail} (already quarantined by a concurrent "
                f"process)"
            )
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            detail = f"{detail} (quarantine failed; entry deleted)"
        try:
            warnings.warn(
                CacheCorruption(path, detail), stacklevel=3
            )
        except CacheCorruption:
            # Under error warning filters (pytest filterwarnings =
            # error, python -W error) warn() raises the warning
            # instance itself.  A corrupted entry must stay a
            # recoverable miss -- it is always recomputable -- so
            # swallow the escalation; the quarantined file remains
            # the durable trace.
            pass

    def put(
        self,
        kind: str,
        key: str,
        value: Dict[str, Any],
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Store ``value`` under ``(kind, key)`` atomically.

        Args:
            kind: Entry namespace (``"report"`` / ``"tileseek"`` /
                ``"dpipe-kernel"``).
            key: Content hash from :func:`stable_hash`.
            value: JSON-safe serialized result.
            payload: The key payload, archived alongside the value so
                entries stay human-inspectable.
        """
        path = self.path_for(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"payload": dict(payload or {}), "value": value}
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        temp.write_text(
            json.dumps(document, indent=2, sort_keys=True,
                       default=_jsonable)
            + "\n"
        )
        os.replace(temp, path)
        return path

    def _entries(self):
        """Live entry files (quarantined files are not entries)."""
        if not self.root.exists():
            return
        for entry in self.root.rglob("*.json"):
            relative = entry.relative_to(self.root)
            if relative.parts and relative.parts[0] == QUARANTINE_DIR:
                continue
            yield entry

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for entry in self._entries():
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def cache_enabled() -> bool:
    """Whether the persistent layer is enabled (``REPRO_CACHE``)."""
    return env_bool(ENV_CACHE, default=True)


def default_cache() -> Optional[PlanCache]:
    """The environment-configured cache, or ``None`` when disabled."""
    if not cache_enabled():
        return None
    return PlanCache()
