"""Content-addressed persistent result cache for sweep runs.

Every paper figure re-prices the same (executor, model, sequence,
architecture) grid, and :mod:`scripts.reproduce_all` spawns one
benchmark process per figure -- without a persistent cache each
process pays the full TileSeek + DPipe planning cost from scratch.
This module keys each result by a stable content hash of *everything
that determines it*:

* the executor name and its search parameters,
* the full workload shape (model config, sequence, batch, masking),
* the full architecture spec (arrays, buffer, DRAM, energy model),
* any warm-start assignments injected into the tiling search, and
* a code-version salt (a hash of the ``repro`` source tree), so any
  change to the cost model or schedulers invalidates every entry
  automatically.

Values are the JSON documents produced by
:mod:`repro.core.serialize` (:class:`~repro.sim.stats.RunReport` and
:class:`~repro.tileseek.search.TileSeekResult` round-trip exactly, so
a cache hit is byte-identical to a recomputation).  The DPipe planner
also persists its ``n_epochs``-free schedule kernels here (kind
``"dpipe-kernel"``, see :mod:`repro.dpipe.planner`), so a fresh
process skips the branch-and-bound searches for layers any earlier
run has already planned.

Resource-exhaustion resilience (disk tier):

* **Byte budget.** ``REPRO_CACHE_MAX_BYTES`` caps the cache's
  on-disk footprint; every successful write (and ``repro cache gc``)
  runs a deterministic GC that evicts entries oldest-mtime-first
  (lexical relative-path tie-break) until the cache fits.  Eviction
  is concurrency-safe without locks: each victim is atomically
  renamed aside first and restored if a racing writer refreshed the
  entry in between, so two racing processes never double-count a
  delete, never deadlock, and a ``put`` racing a ``gc`` on the same
  key always leaves a valid entry behind.
* **Brownout.** ``ENOSPC``/``EDQUOT`` on any write flips the cache
  (per root, process-wide) into *brownout*: writes are skipped --
  cold results recompute, reads still serve -- and every
  ``BROWNOUT_PROBE_WRITES`` skipped writes one probe write re-tries
  the disk, exiting brownout on success.  Both transitions are
  appended (best-effort) to ``<root>/brownout.jsonl`` and surfaced
  as :class:`~repro.runner.faults.CacheBrownout` warnings; writes
  stay tmpfile + ``os.replace`` atomic throughout, so a full disk
  can tear a temp file but never a live entry.

Environment variables:

* ``REPRO_CACHE_DIR`` -- cache root (default
  ``~/.cache/repro-transfusion``).
* ``REPRO_CACHE`` -- set to ``0``/``off``/``false`` to disable the
  persistent layer entirely (in-process memoization still applies).
* ``REPRO_CACHE_MAX_BYTES`` -- byte budget enforced by the GC
  (unset means uncapped, the historical behavior).
"""

from __future__ import annotations

import dataclasses
import enum
import errno
import hashlib
import itertools
import json
import os
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.runner.faults import (
    CacheBrownout,
    CacheClearFailure,
    CacheCorruption,
    active_plan,
    io_context,
)
from repro.settings import env_bool, env_int

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_CACHE = "REPRO_CACHE"
ENV_CACHE_MAX_BYTES = "REPRO_CACHE_MAX_BYTES"

#: Subdirectory (under the cache root) holding quarantined entries.
QUARANTINE_DIR = "quarantine"

#: Monotonic per-process counter making quarantine filenames unique:
#: two quarantines of the same entry name (same process or -- via the
#: pid component -- concurrent replicas) never collide or clobber
#: each other's evidence.
_quarantine_counter = itertools.count()

#: Monotonic per-process counter making GC trash filenames unique
#: (same contract as the quarantine counter: racing evictors never
#: collide).
_gc_counter = itertools.count()

#: JSONL file (under the cache root) recording brownout transitions.
BROWNOUT_JOURNAL = "brownout.jsonl"

#: Skipped writes between brownout re-probes: after this many
#: cache-off misses the next ``put`` attempts the disk again.
BROWNOUT_PROBE_WRITES = 16

#: The errno values that mean "out of space", not "broken cache".
_BROWNOUT_ERRNOS = (errno.ENOSPC, getattr(errno, "EDQUOT", errno.ENOSPC))

#: Brownout state per cache root, process-wide so every
#: :class:`PlanCache` instance over the same directory (the default
#: cache is re-resolved per call site) shares one disk verdict.
#: Value: writes left to skip before the next probe.
_brownouts: Dict[str, int] = {}

#: Bump to invalidate every cache entry across a format change.
CACHE_SCHEMA = "1"

_code_salt: Optional[str] = None


def code_salt() -> str:
    """Hash of the installed ``repro`` source tree (plus the schema
    version).

    Any edit to any module under ``src/repro`` -- cost model, search,
    scheduler -- changes the salt and therefore every cache key, so
    stale results can never leak across code versions.  Computed once
    per process (~1 MB of source, a few milliseconds).
    """
    global _code_salt
    if _code_salt is None:
        import repro

        digest = hashlib.sha256()
        digest.update(CACHE_SCHEMA.encode())
        digest.update(repro.__version__.encode())
        package_root = Path(repro.__file__).resolve().parent
        for source in sorted(package_root.rglob("*.py")):
            digest.update(
                str(source.relative_to(package_root)).encode()
            )
            digest.update(source.read_bytes())
        _code_salt = digest.hexdigest()
    return _code_salt


def _jsonable(value: Any) -> Any:
    """Fallback encoder for key payloads (enums, dataclasses, sets)."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return dataclasses.asdict(value)
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(
        f"cannot hash {type(value).__name__} into a cache key"
    )


def resolve_cache_max_bytes(
    max_bytes: Optional[int] = None,
) -> Optional[int]:
    """The cache byte budget: argument, else
    ``REPRO_CACHE_MAX_BYTES``, else ``None`` (uncapped)."""
    if max_bytes is not None:
        return max_bytes
    return env_int(
        ENV_CACHE_MAX_BYTES, "a cache byte budget", minimum=1
    )


def brownout_active(root: Union[str, Path]) -> bool:
    """Whether the cache at ``root`` is in write brownout."""
    return str(root) in _brownouts


def _warn(warning: Warning) -> None:
    """Surface a cache warning, swallowing its own escalation.

    Under error warning filters (pytest ``filterwarnings = error``,
    ``python -W error``) ``warnings.warn`` raises the instance
    itself; every cache condition warned about here is recoverable
    (entries are recomputable), so the escalation is swallowed and
    the warning text stays the durable trace.
    """
    try:
        warnings.warn(warning, stacklevel=3)
    except type(warning):
        pass


def stable_hash(payload: Mapping[str, Any]) -> str:
    """Deterministic SHA-256 over a canonical JSON rendering."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"),
        default=_jsonable,
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def workload_fingerprint(workload: Any) -> Dict[str, Any]:
    """JSON-safe identity of a workload (model shapes included).

    Two models with the same *name* but different shapes must never
    share cache entries, so the full :class:`ModelConfig` is part of
    the fingerprint.
    """
    return dataclasses.asdict(workload)


def arch_fingerprint(arch: Any) -> Dict[str, Any]:
    """JSON-safe identity of an architecture spec.

    The full spec content is hashed -- arrays, buffer, DRAM, clock,
    word size and energy model -- so resized (:meth:`with_2d_array`)
    or sensitivity-scaled variants never collide with the presets
    they were derived from.
    """
    fingerprint = dataclasses.asdict(arch)
    for key in ("array_2d", "array_1d", "buffer", "dram"):
        fingerprint[key]["kind"] = fingerprint[key]["kind"].value
    return fingerprint


class PlanCache:
    """A content-addressed on-disk cache of serialized results.

    Entries live under ``<root>/<kind>/<key[:2]>/<key>.json`` as
    pretty-printed JSON holding the key payload (for inspection) and
    the serialized value.  Writes are atomic (temp file + rename);
    corrupted or truncated entries are moved to
    ``<root>/quarantine/`` on read -- surfacing a
    :class:`~repro.runner.faults.CacheCorruption` warning and leaving
    the bad bytes inspectable -- and treated as misses, so a killed
    process can never poison later runs.

    Args:
        root: Cache directory.  ``None`` resolves ``REPRO_CACHE_DIR``
            and falls back to ``~/.cache/repro-transfusion``.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get(ENV_CACHE_DIR) or (
                Path.home() / ".cache" / "repro-transfusion"
            )
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.brownout_skips = 0

    def path_for(self, kind: str, key: str) -> Path:
        """Entry path for one (kind, key) pair."""
        return self.root / kind / key[:2] / f"{key}.json"

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """The stored value document, or ``None`` on miss.

        A corrupted entry (unreadable, invalid JSON, or missing the
        value field) is quarantined with a
        :class:`~repro.runner.faults.CacheCorruption` warning and
        reported as a miss.
        """
        path = self.path_for(kind, key)
        try:
            document = json.loads(path.read_text())
            value = document["value"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            self.quarantine(path, error)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def quarantine(self, path: Path, error: Exception) -> None:
        """Move a corrupted entry aside and surface a warning.

        The bad file is preserved under ``<root>/quarantine/`` for
        post-mortem inspection (falling back to deletion if the move
        itself fails), and a
        :class:`~repro.runner.faults.CacheCorruption` warning names
        both the entry and the parse error -- silent data loss is
        how cost-model bugs hide.

        Quarantine filenames are ``<entry>.<pid>.<n>`` -- unique per
        (process, call) -- so two replicas racing on the same corrupt
        entry, or the same entry corrupted and quarantined twice,
        never clobber earlier evidence.  The loser of a race finds
        the entry already gone (the winner moved it) and reports
        that, rather than deleting or overwriting anything.
        """
        detail = f"{type(error).__name__}: {error}"
        destination = self.root / QUARANTINE_DIR / (
            f"{path.stem}.{os.getpid()}."
            f"{next(_quarantine_counter)}{path.suffix}"
        )
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
            detail = f"{detail} (quarantined to {destination})"
        except FileNotFoundError:
            # A concurrent reader already quarantined (or a writer
            # already replaced) this entry; its evidence is safe
            # elsewhere and there is nothing left to move.
            detail = (
                f"{detail} (already quarantined by a concurrent "
                f"process)"
            )
        except OSError as move_error:
            # The move can fail without the entry being gone (a
            # read-only cache dir, a full quarantine volume).  Fall
            # back to deletion, and -- crucially -- say which of the
            # two outcomes happened: an undeletable corrupt entry
            # stays on disk and will surface again on every read.
            try:
                path.unlink()
                detail = (
                    f"{detail} (quarantine failed: {move_error}; "
                    f"entry deleted)"
                )
            except OSError as unlink_error:
                detail = (
                    f"{detail} (quarantine failed: {move_error}; "
                    f"entry still present: {unlink_error})"
                )
        _warn(CacheCorruption(path, detail))

    def put(
        self,
        kind: str,
        key: str,
        value: Dict[str, Any],
        payload: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Store ``value`` under ``(kind, key)`` atomically.

        Args:
            kind: Entry namespace (``"report"`` / ``"tileseek"`` /
                ``"dpipe-kernel"``).
            key: Content hash from :func:`stable_hash`.
            value: JSON-safe serialized result.
            payload: The key payload, archived alongside the value so
                entries stay human-inspectable.

        During brownout (a previous write hit ``ENOSPC``/``EDQUOT``)
        the write is skipped -- a cache-off miss -- except for the
        periodic probe that re-tries the disk; the returned path may
        then not exist.  A write that hits the disk limit itself
        enters brownout instead of raising: cached results are
        always recomputable, so a full disk degrades, never crashes.
        """
        path = self.path_for(kind, key)
        if not self._admit_write():
            return path
        write_index = self.writes
        self.writes += 1
        document = {"payload": dict(payload or {}), "value": value}
        temp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        rule = None
        try:
            plan = active_plan()
            if plan:
                rule = plan.fire_io(**io_context(write_index))
            path.parent.mkdir(parents=True, exist_ok=True)
            temp.write_text(
                json.dumps(document, indent=2, sort_keys=True,
                           default=_jsonable)
                + "\n"
            )
            os.replace(temp, path)
        except OSError as error:
            if error.errno not in _BROWNOUT_ERRNOS:
                raise
            # Out of space: drop the (possibly torn) temp file --
            # the live entry was never touched -- and brown out.
            try:
                temp.unlink()
            except OSError:
                pass
            self._enter_brownout(path, error)
            return path
        self._exit_brownout(path)
        if rule is not None and rule.kind == "cache-evict":
            # Injected eviction: the entry vanishes right after the
            # write, as if a concurrent GC chose it as a victim.
            try:
                path.unlink()
            except OSError:
                pass
        max_bytes = resolve_cache_max_bytes()
        if max_bytes is not None:
            self.gc(max_bytes)
        return path

    def _entries(self):
        """Live entry files (quarantined files are not entries)."""
        if not self.root.exists():
            return
        for entry in self.root.rglob("*.json"):
            relative = entry.relative_to(self.root)
            if relative.parts and relative.parts[0] == QUARANTINE_DIR:
                continue
            yield entry

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed.

        Entries that cannot be deleted (permissions, a racing
        process holding the directory) are *reported*: one
        :class:`~repro.runner.faults.CacheClearFailure` warning
        names the survivors, instead of a silent "clean sweep" that
        left stale entries to serve later reads.
        """
        removed = 0
        survivors = []
        for entry in self._entries():
            try:
                entry.unlink()
                removed += 1
            except FileNotFoundError:
                # A racing clear/GC already removed it: not a
                # survivor, just not ours to count.
                continue
            except OSError:
                survivors.append(entry)
        if survivors:
            shown = ", ".join(str(path) for path in survivors[:3])
            if len(survivors) > 3:
                shown = f"{shown}, ... {len(survivors) - 3} more"
            _warn(CacheClearFailure(
                self.root,
                f"{len(survivors)} of "
                f"{removed + len(survivors)} entries survived "
                f"deletion ({shown})",
            ))
        return removed

    # ------------------------------------------------------------------
    # Disk pressure: byte budget, GC, brownout, scrub
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Disk usage and pressure state, JSON-safe.

        The payload behind ``repro cache stats`` and the serve
        layer's ``/healthz`` enrichment: entry/byte totals, the
        configured budget, the quarantine population and whether the
        root is in write brownout.
        """
        entries = 0
        total = 0
        for _, _, _, size in self._scan():
            entries += 1
            total += size
        quarantined = 0
        quarantine_root = self.root / QUARANTINE_DIR
        if quarantine_root.exists():
            quarantined = sum(
                1 for item in quarantine_root.iterdir()
                if item.is_file()
            )
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total,
            "max_bytes": resolve_cache_max_bytes(),
            "quarantined": quarantined,
            "brownout": brownout_active(self.root),
        }

    def gc(self, max_bytes: Optional[int] = None) -> Dict[str, Any]:
        """Evict oldest entries until the cache fits ``max_bytes``.

        Deterministic: victims are chosen oldest-``st_mtime_ns``
        first with the relative POSIX path as tie-break, quarantined
        files are never candidates, and the same directory state
        always evicts the same entries.  Concurrency-safe without
        locks: see :meth:`_evict` -- racing GCs never double-count a
        victim, and a racing ``put`` on a victim's key keeps its
        fresh entry.

        Args:
            max_bytes: Budget override; defaults to
                ``REPRO_CACHE_MAX_BYTES``.  ``None`` with the env
                unset is a no-op scan.

        Returns:
            A JSON-safe summary: entries/bytes removed and the
            bytes believed to remain.
        """
        cap = resolve_cache_max_bytes(max_bytes)
        scanned = sorted(
            self._scan(),
            key=lambda item: (item[0], item[1]),
        )
        total = sum(size for _, _, _, size in scanned)
        removed = 0
        freed = 0
        if cap is not None:
            for _, _, entry, size in scanned:
                if total - freed <= cap:
                    break
                evicted = self._evict(entry)
                if evicted:
                    removed += 1
                    freed += evicted
        return {
            "removed": removed,
            "freed_bytes": freed,
            "bytes": total - freed,
            "max_bytes": cap,
        }

    def scrub(self) -> Dict[str, int]:
        """Read-validate every entry, quarantining corrupt ones.

        The ``repro cache scrub`` verb and the overload-chaos CI
        assertion that a storm plus a mid-storm disk-full left zero
        torn entries: every surviving file must parse and carry a
        value document.
        """
        checked = 0
        quarantined = 0
        for entry in list(self._entries()):
            checked += 1
            try:
                json.loads(entry.read_text())["value"]
            except FileNotFoundError:
                # Raced away by GC/clear mid-scrub: nothing to
                # validate, nothing corrupt.
                checked -= 1
            except (OSError, ValueError, KeyError, TypeError) as error:
                self.quarantine(entry, error)
                quarantined += 1
        return {"checked": checked, "quarantined": quarantined}

    def _scan(self) -> Iterable[Tuple[int, str, Path, int]]:
        """``(mtime_ns, relative posix path, path, size)`` per live
        entry, tolerating files vanishing mid-scan."""
        for entry in self._entries():
            try:
                stat = entry.stat()
            except OSError:
                continue
            yield (
                stat.st_mtime_ns,
                entry.relative_to(self.root).as_posix(),
                entry,
                stat.st_size,
            )

    def _evict(self, entry: Path) -> int:
        """Remove one GC victim; returns the bytes freed (0 if the
        eviction was skipped or lost a race).

        The victim is atomically renamed to a unique trash name
        first.  Whatever inode sat at the entry path moves in one
        step, so two racing GCs can never both count the same
        victim (the loser's rename finds nothing), and if a racing
        ``put`` replaced the entry *after* this GC scanned it, the
        fresh entry is detected (its mtime postdates the scan) and
        restored -- a ``put`` racing a ``gc`` on the same key always
        leaves the old or the new valid entry, never neither.
        """
        try:
            expected = entry.stat().st_mtime_ns
        except OSError:
            return 0
        trash = entry.with_name(
            f".{entry.name}.{os.getpid()}."
            f"{next(_gc_counter)}.gc"
        )
        try:
            os.rename(entry, trash)
        except OSError:
            # Already evicted (or quarantined) by a racing process.
            return 0
        try:
            moved = trash.stat()
        except OSError:
            return 0
        if moved.st_mtime_ns != expected:
            # We grabbed a racing writer's *fresh* entry -- put it
            # back (clobbering nothing newer than itself: replace
            # is atomic, and any third writer's entry is identical
            # content under the same key anyway).
            try:
                os.replace(trash, entry)
            except OSError:
                pass
            return 0
        size = moved.st_size
        try:
            trash.unlink()
        except OSError:
            return 0
        return size

    # ------------------------------------------------------------------
    # Brownout state machine
    # ------------------------------------------------------------------
    @property
    def brownout(self) -> bool:
        """Whether this cache's root is in write brownout."""
        return brownout_active(self.root)

    def _admit_write(self) -> bool:
        """Whether a ``put`` may touch the disk right now.

        Outside brownout: always.  Inside: skip (and count) writes
        until the probe countdown reaches zero, then admit one probe
        write -- its success exits brownout, its failure re-enters
        with a fresh countdown.
        """
        key = str(self.root)
        left = _brownouts.get(key)
        if left is None:
            return True
        if left > 0:
            _brownouts[key] = left - 1
            self.brownout_skips += 1
            return False
        return True

    def _enter_brownout(self, path: Path, error: OSError) -> None:
        key = str(self.root)
        probing = key in _brownouts
        _brownouts[key] = BROWNOUT_PROBE_WRITES
        detail = f"{type(error).__name__}: {error}"
        if not probing:
            self._journal_brownout("brownout", path, detail)
            _warn(CacheBrownout(
                path,
                f"{detail}; cache writes suspended, probing every "
                f"{BROWNOUT_PROBE_WRITES} writes",
            ))

    def _exit_brownout(self, path: Path) -> None:
        key = str(self.root)
        if _brownouts.pop(key, None) is not None:
            self._journal_brownout(
                "recovered", path, "probe write succeeded"
            )

    def _journal_brownout(
        self, event: str, path: Path, detail: str
    ) -> None:
        """Best-effort append to ``<root>/brownout.jsonl``.

        Under a genuinely full disk this append can itself fail --
        that is fine, the warning and the ``stats()``/healthz state
        still carry the signal; under *injected* disk-full faults
        the disk is healthy and the line always lands.
        """
        from repro.runner.journal import append_line

        entry = {
            "v": 1,
            "ts": time.time(),
            "event": event,
            "entry": str(path),
            "detail": detail,
        }
        try:
            append_line(
                str(self.root / BROWNOUT_JOURNAL),
                json.dumps(entry, sort_keys=True),
            )
        except OSError:
            pass


def cache_enabled() -> bool:
    """Whether the persistent layer is enabled (``REPRO_CACHE``)."""
    return env_bool(ENV_CACHE, default=True)


def default_cache() -> Optional[PlanCache]:
    """The environment-configured cache, or ``None`` when disabled."""
    if not cache_enabled():
        return None
    return PlanCache()
