"""Typed failure taxonomy + deterministic fault injection for sweeps.

The sweep engine prices hundreds of grid points per run; a production
sweep must survive a crashed worker, a hung TileSeek search or a
corrupted cache entry without losing the rest of the grid.  This
module provides the two halves of that story:

* **A structured error taxonomy** -- every failure the engine can
  surface is a :class:`SweepError` subclass carrying enough structure
  to be reported, serialized and retried:

  - :class:`PointFailure` -- one grid point raised during pricing.
  - :class:`ChainTimeout` -- a chain exceeded ``REPRO_TIMEOUT``.
  - :class:`WorkerCrash` -- a pool worker died (``BrokenProcessPool``).
  - :class:`InfeasiblePoint` -- no tiling fits the Table-2 buffer
    model for a point; carries a buffer-level diagnosis and is
    surfaced as a distinct ``infeasible`` status, never retried
    (retrying infeasibility is wasted work).
  - :class:`CacheCorruption` -- a persistent-cache entry failed to
    parse (also a :class:`Warning`, so the cache can surface it via
    :mod:`warnings` without aborting the read).
  - :class:`SweepConfigError` -- malformed configuration
    (``REPRO_JOBS`` / ``REPRO_TIMEOUT`` / ``REPRO_RETRIES`` / fault
    specs).  Also a :class:`ValueError` for backward compatibility.

* **A deterministic fault-injection harness** -- ``REPRO_FAULTS``
  holds a spec such as ``crash:chain=2,attempt=0;hang:point=5`` and
  the chain runner consults it at every point boundary, so the test
  suite (and the CI chaos job) can exercise every recovery path
  reproducibly.  Grammar::

      spec    := rule (";" rule)*
      rule    := kind [":" field "=" value ("," field "=" value)*]
      kind    := "crash" | "hang" | "exit"
               | "replica-kill" | "replica-hang" | "replica-slow"
               | "disk-full" | "slow-io" | "cache-evict"
      field   := "chain" | "point" | "attempt" | "request"
               | "replica" | "write" | "seconds"

  ``chain`` matches the chain index (grouping order of
  :func:`repro.runner.parallel._chains`), ``point`` the global point
  index in the sweep's input order, ``attempt`` the retry attempt
  (0-based).  A rule with no fields matches everywhere.  ``seconds``
  is a parameter, not a matcher: how long an injected ``hang`` sleeps
  in a pool worker before giving up (default 30).

  Fault kinds:

  - ``crash`` raises :class:`InjectedCrash` (an ordinary exception --
    exercises the per-point failure + retry path).
  - ``hang`` simulates a stuck search: in a pool worker it sleeps
    ``seconds`` then raises :class:`InjectedHang` (the parent's
    per-chain ``future.result(timeout=...)`` fires first when a
    timeout is configured); serially it raises :class:`InjectedHang`
    immediately (a cooperative timeout).
  - ``exit`` kills the worker process with ``os._exit`` -- the real
    ``BrokenProcessPool`` path; serially it raises
    :class:`InjectedWorkerExit`, which the engine maps to
    :class:`WorkerCrash` so serial and parallel recover identically.

  **Replica-level kinds** (fleet serving, :mod:`repro.serve.fleet`)
  fire at *server* sites, not point boundaries: ``request`` matches
  the replica's 0-based served-request count and ``replica`` the
  replica index the supervisor assigns via ``REPRO_FLEET_INDEX``
  (a rule naming ``replica=`` never fires in a process without an
  index).  The chain-runner sites never fire replica rules and the
  server sites never fire chain rules -- the two vocabularies are
  disjoint by construction (:meth:`FaultPlan.fire` vs
  :meth:`FaultPlan.fire_replica`):

  - ``replica-kill`` kills the whole replica process with
    ``os._exit`` as the matching request arrives -- the mid-storm
    crash the fleet battery recovers from.
  - ``replica-hang`` wedges the replica: the event loop sleeps
    ``seconds`` before answering, so health probes and client
    deadlines trip while the process stays alive.
  - ``replica-slow`` delays replica *startup* by ``seconds`` before
    the socket binds (slow-start detection in the supervisor).

  **IO-level kinds** (persistent cache, :mod:`repro.runner.cache`)
  fire at cache-*write* sites via :meth:`FaultPlan.fire_io`:
  ``write`` matches a :class:`~repro.runner.cache.PlanCache`
  instance's 0-based write count, and ``replica`` matches like the
  replica kinds (so a fleet test can starve one replica's disk).
  The third disjoint vocabulary -- chain sites never consult io
  kinds and vice versa:

  - ``disk-full`` raises ``OSError(ENOSPC)`` at the write site --
    the real brownout entry path, without filling a disk.
  - ``slow-io`` sleeps ``seconds`` before the write (a saturated
    device).
  - ``cache-evict`` deletes the entry immediately after it is
    written -- a concurrent GC stealing the key between a ``put``
    and the next ``get``.

Retry backoff is deterministic: ``backoff_seconds`` derives a jitter
factor from a SHA-256 over (key, attempt), so reruns sleep the same
schedule and serial/parallel results stay byte-identical under
retries.

Environment variables: ``REPRO_FAULTS`` (injection spec),
``REPRO_TIMEOUT`` (per-chain seconds, float), ``REPRO_RETRIES``
(extra attempts per chain, int), ``REPRO_BACKOFF`` (base backoff
seconds, default 0).  All are parsed through the typed getters in
:mod:`repro.settings`, so malformed values raise
:class:`SweepConfigError` with the variable name in the message.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.settings import env_float, env_int

ENV_FAULTS = "REPRO_FAULTS"
ENV_TIMEOUT = "REPRO_TIMEOUT"
ENV_RETRIES = "REPRO_RETRIES"
ENV_BACKOFF = "REPRO_BACKOFF"

#: How long an injected ``hang`` occupies a pool worker before it
#: gives up on its own (so an un-timed-out sweep still terminates).
DEFAULT_HANG_SECONDS = 30.0


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class SweepError(Exception):
    """Base class for every structured sweep-engine failure."""


class SweepConfigError(SweepError, ValueError):
    """Malformed sweep configuration (env var or argument).

    Also a :class:`ValueError` so pre-taxonomy callers that caught
    ``ValueError`` keep working.
    """


class FaultSpecError(SweepConfigError):
    """A ``REPRO_FAULTS`` spec that does not parse."""


class PointFailure(SweepError):
    """One grid point raised during pricing.

    Args:
        point: The failing :class:`~repro.runner.parallel.GridPoint`
            (any object with a ``repr`` works; kept whole so callers
            can re-queue it).
        chain_index: Which chain the point ran in.
        attempt: 0-based retry attempt that failed.
        error_type: Class name of the underlying exception.
        message: The underlying exception's message.
    """

    def __init__(
        self,
        point: Any,
        chain_index: int,
        attempt: int,
        error_type: str,
        message: str,
    ) -> None:
        super().__init__(
            f"point {point} failed on attempt {attempt} "
            f"(chain {chain_index}): {error_type}: {message}"
        )
        self.point = point
        self.chain_index = chain_index
        self.attempt = attempt
        self.error_type = error_type
        self.message = message

    def __reduce__(self):
        # Exceptions pickle through ``args`` by default, which does
        # not match this __init__ signature -- workers hand these
        # across the process boundary, so rebuild explicitly.
        return (
            PointFailure,
            (self.point, self.chain_index, self.attempt,
             self.error_type, self.message),
        )


class ChainTimeout(SweepError):
    """A whole chain exceeded its per-chain timeout."""

    def __init__(
        self, chain_index: int, seconds: float, attempt: int
    ) -> None:
        super().__init__(
            f"chain {chain_index} exceeded the {seconds:g}s timeout "
            f"on attempt {attempt}"
        )
        self.chain_index = chain_index
        self.seconds = seconds
        self.attempt = attempt

    def __reduce__(self):
        return (
            ChainTimeout,
            (self.chain_index, self.seconds, self.attempt),
        )


class WorkerCrash(SweepError):
    """A pool worker died mid-chain (``BrokenProcessPool``)."""

    def __init__(
        self, chain_index: int, attempt: int, detail: str = ""
    ) -> None:
        message = (
            f"worker running chain {chain_index} died on attempt "
            f"{attempt}"
        )
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)
        self.chain_index = chain_index
        self.attempt = attempt
        self.detail = detail

    def __reduce__(self):
        return (
            WorkerCrash,
            (self.chain_index, self.attempt, self.detail),
        )


class InfeasiblePoint(SweepError):
    """No tiling fits the buffer model for a point -- with evidence.

    Unlike the other taxonomy members this is not an *operational*
    failure: the search proved (by Table-2 monotonicity) that nothing
    in the space fits, so the sweep engine reports it as a distinct
    ``infeasible`` status, never retries it, and a ``--keep-going``
    sweep does not fail because of it.

    Args:
        subject: Human description of the infeasible point (workload
            and architecture).
        diagnosis: The JSON-safe rendering of a
            :class:`~repro.resilience.diagnostics.BufferDiagnosis`
            (kept as a plain dict so this module stays import-light
            and the payload drops straight into the JSONL journal).
        point: The :class:`~repro.runner.parallel.GridPoint`, attached
            by the chain runner (the search layer does not know it).
    """

    def __init__(
        self,
        subject: str,
        diagnosis: Mapping[str, Any],
        point: Any = None,
    ) -> None:
        diagnosis = dict(diagnosis)
        summary = ""
        try:
            summary = (
                f": {diagnosis['worst_module']} needs "
                f"{diagnosis['required_words']:,} of "
                f"{diagnosis['capacity_words']:,} words "
                f"({diagnosis['overflow_words']:,} over)"
            )
        except (KeyError, TypeError, ValueError):
            pass
        super().__init__(
            f"no tiling fits the buffer for {subject}{summary}"
        )
        self.subject = subject
        self.diagnosis = diagnosis
        self.point = point

    def with_point(self, point: Any) -> "InfeasiblePoint":
        """A copy with the grid point attached (chain runner)."""
        return InfeasiblePoint(self.subject, self.diagnosis, point)

    def __reduce__(self):
        return (
            InfeasiblePoint,
            (self.subject, self.diagnosis, self.point),
        )


class CacheCorruption(SweepError, Warning):
    """A persistent-cache entry failed to parse.

    Doubles as a :class:`Warning` category: the cache quarantines the
    bad file and warns with an instance of this class rather than
    aborting the read (a corrupted entry is always recomputable).
    """

    def __init__(self, path: Any, detail: str) -> None:
        super().__init__(f"corrupted cache entry {path}: {detail}")
        self.path = path
        self.detail = detail

    def __reduce__(self):
        return (CacheCorruption, (self.path, self.detail))


class CacheClearFailure(SweepError, Warning):
    """``PlanCache.clear`` could not delete every entry.

    Doubles as a :class:`Warning`: a survivor (a permission error, a
    file pinned by another process) must not abort the sweep that
    asked for a fresh cache, but reporting a clean wipe that left
    stale entries behind is how a "cleared" cache silently serves
    old results.  ``detail`` names the survivors.
    """

    def __init__(self, path: Any, detail: str) -> None:
        super().__init__(
            f"cache clear under {path} incomplete: {detail}"
        )
        self.path = path
        self.detail = detail

    def __reduce__(self):
        return (CacheClearFailure, (self.path, self.detail))


class CacheBrownout(SweepError, Warning):
    """The persistent cache stopped writing: the disk is full.

    Doubles as a :class:`Warning`: ``ENOSPC``/``EDQUOT`` on a cache
    write must degrade (results are always recomputable), never
    crash a sweep or a replica.  Raised as a warning when the cache
    enters brownout -- writes are skipped, reads still serve, and a
    periodic probe re-tries the disk (see
    :class:`repro.runner.cache.PlanCache`).
    """

    def __init__(self, path: Any, detail: str) -> None:
        super().__init__(
            f"cache brownout at {path}: {detail}"
        )
        self.path = path
        self.detail = detail

    def __reduce__(self):
        return (CacheBrownout, (self.path, self.detail))


class JournalTruncation(SweepError, Warning):
    """A JSONL journal ended in a torn (unparseable) trailing line.

    A replica killed mid-append loses at most the line it was
    writing; loaders skip the torn tail and surface this warning
    instead of raising -- the journal before the tear is intact and
    still trustworthy (every complete line was flushed and fsynced
    at write time).
    """

    def __init__(self, path: Any, detail: str) -> None:
        super().__init__(
            f"journal {path} has a truncated trailing line "
            f"(skipped): {detail}"
        )
        self.path = path
        self.detail = detail

    def __reduce__(self):
        return (JournalTruncation, (self.path, self.detail))


class ReplicaUnreachable(SweepError):
    """One fleet replica did not produce a response.

    Covers a refused connection (dead port), a per-attempt deadline
    expiring against a wedged replica, and a connection dropped
    mid-response (replica killed while writing) -- every network-ish
    way a single attempt can fail without a structured body.

    Args:
        endpoint: The ``host:port`` that failed.
        attempt: 0-based failover attempt index.
        detail: The underlying ``OSError``-family message.
    """

    def __init__(
        self, endpoint: str, attempt: int, detail: str
    ) -> None:
        super().__init__(
            f"replica {endpoint} unreachable on attempt {attempt}: "
            f"{detail}"
        )
        self.endpoint = endpoint
        self.attempt = attempt
        self.detail = detail

    def __reduce__(self):
        return (
            ReplicaUnreachable,
            (self.endpoint, self.attempt, self.detail),
        )


class ServerOverloaded(SweepError):
    """The serve admission queue is full -- a typed, retryable no.

    Distinct from the fault-path errors (crashes, timeouts): the
    request was well-formed and the server is healthy, it simply has
    more work in flight than ``REPRO_SERVE_QUEUE`` allows even at
    the shed budget.  Carries a deterministic ``retry_after_ms``
    hint derived from the overshoot, so a well-behaved client backs
    off proportionally (and reruns produce identical hints).

    Args:
        inflight: Searches in flight when the request was rejected.
        bound: The configured admission bound.
        retry_after_ms: Deterministic client backoff hint.
    """

    def __init__(
        self, inflight: int, bound: int, retry_after_ms: int
    ) -> None:
        super().__init__(
            f"server overloaded: {inflight} searches in flight "
            f"against an admission bound of {bound}; retry in "
            f"{retry_after_ms} ms"
        )
        self.inflight = inflight
        self.bound = bound
        self.retry_after_ms = retry_after_ms

    def __reduce__(self):
        return (
            ServerOverloaded,
            (self.inflight, self.bound, self.retry_after_ms),
        )


class FleetUnavailable(SweepError):
    """Every failover attempt against a fleet failed.

    Carries the per-attempt evidence so a client can report exactly
    which replicas were tried and how each one failed.

    Args:
        attempts: ``(endpoint, detail)`` pairs in the order tried.
    """

    def __init__(self, attempts: Any) -> None:
        attempts = tuple(
            (str(endpoint), str(detail))
            for endpoint, detail in attempts
        )
        described = "; ".join(
            f"{endpoint}: {detail}" for endpoint, detail in attempts
        )
        super().__init__(
            f"no fleet replica answered after {len(attempts)} "
            f"attempt(s) ({described})"
        )
        self.attempts = attempts

    def __reduce__(self):
        return (FleetUnavailable, (self.attempts,))


# ----------------------------------------------------------------------
# Injected-fault exception types
# ----------------------------------------------------------------------
class InjectedFault(RuntimeError):
    """Base class for faults raised by the injection harness."""


class InjectedCrash(InjectedFault):
    """An injected in-point crash (ordinary exception path)."""


class InjectedHang(InjectedFault):
    """An injected hang: the engine treats it as a chain timeout."""


class InjectedWorkerExit(InjectedFault):
    """Serial-mode stand-in for a worker process dying."""


# ----------------------------------------------------------------------
# Fault spec parsing
# ----------------------------------------------------------------------
#: Chain-site kinds, consulted by the sweep engine's point
#: boundaries via :meth:`FaultPlan.fire`.
_CHAIN_KINDS = ("crash", "hang", "exit")

#: Replica-site kinds, consulted by the serving layer via
#: :meth:`FaultPlan.fire_replica` (and ``replica-slow`` at server
#: startup).  Disjoint from the chain kinds so one spec can arm both
#: vocabularies without either masking the other.
_REPLICA_KINDS = ("replica-kill", "replica-hang", "replica-slow")

#: IO-site kinds, consulted by the persistent cache's write sites
#: via :meth:`FaultPlan.fire_io`.  Disjoint from both families
#: above, so one spec can starve the disk mid-storm without
#: shadowing chain or replica rules.
_IO_KINDS = ("disk-full", "slow-io", "cache-evict")

_FAULT_KINDS = _CHAIN_KINDS + _REPLICA_KINDS + _IO_KINDS
_MATCH_FIELDS = (
    "chain", "point", "attempt", "request", "replica", "write",
)


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: a kind plus the sites it fires at.

    Attributes:
        kind: ``crash`` / ``hang`` / ``exit``.
        where: Matcher fields (``chain`` / ``point`` / ``attempt``)
            that must all equal the current context for the rule to
            fire; an empty mapping matches every site.
        seconds: ``hang`` only -- worker-side sleep before giving up.
    """

    kind: str
    where: Mapping[str, int] = field(default_factory=dict)
    seconds: float = DEFAULT_HANG_SECONDS

    def matches(self, context: Mapping[str, int]) -> bool:
        """Whether this rule fires at ``context``."""
        return all(
            key in context and context[key] == value
            for key, value in self.where.items()
        )

    def describe(self) -> str:
        """The rule rendered back in spec grammar."""
        fields = ",".join(
            f"{key}={value}"
            for key, value in sorted(self.where.items())
        )
        return f"{self.kind}:{fields}" if fields else self.kind


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec."""

    rules: Tuple[FaultRule, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.rules)

    def matching(self, **context: int) -> Optional[FaultRule]:
        """The first rule firing at ``context``, or ``None``."""
        for rule in self.rules:
            if rule.matches(context):
                return rule
        return None

    def _matching_kind(
        self, kinds: Tuple[str, ...], context: Mapping[str, int]
    ) -> Optional[FaultRule]:
        """The first rule of one kind family firing at ``context``.

        Chain sites only consult chain kinds and replica sites only
        replica kinds, so arming ``replica-kill`` in a spec never
        shadows a later ``crash`` rule at a point boundary (and vice
        versa).
        """
        for rule in self.rules:
            if rule.kind in kinds and rule.matches(context):
                return rule
        return None

    def fire(self, serial: bool, **context: int) -> None:
        """Raise (or exit) if any chain rule matches the current site.

        Args:
            serial: Whether we are in the parent process (serial
                mode).  ``exit`` only calls ``os._exit`` in a pool
                worker; serially it raises
                :class:`InjectedWorkerExit` instead, and ``hang``
                raises immediately rather than sleeping (the serial
                path has no external timeout to trip).
            context: The site: ``chain``, ``point``, ``attempt``.
        """
        rule = self._matching_kind(_CHAIN_KINDS, context)
        if rule is None:
            return
        site = ", ".join(
            f"{key}={value}" for key, value in sorted(context.items())
        )
        if rule.kind == "crash":
            raise InjectedCrash(f"injected crash at {site}")
        if rule.kind == "hang":
            if not serial:
                time.sleep(rule.seconds)
            raise InjectedHang(f"injected hang at {site}")
        if rule.kind == "exit":
            if serial:
                raise InjectedWorkerExit(
                    f"injected worker exit at {site}"
                )
            os._exit(13)

    def fire_replica(self, **context: int) -> None:
        """Apply any replica rule matching the current server site.

        Consulted by :meth:`repro.serve.app.ServeApp.handle` with
        ``request`` (0-based served-request count) and -- when the
        supervisor exported ``REPRO_FLEET_INDEX`` -- ``replica``.

        ``replica-kill`` exits the whole process (exit code 23, the
        fleet battery's marker); ``replica-hang`` sleeps ``seconds``
        on the event-loop thread, wedging every in-flight connection
        so probes and client deadlines trip; ``replica-slow`` is a
        startup fault and is ignored at request sites (see
        :func:`replica_slow_start_seconds`).
        """
        rule = self._matching_kind(_REPLICA_KINDS, context)
        if rule is None or rule.kind == "replica-slow":
            return
        if rule.kind == "replica-hang":
            time.sleep(rule.seconds)
            return
        os._exit(23)

    def fire_io(self, **context: int) -> Optional[FaultRule]:
        """Apply any io rule matching the current cache-write site.

        Consulted by :meth:`repro.runner.cache.PlanCache.put` with
        ``write`` (the cache instance's 0-based write count) and --
        under a fleet supervisor -- ``replica``.

        ``disk-full`` raises ``OSError(ENOSPC)`` so the *real*
        brownout path runs; ``slow-io`` sleeps ``seconds`` here and
        lets the write proceed.  ``cache-evict`` cannot fire inside
        this method (only the caller knows which entry it wrote), so
        the matched rule is returned and the cache deletes the entry
        it just put -- the caller-visible effect of a concurrent GC
        winning a race.
        """
        rule = self._matching_kind(_IO_KINDS, context)
        if rule is None:
            return None
        site = ", ".join(
            f"{key}={value}" for key, value in sorted(context.items())
        )
        if rule.kind == "disk-full":
            import errno

            raise OSError(
                errno.ENOSPC,
                f"injected disk-full at {site}",
            )
        if rule.kind == "slow-io":
            time.sleep(rule.seconds)
        return rule


def parse_faults(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec into a :class:`FaultPlan`.

    Raises:
        FaultSpecError: On unknown kinds, unknown fields or
            non-numeric values, naming the offending fragment.
    """
    rules = []
    for fragment in spec.split(";"):
        fragment = fragment.strip()
        if not fragment:
            continue
        kind, _, tail = fragment.partition(":")
        kind = kind.strip().lower()
        if kind not in _FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {ENV_FAULTS} "
                f"fragment {fragment!r}; choose from "
                f"{sorted(_FAULT_KINDS)}"
            )
        where: Dict[str, int] = {}
        seconds = DEFAULT_HANG_SECONDS
        for clause in filter(None, tail.split(",")):
            name, eq, value = clause.partition("=")
            name = name.strip().lower()
            if not eq:
                raise FaultSpecError(
                    f"expected field=value, got {clause!r} in "
                    f"{ENV_FAULTS} fragment {fragment!r}"
                )
            if name == "seconds":
                try:
                    seconds = float(value)
                except ValueError:
                    raise FaultSpecError(
                        f"seconds must be a number, got {value!r} "
                        f"in {ENV_FAULTS} fragment {fragment!r}"
                    ) from None
                continue
            if name not in _MATCH_FIELDS:
                raise FaultSpecError(
                    f"unknown fault field {name!r} in {ENV_FAULTS} "
                    f"fragment {fragment!r}; choose from "
                    f"{sorted(_MATCH_FIELDS + ('seconds',))}"
                )
            try:
                where[name] = int(value)
            except ValueError:
                raise FaultSpecError(
                    f"{name} must be an integer, got {value!r} in "
                    f"{ENV_FAULTS} fragment {fragment!r}"
                ) from None
        rules.append(
            FaultRule(kind=kind, where=where, seconds=seconds)
        )
    return FaultPlan(tuple(rules))


def active_plan() -> FaultPlan:
    """The fault plan configured via ``REPRO_FAULTS`` (may be empty).

    Parsed on every call: the spec is tiny, and tests toggle the env
    var between sweeps.
    """
    spec = os.environ.get(ENV_FAULTS, "").strip()
    return parse_faults(spec) if spec else FaultPlan()


# ----------------------------------------------------------------------
# Replica-site helpers (fleet serving)
# ----------------------------------------------------------------------
ENV_FLEET_INDEX = "REPRO_FLEET_INDEX"


def replica_context(request: int) -> Dict[str, int]:
    """The replica-site matcher context for one served request.

    ``replica`` is only present when the supervisor exported
    ``REPRO_FLEET_INDEX``, so a rule pinned to a replica index can
    never fire in a standalone (un-supervised) server.
    """
    from repro.settings import env_int

    context = {"request": request}
    index = env_int(ENV_FLEET_INDEX, "a replica index", minimum=0)
    if index is not None:
        context["replica"] = index
    return context


def io_context(write: int) -> Dict[str, int]:
    """The io-site matcher context for one cache write.

    Like :func:`replica_context`, ``replica`` is only present when
    the fleet supervisor exported ``REPRO_FLEET_INDEX``, so a rule
    pinned to one replica's disk never fires elsewhere.
    """
    context = {"write": write}
    index = env_int(ENV_FLEET_INDEX, "a replica index", minimum=0)
    if index is not None:
        context["replica"] = index
    return context


def replica_slow_start_seconds() -> float:
    """How long an armed ``replica-slow`` rule delays server startup.

    Consulted once by ``repro serve`` before binding the socket;
    returns 0 when no ``replica-slow`` rule matches this process's
    replica context (request count 0 -- startup happens before any
    request is served).
    """
    plan = active_plan()
    if not plan:
        return 0.0
    rule = plan._matching_kind(
        ("replica-slow",), replica_context(0)
    )
    return rule.seconds if rule is not None else 0.0


# ----------------------------------------------------------------------
# Timeout / retry / backoff resolution
# ----------------------------------------------------------------------
def resolve_timeout(
    timeout: Optional[float] = None,
) -> Optional[float]:
    """Per-chain timeout: explicit arg, else ``REPRO_TIMEOUT``, else
    no timeout.  ``0`` (or negative) disables."""
    if timeout is None:
        timeout = env_float(ENV_TIMEOUT, "a number of seconds")
        if timeout is None:
            return None
    return timeout if timeout > 0 else None


def resolve_retries(retries: Optional[int] = None) -> int:
    """Extra attempts per chain: arg, else ``REPRO_RETRIES``, else 0."""
    if retries is None:
        retries = env_int(ENV_RETRIES, "an integer attempt count")
        if retries is None:
            return 0
    if retries < 0:
        raise SweepConfigError(
            f"retries must be >= 0, got {retries}"
        )
    return retries


def backoff_seconds(
    key: str, attempt: int, base: Optional[float] = None
) -> float:
    """Deterministic backoff before retry ``attempt + 1``.

    Exponential in the attempt with a seeded jitter factor in
    [1, 2) derived from SHA-256 over ``(key, attempt)`` -- the same
    chain backs off the same way in every rerun, keeping retried
    sweeps reproducible.  ``base`` defaults to ``REPRO_BACKOFF``
    (0 -- no sleeping -- unless configured).
    """
    if base is None:
        env_base = env_float(ENV_BACKOFF, "a number of seconds")
        base = env_base if env_base is not None else 0.0
    if base <= 0:
        return 0.0
    digest = hashlib.sha256(
        f"{key}:{attempt}".encode()
    ).hexdigest()
    jitter = 1.0 + int(digest[:8], 16) / 0xFFFFFFFF
    return base * (2 ** attempt) * jitter
