"""Sweep journal: checkpoint completed grid points for resume.

A sweep that dies halfway -- killed process, crashed worker, power
loss -- should not have to re-derive what it already finished.  The
engine appends one JSON line per completed point to a journal file::

    {"v": 1, "fingerprint": ..., "key": ..., "point": {...}}

``fingerprint`` identifies the point (full :class:`GridPoint` fields
plus the warm-start flag); ``key`` is the content-address of the
point's report in the persistent :class:`~repro.runner.cache.PlanCache`.
On ``run_grid(..., resume=True)`` the engine reloads the journal and
serves any chain whose every point is journaled *and* still present
in the cache straight from disk -- no executor is even constructed.

Provably infeasible points (no tiling fits the buffer; see
:class:`~repro.runner.faults.InfeasiblePoint`) are terminal too, but
have no cache entry to point at.  They get their own line shape --
``"infeasible"`` (the serialized diagnosis) instead of ``"key"`` --
so resume can skip them without re-deriving the proof, and journals
written by older code versions are unaffected (their loader keyed on
``"key"`` and skips the new lines).

Staleness is rejected explicitly: every line records the
:func:`~repro.runner.cache.code_salt` of the source tree that wrote
it, and :meth:`SweepJournal.load` drops lines whose salt differs
from the current tree's.  (Merely storing salted cache keys would
not be enough -- old-salt cache entries are never evicted, so a
stale journaled key would still *hit* the stale entry.  The salt
check makes an edited source tree recompute instead.)

Appends are single ``write`` calls of complete lines, flushed and
``fsync``-ed before the file is closed, so a journal truncated by a
crash (or a killed replica) loses at most its torn final line --
which the loaders skip with a
:class:`~repro.runner.faults.JournalTruncation` warning instead of
raising (see :func:`append_line` / :func:`warn_truncation`, shared
with the serve journal).
"""

from __future__ import annotations

import dataclasses
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

from repro.runner.cache import PlanCache, code_salt, stable_hash
from repro.runner.faults import JournalTruncation


def append_line(path: Union[str, os.PathLike], line: str) -> None:
    """Append one complete journal line durably.

    One ``write`` of the full line, then ``flush`` + ``os.fsync``
    before close: a process killed at any instant leaves either the
    whole line on disk or (at worst) one torn tail the loaders skip
    -- never a buffered line that silently evaporated with the
    process.  Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line if line.endswith("\n") else line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def warn_truncation(path: Any, detail: str) -> None:
    """Surface a skipped torn trailing line as a warning.

    Under error warning filters (``python -W error``, pytest
    ``filterwarnings = error``) ``warn()`` raises the instance
    itself; a torn tail must stay recoverable -- the journal before
    it is intact -- so the escalation is swallowed, mirroring the
    cache-quarantine discipline.
    """
    try:
        warnings.warn(
            JournalTruncation(path, detail), stacklevel=3
        )
    except JournalTruncation:
        pass


def tolerant_lines(path: Union[str, os.PathLike]):
    """Parse a JSONL journal, skipping what a crash could tear.

    Yields every well-formed JSON-object line.  A final line that
    does not parse is a torn append from a killed writer: it is
    skipped with a :class:`JournalTruncation` warning.  Malformed
    lines elsewhere are skipped silently (the historical behavior --
    they are schema noise, not crash evidence).  A missing file
    yields nothing.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except (FileNotFoundError, OSError):
        return
    lines = text.splitlines()
    for position, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as error:
            if position == len(lines) - 1:
                warn_truncation(path, str(error))
            continue
        if isinstance(entry, dict):
            yield entry

#: Journal schema version; bump on incompatible line-format changes.
JOURNAL_VERSION = 1


def point_fingerprint(point: Any, warm_start: bool) -> str:
    """Stable identity of one sweep point within a journal.

    Warm and cold pricings of the same point are distinct results, so
    the warm-start flag is part of the identity (mirroring the cache
    key, which embeds the actual warm assignments).
    """
    return stable_hash({
        "point": dataclasses.asdict(point),
        "warm_start": bool(warm_start),
    })


class SweepJournal:
    """Append-only journal of completed sweep points.

    Args:
        path: Journal file (created on first record; parent
            directories are created as needed).
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = Path(path)

    def record(
        self, point: Any, key: Optional[str], warm_start: bool
    ) -> None:
        """Append one completed point.

        Points priced with the cache disabled have no key and are not
        journaled -- there is nothing on disk to resume them from.
        """
        if key is None:
            return
        line = json.dumps({
            "v": JOURNAL_VERSION,
            "salt": code_salt(),
            "fingerprint": point_fingerprint(point, warm_start),
            "key": key,
            "point": dataclasses.asdict(point),
        }, sort_keys=True)
        append_line(self.path, line)

    def record_infeasible(
        self, point: Any, diagnosis: Dict[str, Any],
        warm_start: bool,
    ) -> None:
        """Append one provably infeasible point.

        ``diagnosis`` is the serialized
        :class:`~repro.runner.faults.InfeasiblePoint` document (see
        :func:`repro.core.serialize.failure_to_dict`).  The line
        carries ``"infeasible"`` instead of ``"key"`` -- there is no
        cache entry behind an infeasible point -- which older
        loaders skip harmlessly.
        """
        line = json.dumps({
            "v": JOURNAL_VERSION,
            "salt": code_salt(),
            "fingerprint": point_fingerprint(point, warm_start),
            "infeasible": diagnosis,
            "point": dataclasses.asdict(point),
        }, sort_keys=True)
        append_line(self.path, line)

    def _entries(self) -> Sequence[Dict[str, Any]]:
        """Well-formed current-version, current-salt journal lines.

        A torn trailing line (a writer killed mid-append) is skipped
        with a :class:`~repro.runner.faults.JournalTruncation`
        warning; everything before it is intact and loads normally.
        """
        salt = code_salt()
        return [
            entry for entry in tolerant_lines(self.path)
            if entry.get("v") == JOURNAL_VERSION
            and entry.get("salt") == salt
        ]

    def load(self) -> Dict[str, str]:
        """``{fingerprint: cache key}`` for every journaled point.

        Missing files load as empty; malformed or torn lines (a crash
        mid-append), lines from other schema versions, lines without
        a cache key (infeasible records -- see
        :meth:`load_infeasible`), and lines written by a different
        code version (salt mismatch) are skipped -- the worst outcome
        of a bad or stale journal line is recomputing one point,
        never serving a stale report.
        """
        completed: Dict[str, str] = {}
        for entry in self._entries():
            try:
                completed[entry["fingerprint"]] = entry["key"]
            except (KeyError, TypeError):
                continue
        return completed

    def load_infeasible(self) -> Dict[str, Dict[str, Any]]:
        """``{fingerprint: serialized diagnosis}`` for every journaled
        infeasible point (same staleness filtering as :meth:`load`)."""
        infeasible: Dict[str, Dict[str, Any]] = {}
        for entry in self._entries():
            try:
                diagnosis = entry["infeasible"]
            except (KeyError, TypeError):
                continue
            if isinstance(diagnosis, dict):
                infeasible[entry["fingerprint"]] = diagnosis
        return infeasible

    def clear(self) -> None:
        """Delete the journal file (a completed sweep's checkpoint
        has nothing left to resume)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def default_journal_path(
    points: Sequence[Any],
    warm_start: bool = False,
    root: Union[str, os.PathLike, None] = None,
) -> Path:
    """Canonical journal location for one sweep definition.

    Keyed by a stable hash over the full point list (order included)
    and the warm-start flag, under ``<cache root>/journal/`` -- so
    ``sweep --resume`` finds the previous run's journal from the grid
    definition alone, and different sweeps never share a journal.
    """
    grid_hash = stable_hash({
        "points": [dataclasses.asdict(point) for point in points],
        "warm_start": bool(warm_start),
    })
    base = PlanCache(root).root
    return base / "journal" / f"{grid_hash}.jsonl"
