"""Parallel sweep engine: fan a report grid out over processes.

:func:`run_grid` evaluates a list of :class:`GridPoint`\\ s -- the
(executor, model, sequence, architecture) tuples behind every paper
figure -- with three guarantees:

* **Deterministic ordering** -- results come back keyed in the input
  order, whatever the execution schedule was.
* **Serial/parallel equivalence** -- ``jobs=1`` and ``jobs=N``
  produce byte-identical reports.  Points are grouped into *chains*
  (one per executor/model/architecture/batch family, sequence lengths
  ascending); a chain always runs on a single worker, so warm-start
  threading inside a chain is identical in both modes, and both modes
  reconstruct reports through the same serialization round-trip.
* **Persistent caching** -- each point consults the content-addressed
  :class:`~repro.runner.cache.PlanCache` before computing, so a warm
  rerun is served from disk.

Warm starting (``warm_start=True``) threads each chain's TileSeek
best assignment into the next (larger) sequence length's search as an
additional incumbent -- the DNNFuser-style mapping reuse across
similar problems.  Warm assignments are part of every cache key, so
warm and cold sweeps never collide.

``jobs`` resolution order: explicit argument, then ``REPRO_JOBS``,
then 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.arch.spec import named_architecture
from repro.baselines.registry import named_executor
from repro.core.serialize import report_from_dict, report_to_dict
from repro.model.config import named_model
from repro.model.workload import Workload
from repro.runner.cache import (
    ENV_CACHE,
    ENV_CACHE_DIR,
    arch_fingerprint,
    code_salt,
    default_cache,
    stable_hash,
    workload_fingerprint,
)
from repro.sim.stats import RunReport

ENV_JOBS = "REPRO_JOBS"

#: Default batch size (Section 6.1: ``B = 64`` throughout).
DEFAULT_BATCH = 64


@dataclass(frozen=True)
class GridPoint:
    """One sweep point: an executor priced on one workload.

    Attributes:
        executor: Registry name (``unfused`` ... ``transfusion``).
        model: Model-zoo preset name.
        seq_len: Sequence length ``P``.
        arch: Architecture preset name (Table 3).
        batch: Batch size ``B``.
        causal: Whether attention is causally masked.
    """

    executor: str
    model: str
    seq_len: int
    arch: str
    batch: int = DEFAULT_BATCH
    causal: bool = False

    def workload(self) -> Workload:
        """The workload this point prices."""
        return Workload(
            named_model(self.model),
            seq_len=self.seq_len,
            batch=self.batch,
            causal=self.causal,
        )

    def family(self) -> Tuple[str, str, str, int, bool]:
        """Chain grouping key: everything except the sequence length."""
        return (
            self.executor, self.model, self.arch, self.batch,
            self.causal,
        )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        env = os.environ.get(ENV_JOBS, "").strip()
        jobs = int(env) if env else 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def report_cache_payload(
    point: GridPoint,
    warm: Tuple[Tuple[int, ...], ...] = (),
) -> Dict[str, Any]:
    """The content-hash payload identifying one point's report."""
    executor = named_executor(point.executor)
    params: Dict[str, Any] = {}
    for attr in ("tileseek_iterations", "seed", "dpipe_options"):
        if hasattr(executor, attr):
            params[attr] = getattr(executor, attr)
    return {
        "kind": "report",
        "salt": code_salt(),
        "executor": point.executor,
        "executor_params": params,
        "workload": workload_fingerprint(point.workload()),
        "arch": arch_fingerprint(named_architecture(point.arch)),
        "warm_start": [list(a) for a in warm],
    }


def compute_report(
    point: GridPoint,
    cache: Union[Any, None] = None,
    executor: Optional[Any] = None,
    warm: Tuple[Tuple[int, ...], ...] = (),
) -> RunReport:
    """One point's report, served from the persistent cache if possible.

    Args:
        point: The grid point to price.
        cache: A :class:`PlanCache`, or ``None`` to use the
            environment default (which may be disabled).
        executor: Pre-built executor instance to reuse (the chain
            runner threads warm-start state through it); ``None``
            builds a fresh one from the registry.
        warm: Warm-start assignments for the tiling search (part of
            the cache key).
    """
    if cache is None:
        cache = default_cache()
    payload = key = None
    if cache is not None:
        payload = report_cache_payload(point, warm)
        key = stable_hash(payload)
        document = cache.get("report", key)
        if document is not None:
            return report_from_dict(document)
    if executor is None:
        executor = named_executor(point.executor)
    if hasattr(executor, "set_warm_start"):
        executor.set_warm_start(warm)
    report = executor.run(point.workload(), named_architecture(point.arch))
    if cache is not None:
        cache.put("report", key, report_to_dict(report), payload)
    return report


def _chains(
    points: Sequence[GridPoint],
) -> List[List[GridPoint]]:
    """Group points into per-family chains, sequence ascending.

    Chain order follows first appearance in ``points``; duplicates
    are dropped (the result dict re-expands them).
    """
    grouped: Dict[Tuple, List[GridPoint]] = {}
    for point in points:
        grouped.setdefault(point.family(), [])
        if point not in grouped[point.family()]:
            grouped[point.family()].append(point)
    return [
        sorted(chain, key=lambda p: p.seq_len)
        for chain in grouped.values()
    ]


def _run_chain(
    chain: Sequence[GridPoint], warm_start: bool
) -> List[Dict[str, Any]]:
    """Price one chain in order, threading warm starts forward.

    Returns serialized report documents (JSON-safe) aligned with the
    chain -- both the serial and the parallel path reconstruct
    reports from these documents, which is what makes their outputs
    byte-identical.
    """
    cache = default_cache()
    executor = named_executor(chain[0].executor)
    warm: Tuple[Tuple[int, ...], ...] = ()
    supports_warm = warm_start and hasattr(executor, "set_warm_start")
    documents = []
    for point in chain:
        if supports_warm:
            # Keep the executor's warm state in sync even when the
            # report itself is served from disk, so the follow-up
            # tiling lookup below uses this point's key.
            executor.set_warm_start(warm)
        report = compute_report(
            point, cache=cache, executor=executor,
            warm=warm if supports_warm else (),
        )
        documents.append(report_to_dict(report))
        if supports_warm:
            tiling = executor.tiling(
                point.workload(), named_architecture(point.arch)
            )
            warm = (tuple(tiling.stats.best_assignment),)
    return documents


def _cache_env(
    cache_dir: Union[str, os.PathLike, None], use_cache: bool
) -> Dict[str, str]:
    """Environment overrides configuring the cache for one sweep."""
    env: Dict[str, str] = {}
    if not use_cache:
        env[ENV_CACHE] = "0"
    elif cache_dir is not None:
        env[ENV_CACHE_DIR] = str(cache_dir)
    return env


def _worker_init(env: Dict[str, str]) -> None:
    """Pool-worker initializer: point the worker at the sweep cache."""
    os.environ.update(env)


def run_grid(
    points: Sequence[GridPoint],
    jobs: Optional[int] = None,
    cache_dir: Union[str, os.PathLike, None] = None,
    use_cache: bool = True,
    warm_start: bool = False,
) -> "Dict[GridPoint, RunReport]":
    """Price a grid of points, optionally fanning out over processes.

    Args:
        points: Grid points; the result preserves their order.
        jobs: Worker processes (``None``: ``REPRO_JOBS``, else 1).
            1 runs serially in-process -- byte-identical to any
            parallel schedule.
        cache_dir: Persistent-cache root override (``None`` keeps the
            ``REPRO_CACHE_DIR`` / default resolution).
        use_cache: ``False`` disables the persistent layer for this
            sweep.
        warm_start: Thread each chain's TileSeek best assignment into
            the next sequence length's search as an extra incumbent.

    Returns:
        ``{point: report}`` in input order (duplicates collapse onto
        one entry).
    """
    jobs = resolve_jobs(jobs)
    chains = _chains(points)
    env = _cache_env(cache_dir, use_cache)
    if jobs == 1 or len(chains) <= 1:
        saved = {key: os.environ.get(key) for key in env}
        os.environ.update(env)
        try:
            chain_documents = [
                _run_chain(chain, warm_start) for chain in chains
            ]
        finally:
            for key, value in saved.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
    else:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chains)),
            mp_context=context,
            initializer=_worker_init,
            initargs=(env,),
        ) as pool:
            futures = [
                pool.submit(_run_chain, chain, warm_start)
                for chain in chains
            ]
            chain_documents = [f.result() for f in futures]
    by_point: Dict[GridPoint, RunReport] = {}
    for chain, documents in zip(chains, chain_documents):
        for point, document in zip(chain, documents):
            by_point[point] = report_from_dict(document)
    return {point: by_point[point] for point in points}
