"""Parallel sweep engine: fan a report grid out over processes.

:func:`run_grid` evaluates a list of :class:`GridPoint`\\ s -- the
(executor, model, sequence, architecture) tuples behind every paper
figure -- with four guarantees:

* **Deterministic ordering** -- results come back keyed in the input
  order, whatever the execution schedule was.
* **Serial/parallel equivalence** -- ``jobs=1`` and ``jobs=N``
  produce byte-identical reports.  Points are grouped into *chains*
  (one per executor/model/architecture/batch family, sequence lengths
  ascending); a chain always runs on a single worker, so warm-start
  threading inside a chain is identical in both modes, and both modes
  reconstruct reports through the same serialization round-trip.
  Retries and resume preserve the equivalence: a retried chain
  recomputes deterministically, and a resumed chain is served from
  the same cache documents an uninterrupted run produces.
* **Persistent caching** -- each point consults the content-addressed
  :class:`~repro.runner.cache.PlanCache` before computing, so a warm
  rerun is served from disk.
* **Fault tolerance** -- each chain gets a per-chain timeout
  (``REPRO_TIMEOUT``, measured from when the chain is first observed
  executing on its worker, so queue time is not charged and a hung
  early chain is detected while later chains keep finishing) and
  bounded deterministic retries (``REPRO_RETRIES``); a crashed pool
  worker (``BrokenProcessPool``) only re-runs the chains that were
  lost with it, on a respawned pool, and the abandoned pool's
  workers are killed so a genuinely hung search cannot keep burning
  CPU or stall interpreter exit.  ``strict=False`` degrades gracefully: the returned
  :class:`SweepResult` carries per-point status (``ok`` / ``failed``
  / ``timeout`` / ``skipped`` / ``infeasible``) and the partial
  reports instead of raising on the first failure.  A
  :class:`~repro.runner.journal.SweepJournal` checkpoints every
  completed point's cache key, so ``run_grid(..., resume=True)``
  skips finished work after a crash.
* **Typed infeasibility** -- a point whose workload provably fits no
  tiling (:class:`~repro.runner.faults.InfeasiblePoint`, raised with
  a Table-2 buffer diagnosis) is a *terminal* outcome, not a fault:
  it gets status ``infeasible``, is never retried, never trips
  ``strict``, and its diagnosis is journaled so resume skips the
  proof.  The rest of the chain keeps running (warm-start threading
  simply skips the infeasible point).

Warm starting (``warm_start=True``) threads each chain's TileSeek
best assignment into the next (larger) sequence length's search as an
additional incumbent -- the DNNFuser-style mapping reuse across
similar problems.  Warm assignments are part of every cache key, so
warm and cold sweeps never collide.

``jobs`` resolution order: explicit argument, then ``REPRO_JOBS``,
then 1 (serial).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as wait_futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from collections.abc import Mapping as MappingABC

from repro.arch.spec import named_architecture
from repro.baselines.registry import named_executor
from repro.core.serialize import (
    failure_from_dict,
    failure_to_dict,
    report_from_dict,
    report_to_dict,
)
from repro.model.config import named_model
from repro.model.workload import Workload
from repro.runner.cache import (
    ENV_CACHE,
    ENV_CACHE_DIR,
    arch_fingerprint,
    code_salt,
    default_cache,
    stable_hash,
    workload_fingerprint,
)
from repro.resilience.budget import (
    ENV_BUDGET,
    ENV_NO_FALLBACK,
    fallback_enabled,
    resolve_budget,
)
from repro.runner.faults import (
    ChainTimeout,
    InfeasiblePoint,
    InjectedHang,
    InjectedWorkerExit,
    PointFailure,
    SweepConfigError,
    SweepError,
    WorkerCrash,
    active_plan,
    backoff_seconds,
    resolve_retries,
    resolve_timeout,
)
from repro.runner.journal import SweepJournal, point_fingerprint
from repro.settings import env_int
from repro.sim.stats import RunReport

ENV_JOBS = "REPRO_JOBS"

#: Default batch size (Section 6.1: ``B = 64`` throughout).
DEFAULT_BATCH = 64

#: Per-point sweep statuses carried by :class:`SweepResult`.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_SKIPPED = "skipped"
STATUS_INFEASIBLE = "infeasible"

#: Marker key wrapping a serialized :class:`InfeasiblePoint` in a
#: chain's result stream (in place of a report document).
_INFEASIBLE_KEY = "__infeasible__"


def _is_infeasible_document(document: Dict[str, Any]) -> bool:
    return _INFEASIBLE_KEY in document


@dataclass(frozen=True)
class GridPoint:
    """One sweep point: an executor priced on one workload.

    Attributes:
        executor: Registry name (``unfused`` ... ``transfusion``).
        model: Model-zoo preset name.
        seq_len: Sequence length ``P``.
        arch: Architecture preset name (Table 3).
        batch: Batch size ``B``.
        causal: Whether attention is causally masked.
    """

    executor: str
    model: str
    seq_len: int
    arch: str
    batch: int = DEFAULT_BATCH
    causal: bool = False

    def workload(self) -> Workload:
        """The workload this point prices."""
        return Workload(
            named_model(self.model),
            seq_len=self.seq_len,
            batch=self.batch,
            causal=self.causal,
        )

    def family(self) -> Tuple[str, str, str, int, bool]:
        """Chain grouping key: everything except the sequence length."""
        return (
            self.executor, self.model, self.arch, self.batch,
            self.causal,
        )


class SweepResult(MappingABC):
    """The outcome of one :func:`run_grid` sweep, point by point.

    A :class:`~collections.abc.Mapping` over the points that produced
    reports (``ok`` and ``skipped``), in input order -- so existing
    ``{point: report}`` call sites (iteration, ``.items()``,
    indexing) keep working unchanged -- plus per-point ``statuses``
    and typed ``failures`` for everything that did not.

    Attributes:
        statuses: ``{point: status}`` for *every* requested point
            (``ok`` / ``failed`` / ``timeout`` / ``skipped`` /
            ``infeasible``).
        failures: ``{point: SweepError}`` for failed/timed-out points.
        infeasible: ``{point: InfeasiblePoint}`` for points whose
            workload provably fits no tiling.  Infeasible points are
            terminal diagnoses, not faults: they do not affect
            :attr:`ok` and :meth:`raise_if_failed` ignores them.
    """

    def __init__(
        self,
        points: Sequence[GridPoint],
        reports: Mapping[GridPoint, RunReport],
        statuses: Mapping[GridPoint, str],
        failures: Mapping[GridPoint, SweepError],
        infeasible: Optional[
            Mapping[GridPoint, InfeasiblePoint]
        ] = None,
    ) -> None:
        self._points = list(points)
        self._reports = dict(reports)
        self.statuses = dict(statuses)
        self.failures = dict(failures)
        self.infeasible = dict(infeasible or {})

    def __getitem__(self, point: GridPoint) -> RunReport:
        try:
            return self._reports[point]
        except KeyError:
            if point in self.failures:
                raise KeyError(
                    f"{point} has no report: "
                    f"{self.failures[point]}"
                ) from None
            if point in self.infeasible:
                raise KeyError(
                    f"{point} has no report: "
                    f"{self.infeasible[point]}"
                ) from None
            raise

    def __iter__(self) -> Iterator[GridPoint]:
        return (p for p in self._points if p in self._reports)

    def __len__(self) -> int:
        return len(self._reports)

    @property
    def points(self) -> List[GridPoint]:
        """Every requested point (deduped, input order), whatever its
        status."""
        return list(self._points)

    @property
    def reports(self) -> Dict[GridPoint, RunReport]:
        """``{point: report}`` for the points that completed."""
        return {p: self._reports[p] for p in self}

    @property
    def ok(self) -> bool:
        """Whether no point *failed* (infeasible diagnoses are
        terminal answers, not failures, and do not count)."""
        return not self.failures

    def counts(self) -> Dict[str, int]:
        """``{status: point count}`` over the whole sweep."""
        return dict(Counter(self.statuses.values()))

    def failed_points(self) -> List[GridPoint]:
        """Points without a report, in input order."""
        return [p for p in self._points if p in self.failures]

    def infeasible_points(self) -> List[GridPoint]:
        """Provably infeasible points, in input order."""
        return [p for p in self._points if p in self.infeasible]

    def raise_if_failed(self) -> "SweepResult":
        """Raise the first failure in input order, if any."""
        for point in self._points:
            if point in self.failures:
                raise self.failures[point]
        return self

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{status}={count}"
            for status, count in sorted(self.counts().items())
        )
        return f"SweepResult({len(self._points)} points: {counts})"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else 1."""
    if jobs is None:
        jobs = env_int(ENV_JOBS, "an integer worker count")
        if jobs is None:
            jobs = 1
    if jobs < 1:
        raise SweepConfigError(f"jobs must be >= 1, got {jobs}")
    return jobs


def report_cache_payload(
    point: GridPoint,
    warm: Tuple[Tuple[int, ...], ...] = (),
) -> Dict[str, Any]:
    """The content-hash payload identifying one point's report."""
    executor = named_executor(point.executor)
    params: Dict[str, Any] = {}
    for attr in ("tileseek_iterations", "seed", "dpipe_options"):
        if hasattr(executor, attr):
            params[attr] = getattr(executor, attr)
    payload = {
        "kind": "report",
        "salt": code_salt(),
        "executor": point.executor,
        "executor_params": params,
        "workload": workload_fingerprint(point.workload()),
        "arch": arch_fingerprint(named_architecture(point.arch)),
        "warm_start": [list(a) for a in warm],
    }
    # Conditional keys: a budgeted (possibly degraded) report is a
    # different artifact from the unbudgeted one, but unbudgeted
    # sweeps keep their pre-existing disk hashes byte-for-byte.
    budget = resolve_budget()
    if budget is not None:
        payload["budget"] = budget
    if not fallback_enabled():
        payload["no_fallback"] = True
    # A learn-enabled report depends on which fitted model seeded its
    # searches, so its identity embeds the model's corpus hash
    # (``None`` when enabled with no model fitted yet -- still a
    # distinct artifact from the learn-off one, which keeps its
    # pre-existing hash).  Imported lazily: repro.learn imports the
    # corpus extractor, which imports this module.
    from repro.learn import learn_enabled, model_signature

    if learn_enabled():
        payload["learn"] = model_signature()
    return payload


def _point_document(
    point: GridPoint,
    cache: Union[Any, None],
    executor: Optional[Any] = None,
    warm: Tuple[Tuple[int, ...], ...] = (),
) -> Tuple[Optional[str], Dict[str, Any]]:
    """(cache key, serialized report document) for one point.

    The document is served from the persistent cache when possible;
    both the serial and the parallel path reconstruct reports from
    these documents, which is what makes their outputs byte-identical.
    The key is ``None`` when the cache is disabled.
    """
    key = payload = None
    if cache is not None:
        payload = report_cache_payload(point, warm)
        key = stable_hash(payload)
        document = cache.get("report", key)
        if document is not None:
            return key, document
    if executor is None:
        executor = named_executor(point.executor)
    if hasattr(executor, "set_warm_start"):
        executor.set_warm_start(warm)
    report = executor.run(point.workload(), named_architecture(point.arch))
    document = report_to_dict(report)
    if cache is not None:
        cache.put("report", key, document, payload)
    return key, document


def compute_report(
    point: GridPoint,
    cache: Union[Any, None] = None,
    executor: Optional[Any] = None,
    warm: Tuple[Tuple[int, ...], ...] = (),
) -> RunReport:
    """One point's report, served from the persistent cache if possible.

    Args:
        point: The grid point to price.
        cache: A :class:`PlanCache`, or ``None`` to use the
            environment default (which may be disabled).
        executor: Pre-built executor instance to reuse (the chain
            runner threads warm-start state through it); ``None``
            builds a fresh one from the registry.
        warm: Warm-start assignments for the tiling search (part of
            the cache key).
    """
    if cache is None:
        cache = default_cache()
    _, document = _point_document(point, cache, executor, warm)
    return report_from_dict(document)


def _chains(
    points: Sequence[GridPoint],
) -> List[List[GridPoint]]:
    """Group points into per-family chains, sequence ascending.

    Chain order follows first appearance in ``points``; duplicates
    are dropped (the result dict re-expands them).
    """
    grouped: Dict[Tuple, List[GridPoint]] = {}
    for point in points:
        grouped.setdefault(point.family(), [])
        if point not in grouped[point.family()]:
            grouped[point.family()].append(point)
    return [
        sorted(chain, key=lambda p: p.seq_len)
        for chain in grouped.values()
    ]


def _run_chain(
    chain: Sequence[GridPoint],
    warm_start: bool,
    chain_index: int = 0,
    attempt: int = 0,
    indices: Optional[Sequence[int]] = None,
    serial: bool = True,
) -> List[Tuple[Optional[str], Dict[str, Any]]]:
    """Price one chain in order, threading warm starts forward.

    Returns ``(cache key, serialized report document)`` pairs aligned
    with the chain.  Consults the ``REPRO_FAULTS`` injection plan at
    every point boundary, and wraps any per-point exception into a
    typed :class:`PointFailure` naming the point, chain and attempt.

    Args:
        chain: The points of one family, sequence ascending.
        warm_start: Thread TileSeek warm starts through the chain.
        chain_index: This chain's index in the sweep (fault-injection
            and error-attribution context).
        attempt: 0-based retry attempt (fault-injection context).
        indices: Global input index of each chain point (fault
            ``point=`` matchers); defaults to chain positions.
        serial: Whether this call runs in the parent process.
    """
    plan = active_plan()
    cache = default_cache()
    executor = named_executor(chain[0].executor)
    warm: Tuple[Tuple[int, ...], ...] = ()
    supports_warm = warm_start and hasattr(executor, "set_warm_start")
    results = []
    for position, point in enumerate(chain):
        index = indices[position] if indices is not None else position
        try:
            plan.fire(
                serial=serial, chain=chain_index, point=index,
                attempt=attempt,
            )
            if supports_warm:
                # Keep the executor's warm state in sync even when
                # the report itself is served from disk, so the
                # follow-up tiling lookup below uses this point's key.
                executor.set_warm_start(warm)
            key, document = _point_document(
                point, cache=cache, executor=executor,
                warm=warm if supports_warm else (),
            )
            if supports_warm:
                tiling = executor.tiling(
                    point.workload(), named_architecture(point.arch)
                )
                warm = (tuple(tiling.stats.best_assignment),)
        except (InjectedHang, InjectedWorkerExit):
            raise
        except InfeasiblePoint as failure:
            # Terminal diagnosis, not a fault: record the typed
            # verdict in the result stream (no report document
            # exists) and keep pricing the rest of the chain.  Warm
            # starts thread past the point unchanged -- there is no
            # assignment to thread.
            results.append((None, {
                _INFEASIBLE_KEY: failure_to_dict(
                    failure.with_point(point)
                ),
            }))
            continue
        except SweepError:
            raise
        except Exception as error:
            raise PointFailure(
                point, chain_index, attempt,
                type(error).__name__, str(error),
            ) from error
        results.append((key, document))
    return results


def _cache_env(
    cache_dir: Union[str, os.PathLike, None], use_cache: bool
) -> Dict[str, str]:
    """Environment overrides configuring the cache for one sweep."""
    env: Dict[str, str] = {}
    if not use_cache:
        env[ENV_CACHE] = "0"
    elif cache_dir is not None:
        env[ENV_CACHE_DIR] = str(cache_dir)
    return env


def _worker_init(env: Dict[str, str]) -> None:
    """Pool-worker initializer: point the worker at the sweep cache."""
    os.environ.update(env)


@dataclass
class _ChainOutcome:
    """One chain's terminal state after retries."""

    status: str
    results: List[Tuple[Optional[str], Dict[str, Any]]] = field(
        default_factory=list
    )
    error: Optional[SweepError] = None


def _failure_status(error: SweepError) -> str:
    return (
        STATUS_TIMEOUT if isinstance(error, ChainTimeout)
        else STATUS_FAILED
    )


def _journal_chain(
    journal: Optional[SweepJournal],
    chain: Sequence[GridPoint],
    outcome: _ChainOutcome,
    warm_start: bool,
) -> None:
    """Checkpoint a freshly completed chain's points."""
    if journal is None or outcome.status != STATUS_OK:
        return
    for point, (key, document) in zip(chain, outcome.results):
        if _is_infeasible_document(document):
            journal.record_infeasible(
                point, document[_INFEASIBLE_KEY], warm_start
            )
        else:
            journal.record(point, key, warm_start)


def _serial_outcomes(
    chains: Sequence[Sequence[GridPoint]],
    chain_ids: Sequence[int],
    indices: Sequence[Sequence[int]],
    warm_start: bool,
    retries: int,
    timeout: Optional[float],
    strict: bool,
    journal: Optional[SweepJournal],
    outcomes: List[Optional[_ChainOutcome]],
) -> None:
    """Run the pending chains in-process, with retries.

    Injected hangs surface as cooperative :class:`ChainTimeout`\\ s
    (an in-process computation cannot be preempted); real per-chain
    wall-clock timeouts require ``jobs > 1``.
    """
    for chain_id in chain_ids:
        chain = chains[chain_id]
        attempt = 0
        while True:
            error: SweepError
            try:
                outcome = _ChainOutcome(
                    STATUS_OK,
                    results=_run_chain(
                        chain, warm_start, chain_id, attempt,
                        indices[chain_id], serial=True,
                    ),
                )
                outcomes[chain_id] = outcome
                _journal_chain(journal, chain, outcome, warm_start)
                break
            except InjectedHang:
                error = ChainTimeout(chain_id, timeout or 0.0, attempt)
            except InjectedWorkerExit as exc:
                error = WorkerCrash(chain_id, attempt, str(exc))
            except SweepError as exc:
                error = exc
            except Exception as exc:
                error = PointFailure(
                    chain[0], chain_id, attempt,
                    type(exc).__name__, str(exc),
                )
            if attempt < retries:
                time.sleep(backoff_seconds(f"chain-{chain_id}", attempt))
                attempt += 1
                continue
            if strict:
                raise error
            outcomes[chain_id] = _ChainOutcome(
                _failure_status(error), error=error
            )
            break


#: How often the parallel collector re-polls while enforcing
#: per-chain deadlines (to stamp the clock of chains that just left
#: the queue and started executing).
_DEADLINE_POLL_SECONDS = 0.25


def _kill_pool_workers(pool: ProcessPoolExecutor) -> None:
    """Forcefully terminate the workers of an abandoned pool.

    ``shutdown(wait=False)`` alone is not enough when a worker is
    genuinely hung: pool workers are non-daemon processes that
    ``concurrent.futures`` joins at interpreter exit, so a wedged
    worker would keep burning CPU alongside the respawned retry pool
    and then stall process shutdown.  SIGKILL is safe here -- a
    finished chain's results already crossed the result pipe, cache
    writes are atomic (temp file + rename), and the lost chains are
    re-run on a fresh pool -- but it cannot be trapped, so any
    worker-side state outside those channels would be lost.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.kill()
        except (OSError, ValueError, AttributeError):
            pass


def _harvest_future(
    chain_id: int,
    future: Any,
    chain: Sequence[GridPoint],
    attempt: int,
    timeout: Optional[float],
    journal: Optional[SweepJournal],
    warm_start: bool,
    outcomes: List[Optional[_ChainOutcome]],
    failures: Dict[int, SweepError],
) -> bool:
    """Fold one settled future into ``outcomes`` / ``failures``.

    Returns whether the pool must be abandoned (its worker died).
    """
    try:
        outcome = _ChainOutcome(STATUS_OK, results=future.result())
        outcomes[chain_id] = outcome
        _journal_chain(journal, chain, outcome, warm_start)
    except BrokenProcessPool as exc:
        failures[chain_id] = WorkerCrash(
            chain_id, attempt, str(exc) or type(exc).__name__
        )
        return True
    except InjectedHang:
        # The injected hang gave up on its own (no timeout was
        # configured to preempt it); the worker is healthy again.
        failures[chain_id] = ChainTimeout(
            chain_id, timeout or 0.0, attempt
        )
    except SweepError as exc:
        failures[chain_id] = exc
    except Exception as exc:
        failures[chain_id] = PointFailure(
            chain[0], chain_id, attempt,
            type(exc).__name__, str(exc),
        )
    return False


def _collect_round(
    futures: Dict[int, Any],
    chains: Sequence[Sequence[GridPoint]],
    attempts: Mapping[int, int],
    timeout: Optional[float],
    journal: Optional[SweepJournal],
    warm_start: bool,
    outcomes: List[Optional[_ChainOutcome]],
    failures: Dict[int, SweepError],
) -> Tuple[bool, List[int]]:
    """Settle one pool round's futures under per-chain deadlines.

    Each chain's timeout clock starts when its future is first
    observed executing on a worker (polled every
    ``_DEADLINE_POLL_SECONDS``), not when the parent happens to ask
    for its result -- so queue time behind a busy pool is never
    charged, and a hung early chain is flagged promptly even while
    later chains keep finishing.  Detection granularity is the poll
    interval.

    Returns ``(abandoned, stranded)``: whether the pool must be
    abandoned (a worker hung or died), and the chains whose futures
    never started because every worker was wedged -- those rerun on
    the next round's fresh pool without being charged an attempt.
    """
    abandoned = False
    deadlines: Dict[int, float] = {}
    waiting = dict(futures)
    stranded: List[int] = []
    while waiting:
        if timeout is not None:
            now = time.monotonic()
            for chain_id, future in waiting.items():
                if chain_id not in deadlines and future.running():
                    deadlines[chain_id] = now + timeout
            remaining = [
                max(0.0, deadlines[chain_id] - now)
                for chain_id in waiting if chain_id in deadlines
            ]
            wait_for = min([_DEADLINE_POLL_SECONDS] + remaining)
            done, _ = wait_futures(
                list(waiting.values()), timeout=wait_for,
                return_when=FIRST_COMPLETED,
            )
        else:
            done, _ = wait_futures(
                list(waiting.values()), return_when=FIRST_COMPLETED
            )
        settled = sorted(
            chain_id for chain_id, future in waiting.items()
            if future in done
        )
        for chain_id in settled:
            abandoned |= _harvest_future(
                chain_id, waiting.pop(chain_id), chains[chain_id],
                attempts[chain_id], timeout, journal, warm_start,
                outcomes, failures,
            )
        if timeout is None:
            continue
        now = time.monotonic()
        expired = sorted(
            chain_id for chain_id in waiting
            if deadlines.get(chain_id, now + 1.0) <= now
        )
        for chain_id in expired:
            # The worker is stuck; drop the chain here and recover
            # it on a fresh pool (this one's workers get killed).
            failures[chain_id] = ChainTimeout(
                chain_id, timeout, attempts[chain_id]
            )
            waiting.pop(chain_id).cancel()
            abandoned = True
        if abandoned and waiting and not any(
            future.running() or future.done()
            for future in waiting.values()
        ):
            # Every worker is wedged on a timed-out chain, so the
            # queued futures can never start on this pool.  Send
            # them to the next round's fresh pool without charging
            # an attempt -- they never ran.
            stranded = sorted(waiting)
            for chain_id in stranded:
                waiting.pop(chain_id).cancel()
    return abandoned, stranded


def _parallel_outcomes(
    chains: Sequence[Sequence[GridPoint]],
    chain_ids: Sequence[int],
    indices: Sequence[Sequence[int]],
    warm_start: bool,
    retries: int,
    timeout: Optional[float],
    strict: bool,
    journal: Optional[SweepJournal],
    jobs: int,
    env: Dict[str, str],
    outcomes: List[Optional[_ChainOutcome]],
) -> None:
    """Fan the pending chains over a process pool, with recovery.

    Each retry round runs on a fresh pool, so a broken
    (``BrokenProcessPool``) or abandoned (hung worker) pool never
    leaks into the next attempt; only the chains that were actually
    lost are resubmitted, and an abandoned pool's workers are
    explicitly killed (see :func:`_kill_pool_workers`).
    """
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    pending: Dict[int, int] = {i: 0 for i in chain_ids}
    while pending:
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(pending)),
            mp_context=context,
            initializer=_worker_init,
            initargs=(env,),
        )
        futures = {
            chain_id: pool.submit(
                _run_chain, chains[chain_id], warm_start, chain_id,
                attempt, indices[chain_id], False,
            )
            for chain_id, attempt in sorted(pending.items())
        }
        failures: Dict[int, SweepError] = {}
        abandoned, stranded = _collect_round(
            futures, chains, pending, timeout, journal, warm_start,
            outcomes, failures,
        )
        if abandoned:
            # Kill before shutdown(): shutdown drops the executor's
            # process references, after which the workers could no
            # longer be reached.
            _kill_pool_workers(pool)
        pool.shutdown(wait=not abandoned, cancel_futures=True)
        attempts = pending
        pending = {
            chain_id: attempts[chain_id] for chain_id in stranded
        }
        for chain_id, error in sorted(failures.items()):
            attempt = attempts[chain_id]
            if attempt < retries:
                time.sleep(
                    backoff_seconds(f"chain-{chain_id}", attempt)
                )
                pending[chain_id] = attempt + 1
            elif strict:
                raise error
            else:
                outcomes[chain_id] = _ChainOutcome(
                    _failure_status(error), error=error
                )


def _resume_chain(
    chain: Sequence[GridPoint],
    completed: Mapping[str, str],
    infeasible: Mapping[str, Dict[str, Any]],
    cache: Optional[Any],
    warm_start: bool,
) -> Optional[List[Tuple[Optional[str], Dict[str, Any]]]]:
    """Serve a fully journaled chain straight from the cache.

    Returns ``None`` (run the chain normally) unless *every* point is
    journaled and its document is still cached -- partially finished
    chains recompute, hitting the cache for their completed prefix.
    Journaled infeasible verdicts need no cache entry; they replay
    straight from the journal's serialized diagnosis.
    """
    if not (completed or infeasible) or cache is None:
        return None
    results = []
    for point in chain:
        fingerprint = point_fingerprint(point, warm_start)
        diagnosis = infeasible.get(fingerprint)
        if diagnosis is not None:
            results.append((None, {_INFEASIBLE_KEY: diagnosis}))
            continue
        key = completed.get(fingerprint)
        if key is None:
            return None
        document = cache.get("report", key)
        if document is None:
            return None
        results.append((key, document))
    return results


def run_grid(
    points: Sequence[GridPoint],
    jobs: Optional[int] = None,
    cache_dir: Union[str, os.PathLike, None] = None,
    use_cache: bool = True,
    warm_start: bool = False,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    strict: bool = True,
    journal: Union[str, os.PathLike, SweepJournal, None] = None,
    resume: bool = False,
    budget: Optional[int] = None,
    no_fallback: bool = False,
    learn: Optional[bool] = None,
) -> SweepResult:
    """Price a grid of points, optionally fanning out over processes.

    Args:
        points: Grid points; the result preserves their order.
        jobs: Worker processes (``None``: ``REPRO_JOBS``, else 1).
            1 runs serially in-process -- byte-identical to any
            parallel schedule.
        cache_dir: Persistent-cache root override (``None`` keeps the
            ``REPRO_CACHE_DIR`` / default resolution).
        use_cache: ``False`` disables the persistent layer for this
            sweep.
        warm_start: Thread each chain's TileSeek best assignment into
            the next (larger) sequence length's search as an extra
            incumbent.
        timeout: Per-chain timeout in seconds (``None``:
            ``REPRO_TIMEOUT``, else unlimited).  When ``jobs > 1``
            each chain's clock starts when it is first observed
            executing on a worker (polled, so detection granularity
            is ~0.25 s) -- queue time behind a busy pool is not
            charged, and a hung chain is detected even while other
            chains are still running.  Serial mode honors
            cooperative (injected) hangs only.
        retries: Extra attempts per failed chain (``None``:
            ``REPRO_RETRIES``, else 0), with deterministic seeded
            backoff (``REPRO_BACKOFF``).
        strict: ``True`` (default) raises the first typed failure
            once its retries are exhausted -- the historical
            all-or-nothing behavior.  ``False`` degrades gracefully:
            every chain runs, and failures come back as statuses.
        journal: Checkpoint file (path or
            :class:`~repro.runner.journal.SweepJournal`) recording
            each completed point's cache key as chains finish.
        resume: Reload ``journal`` first and serve fully completed
            chains straight from the persistent cache (status
            ``skipped``) instead of re-running them.
        budget: Deterministic search-unit budget applied to every
            point's searches (exported to workers as
            ``REPRO_BUDGET``; ``None`` keeps any ambient setting).
            The same grid with the same budget produces the same
            (possibly degraded) reports on any host at any ``jobs``.
        no_fallback: Disable the graceful-degradation ladder
            (exported as ``REPRO_NO_FALLBACK``): a budget-exhausted
            search raises instead of returning a fallback plan.
        learn: Consult the learned warm-start predictor
            (:mod:`repro.learn`) on every cold tiling search
            (exported as ``REPRO_LEARN``; ``None`` keeps any ambient
            setting, ``False`` forces it off for this sweep).

    Returns:
        A :class:`SweepResult` -- a mapping ``{point: report}`` in
        input order (duplicates collapse onto one entry) carrying
        per-point statuses, typed failures and infeasible diagnoses.
    """
    jobs = resolve_jobs(jobs)
    timeout = resolve_timeout(timeout)
    retries = resolve_retries(retries)
    if budget is not None and budget < 1:
        raise SweepConfigError(
            f"budget must be >= 1 search unit, got {budget}"
        )
    chains = _chains(points)
    first_index: Dict[GridPoint, int] = {}
    for position, point in enumerate(points):
        first_index.setdefault(point, position)
    indices = [
        [first_index[point] for point in chain] for chain in chains
    ]
    env = _cache_env(cache_dir, use_cache)
    # Budget knobs travel the same way the cache config does: set in
    # the parent (and restored on exit) for the serial path, and
    # replayed into every pool worker by _worker_init -- so serial
    # and parallel sweeps see identical settings.
    if budget is not None:
        env[ENV_BUDGET] = str(budget)
    if no_fallback:
        env[ENV_NO_FALLBACK] = "1"
    if learn is not None:
        from repro.learn import ENV_LEARN

        env[ENV_LEARN] = "1" if learn else "0"
    log: Optional[SweepJournal]
    if isinstance(journal, SweepJournal) or journal is None:
        log = journal
    else:
        log = SweepJournal(journal)
    outcomes: List[Optional[_ChainOutcome]] = [None] * len(chains)
    saved = {key: os.environ.get(key) for key in env}
    os.environ.update(env)
    try:
        completed = log.load() if (log and resume) else {}
        journaled_infeasible = (
            log.load_infeasible() if (log and resume) else {}
        )
        cache = default_cache()
        pending_ids = []
        for chain_id, chain in enumerate(chains):
            served = _resume_chain(
                chain, completed, journaled_infeasible, cache,
                warm_start,
            )
            if served is not None:
                outcomes[chain_id] = _ChainOutcome(
                    STATUS_SKIPPED, results=served
                )
            else:
                pending_ids.append(chain_id)
        if pending_ids:
            if jobs == 1 or len(pending_ids) <= 1:
                _serial_outcomes(
                    chains, pending_ids, indices, warm_start,
                    retries, timeout, strict, log, outcomes,
                )
            else:
                _parallel_outcomes(
                    chains, pending_ids, indices, warm_start,
                    retries, timeout, strict, log, jobs, env,
                    outcomes,
                )
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    reports: Dict[GridPoint, RunReport] = {}
    statuses: Dict[GridPoint, str] = {}
    failures: Dict[GridPoint, SweepError] = {}
    infeasible: Dict[GridPoint, InfeasiblePoint] = {}
    for chain, outcome in zip(chains, outcomes):
        assert outcome is not None
        if outcome.status in (STATUS_OK, STATUS_SKIPPED):
            for point, (_, document) in zip(chain, outcome.results):
                if _is_infeasible_document(document):
                    verdict = failure_from_dict(
                        document[_INFEASIBLE_KEY]
                    )
                    if not isinstance(verdict, InfeasiblePoint):
                        verdict = InfeasiblePoint(
                            str(verdict), {}, point
                        )
                    infeasible[point] = verdict
                    statuses[point] = STATUS_INFEASIBLE
                else:
                    reports[point] = report_from_dict(document)
                    statuses[point] = outcome.status
        else:
            for point in chain:
                statuses[point] = outcome.status
                assert outcome.error is not None
                failures[point] = outcome.error
    ordered = list(dict.fromkeys(points))
    result = SweepResult(
        ordered, reports, statuses, failures, infeasible
    )
    if strict:
        result.raise_if_failed()
    return result
