"""Persistent worker pools: reuse sweep workers across requests.

:func:`repro.runner.parallel.run_grid` spins a fresh process pool per
sweep -- the right call for a batch job, but a long-lived service
(:mod:`repro.serve`) would pay pool startup and cold per-process
memos on every request.  This module factors the pool lifecycle out
of the sweep engine into two interchangeable wrappers:

* :class:`WorkerPool` -- a :class:`~concurrent.futures.\
  ProcessPoolExecutor` that survives worker crashes: a
  ``BrokenProcessPool`` (or a submit on a broken pool) triggers
  :meth:`WorkerPool.respawn`, which kills the wedged workers
  (reusing the sweep engine's
  :func:`~repro.runner.parallel._kill_pool_workers` discipline --
  kill *before* shutdown, which drops the process references) and
  builds a fresh pool with the same environment overrides.  The
  ``generation`` counter records every respawn.
* :class:`InlineWorkerPool` -- the same interface over a
  single-thread executor running jobs in the parent process.  Test
  harnesses use it for determinism (monkeypatched state is visible,
  no fork), and ``serial=True`` tells job functions to take the
  sweep engine's serial fault-injection paths (``exit`` raises
  :class:`~repro.runner.faults.InjectedWorkerExit` instead of
  killing the process).

Both expose ``submit`` / ``respawn`` / ``close`` plus ``serial``,
``jobs``, ``generation`` and ``env`` -- the hooks
:class:`repro.serve.app.ServeApp` multiplexes requests onto.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Optional, Union

from repro.runner.faults import SweepConfigError


def _pool_context():
    """The sweep engine's process start-method (fork when available)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )


class WorkerPool:
    """A crash-surviving, reusable process pool for request serving.

    Args:
        jobs: Worker process count (>= 1).
        env: Environment overrides replayed into every worker at
            (re)spawn via the sweep engine's ``_worker_init`` --
            cache location, fault-injection spec, and so on.
    """

    #: Jobs run in worker processes, not the parent.
    serial = False

    def __init__(
        self, jobs: int, env: Optional[Dict[str, str]] = None
    ) -> None:
        if jobs < 1:
            raise SweepConfigError(
                f"pool jobs must be >= 1, got {jobs}"
            )
        self.jobs = jobs
        self.env = dict(env or {})
        self.generation = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    def _spawn(self) -> ProcessPoolExecutor:
        from repro.runner.parallel import _worker_init

        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=_pool_context(),
            initializer=_worker_init,
            initargs=(self.env,),
        )

    def _ensure(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = self._spawn()
        return self._pool

    def submit(
        self, fn: Callable[..., Any], *args: Any
    ) -> Future:
        """Submit one job, respawning first if the pool is broken."""
        try:
            return self._ensure().submit(fn, *args)
        except BrokenProcessPool:
            self.respawn()
            return self._ensure().submit(fn, *args)

    def respawn(self) -> None:
        """Kill the current workers and start a fresh pool.

        Safe to call on a healthy pool (a no-op for queued work would
        lose it, so the serving layer only calls this after a crash
        surfaced -- every in-flight future on the dead pool has
        already raised ``BrokenProcessPool``).
        """
        from repro.runner.parallel import _kill_pool_workers

        if self._pool is not None:
            _kill_pool_workers(self._pool)
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.generation += 1

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight jobs."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None


class InlineWorkerPool:
    """The :class:`WorkerPool` interface, executed in-process.

    Jobs run one at a time on a single worker thread (so the event
    loop is never blocked, and concurrent requests with different
    scoped environments never race on ``os.environ``).  Monkeypatched
    module state -- shrunken architectures, counting hooks -- stays
    visible to the jobs, which is what deterministic serving tests
    need.
    """

    #: Jobs run in the parent process: fault injection takes its
    #: serial (cooperative) paths.
    serial = True
    jobs = 0

    def __init__(
        self, env: Optional[Dict[str, str]] = None
    ) -> None:
        self.env = dict(env or {})
        self.generation = 0
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=1)
        return self._pool

    def submit(
        self, fn: Callable[..., Any], *args: Any
    ) -> Future:
        """Run one job on the single worker thread."""
        return self._ensure().submit(fn, *args)

    def respawn(self) -> None:
        """Replace the worker thread (parity with the process pool)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.generation += 1

    def close(self) -> None:
        """Shut the worker thread down."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_pool(
    jobs: int, env: Optional[Dict[str, str]] = None
) -> Union[WorkerPool, InlineWorkerPool]:
    """A pool for ``jobs`` workers; ``0`` selects the inline pool."""
    if jobs == 0:
        return InlineWorkerPool(env)
    return WorkerPool(jobs, env)
