"""Planning-as-a-service: the asyncio scheduling server.

``repro serve`` turns the sweep engine into a long-lived service so
repeat planning questions stop paying process startup, cold
in-process memos and disk-cache traversal.  The layers, outermost
first:

* :mod:`repro.serve.transport` -- stdlib-asyncio HTTP (``POST
  /v1``, ``GET /stats``, ``GET /healthz``) and a newline-delimited
  JSON stdio mode for deterministic test harnesses.
* :mod:`repro.serve.app` -- :class:`ServeApp`: admission control
  (deadline -> deterministic search-unit budget, load shedding by
  budget degradation), the coalescing LRU front, typed error
  responses, pool respawn on worker crashes, journaling.
* :mod:`repro.serve.lru` / :mod:`repro.serve.coalesce` -- the
  code-salt-keyed response-body cache and the in-flight request
  table that lets N identical concurrent requests share one search.
* :mod:`repro.serve.protocol` -- request/response schemas plus the
  execution + rendering helpers *shared with the CLI*, which is what
  makes served plans byte-identical to cold CLI plans.
* :mod:`repro.serve.journal` -- the append-only JSONL response
  journal CI uploads as an artifact (fsynced per line, so a killed
  replica's journal replays cleanly).

Fleet mode stacks three more pieces on top (``repro fleet``,
``plan --fleet``):

* :mod:`repro.serve.fleet` -- :class:`FleetSupervisor`: K replica
  subprocesses over one shared plan cache, health-probed, restarted
  with seeded backoff on crash or wedge.
* :mod:`repro.serve.router` -- rendezvous-hash routing of request
  fingerprints to replicas, so PR 7 coalescing keeps concentrating
  per-point across the whole fleet.
* :func:`repro.serve.client.fleet_call` -- the failover client:
  walks the fingerprint's deterministic preference order with
  per-attempt deadlines; typed
  :class:`~repro.runner.faults.FleetUnavailable` when all fail.

Execution happens on the reusable pools of
:mod:`repro.runner.pool`; everything a response contains --
provenance, typed failures, Table-2 infeasibility diagnoses --
reuses the PR 3-6 primitives unchanged.
"""

from repro.serve.app import ServeApp
from repro.serve.client import fleet_call, remote_call
from repro.serve.coalesce import Coalescer
from repro.serve.fleet import FleetSupervisor, ReplicaProcess
from repro.serve.journal import ServeJournal
from repro.serve.lru import SaltedLRU
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ServeProtocolError,
    ServeRequest,
    canonical_body,
    deadline_units,
    effective_budget,
    error_response,
    execute_request,
    parse_request,
    request_fingerprint,
)
from repro.serve.router import (
    parse_fleet,
    preference_order,
    route,
)
from repro.serve.transport import (
    serve_http,
    serve_stdio,
    start_http_server,
)

__all__ = [
    "PROTOCOL_VERSION",
    "Coalescer",
    "FleetSupervisor",
    "ReplicaProcess",
    "SaltedLRU",
    "ServeApp",
    "ServeJournal",
    "ServeProtocolError",
    "ServeRequest",
    "canonical_body",
    "deadline_units",
    "effective_budget",
    "error_response",
    "execute_request",
    "fleet_call",
    "parse_fleet",
    "parse_request",
    "preference_order",
    "remote_call",
    "request_fingerprint",
    "route",
    "serve_http",
    "serve_stdio",
    "start_http_server",
]
