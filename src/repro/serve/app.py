"""The serving application: coalescing LRU over a worker pool.

:class:`ServeApp` is the transport-independent core of ``repro
serve``.  Every request takes the same path::

    parse -> admission (deadline -> units, pressure shedding)
          -> LRU lookup -> coalesce -> worker pool -> response body

and every path ends in a *canonical body* produced by the shared
:mod:`repro.serve.protocol` builders -- the same functions the CLI's
local mode uses, which is what the serving differential tests lean
on.

Design points:

* **Identity excludes the correlation id.**  Bodies are computed,
  cached and coalesced for the id-less request; the client's ``id``
  is stamped into the envelope afterwards (a canonical-JSON
  round-trip, byte-stable).  Two clients asking the same question
  share one search and one body.
* **Admission is where time dies.**  A ``deadline_s`` is folded to a
  deterministic search-unit budget before execution (PR 5
  ``UNITS_PER_SECOND``); under queue pressure (too many in-flight
  searches) the budget is tightened to the shed budget instead of
  queueing unboundedly.  Behind the shedding ladder sits *bounded
  admission* (``REPRO_SERVE_QUEUE``): when even shed-budget
  searches exceed the bound, new searches are rejected with a typed
  :class:`~repro.runner.faults.ServerOverloaded` body carrying a
  deterministic ``retry_after_ms`` hint -- counted separately from
  fault-path errors, journaled as ``overloaded``, and never cached.  The *effective* budget is reported in the
  response's ``budget`` field and keys the LRU/coalescing
  fingerprint, so a shed answer is byte-identical to an explicit
  request at that budget and can never be served as a full-budget
  one; shedding itself is visible in the ``stats`` counters and the
  journal.
* **Typed errors, never hangs.**  Worker crashes
  (``BrokenProcessPool`` or the serial-mode
  :class:`~repro.runner.faults.InjectedWorkerExit`) respawn the pool
  and return a structured :class:`~repro.runner.faults.WorkerCrash`
  response; injected hangs map to
  :class:`~repro.runner.faults.ChainTimeout`; an optional wall-clock
  ``REPRO_SERVE_TIMEOUT`` bounds worker-mode requests the same way.
  Error bodies resolve coalesced followers but are never cached.
* **Retries advance the fault clock.**  A per-fingerprint attempt
  counter feeds the ``REPRO_FAULTS`` ``attempt=`` matchers, so a
  client retry of a crashed request runs as attempt 1 -- a
  ``crash:attempt=0`` rule fires exactly once and the retry
  succeeds, matching the sweep engine's retry semantics.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.runner.cache import code_salt
from repro.runner.faults import (
    ChainTimeout,
    InjectedHang,
    InjectedWorkerExit,
    PointFailure,
    ServerOverloaded,
    SweepError,
    WorkerCrash,
    active_plan,
    replica_context,
)
from repro.serve.coalesce import Coalescer
from repro.serve.journal import ServeJournal
from repro.serve.lru import SaltedLRU
from repro.serve.protocol import (
    ServeProtocolError,
    ServeRequest,
    assemble_sweep_result,
    canonical_body,
    error_response,
    execute_chain,
    execute_validate,
    parse_request,
    plan_response,
    request_fingerprint,
    sweep_chain_layout,
    sweep_response,
    validate_response,
)
from repro.settings import env_float, env_int

ENV_SERVE_LRU = "REPRO_SERVE_LRU"
ENV_SERVE_PRESSURE = "REPRO_SERVE_PRESSURE"
ENV_SERVE_SHED_BUDGET = "REPRO_SERVE_SHED_BUDGET"
ENV_SERVE_TIMEOUT = "REPRO_SERVE_TIMEOUT"
ENV_SERVE_QUEUE = "REPRO_SERVE_QUEUE"
ENV_SERVE_RETRY_MS = "REPRO_SERVE_RETRY_MS"

#: Default LRU capacity (entries).
DEFAULT_LRU_ENTRIES = 256
#: Default in-flight-search threshold that triggers shedding.
DEFAULT_PRESSURE = 8
#: Default degraded search-unit budget applied while shedding.
DEFAULT_SHED_BUDGET = 4096
#: Default base of the deterministic ``retry_after_ms`` hint.
DEFAULT_RETRY_MS = 100
#: Overshoot factor cap in the ``retry_after_ms`` hint, so the
#: hint stays bounded however deep the storm.
MAX_RETRY_FACTOR = 64


def resolve_lru_entries(capacity: Optional[int] = None) -> int:
    """LRU capacity: argument, else ``REPRO_SERVE_LRU``, else 256."""
    if capacity is not None:
        return capacity
    value = env_int(ENV_SERVE_LRU, "an entry count", minimum=0)
    return DEFAULT_LRU_ENTRIES if value is None else value


def resolve_pressure(pressure: Optional[int] = None) -> int:
    """Shedding threshold: in-flight searches at which budgets
    tighten (``REPRO_SERVE_PRESSURE``; ``0`` disables shedding)."""
    if pressure is not None:
        return pressure
    value = env_int(
        ENV_SERVE_PRESSURE, "an in-flight search count", minimum=0
    )
    return DEFAULT_PRESSURE if value is None else value


def resolve_shed_budget(budget: Optional[int] = None) -> int:
    """The degraded unit budget applied under pressure
    (``REPRO_SERVE_SHED_BUDGET``)."""
    if budget is not None:
        return budget
    value = env_int(
        ENV_SERVE_SHED_BUDGET, "a search unit budget", minimum=1
    )
    return DEFAULT_SHED_BUDGET if value is None else value


def resolve_queue_bound(
    bound: Optional[int] = None,
) -> Optional[int]:
    """The bounded-admission limit: in-flight searches at which new
    searches are rejected with a typed ``ServerOverloaded`` body
    (``REPRO_SERVE_QUEUE``; unset or ``0`` means unbounded -- the
    historical behavior, byte-identical to a tree without it)."""
    if bound is None:
        bound = env_int(
            ENV_SERVE_QUEUE, "an in-flight search bound", minimum=0
        )
    if bound is None or bound < 1:
        return None
    return bound


def resolve_retry_ms(base: Optional[int] = None) -> int:
    """Base milliseconds of the deterministic ``retry_after_ms``
    hint (``REPRO_SERVE_RETRY_MS``; default 100)."""
    if base is not None:
        return base
    value = env_int(
        ENV_SERVE_RETRY_MS, "a millisecond count", minimum=1
    )
    return DEFAULT_RETRY_MS if value is None else value


def resolve_serve_timeout(
    timeout: Optional[float] = None,
) -> Optional[float]:
    """Optional wall-clock bound on worker-mode requests
    (``REPRO_SERVE_TIMEOUT`` seconds; unset/<=0 disables)."""
    if timeout is None:
        timeout = env_float(
            ENV_SERVE_TIMEOUT, "a number of seconds"
        )
    if timeout is not None and timeout <= 0:
        return None
    return timeout


class ServeApp:
    """The planning service core, independent of transport.

    Args:
        pool: A :class:`~repro.runner.pool.WorkerPool` /
            :class:`~repro.runner.pool.InlineWorkerPool` to execute
            on (required -- the CLI builds one via
            :func:`repro.runner.pool.make_pool`).
        lru: Response-body cache; defaults to a fresh
            :class:`SaltedLRU` sized by ``REPRO_SERVE_LRU``.
        journal: Optional :class:`ServeJournal` recording every
            response.
        pressure: Shedding threshold override (see
            :func:`resolve_pressure`).
        shed_budget: Degraded budget override (see
            :func:`resolve_shed_budget`).
        timeout: Wall-clock request bound override (worker pools
            only; see :func:`resolve_serve_timeout`).
        queue: Bounded-admission override (see
            :func:`resolve_queue_bound`; ``0`` disables).
        retry_ms: Base of the ``retry_after_ms`` hint (see
            :func:`resolve_retry_ms`).
    """

    def __init__(
        self,
        pool: Any,
        lru: Optional[SaltedLRU] = None,
        journal: Optional[ServeJournal] = None,
        pressure: Optional[int] = None,
        shed_budget: Optional[int] = None,
        timeout: Optional[float] = None,
        queue: Optional[int] = None,
        retry_ms: Optional[int] = None,
    ) -> None:
        self.pool = pool
        self.lru = (
            lru if lru is not None
            else SaltedLRU(resolve_lru_entries())
        )
        self.journal = journal
        self.coalescer = Coalescer()
        self.pressure = resolve_pressure(pressure)
        self.shed_budget = resolve_shed_budget(shed_budget)
        self.timeout = resolve_serve_timeout(timeout)
        self.queue = resolve_queue_bound(queue)
        self.retry_ms = resolve_retry_ms(retry_ms)
        self.requests = 0
        self.searches = 0
        self.errors = 0
        self.shed = 0
        self.overloaded = 0
        self.learn_consulted = 0
        self.learn_predicted = 0
        self.learn_saved = 0
        self._attempts: Dict[str, int] = {}
        self._inflight_searches = 0
        self._inflight_high_water = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    async def handle(
        self, document: Union[str, bytes, Mapping[str, Any]]
    ) -> str:
        """Serve one request; always returns a canonical body.

        Accepts a JSON string/bytes or an already-parsed object.
        Every failure mode -- malformed JSON, schema violations,
        worker crashes, timeouts -- produces a structured error
        body; this coroutine never raises for request-shaped input.

        Replica-level fault rules (``replica-kill`` /
        ``replica-hang``) are consulted here, at the request
        boundary, against the 0-based served-request count -- the
        deterministic clock the fleet battery kills a replica on.
        """
        plan = active_plan()
        if plan:
            plan.fire_replica(**replica_context(self.requests))
        self.requests += 1
        try:
            if isinstance(document, (str, bytes)):
                try:
                    document = json.loads(document)
                except json.JSONDecodeError as error:
                    raise ServeProtocolError(
                        f"request is not valid JSON: {error}"
                    ) from None
            request = parse_request(document)
        except ServeProtocolError as error:
            self.errors += 1
            request_id = None
            if isinstance(document, Mapping):
                raw_id = document.get("id")
                if isinstance(raw_id, (str, int)):
                    request_id = str(raw_id)
            self._journal("?", "error", status="error")
            return canonical_body(
                error_response(error, request_id=request_id)
            )
        if request.op == "stats":
            body = canonical_body(self.stats_response(request))
            self._journal("stats", "stats", status="ok")
            return body
        return await self._serve(request)

    async def _serve(self, request: ServeRequest) -> str:
        request_id = request.request_id
        anonymous = dataclasses.replace(request, request_id=None)
        budget, shed = self._admission_budget(anonymous)
        fingerprint = request_fingerprint(anonymous, budget)
        cached = self.lru.get(fingerprint)
        if cached is not None:
            self._journal(
                request.op, "lru", fingerprint=fingerprint,
            )
            return _stamp_id(cached, request_id)
        # Genuine cold miss: consult the learned predictor.  A
        # prediction lets the search spend fewer units for the same
        # near-optimal plan, so the effective budget is tightened and
        # -- like shedding -- becomes part of the response identity:
        # the body is byte-identical to an explicit request at the
        # tightened budget with REPRO_LEARN on.
        budget, saved, learned = self._learn_budget(
            anonymous, budget
        )
        if saved:
            fingerprint = request_fingerprint(anonymous, budget)
            cached = self.lru.get(fingerprint)
            if cached is not None:
                self._journal(
                    request.op, "lru", fingerprint=fingerprint,
                    learned=learned, saved=saved,
                )
                return _stamp_id(cached, request_id)
        leader, flight = self.coalescer.admit(fingerprint)
        if not leader:
            body = await flight
            self._journal(
                request.op, "coalesced", fingerprint=fingerprint,
            )
            return _stamp_id(body, request_id)
        if (
            self.queue is not None
            and self._inflight_searches >= self.queue
        ):
            # Bounded admission: the shedding ladder above already
            # tightened the budget, but even shed searches pile up
            # under a storm -- beyond the bound, reject with a
            # typed, never-cached overload body (resolving the
            # flight so coalesced followers share the rejection
            # rather than hanging).
            self.overloaded += 1
            body = canonical_body(error_response(
                ServerOverloaded(
                    self._inflight_searches, self.queue,
                    self._retry_after_ms(),
                ),
                request.op,
                status="overloaded",
            ))
            self.coalescer.resolve(fingerprint, body)
            self._journal(
                request.op, "overloaded",
                fingerprint=fingerprint, status="overloaded",
            )
            return _stamp_id(body, request_id)
        self._inflight_searches += 1
        self._inflight_high_water = max(
            self._inflight_high_water, self._inflight_searches
        )
        try:
            body, ok = await self._execute(
                anonymous, budget, shed, fingerprint
            )
        except Exception as error:  # pragma: no cover - last resort
            # Anything the typed paths below missed still resolves
            # the flight: followers must never hang.
            body, ok = canonical_body(
                error_response(error, anonymous.op)
            ), False
        finally:
            self._inflight_searches -= 1
        if ok:
            self.lru.put(fingerprint, body)
        else:
            self.errors += 1
        self.coalescer.resolve(fingerprint, body)
        status = json.loads(body).get("status")
        self._journal(
            request.op,
            "search" if ok else "error",
            fingerprint=fingerprint,
            status=status,
            provenance=json.loads(body).get("provenance"),
            shed=shed,
            learned=learned,
            saved=saved,
        )
        return _stamp_id(body, request_id)

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    def _admission_budget(
        self, request: ServeRequest
    ) -> Tuple[Optional[int], bool]:
        """The effective budget after load shedding.

        While :attr:`pressure` or more searches are in flight, the
        request budget is tightened to :attr:`shed_budget` (an
        already-tighter budget is kept).  The shed budget is part of
        the request fingerprint, so degraded answers are cached and
        coalesced under their own identity.
        """
        budget = request.budget
        if self.pressure < 1:
            return budget, False
        if self._inflight_searches < self.pressure:
            return budget, False
        if budget is not None and budget <= self.shed_budget:
            return budget, False
        self.shed += 1
        return self.shed_budget, True

    def _retry_after_ms(self) -> int:
        """The deterministic overload backoff hint.

        Proportional to how far past the bound the server is --
        ``base * (overshoot + 1)``, capped -- so identical server
        states produce identical hints (reruns and differential
        tests see the same bytes) and deeper storms push clients
        further away.
        """
        overshoot = self._inflight_searches - (self.queue or 0)
        return self.retry_ms * min(overshoot + 1, MAX_RETRY_FACTOR)

    def _learn_budget(
        self, request: ServeRequest, budget: Optional[int]
    ) -> Tuple[Optional[int], int, bool]:
        """Tighten a cold miss's budget when a prediction exists.

        Returns ``(effective budget, units saved, predicted)``.  Only
        budgeted ``plan`` requests tighten (halved, floor 1): the
        prediction sits in the search's incumbent pool uncharged, so
        the tightened search still returns a plan at least as good as
        the prediction.  Unbudgeted requests run complete searches --
        the predictor can't save units there, so only the counters
        move.  With ``REPRO_LEARN`` off this never consults anything
        and the serve path is byte-identical to pre-learn behavior.
        """
        if request.op != "plan":
            return budget, 0, False
        from repro.learn import learn_enabled

        if not learn_enabled():
            return budget, 0, False
        self.learn_consulted += 1
        if not self._learn_predictions(request):
            return budget, 0, False
        self.learn_predicted += 1
        if budget is None or budget <= 1:
            return budget, 0, True
        tightened = max(1, budget // 2)
        saved = budget - tightened
        self.learn_saved += saved
        return tightened, saved, True

    def _learn_predictions(
        self, request: ServeRequest
    ) -> Tuple[Tuple[int, ...], ...]:
        """The model's predictions for a plan request's point.

        The workers re-derive the same predictions from the shared
        cache when they execute the (tightened) request -- this
        lookup only decides admission, it is never threaded into the
        search by hand.
        """
        from repro.arch.spec import named_architecture
        from repro.learn import predictions_for

        point = request.points[0]
        try:
            return predictions_for(
                point.workload(), named_architecture(point.arch)
            )
        except (KeyError, ValueError):
            # Unknown model/arch names fail later with a typed error
            # body; admission just declines to tighten.
            return ()

    # ------------------------------------------------------------------
    # Execution on the worker pool
    # ------------------------------------------------------------------
    async def _execute(
        self,
        request: ServeRequest,
        budget: Optional[int],
        shed: bool,
        fingerprint: str,
    ) -> Tuple[str, bool]:
        """Run one admitted request; returns ``(body, cacheable)``."""
        attempt = self._attempts.get(fingerprint, 0)
        self._attempts[fingerprint] = attempt + 1
        self.searches += 1
        extra_env = (
            dict(self.pool.env) if self.pool.serial else None
        )
        try:
            if request.op == "plan":
                results = await self._await_chains(
                    [list(request.points)], [[0]], False,
                    request, budget, attempt, extra_env,
                )
                document = plan_response(
                    request, results[0], budget=budget
                )
            elif request.op == "sweep":
                chains, indices = sweep_chain_layout(
                    request.points
                )
                chain_results = await self._await_chains(
                    chains, indices, request.warm_start,
                    request, budget, attempt, extra_env,
                )
                result = assemble_sweep_result(
                    request.points, chains, chain_results
                )
                document = sweep_response(
                    request, result, budget=budget
                )
            else:
                future = self.pool.submit(
                    execute_validate, request.points[0], budget,
                    request.no_fallback, extra_env,
                )
                audit_doc, report_doc = await self._bounded(
                    asyncio.wrap_future(future), attempt
                )
                document = validate_response(
                    request, audit_doc, report_doc, budget=budget,
                )
        except SweepError as error:
            return canonical_body(
                error_response(error, request.op)
            ), False
        except Exception as error:
            return canonical_body(
                error_response(error, request.op)
            ), False
        return canonical_body(document), True

    async def _await_chains(
        self,
        chains: List[List[Any]],
        indices: List[List[int]],
        warm_start: bool,
        request: ServeRequest,
        budget: Optional[int],
        attempt: int,
        extra_env: Optional[Dict[str, str]],
    ) -> List[List[Tuple[Optional[str], Dict[str, Any]]]]:
        """Fan chains onto the pool; re-raise the first chain's
        failure (in chain order) as its typed taxonomy member."""
        futures = [
            asyncio.wrap_future(self.pool.submit(
                execute_chain, chain, warm_start, budget,
                request.no_fallback, chain_id, indices[chain_id],
                attempt, self.pool.serial, extra_env,
            ))
            for chain_id, chain in enumerate(chains)
        ]
        outcomes = await self._bounded(
            asyncio.gather(*futures, return_exceptions=True),
            attempt,
        )
        for chain_id, outcome in enumerate(outcomes):
            if isinstance(outcome, BaseException):
                raise self._typed_failure(
                    outcome, chains[chain_id], chain_id, attempt
                )
        return list(outcomes)

    async def _bounded(
        self, awaitable: Any, attempt: int
    ) -> Any:
        """Apply the wall-clock bound (worker pools only).

        A timeout kills and respawns the pool -- the sweep engine's
        wedged-worker discipline -- and surfaces as a typed
        :class:`ChainTimeout`, so a hung worker can never hang a
        client.
        """
        if self.timeout is None or self.pool.serial:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, self.timeout)
        except asyncio.TimeoutError:
            self.pool.respawn()
            raise ChainTimeout(0, self.timeout, attempt) from None

    def _typed_failure(
        self,
        error: BaseException,
        chain: List[Any],
        chain_id: int,
        attempt: int,
    ) -> SweepError:
        """Map one chain failure to the sweep-engine taxonomy,
        respawning the pool when the worker died."""
        if isinstance(error, BrokenProcessPool):
            self.pool.respawn()
            return WorkerCrash(
                chain_id, attempt, "worker process died"
            )
        if isinstance(error, InjectedWorkerExit):
            self.pool.respawn()
            return WorkerCrash(chain_id, attempt, str(error))
        if isinstance(error, InjectedHang):
            return ChainTimeout(
                chain_id, self.timeout or 0.0, attempt
            )
        if isinstance(error, SweepError):
            return error
        return PointFailure(
            chain[0], chain_id, attempt,
            type(error).__name__, str(error),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats_response(
        self, request: Optional[ServeRequest] = None
    ) -> Dict[str, Any]:
        """The ``stats`` op response document (live counters)."""
        from repro.serve.protocol import PROTOCOL_VERSION

        document: Dict[str, Any] = {
            "v": PROTOCOL_VERSION,
            "op": "stats",
            "ok": True,
            "status": "ok",
            "salt": code_salt(),
            "requests": self.requests,
            "searches": self.searches,
            "errors": self.errors,
            "shed": self.shed,
            "lru": self.lru.stats(),
            "coalesce": self.coalescer.stats(),
            "pool": {
                "jobs": self.pool.jobs,
                "serial": self.pool.serial,
                "generation": self.pool.generation,
            },
        }
        # Conditional block: stats bodies keep their pre-queue bytes
        # unless bounded admission is actually configured.
        if self.queue is not None:
            document["queue"] = {
                "bound": self.queue,
                "overloaded": self.overloaded,
                "high_water": self._inflight_high_water,
            }
        # Conditional block: stats bodies keep their pre-learn bytes
        # unless the predictor is actually switched on.
        from repro.learn import learn_enabled

        if learn_enabled():
            document["learn"] = {
                "consulted": self.learn_consulted,
                "predicted": self.learn_predicted,
                "saved": self.learn_saved,
            }
        if request is not None and request.request_id is not None:
            document["id"] = request.request_id
        return document

    def health_response(self) -> Dict[str, Any]:
        """The ``GET /healthz`` document -- the supervisor's probe
        payload.

        Liveness plus the vitals the fleet supervisor records with
        every probe: pool generation (how many times workers were
        respawned), in-flight search count, the LRU's
        hit/miss/eviction/invalidation counters, and the shared plan
        cache's disk pressure (bytes on disk against the configured
        budget, and whether writes are in brownout).  Rendered
        through :func:`canonical_body` like every other response, so
        the payload is canonical-JSON stable: same state, same
        bytes.
        """
        from repro.serve.protocol import PROTOCOL_VERSION

        return {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "salt": code_salt(),
            "generation": self.pool.generation,
            "inflight": self._inflight_searches,
            "requests": self.requests,
            "lru": self.lru.stats(),
            "cache": self._cache_health(),
        }

    @staticmethod
    def _cache_health() -> Dict[str, Any]:
        """Disk usage + brownout state of the shared plan cache.

        Resolved from the serving process's environment -- the same
        view the worker processes inherit -- so the supervisor's
        probes see the disk pressure its replicas are actually
        writing under.
        """
        from repro.runner.cache import default_cache

        cache = default_cache()
        if cache is None:
            return {"enabled": False}
        stats = cache.stats()
        return {
            "enabled": True,
            "bytes": stats["bytes"],
            "entries": stats["entries"],
            "max_bytes": stats["max_bytes"],
            "quarantined": stats["quarantined"],
            "brownout": stats["brownout"],
        }

    def close(self) -> None:
        """Shut the worker pool down."""
        self.pool.close()

    def _journal(
        self,
        op: str,
        source: str,
        fingerprint: Optional[str] = None,
        status: Optional[str] = None,
        provenance: Optional[str] = None,
        shed: bool = False,
        learned: bool = False,
        saved: int = 0,
    ) -> None:
        if self.journal is None:
            return
        self.journal.record(
            op, source,
            fingerprint=fingerprint,
            status=status,
            provenance=provenance,
            generation=self.pool.generation,
            shed=shed,
            learned=learned,
            saved=saved,
        )


def _stamp_id(body: str, request_id: Optional[str]) -> str:
    """Stamp a correlation id into a cached/shared canonical body.

    Bodies are computed for the id-less request (identity excludes
    the id); a canonical-JSON round-trip is byte-stable, so stamping
    never perturbs the rest of the document.
    """
    if request_id is None:
        return body
    document = json.loads(body)
    document["id"] = request_id
    return canonical_body(document)
