"""Per-replica circuit breakers for the fleet failover client.

Without a breaker the failover client re-probes a dead replica on
every request whose rendezvous preference ranks it first -- each
probe paying a connect timeout before falling through to a healthy
survivor.  The breaker remembers: after ``REPRO_FLEET_BREAKER``
consecutive :class:`~repro.runner.faults.ReplicaUnreachable`
failures an endpoint's circuit *opens* and routing demotes it below
every closed endpoint (see
:func:`repro.serve.client.fleet_call`), so steady-state traffic
stops paying the dead replica's timeout entirely.

State machine (per endpoint)::

    closed --K consecutive failures--> open
    open   --cooldown elapsed-------> half-open (one probe admitted)
    half-open --probe succeeds------> closed
    half-open --probe fails---------> open (longer cooldown)

Cooldowns are *seeded*: the wait before the n-th half-open probe is
``backoff_seconds(f"breaker:{endpoint}", n, base)`` -- the PR 3
deterministic exponential backoff with SHA-256 jitter -- so a given
endpoint re-probes on the same schedule in every run, and a fleet
of clients does not thundering-herd a replica the moment it
restarts.  When the supervisor restarts the replica, the next probe
succeeds and the breaker re-closes; until then every probe re-opens
the circuit with a longer cooldown.

Environment knobs (see :mod:`repro.settings`):
``REPRO_FLEET_BREAKER`` (consecutive failures to open; 0 disables;
default 3) and ``REPRO_FLEET_BREAKER_COOLDOWN`` (base seconds of
the seeded cooldown; default 1.0).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.runner.faults import SweepConfigError, backoff_seconds
from repro.settings import env_float, env_int

ENV_FLEET_BREAKER = "REPRO_FLEET_BREAKER"
ENV_FLEET_BREAKER_COOLDOWN = "REPRO_FLEET_BREAKER_COOLDOWN"

#: Default consecutive-failure threshold that opens a breaker.
DEFAULT_BREAKER_THRESHOLD = 3
#: Default base seconds of the seeded half-open cooldown.
DEFAULT_BREAKER_COOLDOWN = 1.0


def resolve_breaker_threshold(
    threshold: Optional[int] = None,
) -> int:
    """Failures to open: argument, else ``REPRO_FLEET_BREAKER``,
    else 3.  ``0`` disables the breaker entirely."""
    if threshold is None:
        threshold = env_int(
            ENV_FLEET_BREAKER,
            "a consecutive failure count", minimum=0,
        )
    if threshold is None:
        return DEFAULT_BREAKER_THRESHOLD
    return threshold


def resolve_breaker_cooldown(
    cooldown: Optional[float] = None,
) -> float:
    """Base cooldown seconds: argument, else
    ``REPRO_FLEET_BREAKER_COOLDOWN``, else 1.0."""
    if cooldown is None:
        cooldown = env_float(
            ENV_FLEET_BREAKER_COOLDOWN, "a number of seconds"
        )
    if cooldown is None:
        return DEFAULT_BREAKER_COOLDOWN
    if cooldown <= 0:
        raise SweepConfigError(
            f"breaker cooldown must be > 0 seconds, got {cooldown}"
        )
    return cooldown


class _Circuit:
    """Mutable per-endpoint breaker state."""

    __slots__ = ("failures", "opens", "opened_at")

    def __init__(self) -> None:
        self.failures = 0      # consecutive unreachable attempts
        self.opens = 0         # times this circuit has opened
        self.opened_at: Optional[float] = None


class BreakerRegistry:
    """Circuit breakers for a set of endpoints.

    One registry is shared per client process (see
    :func:`fleet_breaker`); tests construct their own with a fake
    ``clock`` for deterministic time.

    Args:
        threshold: Consecutive failures that open a circuit
            (default: ``REPRO_FLEET_BREAKER``); ``0`` disables.
        cooldown: Base seconds of the seeded half-open cooldown
            (default: ``REPRO_FLEET_BREAKER_COOLDOWN``).
        clock: Monotonic time source (tests inject a fake).
    """

    def __init__(
        self,
        threshold: Optional[int] = None,
        cooldown: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._threshold = threshold
        self._cooldown = cooldown
        self._clock = clock
        self._circuits: Dict[str, _Circuit] = {}

    def threshold(self) -> int:
        """The effective open threshold (env re-read when unset,
        so tests can toggle the knob between calls)."""
        return resolve_breaker_threshold(self._threshold)

    def available(self, endpoint: str) -> bool:
        """Whether routing should try ``endpoint`` at its normal
        rendezvous rank.

        ``True`` for closed circuits and for open circuits whose
        seeded cooldown has elapsed (the half-open probe).  ``False``
        only while an open circuit is cooling down.
        """
        if self.threshold() < 1:
            return True
        circuit = self._circuits.get(endpoint)
        if circuit is None or circuit.opened_at is None:
            return True
        waited = self._clock() - circuit.opened_at
        return waited >= self._probe_after(endpoint, circuit)

    def state(self, endpoint: str) -> str:
        """``closed`` / ``open`` / ``half-open`` for introspection."""
        circuit = self._circuits.get(endpoint)
        if circuit is None or circuit.opened_at is None:
            return "closed"
        waited = self._clock() - circuit.opened_at
        if waited >= self._probe_after(endpoint, circuit):
            return "half-open"
        return "open"

    def record_failure(self, endpoint: str) -> None:
        """One ``ReplicaUnreachable`` against ``endpoint``.

        The K-th consecutive failure opens the circuit; a failed
        half-open probe re-opens it with a longer (still seeded)
        cooldown.
        """
        threshold = self.threshold()
        if threshold < 1:
            return
        circuit = self._circuits.setdefault(endpoint, _Circuit())
        if circuit.opened_at is not None:
            # The half-open probe failed: re-open, longer cooldown.
            circuit.opens += 1
            circuit.opened_at = self._clock()
            return
        circuit.failures += 1
        if circuit.failures >= threshold:
            circuit.opens += 1
            circuit.opened_at = self._clock()

    def record_success(self, endpoint: str) -> None:
        """A response arrived: close the circuit, reset history."""
        self._circuits.pop(endpoint, None)

    def _probe_after(
        self, endpoint: str, circuit: _Circuit
    ) -> float:
        """Seconds an open circuit waits before its half-open probe:
        the PR 3 seeded exponential backoff keyed by endpoint and
        reopen count, so probe schedules are reproducible."""
        return backoff_seconds(
            f"breaker:{endpoint}",
            circuit.opens - 1,
            resolve_breaker_cooldown(self._cooldown),
        )


_fleet_breaker: Optional[BreakerRegistry] = None


def fleet_breaker() -> BreakerRegistry:
    """The process-wide registry :func:`fleet_call` consults."""
    global _fleet_breaker
    if _fleet_breaker is None:
        _fleet_breaker = BreakerRegistry()
    return _fleet_breaker


def reset_fleet_breaker() -> None:
    """Drop all process-wide breaker state (tests)."""
    global _fleet_breaker
    _fleet_breaker = None
