"""Clients for running planning servers (``plan --remote/--fleet``).

Two layers, both deliberately thin wrappers over :mod:`http.client`:

* :func:`remote_call` -- POST one JSON request to one endpoint,
  return the status code and the canonical body exactly as the
  server sent it.  The CLI prints the body verbatim, so a remote
  plan is byte-identical to what the serving tests compare against
  -- the client never reserializes.
* :func:`fleet_call` -- the failover-aware client: consistent-hash
  the request's fingerprint to a deterministic replica preference
  order (:mod:`repro.serve.router`) and walk it with a per-attempt
  deadline.  A dead port, a wedged replica (attempt deadline
  expires) or a connection dropped mid-response moves on to the next
  survivor; when every replica fails, a typed
  :class:`~repro.runner.faults.FleetUnavailable` carries the
  per-attempt evidence.

Failover retries are byte-safe by construction: the request
*document* is never rewritten between attempts -- in particular a
``deadline_s`` maps to its deterministic search-unit budget
server-side (PR 7), so a retried request's tightened budget produces
the same degraded bytes on whichever replica finally answers.  The
per-attempt deadline is a *network* bound on the client socket, not
part of the request identity.
"""

from __future__ import annotations

import http.client
import json
import socket
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.runner.faults import (
    FleetUnavailable,
    ReplicaUnreachable,
    SweepConfigError,
)
from repro.settings import env_float

ENV_FLEET_ATTEMPT_TIMEOUT = "REPRO_FLEET_ATTEMPT_TIMEOUT"

#: Default per-attempt client deadline (seconds) for failover calls.
DEFAULT_ATTEMPT_TIMEOUT = 30.0


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Parse ``host:port`` (IPv6 in brackets) into ``(host, port)``."""
    text = endpoint.strip()
    if text.startswith("["):
        host, _, rest = text[1:].partition("]")
        port_text = rest.lstrip(":")
    else:
        host, _, port_text = text.rpartition(":")
    if not host or not port_text:
        raise SweepConfigError(
            f"remote endpoint must be host:port, got {endpoint!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise SweepConfigError(
            f"remote endpoint port must be an integer, got "
            f"{port_text!r}"
        ) from None
    if not 0 < port < 65536:
        raise SweepConfigError(
            f"remote endpoint port out of range: {port}"
        )
    return host, port


def remote_call(
    host: str,
    port: int,
    document: Mapping[str, Any],
    timeout: Optional[float] = 60.0,
) -> Tuple[int, str]:
    """POST one request document; returns ``(status, body)``.

    The body comes back exactly as sent by the server (structured
    errors arrive with a non-200 status and an ``ok: false`` body,
    not an exception).

    Raises:
        OSError: When the server is unreachable, the connection is
            dropped mid-response, or ``timeout`` expires (all the
            :mod:`http.client` failure modes are ``OSError``
            subclasses -- refused connections, ``RemoteDisconnected``,
            ``socket.timeout``).
    """
    connection = http.client.HTTPConnection(
        host, port, timeout=timeout
    )
    try:
        connection.request(
            "POST", "/v1",
            body=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    except http.client.HTTPException as error:
        # http.client raises a few non-OSError shapes for torn
        # responses (e.g. BadStatusLine on a mid-write kill); fold
        # them into the one failure family fleet_call retries on.
        raise ConnectionError(
            f"{type(error).__name__}: {error}"
        ) from error
    finally:
        connection.close()


def resolve_attempt_timeout(
    timeout: Optional[float] = None,
) -> float:
    """Per-attempt deadline: argument, else
    ``REPRO_FLEET_ATTEMPT_TIMEOUT``, else 30 seconds."""
    if timeout is None:
        timeout = env_float(
            ENV_FLEET_ATTEMPT_TIMEOUT, "a number of seconds"
        )
    if timeout is None:
        return DEFAULT_ATTEMPT_TIMEOUT
    if timeout <= 0:
        raise SweepConfigError(
            f"fleet attempt timeout must be > 0 seconds, got "
            f"{timeout}"
        )
    return timeout


def fleet_fingerprint(document: Mapping[str, Any]) -> str:
    """The routing fingerprint of one request document.

    The *server's* coalescing/LRU identity (id-less, effective
    budget folded in), computed client-side through the same
    protocol helpers -- so the client's routing choice lands each
    fingerprint on the replica that is already coalescing it.

    A document the protocol rejects still routes (by a stable hash
    of its raw content): the structured 400 must come from a
    replica, not from a client-side crash, and it must come from
    the *same* replica every time the same bad document is sent.
    """
    from repro.runner.cache import stable_hash
    from repro.serve.protocol import (
        ServeProtocolError,
        parse_request,
        request_fingerprint,
    )

    try:
        request = parse_request(dict(document, id=None))
    except (ServeProtocolError, TypeError, ValueError):
        return stable_hash({"malformed": repr(document)})
    return request_fingerprint(request)


def fleet_call(
    endpoints: Sequence[str],
    document: Mapping[str, Any],
    attempt_timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
) -> Tuple[int, str, str]:
    """POST one request to a fleet with consistent-hash failover.

    The request's fingerprint picks a deterministic replica
    preference order; each attempt gets its own wall-clock deadline
    (``attempt_timeout``), and the identical document is re-sent to
    the next replica on any network-level failure.  Responses --
    including structured ``ok: false`` error bodies -- are returned
    from whichever replica first produces one.

    Args:
        endpoints: ``host:port`` strings (see
            :func:`repro.serve.router.parse_fleet`).
        document: The JSON request object, sent verbatim on every
            attempt.
        attempt_timeout: Per-attempt deadline in seconds (default:
            ``REPRO_FLEET_ATTEMPT_TIMEOUT``, else 30).
        max_attempts: Cap on attempts (default: one per replica).

    Returns:
        ``(status, body, endpoint)`` -- the HTTP status, the body
        exactly as the answering replica sent it, and which replica
        answered.

    Raises:
        FleetUnavailable: When every attempt failed at the network
            level; carries ``(endpoint, detail)`` per attempt.
        SweepConfigError: On an empty endpoint list or malformed
            endpoints/timeouts.
    """
    from repro.serve.router import preference_order

    if not endpoints:
        raise SweepConfigError(
            "fleet_call needs at least one endpoint"
        )
    timeout = resolve_attempt_timeout(attempt_timeout)
    order = preference_order(
        fleet_fingerprint(document), endpoints
    )
    if max_attempts is not None:
        order = order[:max_attempts]
    failures: List[Tuple[str, str]] = []
    for attempt, endpoint in enumerate(order):
        host, port = parse_endpoint(endpoint)
        try:
            status, body = remote_call(
                host, port, document, timeout=timeout
            )
        except (OSError, socket.timeout) as error:
            unreachable = ReplicaUnreachable(
                endpoint, attempt,
                f"{type(error).__name__}: {error}",
            )
            failures.append((endpoint, unreachable.detail))
            continue
        return status, body, endpoint
    raise FleetUnavailable(failures)
