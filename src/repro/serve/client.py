"""Clients for running planning servers (``plan --remote/--fleet``).

Two layers, both deliberately thin wrappers over :mod:`http.client`:

* :func:`remote_call` -- POST one JSON request to one endpoint,
  return the status code and the canonical body exactly as the
  server sent it.  The CLI prints the body verbatim, so a remote
  plan is byte-identical to what the serving tests compare against
  -- the client never reserializes.
* :func:`fleet_call` -- the failover-aware client: consistent-hash
  the request's fingerprint to a deterministic replica preference
  order (:mod:`repro.serve.router`) and walk it with a per-attempt
  deadline.  A dead port, a wedged replica (attempt deadline
  expires) or a connection dropped mid-response moves on to the next
  survivor; when every replica fails, a typed
  :class:`~repro.runner.faults.FleetUnavailable` carries the
  per-attempt evidence.

Two resilience layers ride on top of the walk (PR 10):

* **Circuit breakers** (:mod:`repro.serve.breaker`): endpoints whose
  circuit is open are demoted below every closed endpoint in the
  preference order -- healthy replicas stop paying a dead replica's
  connect timeout -- and re-probed on a seeded half-open schedule;
  a successful probe (the supervisor restarted the replica)
  re-closes the circuit.
* **Overload retries**: a replica answering the typed
  ``ServerOverloaded`` rejection (HTTP 503) is retried after its
  deterministic ``retry_after_ms`` hint, at most
  ``REPRO_FLEET_RETRY_BUDGET`` times per call; an exhausted budget
  returns the overload body itself (a typed answer, not a failure).

Failover retries are byte-safe by construction: the request
*document* is never rewritten between attempts -- in particular a
``deadline_s`` maps to its deterministic search-unit budget
server-side (PR 7), so a retried request's tightened budget produces
the same degraded bytes on whichever replica finally answers.  The
per-attempt deadline is a *network* bound on the client socket, not
part of the request identity.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from repro.runner.faults import (
    FleetUnavailable,
    ReplicaUnreachable,
    SweepConfigError,
)
from repro.serve.breaker import BreakerRegistry, fleet_breaker
from repro.settings import env_float, env_int

ENV_FLEET_ATTEMPT_TIMEOUT = "REPRO_FLEET_ATTEMPT_TIMEOUT"
ENV_FLEET_RETRY_BUDGET = "REPRO_FLEET_RETRY_BUDGET"

#: Default per-attempt client deadline (seconds) for failover calls.
DEFAULT_ATTEMPT_TIMEOUT = 30.0
#: Default overload retries per fleet call.
DEFAULT_RETRY_BUDGET = 2
#: Hard ceiling on one honored ``retry_after_ms`` sleep: the hint
#: is advisory, the client's patience is bounded.
MAX_RETRY_AFTER_MS = 2000


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Parse ``host:port`` (IPv6 in brackets) into ``(host, port)``."""
    text = endpoint.strip()
    if text.startswith("["):
        host, _, rest = text[1:].partition("]")
        port_text = rest.lstrip(":")
    else:
        host, _, port_text = text.rpartition(":")
    if not host or not port_text:
        raise SweepConfigError(
            f"remote endpoint must be host:port, got {endpoint!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise SweepConfigError(
            f"remote endpoint port must be an integer, got "
            f"{port_text!r}"
        ) from None
    if not 0 < port < 65536:
        raise SweepConfigError(
            f"remote endpoint port out of range: {port}"
        )
    return host, port


def remote_call(
    host: str,
    port: int,
    document: Mapping[str, Any],
    timeout: Optional[float] = 60.0,
) -> Tuple[int, str]:
    """POST one request document; returns ``(status, body)``.

    The body comes back exactly as sent by the server (structured
    errors arrive with a non-200 status and an ``ok: false`` body,
    not an exception).

    Raises:
        OSError: When the server is unreachable, the connection is
            dropped mid-response, or ``timeout`` expires (all the
            :mod:`http.client` failure modes are ``OSError``
            subclasses -- refused connections, ``RemoteDisconnected``,
            ``socket.timeout``).
    """
    connection = http.client.HTTPConnection(
        host, port, timeout=timeout
    )
    try:
        connection.request(
            "POST", "/v1",
            body=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    except http.client.HTTPException as error:
        # http.client raises a few non-OSError shapes for torn
        # responses (e.g. BadStatusLine on a mid-write kill); fold
        # them into the one failure family fleet_call retries on.
        raise ConnectionError(
            f"{type(error).__name__}: {error}"
        ) from error
    finally:
        connection.close()


def resolve_attempt_timeout(
    timeout: Optional[float] = None,
) -> float:
    """Per-attempt deadline: argument, else
    ``REPRO_FLEET_ATTEMPT_TIMEOUT``, else 30 seconds."""
    if timeout is None:
        timeout = env_float(
            ENV_FLEET_ATTEMPT_TIMEOUT, "a number of seconds"
        )
    if timeout is None:
        return DEFAULT_ATTEMPT_TIMEOUT
    if timeout <= 0:
        raise SweepConfigError(
            f"fleet attempt timeout must be > 0 seconds, got "
            f"{timeout}"
        )
    return timeout


def resolve_retry_budget(budget: Optional[int] = None) -> int:
    """Overload retries per call: argument, else
    ``REPRO_FLEET_RETRY_BUDGET``, else 2."""
    if budget is None:
        budget = env_int(
            ENV_FLEET_RETRY_BUDGET, "a retry count", minimum=0
        )
    if budget is None:
        return DEFAULT_RETRY_BUDGET
    if budget < 0:
        raise SweepConfigError(
            f"fleet retry budget must be >= 0, got {budget}"
        )
    return budget


def _overload_hint_ms(body: str) -> Optional[int]:
    """The ``retry_after_ms`` of a ``ServerOverloaded`` body, or
    ``None`` for any other response."""
    try:
        document = json.loads(body)
    except ValueError:
        return None
    if not isinstance(document, dict):
        return None
    error = document.get("error")
    if (
        document.get("status") == "overloaded"
        and isinstance(error, dict)
        and error.get("type") == "ServerOverloaded"
        and isinstance(error.get("retry_after_ms"), int)
    ):
        return error["retry_after_ms"]
    return None


def fleet_fingerprint(document: Mapping[str, Any]) -> str:
    """The routing fingerprint of one request document.

    The *server's* coalescing/LRU identity (id-less, effective
    budget folded in), computed client-side through the same
    protocol helpers -- so the client's routing choice lands each
    fingerprint on the replica that is already coalescing it.

    A document the protocol rejects still routes (by a stable hash
    of its raw content): the structured 400 must come from a
    replica, not from a client-side crash, and it must come from
    the *same* replica every time the same bad document is sent.
    """
    from repro.runner.cache import stable_hash
    from repro.serve.protocol import (
        ServeProtocolError,
        parse_request,
        request_fingerprint,
    )

    try:
        request = parse_request(dict(document, id=None))
    except (ServeProtocolError, TypeError, ValueError):
        return stable_hash({"malformed": repr(document)})
    return request_fingerprint(request)


def fleet_call(
    endpoints: Sequence[str],
    document: Mapping[str, Any],
    attempt_timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
    breaker: Optional[BreakerRegistry] = None,
    retry_budget: Optional[int] = None,
) -> Tuple[int, str, str]:
    """POST one request to a fleet with consistent-hash failover.

    The request's fingerprint picks a deterministic replica
    preference order; each attempt gets its own wall-clock deadline
    (``attempt_timeout``), and the identical document is re-sent to
    the next replica on any network-level failure.  Responses --
    including structured ``ok: false`` error bodies -- are returned
    from whichever replica first produces one.

    Endpoints whose circuit breaker is open are demoted below every
    available endpoint (still last-resort candidates: if *every*
    circuit is open the call probes them rather than failing with
    zero attempts).  Every outcome feeds the breaker: unreachable
    attempts count toward opening, any response closes.  A
    ``ServerOverloaded`` rejection is retried after its
    ``retry_after_ms`` hint (capped at ``MAX_RETRY_AFTER_MS``) up
    to ``retry_budget`` times; when the budget runs out the typed
    overload body is returned as the answer.

    Args:
        endpoints: ``host:port`` strings (see
            :func:`repro.serve.router.parse_fleet`).
        document: The JSON request object, sent verbatim on every
            attempt.
        attempt_timeout: Per-attempt deadline in seconds (default:
            ``REPRO_FLEET_ATTEMPT_TIMEOUT``, else 30).
        max_attempts: Cap on attempts per pass (default: one per
            replica).
        breaker: Breaker registry override (default: the
            process-wide :func:`~repro.serve.breaker.fleet_breaker`).
        retry_budget: Overload retries (default:
            ``REPRO_FLEET_RETRY_BUDGET``, else 2).

    Returns:
        ``(status, body, endpoint)`` -- the HTTP status, the body
        exactly as the answering replica sent it, and which replica
        answered.

    Raises:
        FleetUnavailable: When every attempt failed at the network
            level; carries ``(endpoint, detail)`` per attempt.
        SweepConfigError: On an empty endpoint list or malformed
            endpoints/timeouts.
    """
    from repro.serve.router import preference_order

    if not endpoints:
        raise SweepConfigError(
            "fleet_call needs at least one endpoint"
        )
    timeout = resolve_attempt_timeout(attempt_timeout)
    budget = resolve_retry_budget(retry_budget)
    if breaker is None:
        breaker = fleet_breaker()
    order = preference_order(
        fleet_fingerprint(document), endpoints
    )
    retries = 0
    while True:
        available = [
            endpoint for endpoint in order
            if breaker.available(endpoint)
        ]
        ranked = available + [
            endpoint for endpoint in order
            if endpoint not in available
        ]
        if max_attempts is not None:
            ranked = ranked[:max_attempts]
        failures: List[Tuple[str, str]] = []
        answered: Optional[Tuple[int, str, str]] = None
        for attempt, endpoint in enumerate(ranked):
            host, port = parse_endpoint(endpoint)
            try:
                status, body = remote_call(
                    host, port, document, timeout=timeout
                )
            except (OSError, socket.timeout) as error:
                unreachable = ReplicaUnreachable(
                    endpoint, attempt,
                    f"{type(error).__name__}: {error}",
                )
                breaker.record_failure(endpoint)
                failures.append((endpoint, unreachable.detail))
                continue
            breaker.record_success(endpoint)
            answered = (status, body, endpoint)
            break
        if answered is None:
            raise FleetUnavailable(failures)
        status, body, endpoint = answered
        hint_ms = _overload_hint_ms(body)
        if hint_ms is None or retries >= budget:
            return answered
        retries += 1
        time.sleep(min(hint_ms, MAX_RETRY_AFTER_MS) / 1000.0)
