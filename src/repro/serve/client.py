"""Client for a running planning server (``plan --remote``).

A deliberately thin wrapper over :mod:`http.client`: POST one JSON
request, return the status code and the canonical body exactly as
the server sent it.  The CLI prints the body verbatim, so a remote
plan is byte-identical to what the serving tests compare against --
the client never reserializes.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Mapping, Optional, Tuple

from repro.runner.faults import SweepConfigError


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Parse ``host:port`` (IPv6 in brackets) into ``(host, port)``."""
    text = endpoint.strip()
    if text.startswith("["):
        host, _, rest = text[1:].partition("]")
        port_text = rest.lstrip(":")
    else:
        host, _, port_text = text.rpartition(":")
    if not host or not port_text:
        raise SweepConfigError(
            f"remote endpoint must be host:port, got {endpoint!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise SweepConfigError(
            f"remote endpoint port must be an integer, got "
            f"{port_text!r}"
        ) from None
    if not 0 < port < 65536:
        raise SweepConfigError(
            f"remote endpoint port out of range: {port}"
        )
    return host, port


def remote_call(
    host: str,
    port: int,
    document: Mapping[str, Any],
    timeout: Optional[float] = 60.0,
) -> Tuple[int, str]:
    """POST one request document; returns ``(status, body)``.

    The body comes back exactly as sent by the server (structured
    errors arrive with a non-200 status and an ``ok: false`` body,
    not an exception).

    Raises:
        OSError: When the server is unreachable.
    """
    connection = http.client.HTTPConnection(
        host, port, timeout=timeout
    )
    try:
        connection.request(
            "POST", "/v1",
            body=json.dumps(document).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8")
    finally:
        connection.close()
