"""Request coalescing: in-flight identical requests share one search.

When N clients concurrently ask the same question (same fingerprint:
points, budget, flags -- the correlation id is excluded), exactly one
of them -- the *leader* -- runs the search; the rest -- *followers*
-- await the leader's future and receive the very same body string.
Byte-identity across the N responses is therefore structural, not a
property to re-verify: there is only one body object.

The coalescer is event-loop-confined (plain dict, no locks): all
access happens on the server's single asyncio loop, and the leader's
execution awaits in a worker pool, never blocking the loop between
``admit`` and ``resolve``.

Error bodies also resolve the flight -- a follower behind a crashed
search receives the leader's structured error response rather than
hanging -- but the *app* never caches error bodies, so a retry after
the flight clears runs a fresh search.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Tuple


class Coalescer:
    """The in-flight table mapping fingerprints to shared futures."""

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Future[str]"] = {}
        self.coalesced = 0
        self.flights = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def admit(
        self, fingerprint: str
    ) -> Tuple[bool, "asyncio.Future[str]"]:
        """Join or open the flight for ``fingerprint``.

        Returns ``(leader, future)``.  The leader must eventually
        call :meth:`resolve` (the future is shared; leaving it
        unresolved would hang every follower).
        """
        future = self._inflight.get(fingerprint)
        if future is not None:
            self.coalesced += 1
            return False, future
        future = asyncio.get_running_loop().create_future()
        self._inflight[fingerprint] = future
        self.flights += 1
        return True, future

    def resolve(self, fingerprint: str, body: str) -> None:
        """Close the flight, delivering ``body`` to every follower."""
        future = self._inflight.pop(fingerprint, None)
        if future is not None and not future.done():
            future.set_result(body)

    def stats(self) -> Dict[str, int]:
        """Counters for the server's ``stats`` op."""
        return {
            "flights": self.flights,
            "coalesced": self.coalesced,
            "inflight": len(self._inflight),
        }
