"""Fleet supervisor: K babysat replica servers over one shared cache.

``repro fleet`` launches K ``repro serve`` subprocesses against one
content-addressed :class:`~repro.runner.cache.PlanCache` root and
keeps them alive:

* **Spawn**: each replica is ``python -m repro serve --port 0`` with
  ``REPRO_FLEET_INDEX=i`` in its environment; its stderr goes to a
  per-replica log file the supervisor scans for the ``SERVING host
  port`` ready line.  The first assigned port becomes the replica's
  *sticky* identity -- restarts rebind the same port, so the
  consistent-hash routing of :mod:`repro.serve.router` (and every
  client's failover order) survives replica churn.
* **Probe**: every ``probe_interval`` seconds the supervisor checks
  ``process.poll()`` (crash) and ``GET /healthz`` (wedge).  The
  health body carries pool generation, in-flight count and LRU
  counters -- the supervisor journals them, and flags a replica
  whose code salt disagrees with the fleet's (a salt-split fleet
  would break the any-replica-same-bytes contract).
* **Restart**: crashed or wedged replicas are killed first (the
  kill-before-shutdown discipline of the sweep engine: a wedged
  process would otherwise be joined forever), then respawned after a
  seeded deterministic backoff
  (:func:`~repro.runner.faults.backoff_seconds` keyed on the replica
  index).  A replica that exhausts ``max_restarts`` is abandoned
  (``gave-up`` journal event); the fleet keeps serving on survivors.
* **Journal**: one fsynced JSONL line per supervision event
  (:func:`~repro.runner.journal.append_line`), so a killed
  supervisor leaves an intact, replayable account of what it did.

Fault injection composes: ``REPRO_FAULTS`` is inherited by every
replica, and the ``replica-kill``/``replica-hang``/``replica-slow``
kinds match on ``replica=<REPRO_FLEET_INDEX>`` and ``request=<n-th
served request>`` -- a whole-replica crash at a deterministic moment
mid-storm.  Note that a restarted replica's request counter starts
over, so request-count triggers can re-fire if the storm is long
enough; CI sets the trigger beyond what any single restarted replica
will serve again.
"""

from __future__ import annotations

import http.client
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Tuple

from repro.runner.faults import (
    ENV_FLEET_INDEX,
    FleetUnavailable,
    SweepConfigError,
    backoff_seconds,
)
from repro.runner.journal import append_line
from repro.settings import env_float, env_int

ENV_FLEET_REPLICAS = "REPRO_FLEET_REPLICAS"
ENV_FLEET_PROBE_INTERVAL = "REPRO_FLEET_PROBE_INTERVAL"
ENV_FLEET_PROBE_TIMEOUT = "REPRO_FLEET_PROBE_TIMEOUT"
ENV_FLEET_MAX_RESTARTS = "REPRO_FLEET_MAX_RESTARTS"
ENV_FLEET_BACKOFF = "REPRO_FLEET_BACKOFF"

DEFAULT_REPLICAS = 3
DEFAULT_PROBE_INTERVAL = 1.0
DEFAULT_PROBE_TIMEOUT = 5.0
DEFAULT_MAX_RESTARTS = 5
DEFAULT_BACKOFF = 0.05

#: How long one spawn may take to print its ready line before the
#: supervisor concludes the start failed (generous: a replica-slow
#: injection or a cold interpreter still fits).
READY_TIMEOUT = 30.0

#: Consecutive failed health probes before a live process is
#: declared wedged.  Two strikes keeps one dropped packet or one
#: slow GC pause from triggering a restart.
WEDGE_PROBES = 2

#: Supervisor journal schema version.
FLEET_JOURNAL_VERSION = 1


def probe_health(
    host: str, port: int, timeout: float
) -> Dict[str, Any]:
    """One ``GET /healthz`` round trip; raises ``OSError`` on any
    network failure (including the probe deadline expiring)."""
    connection = http.client.HTTPConnection(
        host, port, timeout=timeout
    )
    try:
        connection.request("GET", "/healthz")
        response = connection.getresponse()
        return json.loads(response.read().decode("utf-8"))
    except http.client.HTTPException as error:
        raise ConnectionError(
            f"{type(error).__name__}: {error}"
        ) from error
    finally:
        connection.close()


class ReplicaProcess:
    """One supervised ``repro serve`` subprocess.

    Holds the sticky port, the restart budget, and the stderr log
    the ready line is scanned from.  All process control (spawn,
    kill, ready-wait) lives here; the supervision *policy* lives in
    :class:`FleetSupervisor`.
    """

    def __init__(
        self,
        index: int,
        host: str,
        log_path: Path,
        cache_dir: str = "",
        journal_path: str = "",
        jobs: Optional[int] = None,
        extra_env: Optional[Dict[str, str]] = None,
    ) -> None:
        self.index = index
        self.host = host
        self.log_path = Path(log_path)
        self.cache_dir = cache_dir
        self.journal_path = journal_path
        self.jobs = jobs
        self.extra_env = dict(extra_env or {})
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.restarts = 0
        self.failed = False
        self.failed_probes = 0
        self._log_offset = 0

    @property
    def endpoint(self) -> Optional[str]:
        if self.port is None:
            return None
        return f"{self.host}:{self.port}"

    def command(self) -> List[str]:
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", str(self.port or 0),
        ]
        if self.jobs is not None:
            argv += ["--jobs", str(self.jobs)]
        if self.cache_dir:
            argv += ["--cache-dir", self.cache_dir]
        if self.journal_path:
            argv += ["--journal", self.journal_path]
        return argv

    def spawn(self) -> None:
        """Start the subprocess; stderr goes to the replica log."""
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        env = dict(os.environ)
        env[ENV_FLEET_INDEX] = str(self.index)
        env.update(self.extra_env)
        with self.log_path.open("ab") as log:
            self._log_offset = log.tell()
            self.process = subprocess.Popen(
                self.command(),
                stdout=subprocess.DEVNULL,
                stderr=log,
                env=env,
            )
        self.failed_probes = 0

    def wait_ready(
        self, timeout: float = READY_TIMEOUT
    ) -> Tuple[bool, str]:
        """Block until this spawn's ``SERVING`` line appears.

        Scans only log bytes written by the current spawn (restarts
        append to the same file).  Returns ``(ok, detail)``; on
        success the sticky port is recorded.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in self._new_log_lines():
                if line.startswith("SERVING "):
                    parts = line.split()
                    self.port = int(parts[2])
                    return True, ""
            if (
                self.process is not None
                and self.process.poll() is not None
            ):
                return (
                    False,
                    f"exited rc={self.process.returncode} "
                    f"before ready",
                )
            time.sleep(0.02)
        return False, f"no ready line within {timeout}s"

    def _new_log_lines(self) -> List[str]:
        try:
            with self.log_path.open("rb") as log:
                log.seek(self._log_offset)
                chunk = log.read()
        except FileNotFoundError:
            return []
        text = chunk.decode("utf-8", "replace")
        # Only consume complete lines; a torn tail is re-read next
        # poll once the child finishes writing it.
        complete, newline, _ = text.rpartition("\n")
        if not newline:
            return []
        self._log_offset += len(complete.encode("utf-8")) + 1
        return complete.splitlines()

    def alive(self) -> bool:
        return (
            self.process is not None
            and self.process.poll() is None
        )

    def kill(self, grace: float = 2.0) -> None:
        """Terminate, then kill -- never join a wedged process."""
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=grace)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()


class FleetSupervisor:
    """Launch and babysit K replicas over one shared cache.

    The blocking entry point is :meth:`run`; tests drive the same
    machinery stepwise via :meth:`start`, :meth:`supervise_once` and
    :meth:`shutdown`.
    """

    def __init__(
        self,
        replicas: Optional[int] = None,
        host: str = "127.0.0.1",
        cache_dir: str = "",
        journal_dir: str = "",
        jobs: Optional[int] = None,
        probe_interval: Optional[float] = None,
        probe_timeout: Optional[float] = None,
        max_restarts: Optional[int] = None,
        backoff: Optional[float] = None,
        extra_env: Optional[Dict[str, str]] = None,
    ) -> None:
        if replicas is None:
            replicas = env_int(
                ENV_FLEET_REPLICAS, "a replica count", minimum=1
            )
        self.count = (
            replicas if replicas is not None else DEFAULT_REPLICAS
        )
        if self.count < 1:
            raise SweepConfigError(
                f"a fleet needs at least one replica, got "
                f"{self.count}"
            )
        self.probe_interval = _resolve(
            probe_interval, ENV_FLEET_PROBE_INTERVAL,
            DEFAULT_PROBE_INTERVAL, "a number of seconds",
        )
        self.probe_timeout = _resolve(
            probe_timeout, ENV_FLEET_PROBE_TIMEOUT,
            DEFAULT_PROBE_TIMEOUT, "a number of seconds",
        )
        self.backoff = _resolve(
            backoff, ENV_FLEET_BACKOFF,
            DEFAULT_BACKOFF, "a number of seconds",
        )
        if max_restarts is None:
            max_restarts = env_int(
                ENV_FLEET_MAX_RESTARTS, "a restart count",
                minimum=0,
            )
        self.max_restarts = (
            max_restarts if max_restarts is not None
            else DEFAULT_MAX_RESTARTS
        )
        self.journal_dir = (
            Path(journal_dir) if journal_dir else None
        )
        self.salt: Optional[str] = None
        self.replicas: List[ReplicaProcess] = []
        for index in range(self.count):
            if self.journal_dir is not None:
                log = self.journal_dir / f"replica-{index}.log"
                journal = str(
                    self.journal_dir / f"replica-{index}.jsonl"
                )
            else:
                import tempfile

                log = Path(tempfile.mkdtemp(
                    prefix="repro-fleet-"
                )) / f"replica-{index}.log"
                journal = ""
            self.replicas.append(ReplicaProcess(
                index, host,
                log_path=log,
                cache_dir=cache_dir,
                journal_path=journal,
                jobs=jobs,
                extra_env=extra_env,
            ))

    # -- journal -------------------------------------------------------

    @property
    def journal_path(self) -> Optional[Path]:
        if self.journal_dir is None:
            return None
        return self.journal_dir / "supervisor.jsonl"

    def record(self, event: str, **fields: Any) -> None:
        if self.journal_path is None:
            return
        entry = {"v": FLEET_JOURNAL_VERSION, "event": event}
        entry.update(fields)
        append_line(
            self.journal_path,
            json.dumps(entry, sort_keys=True),
        )

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn every replica and wait for each ready line.

        A replica that cannot start within its restart budget is
        abandoned; if *no* replica comes up the typed
        :class:`FleetUnavailable` carries every attempt.
        """
        failures: List[Tuple[str, str]] = []
        for replica in self.replicas:
            if not self._start_replica(replica):
                failures.append((
                    f"replica-{replica.index}",
                    "never became ready",
                ))
        if not self.live_replicas():
            raise FleetUnavailable(failures)

    def _start_replica(self, replica: ReplicaProcess) -> bool:
        while True:
            replica.spawn()
            self.record(
                "spawn", replica=replica.index,
                restarts=replica.restarts,
                port=replica.port,
            )
            ok, detail = replica.wait_ready()
            if ok:
                self.record(
                    "ready", replica=replica.index,
                    endpoint=replica.endpoint,
                )
                return True
            replica.kill()
            self.record(
                "start-failed", replica=replica.index,
                detail=detail,
            )
            if not self._consume_restart(replica):
                return False

    def _consume_restart(self, replica: ReplicaProcess) -> bool:
        """Charge one restart; ``False`` once the budget is gone."""
        if replica.restarts >= self.max_restarts:
            replica.failed = True
            self.record(
                "gave-up", replica=replica.index,
                restarts=replica.restarts,
            )
            return False
        replica.restarts += 1
        pause = backoff_seconds(
            f"replica-{replica.index}",
            replica.restarts - 1,
            self.backoff,
        )
        if pause > 0:
            time.sleep(pause)
        return True

    def live_replicas(self) -> List[ReplicaProcess]:
        return [
            replica for replica in self.replicas
            if not replica.failed and replica.port is not None
        ]

    def endpoints(self) -> Tuple[str, ...]:
        """The routable endpoint set (abandoned replicas excluded).

        Temporarily-down replicas stay listed: their sticky port
        makes them reappear at the same address after restart, and
        clients fail over around them in the meantime -- endpoint
        churn would reshuffle every fingerprint's preference order.
        """
        return tuple(
            replica.endpoint for replica in self.live_replicas()
            if replica.endpoint is not None
        )

    def supervise_once(self) -> List[Dict[str, Any]]:
        """One supervision pass; returns the events it acted on."""
        events: List[Dict[str, Any]] = []
        for replica in self.replicas:
            if replica.failed:
                continue
            if not replica.alive():
                code = (
                    replica.process.returncode
                    if replica.process else None
                )
                self.record(
                    "crash", replica=replica.index,
                    returncode=code,
                )
                events.append({
                    "event": "crash",
                    "replica": replica.index,
                    "returncode": code,
                })
                self._restart(replica)
                continue
            try:
                health = probe_health(
                    replica.host, replica.port or 0,
                    self.probe_timeout,
                )
            except (OSError, ValueError) as error:
                replica.failed_probes += 1
                self.record(
                    "probe-failed", replica=replica.index,
                    failures=replica.failed_probes,
                    detail=f"{type(error).__name__}: {error}",
                )
                if replica.failed_probes >= WEDGE_PROBES:
                    events.append({
                        "event": "wedge",
                        "replica": replica.index,
                    })
                    self.record("wedge", replica=replica.index)
                    self._restart(replica)
                continue
            replica.failed_probes = 0
            self._check_salt(replica, health)
            vitals = {
                "generation": health.get("generation"),
                "inflight": health.get("inflight"),
                "requests": health.get("requests"),
            }
            # Disk-pressure passthrough: only journaled while a
            # replica actually reports cache brownout, so healthy
            # fleets keep their historical line bytes.
            cache_health = health.get("cache")
            if (
                isinstance(cache_health, dict)
                and cache_health.get("brownout")
            ):
                vitals["cache_brownout"] = True
                events.append({
                    "event": "cache-brownout",
                    "replica": replica.index,
                })
            self.record(
                "healthy", replica=replica.index, **vitals
            )
        return events

    def _check_salt(
        self, replica: ReplicaProcess, health: Dict[str, Any]
    ) -> None:
        salt = health.get("salt")
        if salt is None:
            return
        if self.salt is None:
            self.salt = salt
        elif salt != self.salt:
            # A salt split means replicas answer from different
            # code: same fingerprint, different bytes.  Journal it
            # loudly; the validate auditors treat it as fatal.
            self.record(
                "salt-mismatch", replica=replica.index,
                expected=self.salt, got=salt,
            )

    def _restart(self, replica: ReplicaProcess) -> None:
        replica.kill()
        if self._consume_restart(replica):
            if self._start_replica(replica):
                self.record(
                    "restarted", replica=replica.index,
                    endpoint=replica.endpoint,
                    restarts=replica.restarts,
                )

    def run(self, ready: Optional[TextIO] = None) -> int:
        """Start the fleet and supervise until interrupted."""
        self.start()
        if ready is not None:
            ready.write(
                "FLEET SERVING "
                + ",".join(self.endpoints()) + "\n"
            )
            ready.flush()
        try:
            while True:
                time.sleep(self.probe_interval)
                self.supervise_once()
                if not self.live_replicas():
                    self.record("fleet-dead")
                    return 1
        except KeyboardInterrupt:
            return 0
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        """Kill every replica (terminate, then kill)."""
        for replica in self.replicas:
            replica.kill()
        self.record("shutdown")


def _resolve(
    value: Optional[float],
    env_name: str,
    default: float,
    describe: str,
) -> float:
    if value is None:
        value = env_float(env_name, describe)
    if value is None:
        return default
    if value < 0:
        raise SweepConfigError(
            f"{env_name} must be {describe} >= 0, got {value}"
        )
    return float(value)
