"""Append-only JSONL journal of served requests.

One line per response, recording *how* the answer was produced --
``search`` / ``lru`` / ``coalesced`` / ``error`` / ``overloaded``
(a bounded-admission rejection, status ``overloaded``, distinct
from fault-path errors) -- plus the request fingerprint,
provenance, status and pool generation.  The journal is
operational telemetry (CI uploads it as an artifact after the serve
battery), never an input: response bytes are fully determined by the
request, so journal timestamps do not threaten determinism.

Crash safety (the fleet contract): every line is flushed and
``fsync``-ed at write time through the sweep journal's
:func:`~repro.runner.journal.append_line`, so a replica killed
mid-storm loses at most the single line it was appending -- and
:meth:`ServeJournal.load` skips that torn tail with a
:class:`~repro.runner.faults.JournalTruncation` warning instead of
raising, which is what lets the fleet battery audit a dead replica's
journal.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Union

from repro.runner.cache import code_salt
from repro.runner.journal import append_line, tolerant_lines

#: Journal line schema version.
JOURNAL_VERSION = 1


class ServeJournal:
    """A durably-appended JSONL journal at ``path``.

    Args:
        path: Journal file; parent directories are created.  Lines
            are appended, so one journal can span server restarts.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lines = 0

    def record(
        self,
        op: str,
        source: str,
        fingerprint: Optional[str] = None,
        status: Optional[str] = None,
        provenance: Optional[str] = None,
        generation: Optional[int] = None,
        shed: bool = False,
        learned: bool = False,
        saved: int = 0,
    ) -> None:
        """Append one response line (flushed and fsynced).

        ``learned``/``saved`` record the learned-warm-start outcome
        of a cold miss (prediction found / search units not spent);
        like ``shed`` they are emitted only when set, so journals of
        learn-off deployments keep their pre-learn line bytes.
        """
        self._lines += 1
        entry: Dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "seq": self._lines,
            "ts": time.time(),
            "salt": code_salt(),
            "op": op,
            "source": source,
        }
        if fingerprint is not None:
            entry["fingerprint"] = fingerprint
        if status is not None:
            entry["status"] = status
        if provenance is not None:
            entry["provenance"] = provenance
        if generation is not None:
            entry["generation"] = generation
        if shed:
            entry["shed"] = True
        if learned:
            entry["learned"] = True
        if saved:
            entry["saved"] = saved
        append_line(
            self.path, json.dumps(entry, sort_keys=True)
        )

    def load(self) -> List[Dict[str, Any]]:
        """Every well-formed line, in append order.

        A missing file loads as empty.  A torn trailing line -- the
        one a killed replica was mid-append on -- is skipped with a
        :class:`~repro.runner.faults.JournalTruncation` warning, so
        post-mortem auditors (the fleet battery, the CI chaos job)
        can always read everything the replica durably served.
        """
        return [
            entry for entry in tolerant_lines(self.path)
            if entry.get("v") == JOURNAL_VERSION
        ]
