"""Append-only JSONL journal of served requests.

One line per response, recording *how* the answer was produced --
``search`` / ``lru`` / ``coalesced`` / ``error`` -- plus the request
fingerprint, provenance, status and pool generation.  The journal is
operational telemetry (CI uploads it as an artifact after the serve
battery), never an input: response bytes are fully determined by the
request, so journal timestamps do not threaten determinism.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional, Union

from repro.runner.cache import code_salt

#: Journal line schema version.
JOURNAL_VERSION = 1


class ServeJournal:
    """A line-buffered JSONL journal at ``path``.

    Args:
        path: Journal file; parent directories are created.  Lines
            are appended, so one journal can span server restarts.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lines = 0

    def record(
        self,
        op: str,
        source: str,
        fingerprint: Optional[str] = None,
        status: Optional[str] = None,
        provenance: Optional[str] = None,
        generation: Optional[int] = None,
        shed: bool = False,
    ) -> None:
        """Append one response line (flushed immediately)."""
        self._lines += 1
        entry: Dict[str, Any] = {
            "v": JOURNAL_VERSION,
            "seq": self._lines,
            "ts": time.time(),
            "salt": code_salt(),
            "op": op,
            "source": source,
        }
        if fingerprint is not None:
            entry["fingerprint"] = fingerprint
        if status is not None:
            entry["status"] = status
        if provenance is not None:
            entry["provenance"] = provenance
        if generation is not None:
            entry["generation"] = generation
        if shed:
            entry["shed"] = True
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(entry, sort_keys=True) + "\n"
            )
