"""Code-salt-keyed in-memory LRU for serialized response bodies.

The serving layer answers repeat questions from memory before
touching the worker pool or the content-addressed disk cache.  Two
properties keep that safe:

* **Code-salt keying.**  Every entry records the
  :func:`~repro.runner.cache.code_salt` (the SHA-256 of the
  ``src/repro`` tree) current when it was stored.  A lookup whose
  entry carries a different salt drops the entry and reports a miss
  -- an edited planner can never serve a pre-edit plan, the same
  invalidation contract the disk cache and the sweep journal already
  honor.
* **Size bounding.**  Capacity is a hard entry count; inserting past
  it evicts the least-recently-used entry.  The server's memory is
  bounded no matter how many distinct points clients ask about.

Values are the *canonical response bodies* (strings), not live
objects -- a hit is returned byte-for-byte, which is what makes
cached responses trivially identical to freshly computed ones.

Hit/miss/eviction/invalidation counters are kept on the cache and
surfaced by the server's ``stats`` op (and its HTTP ``/stats``
endpoint).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple

from repro.runner.cache import code_salt


class SaltedLRU:
    """A size-bounded, code-salt-checked LRU of response bodies.

    Args:
        capacity: Maximum entries; ``0`` disables the cache (every
            ``get`` misses, ``put`` is a no-op).
        salt: The current-salt provider, injectable so tests can
            simulate a ``src/repro`` edit without touching the tree.
    """

    def __init__(
        self,
        capacity: int,
        salt: Callable[[], str] = code_salt,
    ) -> None:
        if capacity < 0:
            from repro.runner.faults import SweepConfigError

            raise SweepConfigError(
                f"LRU capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self._salt = salt
        self._entries: "OrderedDict[str, Tuple[str, str]]" = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, fingerprint: str) -> Optional[str]:
        """The cached body, or ``None`` -- refreshing recency on a hit.

        An entry stored under a different code salt is dropped (the
        ``invalidations`` counter records it) and reported as a miss.
        """
        entry = self._entries.get(fingerprint)
        if entry is None:
            self.misses += 1
            return None
        salt, body = entry
        if salt != self._salt():
            del self._entries[fingerprint]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(fingerprint)
        self.hits += 1
        return body

    def put(self, fingerprint: str, body: str) -> None:
        """Store ``body`` under the current code salt, evicting LRU
        entries past capacity."""
        if self.capacity == 0:
            return
        self._entries[fingerprint] = (self._salt(), body)
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        self._entries.clear()

    def stats(self) -> Dict[str, Any]:
        """The counters surfaced by the server's ``stats`` op."""
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
