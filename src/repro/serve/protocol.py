"""Serving protocol: request/response schemas and shared execution.

One rule makes the serving layer provable: **the server and the CLI
render results through the same functions**.  A ``plan`` request
handled by :class:`repro.serve.app.ServeApp` and a ``python -m repro
plan --json`` run in a cold subprocess both end in
:func:`plan_response` + :func:`canonical_body`, so the serving test
battery can assert the two byte-for-byte -- the PR 4/6 differential-
oracle pattern applied to the service boundary.

Requests are JSON objects::

    {"op": "plan", "point": {"executor": "transfusion", "model":
     "t5", "seq_len": 512, "arch": "cloud", "batch": 4},
     "budget": 16, "deadline_s": null, "no_fallback": false,
     "id": "r1"}

    {"op": "sweep", "points": [{...}, ...], "warm_start": false}
    {"op": "validate", "point": {...}}
    {"op": "stats"}

``deadline_s`` maps to a deterministic search-unit budget **once at
admission** through the PR 5 :data:`~repro.resilience.budget.\
UNITS_PER_SECOND` convention (the tighter of ``budget`` and the
mapped deadline wins), so a deadline biases how much work is
attempted without making the answer host-speed-dependent.

Responses are canonical JSON (sorted keys, compact separators,
``repr``-rendered floats) so identical requests always serialize to
identical bytes.  Every successful ``plan`` response carries an
explicit ``provenance`` (``complete`` / ``budget_exhausted`` /
``fallback:<rung>``); a provably infeasible point comes back
``status: "infeasible"`` with its serialized Table-2 diagnosis; and
any :class:`~repro.runner.faults.SweepError` serializes to a
structured ``ok: false`` error response via the PR 3 failure
round-trip.

Execution wraps the sweep engine's chain runner
(:func:`repro.runner.parallel._run_chain`) inside an environment
scope that pins the request's budget knobs (clearing any ambient
``REPRO_BUDGET`` / ``REPRO_DEADLINE`` first), so a long-lived server
process can serve differently-budgeted requests back to back without
leakage -- and so the disk-cache keys the worker computes match the
ones a budgeted CLI run would.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.serialize import (
    canonical_json,
    failure_to_dict,
    point_to_dict,
    sweep_result_to_dict,
)
from repro.resilience.budget import (
    ENV_BUDGET,
    ENV_DEADLINE,
    ENV_NO_FALLBACK,
    PROVENANCE_COMPLETE,
    UNITS_PER_SECOND,
    worst_provenance,
)
from repro.runner.cache import stable_hash
from repro.runner.faults import SweepConfigError, SweepError
from repro.runner.parallel import (
    _INFEASIBLE_KEY,
    STATUS_INFEASIBLE,
    STATUS_OK,
    GridPoint,
    SweepResult,
    _chains,
    _is_infeasible_document,
    _run_chain,
)

#: Protocol schema version, carried in every request and response.
PROTOCOL_VERSION = 1

#: Operations a server accepts.  ``stats`` is server-only (it reads
#: live counters); the other three execute anywhere.
OPS = ("plan", "sweep", "validate", "stats")

_POINT_FIELDS = {
    "executor": str,
    "model": str,
    "seq_len": int,
    "arch": str,
    "batch": int,
    "causal": bool,
}
_REQUIRED_POINT_FIELDS = ("executor", "model", "seq_len", "arch")

_REQUEST_FIELDS = (
    "v", "id", "op", "point", "points", "budget", "deadline_s",
    "no_fallback", "warm_start",
)


class ServeProtocolError(SweepConfigError):
    """A request that does not parse against the serving schema.

    A :class:`~repro.runner.faults.SweepConfigError` (and therefore a
    ``ValueError``), so it serializes through the same structured
    error path as every other typed failure.
    """


@dataclass(frozen=True)
class ServeRequest:
    """One parsed, admission-normalized serving request.

    Attributes:
        op: ``plan`` / ``sweep`` / ``validate`` / ``stats``.
        points: The grid points (one for ``plan`` / ``validate``).
        budget: Effective deterministic search-unit budget --
            ``deadline_s`` already folded in via
            :func:`effective_budget`; ``None`` is unbudgeted.
        no_fallback: Disable the graceful-degradation ladder.
        warm_start: ``sweep`` only -- thread TileSeek warm starts.
        request_id: Opaque client correlation id, echoed verbatim.
    """

    op: str
    points: Tuple[GridPoint, ...] = ()
    budget: Optional[int] = None
    no_fallback: bool = False
    warm_start: bool = False
    request_id: Optional[str] = None


def deadline_units(seconds: float) -> int:
    """Map a per-request deadline to search units (PR 5 convention).

    The fixed :data:`UNITS_PER_SECOND` rate is applied once; no clock
    is ever re-read, so the same deadline yields the same budget --
    and therefore the same bytes -- on any host.
    """
    return max(1, int(seconds * UNITS_PER_SECOND))


def effective_budget(
    budget: Optional[int], deadline_s: Optional[float]
) -> Optional[int]:
    """Fold an explicit budget and an advisory deadline; tighter wins."""
    if deadline_s is not None and deadline_s > 0:
        units = deadline_units(deadline_s)
        budget = units if budget is None else min(budget, units)
    return budget


def _type_name(value: Any) -> str:
    return type(value).__name__


def parse_point(document: Any) -> GridPoint:
    """Parse one grid-point object out of a request.

    Raises:
        ServeProtocolError: On missing/unknown fields or wrong types,
            naming the offending field.
    """
    if not isinstance(document, Mapping):
        raise ServeProtocolError(
            f"point must be an object, got {_type_name(document)}"
        )
    unknown = sorted(set(document) - set(_POINT_FIELDS))
    if unknown:
        raise ServeProtocolError(
            f"unknown point field(s) {unknown}; choose from "
            f"{sorted(_POINT_FIELDS)}"
        )
    for name in _REQUIRED_POINT_FIELDS:
        if name not in document:
            raise ServeProtocolError(
                f"point is missing required field {name!r}"
            )
    values: Dict[str, Any] = {}
    for name, value in document.items():
        expected = _POINT_FIELDS[name]
        if expected is int and isinstance(value, bool):
            raise ServeProtocolError(
                f"point field {name!r} must be an integer, got a "
                f"bool"
            )
        if not isinstance(value, expected):
            raise ServeProtocolError(
                f"point field {name!r} must be "
                f"{expected.__name__}, got {_type_name(value)}"
            )
        values[name] = value
    for name in ("seq_len", "batch"):
        if name in values and values[name] < 1:
            raise ServeProtocolError(
                f"point field {name!r} must be >= 1, got "
                f"{values[name]}"
            )
    return GridPoint(**values)


def parse_request(document: Any) -> ServeRequest:
    """Parse and admission-normalize one request object.

    Raises:
        ServeProtocolError: On anything that does not match the
            schema -- unknown ops or fields, wrong types, empty
            sweeps, non-positive budgets/deadlines.
    """
    if not isinstance(document, Mapping):
        raise ServeProtocolError(
            f"request must be a JSON object, got "
            f"{_type_name(document)}"
        )
    unknown = sorted(set(document) - set(_REQUEST_FIELDS))
    if unknown:
        raise ServeProtocolError(
            f"unknown request field(s) {unknown}; choose from "
            f"{sorted(_REQUEST_FIELDS)}"
        )
    version = document.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ServeProtocolError(
            f"unsupported protocol version {version!r} (this server "
            f"speaks v{PROTOCOL_VERSION})"
        )
    op = document.get("op")
    if op not in OPS:
        raise ServeProtocolError(
            f"unknown op {op!r}; choose from {sorted(OPS)}"
        )
    request_id = document.get("id")
    if request_id is not None and not isinstance(
        request_id, (str, int)
    ):
        raise ServeProtocolError(
            f"id must be a string or integer, got "
            f"{_type_name(request_id)}"
        )
    budget = document.get("budget")
    if budget is not None:
        if isinstance(budget, bool) or not isinstance(budget, int):
            raise ServeProtocolError(
                f"budget must be an integer, got "
                f"{_type_name(budget)}"
            )
        if budget < 1:
            raise ServeProtocolError(
                f"budget must be >= 1 search unit, got {budget}"
            )
    deadline = document.get("deadline_s")
    if deadline is not None:
        if isinstance(deadline, bool) or not isinstance(
            deadline, (int, float)
        ):
            raise ServeProtocolError(
                f"deadline_s must be a number, got "
                f"{_type_name(deadline)}"
            )
        if deadline <= 0:
            raise ServeProtocolError(
                f"deadline_s must be > 0, got {deadline}"
            )
    for flag in ("no_fallback", "warm_start"):
        if not isinstance(document.get(flag, False), bool):
            raise ServeProtocolError(
                f"{flag} must be a boolean, got "
                f"{_type_name(document[flag])}"
            )
    points: Tuple[GridPoint, ...] = ()
    if op in ("plan", "validate"):
        if "points" in document:
            raise ServeProtocolError(
                f"op {op!r} takes a single 'point', not 'points'"
            )
        if "point" not in document:
            raise ServeProtocolError(f"op {op!r} requires 'point'")
        points = (parse_point(document["point"]),)
    elif op == "sweep":
        if "point" in document:
            raise ServeProtocolError(
                "op 'sweep' takes 'points', not a single 'point'"
            )
        raw = document.get("points")
        if not isinstance(raw, Sequence) or isinstance(raw, str):
            raise ServeProtocolError(
                "op 'sweep' requires a 'points' array"
            )
        if not raw:
            raise ServeProtocolError(
                "op 'sweep' requires at least one point"
            )
        points = tuple(parse_point(entry) for entry in raw)
    elif "point" in document or "points" in document:
        raise ServeProtocolError(
            f"op {op!r} takes no point arguments"
        )
    return ServeRequest(
        op=op,
        points=points,
        budget=effective_budget(budget, deadline),
        no_fallback=bool(document.get("no_fallback", False)),
        warm_start=bool(document.get("warm_start", False)),
        request_id=(
            str(request_id) if request_id is not None else None
        ),
    )


def request_fingerprint(
    request: ServeRequest, budget: Optional[int] = None
) -> str:
    """Coalescing/LRU identity of one request.

    The correlation ``id`` is excluded (two clients asking the same
    question share one answer); everything that determines the
    response body is included.  ``budget`` overrides the request's
    own (admission control keys a load-shed request by the budget it
    actually ran under).
    """
    if budget is None:
        budget = request.budget
    return stable_hash({
        "op": request.op,
        "points": [
            point_to_dict(point) for point in request.points
        ],
        "budget": budget,
        "no_fallback": request.no_fallback,
        "warm_start": request.warm_start,
    })


def canonical_body(document: Mapping[str, Any]) -> str:
    """The canonical response rendering: identical documents always
    produce identical bytes (sorted keys, compact separators,
    ``repr`` floats)."""
    return canonical_json(dict(document))


# ----------------------------------------------------------------------
# Execution (runs in a pool worker, or inline in the CLI process)
# ----------------------------------------------------------------------
def _scoped_env(
    budget: Optional[int],
    no_fallback: bool,
    extra_env: Optional[Mapping[str, str]],
) -> Dict[str, Optional[str]]:
    """The environment pinning one request's knobs during execution.

    ``None`` values mean *unset*: the request's budget replaces (or
    clears) any ambient ``REPRO_BUDGET``, and ``REPRO_DEADLINE`` is
    always cleared -- the deadline was folded into units once at
    admission and must not be re-applied against a worker-side clock.
    """
    env: Dict[str, Optional[str]] = {
        ENV_BUDGET: str(budget) if budget is not None else None,
        ENV_DEADLINE: None,
        ENV_NO_FALLBACK: "1" if no_fallback else None,
    }
    for key, value in (extra_env or {}).items():
        env[key] = value
    return env


class _EnvScope:
    """Apply/restore a ``{name: value-or-None}`` environment patch."""

    def __init__(self, env: Mapping[str, Optional[str]]) -> None:
        self._env = dict(env)
        self._saved: Dict[str, Optional[str]] = {}

    def __enter__(self) -> "_EnvScope":
        for key, value in self._env.items():
            self._saved[key] = os.environ.get(key)
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        return self

    def __exit__(self, *exc_info: Any) -> None:
        for key, value in self._saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def execute_chain(
    chain: Sequence[GridPoint],
    warm_start: bool,
    budget: Optional[int],
    no_fallback: bool,
    chain_index: int = 0,
    indices: Optional[Sequence[int]] = None,
    attempt: int = 0,
    serial: bool = True,
    extra_env: Optional[Mapping[str, str]] = None,
) -> List[Tuple[Optional[str], Dict[str, Any]]]:
    """Price one chain under a request-scoped environment.

    A thin wrapper around the sweep engine's chain runner: the same
    warm-start threading, fault-injection sites, typed failures and
    cache documents -- which is what makes a served plan
    byte-identical to a CLI one.  Returns the chain's
    ``(cache key, serialized document)`` pairs.
    """
    with _EnvScope(_scoped_env(budget, no_fallback, extra_env)):
        return _run_chain(
            chain, warm_start, chain_index, attempt,
            indices, serial,
        )


def execute_validate(
    point: GridPoint,
    budget: Optional[int],
    no_fallback: bool,
    extra_env: Optional[Mapping[str, str]] = None,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Audit one point; returns (audit document, report document)."""
    from repro.core.serialize import (
        audit_report_to_dict,
        report_to_dict,
    )
    from repro.validate.runner import validate_point

    with _EnvScope(_scoped_env(budget, no_fallback, extra_env)):
        audit, report = validate_point(point)
    return audit_report_to_dict(audit), report_to_dict(report)


def sweep_chain_layout(
    points: Sequence[GridPoint],
) -> Tuple[List[List[GridPoint]], List[List[int]]]:
    """The sweep engine's chain grouping for a request's points.

    Returns ``(chains, indices)`` exactly as :func:`run_grid` derives
    them -- per-family chains with sequence lengths ascending, and
    each chain point's first global input index (the fault-injection
    ``point=`` matcher space).
    """
    chains = _chains(points)
    first_index: Dict[GridPoint, int] = {}
    for position, point in enumerate(points):
        first_index.setdefault(point, position)
    indices = [
        [first_index[point] for point in chain] for chain in chains
    ]
    return chains, indices


def assemble_sweep_result(
    points: Sequence[GridPoint],
    chains: Sequence[Sequence[GridPoint]],
    chain_results: Sequence[
        Sequence[Tuple[Optional[str], Dict[str, Any]]]
    ],
) -> SweepResult:
    """Fold per-chain documents into a :class:`SweepResult`.

    Mirrors the tail of :func:`run_grid` for the all-computed case:
    every point is ``ok`` or ``infeasible`` (chain-level failures
    surface as typed error responses before assembly is reached).
    """
    from repro.core.serialize import (
        failure_from_dict,
        report_from_dict,
    )
    from repro.runner.faults import InfeasiblePoint

    reports: Dict[GridPoint, Any] = {}
    statuses: Dict[GridPoint, str] = {}
    infeasible: Dict[GridPoint, InfeasiblePoint] = {}
    for chain, results in zip(chains, chain_results):
        for point, (_, document) in zip(chain, results):
            if _is_infeasible_document(document):
                verdict = failure_from_dict(
                    document[_INFEASIBLE_KEY]
                )
                if not isinstance(verdict, InfeasiblePoint):
                    verdict = InfeasiblePoint(
                        str(verdict), {}, point
                    )
                infeasible[point] = verdict
                statuses[point] = STATUS_INFEASIBLE
            else:
                reports[point] = report_from_dict(document)
                statuses[point] = STATUS_OK
    ordered = list(dict.fromkeys(points))
    return SweepResult(ordered, reports, statuses, {}, infeasible)


# ----------------------------------------------------------------------
# Response documents (shared by server and CLI)
# ----------------------------------------------------------------------
def _envelope(
    op: str,
    request_id: Optional[str],
    budget: Optional[int],
) -> Dict[str, Any]:
    document: Dict[str, Any] = {
        "v": PROTOCOL_VERSION, "op": op, "ok": True,
    }
    if request_id is not None:
        document["id"] = request_id
    if budget is not None:
        document["budget"] = budget
    return document


def plan_response(
    request: ServeRequest,
    results: Sequence[Tuple[Optional[str], Dict[str, Any]]],
    budget: Optional[int] = None,
) -> Dict[str, Any]:
    """The response document for one ``plan`` request.

    ``status: "ok"`` carries the serialized report plus an explicit
    provenance; ``status: "infeasible"`` carries the serialized
    Table-2 diagnosis (a terminal answer, still ``ok: true``).

    ``budget`` is the *effective* budget the answer was computed
    under.  A load-shed request reports the degraded budget here --
    the body is byte-identical to one computed for an explicit
    request at that budget, which is exactly what the fingerprint
    says.
    """
    if budget is None:
        budget = request.budget
    document = _envelope("plan", request.request_id, budget)
    _, report_document = results[0]
    if _is_infeasible_document(report_document):
        document["status"] = STATUS_INFEASIBLE
        document["infeasible"] = report_document[_INFEASIBLE_KEY]
    else:
        document["status"] = STATUS_OK
        document["report"] = report_document
        document["provenance"] = report_document.get(
            "provenance", PROVENANCE_COMPLETE
        )
    return document


def sweep_response(
    request: ServeRequest,
    result: SweepResult,
    budget: Optional[int] = None,
) -> Dict[str, Any]:
    """The response document for one ``sweep`` request."""
    if budget is None:
        budget = request.budget
    document = _envelope("sweep", request.request_id, budget)
    document["status"] = STATUS_OK
    document["counts"] = result.counts()
    document["provenance"] = worst_provenance(
        *(report.provenance for report in result.values())
    )
    document["result"] = sweep_result_to_dict(result)
    return document


def validate_response(
    request: ServeRequest,
    audit_document: Dict[str, Any],
    report_document: Dict[str, Any],
    budget: Optional[int] = None,
) -> Dict[str, Any]:
    """The response document for one ``validate`` request."""
    if budget is None:
        budget = request.budget
    document = _envelope("validate", request.request_id, budget)
    document["status"] = STATUS_OK
    document["passed"] = audit_document["passed"]
    document["audit"] = audit_document
    document["report"] = report_document
    document["provenance"] = report_document.get(
        "provenance", PROVENANCE_COMPLETE
    )
    return document


def error_response(
    error: Exception,
    op: Optional[str] = None,
    request_id: Optional[str] = None,
    status: str = "error",
) -> Dict[str, Any]:
    """A structured error response for any typed failure.

    Non-:class:`SweepError` exceptions degrade to a generic
    ``SweepError`` entry via the PR 3 failure serialization -- a
    response is always produced; the server never hangs a client on
    an exception.  ``status`` lets non-fault rejections (bounded
    admission's ``overloaded``) stay distinguishable from execution
    errors without a second envelope shape.
    """
    if not isinstance(error, SweepError):
        error = SweepError(
            f"{type(error).__name__}: {error}"
        )
    document: Dict[str, Any] = {
        "v": PROTOCOL_VERSION,
        "ok": False,
        "status": status,
        "error": failure_to_dict(error),
    }
    if op is not None:
        document["op"] = op
    if request_id is not None:
        document["id"] = request_id
    return document


def execute_request(
    request: ServeRequest,
    extra_env: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Execute one request inline (the CLI's local path).

    The single-process reference implementation of the server's
    fan-out: same chain layout, same scoped environment, same
    response builders -- the serving differential tests compare the
    two byte for byte.
    """
    if request.op == "plan":
        results = execute_chain(
            list(request.points), False, request.budget,
            request.no_fallback, 0, [0], 0, True, extra_env,
        )
        return plan_response(request, results)
    if request.op == "sweep":
        chains, indices = sweep_chain_layout(request.points)
        chain_results = [
            execute_chain(
                chain, request.warm_start, request.budget,
                request.no_fallback, chain_id, indices[chain_id],
                0, True, extra_env,
            )
            for chain_id, chain in enumerate(chains)
        ]
        result = assemble_sweep_result(
            request.points, chains, chain_results
        )
        return sweep_response(request, result)
    if request.op == "validate":
        audit_document, report_document = execute_validate(
            request.points[0], request.budget,
            request.no_fallback, extra_env,
        )
        return validate_response(
            request, audit_document, report_document
        )
    raise ServeProtocolError(
        f"op {request.op!r} is only served by a running server"
    )
