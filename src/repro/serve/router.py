"""Deterministic consistent-hash routing for a fleet of replicas.

One replica process coalesces identical in-flight requests and keeps
a per-fingerprint LRU (PR 7).  Spread requests round-robin across K
replicas and both degrade: the same question lands on different
replicas, each pays its own search, and the per-point LRU hit rate
divides by K.  The fix is classic: route *by request fingerprint*,
so one fingerprint always prefers one replica and coalescing keeps
working per-point across the whole fleet.

This module implements rendezvous (highest-random-weight) hashing
over the replica endpoints:

* ``score(fingerprint, endpoint) = SHA-256(fingerprint ":" endpoint)``
* a fingerprint's *preference order* is the endpoints sorted by
  descending score (ties broken by endpoint string -- fully
  deterministic, no clocks, no RNG).

Properties the fleet layer leans on:

* **Deterministic**: same fingerprint + same endpoint set => same
  order, on any host, in any process -- the supervisor, every
  client, and the CI battery all agree without coordination.
* **Failover is the tail of the same list**: when the preferred
  replica is down, the client walks the order; the next entry is
  again consistent across clients, so coalescing degrades to the
  survivor instead of scattering.
* **Minimal disruption**: removing one endpoint only moves the
  fingerprints that preferred it (the rendezvous property); the
  other K-1 keep their assignments and their warm LRUs.

Routing never affects response *bytes* -- any replica serves the
same canonical body for the same fingerprint (shared disk cache,
same code salt); the router only decides who pays the search and
where coalescing concentrates.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

from repro.runner.faults import SweepConfigError


def parse_fleet(spec: str) -> Tuple[str, ...]:
    """Parse a ``host:port,host:port,...`` fleet spec.

    Endpoints are normalized (whitespace stripped) but kept as
    strings -- the endpoint string is the rendezvous node identity,
    so two clients given the same spec route identically.

    Raises:
        SweepConfigError: On an empty spec, an endpoint without a
            port, or duplicate endpoints (duplicates would silently
            double one replica's hash weight).
    """
    from repro.serve.client import parse_endpoint

    endpoints = []
    for fragment in spec.split(","):
        fragment = fragment.strip()
        if not fragment:
            continue
        parse_endpoint(fragment)  # validates host:port shape
        endpoints.append(fragment)
    if not endpoints:
        raise SweepConfigError(
            f"fleet spec must name at least one host:port endpoint, "
            f"got {spec!r}"
        )
    if len(set(endpoints)) != len(endpoints):
        raise SweepConfigError(
            f"fleet spec lists duplicate endpoints: {spec!r}"
        )
    return tuple(endpoints)


def rendezvous_score(fingerprint: str, endpoint: str) -> int:
    """The HRW weight of one (fingerprint, endpoint) pair.

    A SHA-256 over ``fingerprint:endpoint`` read as a big-endian
    integer -- uniform, deterministic, and independent across
    endpoints, which is all rendezvous hashing needs.
    """
    digest = hashlib.sha256(
        f"{fingerprint}:{endpoint}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest, "big")


def preference_order(
    fingerprint: str, endpoints: Sequence[str]
) -> List[str]:
    """Endpoints ordered most- to least-preferred for a fingerprint.

    The head is the replica this fingerprint coalesces on while it is
    healthy; the tail is the deterministic failover sequence every
    client walks in the same order.
    """
    return sorted(
        endpoints,
        key=lambda endpoint: (
            rendezvous_score(fingerprint, endpoint), endpoint
        ),
        reverse=True,
    )


def route(fingerprint: str, endpoints: Sequence[str]) -> str:
    """The preferred replica for a fingerprint (head of the order)."""
    if not endpoints:
        raise SweepConfigError(
            "cannot route against an empty endpoint set"
        )
    return preference_order(fingerprint, endpoints)[0]
