"""Serving transports: stdlib-asyncio HTTP and NDJSON stdio.

Two ways to reach one :class:`~repro.serve.app.ServeApp`:

* **HTTP** (:func:`start_http_server` / :func:`serve_http`): a
  minimal HTTP/1.1 endpoint on :func:`asyncio.start_server` -- no
  third-party framework.  ``POST /v1`` takes a JSON request body and
  returns the canonical response body (``200`` when ``ok``, ``400``
  for structured errors, ``503`` for bounded-admission overload
  rejections); ``GET /stats`` returns the live-counter
  document; ``GET /healthz`` answers liveness probes with the fleet
  supervisor's probe payload (pool generation, in-flight count, LRU
  counters -- see :meth:`~repro.serve.app.ServeApp.health_response`).
  One request per connection (``Connection: close``) keeps the
  parser trivial and the tests honest.
* **stdio** (:func:`serve_stdio`): newline-delimited JSON -- one
  request per input line, one canonical body per output line, in
  input order.  This is the deterministic harness mode: no sockets,
  no ports, byte-exact transcripts.

Both transports only ever emit bodies produced by the shared
protocol builders; the transport layer never invents or rewrites
response content.
"""

from __future__ import annotations

import asyncio
import io
import json
import sys
from typing import Any, Optional, TextIO, Tuple

from repro.serve.app import ServeApp

#: Largest accepted HTTP request body (1 MiB keeps sweeps of
#: thousands of points while bounding a misbehaving client).
MAX_BODY_BYTES = 1 << 20

_HTTP_PATHS = ("/v1", "/")


def _http_response(
    status: int, reason: str, body: str
) -> bytes:
    payload = body.encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("ascii") + payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> Tuple[str, str, bytes]:
    """Parse one request: ``(method, path, body)``."""
    request_line = await reader.readline()
    if not request_line.strip():
        raise ConnectionError("empty request")
    parts = request_line.decode("ascii", "replace").split()
    if len(parts) < 2:
        raise ValueError("malformed request line")
    method, path = parts[0].upper(), parts[1]
    length = 0
    while True:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode(
            "ascii", "replace"
        ).partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                raise ValueError("malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise ValueError(
            f"request body exceeds {MAX_BODY_BYTES} bytes"
        )
    body = await reader.readexactly(length) if length else b""
    return method, path, body


async def _handle_connection(
    app: ServeApp,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        try:
            method, path, body = await _read_request(reader)
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except ValueError as error:
            writer.write(_http_response(
                400, "Bad Request",
                json.dumps({"ok": False, "error": str(error)}),
            ))
            return
        if method == "GET" and path == "/healthz":
            from repro.serve.protocol import canonical_body

            writer.write(_http_response(
                200, "OK", canonical_body(app.health_response())
            ))
        elif method == "GET" and path == "/stats":
            response = await app.handle({"op": "stats"})
            writer.write(_http_response(200, "OK", response))
        elif method == "POST" and path in _HTTP_PATHS:
            response = await app.handle(
                body.decode("utf-8", "replace")
            )
            document = json.loads(response)
            if document.get("ok", False):
                writer.write(_http_response(200, "OK", response))
            elif document.get("status") == "overloaded":
                # Bounded-admission rejection: a retryable 503, not
                # a client error -- the body carries the typed
                # ServerOverloaded entry with its retry_after_ms.
                writer.write(_http_response(
                    503, "Service Unavailable", response
                ))
            else:
                writer.write(_http_response(
                    400, "Bad Request", response
                ))
        else:
            writer.write(_http_response(
                404, "Not Found",
                json.dumps({
                    "ok": False,
                    "error": f"no route {method} {path}",
                }),
            ))
    finally:
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()


async def start_http_server(
    app: ServeApp, host: str, port: int
) -> "asyncio.base_events.Server":
    """Bind the HTTP transport; returns the listening server.

    Pass ``port=0`` to bind an ephemeral port (tests); read the
    bound address off ``server.sockets[0].getsockname()``.
    """
    return await asyncio.start_server(
        lambda reader, writer: _handle_connection(
            app, reader, writer
        ),
        host, port,
    )


async def serve_http(
    app: ServeApp,
    host: str,
    port: int,
    ready: Optional[TextIO] = None,
) -> None:
    """Run the HTTP transport until cancelled.

    When ``ready`` is given, one ``SERVING <host> <port>`` line is
    written (and flushed) after the socket binds -- the CI job and
    the test battery block on it instead of sleeping.
    """
    server = await start_http_server(app, host, port)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready.write(f"SERVING {bound[0]} {bound[1]}\n")
        ready.flush()
    async with server:
        await server.serve_forever()


async def serve_stdio(
    app: ServeApp,
    stdin: Optional[Any] = None,
    stdout: Optional[TextIO] = None,
) -> int:
    """Serve newline-delimited JSON until EOF; returns lines served.

    Responses are written in input order.  Blank lines are skipped;
    a malformed line still yields one structured error body, so the
    transcript stays line-aligned with the input.
    """
    if stdout is None:
        stdout = sys.stdout
    if stdin is None:
        stdin = sys.stdin
    served = 0
    for line in _lines(stdin):
        if not line.strip():
            continue
        body = await app.handle(line)
        stdout.write(body + "\n")
        stdout.flush()
        served += 1
    return served


def _lines(stdin: Any):
    if isinstance(stdin, io.TextIOBase) or hasattr(
        stdin, "readline"
    ):
        while True:
            line = stdin.readline()
            if not line:
                return
            if isinstance(line, bytes):
                line = line.decode("utf-8", "replace")
            yield line
    else:
        for line in stdin:
            yield line
