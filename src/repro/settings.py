"""Typed ``REPRO_*`` environment-variable settings.

Every knob the framework reads from the environment resolves through
this module, so malformed values fail the same way everywhere: a
:class:`~repro.runner.faults.SweepConfigError` naming the variable,
the expected type and the offending value -- never a bare
``ValueError`` out of ``int()`` three frames deep in a worker.

The module is deliberately standard-library-only at import time (it
is imported by :mod:`repro.validate.config`, which sits under the
scheduler hot paths); the error type is imported lazily at raise
time, which is cycle-safe because raising only ever happens at call
time, long after the package finished importing.

Known settings (see :data:`KNOWN_SETTINGS` for the registry):

=====================  ================================================
variable               meaning
=====================  ================================================
``REPRO_JOBS``         sweep worker processes (int >= 1)
``REPRO_TIMEOUT``      per-chain timeout seconds (float; <= 0 off)
``REPRO_RETRIES``      extra attempts per failed chain (int >= 0)
``REPRO_BACKOFF``      base retry backoff seconds (float)
``REPRO_FAULTS``       deterministic fault-injection spec
``REPRO_CACHE``        persistent cache on/off (default on)
``REPRO_CACHE_DIR``    persistent cache root directory
``REPRO_CACHE_MAX_BYTES`` persistent cache byte budget (int >= 1);
                       unset means uncapped, the historical
                       behavior.  Enforced by an oldest-first GC
                       after every write and by ``repro cache gc``
``REPRO_VALIDATE``     invariant auditors on/off (default off)
``REPRO_BUDGET``       per-search deterministic unit budget (int >= 1)
``REPRO_DEADLINE``     advisory soft deadline seconds, mapped to a
                       unit budget once at search entry
``REPRO_NO_FALLBACK``  disable the graceful-degradation ladder
``REPRO_BENCH_STRICT`` fail benchmarks outside their paper bands
``REPRO_SCALAR_EVAL``  force TileSeek's scalar evaluation oracle
                       (the batched NumPy path is the default)
``REPRO_LEARN``        consult the learned warm-start predictor on
                       cold searches (default off; off is
                       byte-identical to a tree without it)
``REPRO_LEARN_K``      neighbors per learned prediction (int >= 1;
                       default 3)
=====================  ================================================

Serving knobs (``repro serve``; resolved in :mod:`repro.serve.app`
and :mod:`repro.cli`):

==========================  ===========================================
variable                    meaning
==========================  ===========================================
``REPRO_SERVE_LRU``         response-body LRU capacity in entries
                            (int >= 0; 0 disables; default 256)
``REPRO_SERVE_PRESSURE``    in-flight searches at which load shedding
                            starts (int >= 0; 0 disables; default 8)
``REPRO_SERVE_SHED_BUDGET`` degraded search-unit budget applied while
                            shedding (int >= 1; default 4096)
``REPRO_SERVE_TIMEOUT``     wall-clock bound per worker-pool request
                            in seconds (float; unset/<= 0 off)
``REPRO_SERVE_QUEUE``       bounded admission: in-flight searches at
                            which new searches are rejected with a
                            typed ``ServerOverloaded`` body (int;
                            unset/0 means unbounded -- the
                            historical behavior)
``REPRO_SERVE_RETRY_MS``    base of the deterministic
                            ``retry_after_ms`` hint in overload
                            rejections (int >= 1; default 100)
``REPRO_SERVE_HOST``        default bind host (default 127.0.0.1)
``REPRO_SERVE_PORT``        default bind port (default 8734)
==========================  ===========================================

Fleet knobs (``repro fleet`` and the failover client; resolved in
:mod:`repro.serve.fleet` and :mod:`repro.serve.client`):

=============================  ========================================
variable                       meaning
=============================  ========================================
``REPRO_FLEET_REPLICAS``       replica servers the supervisor runs
                               (int >= 1; default 3)
``REPRO_FLEET_PROBE_INTERVAL`` seconds between health probes
                               (float > 0; default 1.0)
``REPRO_FLEET_PROBE_TIMEOUT``  seconds before an unanswered probe
                               marks a replica wedged (float > 0;
                               default 5.0)
``REPRO_FLEET_MAX_RESTARTS``   restarts per replica before it is
                               abandoned (int >= 0; default 5)
``REPRO_FLEET_BACKOFF``        base seconds of the seeded bounded
                               restart backoff (float; default 0.1)
``REPRO_FLEET_ATTEMPT_TIMEOUT`` per-attempt client deadline in
                               seconds for failover calls (float > 0;
                               default 30)
``REPRO_FLEET_INDEX``          replica index, exported by the
                               supervisor into each replica (int >=
                               0; arms ``replica=`` fault matchers)
``REPRO_FLEET_BREAKER``        consecutive unreachable attempts that
                               open a replica's circuit breaker
                               (int; 0 disables; default 3)
``REPRO_FLEET_BREAKER_COOLDOWN`` base seconds an open breaker waits
                               before its seeded half-open probe
                               (float > 0; default 1.0)
``REPRO_FLEET_RETRY_BUDGET``   overload retries per fleet call when
                               a replica answers ``ServerOverloaded``
                               with a ``retry_after_ms`` hint
                               (int >= 0; default 2)
=============================  ========================================
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

#: Values read as "false" by :func:`env_bool` (after strip+lower).
FALSY_VALUES: Tuple[str, ...] = ("0", "off", "false", "no")

#: The registry of recognized settings: ``name -> (type, summary)``.
KNOWN_SETTINGS: Dict[str, Tuple[str, str]] = {
    "REPRO_JOBS": ("int", "sweep worker processes"),
    "REPRO_TIMEOUT": ("float", "per-chain timeout in seconds"),
    "REPRO_RETRIES": ("int", "extra attempts per failed chain"),
    "REPRO_BACKOFF": ("float", "base retry backoff in seconds"),
    "REPRO_FAULTS": ("spec", "deterministic fault-injection spec"),
    "REPRO_CACHE": ("bool", "persistent result cache on/off"),
    "REPRO_CACHE_DIR": ("path", "persistent cache root"),
    "REPRO_CACHE_MAX_BYTES": (
        "int", "persistent cache byte budget (GC-enforced)"
    ),
    "REPRO_VALIDATE": ("bool", "invariant auditors on/off"),
    "REPRO_BUDGET": ("int", "per-search deterministic unit budget"),
    "REPRO_DEADLINE": ("float", "advisory soft deadline in seconds"),
    "REPRO_NO_FALLBACK": ("bool", "disable the degradation ladder"),
    "REPRO_BENCH_STRICT": ("bool", "fail benchmarks out of band"),
    "REPRO_SCALAR_EVAL": (
        "bool", "force the scalar TileSeek evaluation oracle"
    ),
    "REPRO_LEARN": (
        "bool", "learned warm-start predictor on/off"
    ),
    "REPRO_LEARN_K": (
        "int", "neighbors per learned prediction"
    ),
    "REPRO_SERVE_LRU": (
        "int", "serving response-body LRU capacity (entries)"
    ),
    "REPRO_SERVE_PRESSURE": (
        "int", "in-flight searches that trigger load shedding"
    ),
    "REPRO_SERVE_SHED_BUDGET": (
        "int", "degraded unit budget applied while shedding"
    ),
    "REPRO_SERVE_TIMEOUT": (
        "float", "wall-clock bound per served request in seconds"
    ),
    "REPRO_SERVE_QUEUE": (
        "int", "bounded admission: in-flight searches before "
               "typed overload rejection"
    ),
    "REPRO_SERVE_RETRY_MS": (
        "int", "base milliseconds of the retry_after_ms hint"
    ),
    "REPRO_SERVE_HOST": ("str", "default serve bind host"),
    "REPRO_SERVE_PORT": ("int", "default serve bind port"),
    "REPRO_FLEET_REPLICAS": (
        "int", "replica servers the fleet supervisor runs"
    ),
    "REPRO_FLEET_PROBE_INTERVAL": (
        "float", "seconds between supervisor health probes"
    ),
    "REPRO_FLEET_PROBE_TIMEOUT": (
        "float", "seconds before an unanswered probe means wedged"
    ),
    "REPRO_FLEET_MAX_RESTARTS": (
        "int", "restarts per replica before it is abandoned"
    ),
    "REPRO_FLEET_BACKOFF": (
        "float", "base seconds of the seeded restart backoff"
    ),
    "REPRO_FLEET_ATTEMPT_TIMEOUT": (
        "float", "per-attempt client deadline for failover calls"
    ),
    "REPRO_FLEET_INDEX": (
        "int", "replica index exported by the fleet supervisor"
    ),
    "REPRO_FLEET_BREAKER": (
        "int", "consecutive failures that open a replica breaker"
    ),
    "REPRO_FLEET_BREAKER_COOLDOWN": (
        "float", "base seconds before an open breaker half-opens"
    ),
    "REPRO_FLEET_RETRY_BUDGET": (
        "int", "overload retries per fleet call"
    ),
}


def config_error(message: str) -> Exception:
    """A :class:`SweepConfigError` to raise for a malformed setting.

    Imported lazily so this module stays dependency-free at import
    time (the taxonomy lives in :mod:`repro.runner.faults`, which
    itself imports this module).
    """
    from repro.runner.faults import SweepConfigError

    return SweepConfigError(message)


def raw_value(name: str) -> Optional[str]:
    """The stripped environment value, or ``None`` when unset/blank.

    A variable set to the empty string behaves like an unset one for
    the numeric getters (both mean "use the default"), matching the
    historical hand-rolled parsers.
    """
    value = os.environ.get(name, "").strip()
    return value or None


def env_int(
    name: str,
    describe: str = "an integer",
    minimum: Optional[int] = None,
) -> Optional[int]:
    """Parse an integer setting; ``None`` when unset.

    Raises:
        SweepConfigError: Naming the variable, the expected shape
            (``describe``) and the offending value.
    """
    value = raw_value(name)
    if value is None:
        return None
    try:
        number = int(value)
    except ValueError:
        raise config_error(
            f"{name} must be {describe}, got {value!r}"
        ) from None
    if minimum is not None and number < minimum:
        raise config_error(
            f"{name} must be {describe} >= {minimum}, got {number}"
        )
    return number


def env_float(
    name: str, describe: str = "a number"
) -> Optional[float]:
    """Parse a float setting; ``None`` when unset."""
    value = raw_value(name)
    if value is None:
        return None
    try:
        return float(value)
    except ValueError:
        raise config_error(
            f"{name} must be {describe}, got {value!r}"
        ) from None


def env_bool(
    name: str,
    default: bool,
    falsy: Tuple[str, ...] = FALSY_VALUES,
) -> bool:
    """Parse a boolean flag; unset or blank resolves to ``default``.

    Any set, non-blank value outside ``falsy`` (case-insensitive)
    reads as true -- flags are opt-out by value, not by spelling.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if not value:
        return default
    return value not in falsy
