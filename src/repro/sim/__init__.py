"""Analytical latency/energy simulator (Timeloop + Accelergy substitute).

The paper evaluates every Einsum in isolation with Timeloop (latency)
and Accelergy (energy) and composes the results with overlap heuristics
(Section 6.1).  This package provides the same interface analytically:

* :mod:`repro.sim.latency` -- per-Einsum compute cycles on either PE
  array (Eq. 40-42), with Table-1 dimension mapping.
* :mod:`repro.sim.mapping` -- Table-1 row/column dimension assignments
  and inner-tile sizing against the PE arrays.
* :mod:`repro.sim.traffic` -- DRAM traffic models for GEMM streaming,
  spilled intermediates and K/V reuse.
* :mod:`repro.sim.stats` -- phase/run statistics and energy accounting.
* :mod:`repro.sim.loopnest` / :mod:`repro.sim.mapper` -- explicit
  Timeloop-style mappings and the search validating Table 1.
* :mod:`repro.sim.des` -- discrete-event execution cross-validating the
  analytical pipeline model.
* :mod:`repro.sim.layer_pipeline` -- whole-layer (cross-phase) pipeline
  simulation.
* :mod:`repro.sim.registers` -- per-PE register-pressure liveness.
* :mod:`repro.sim.roofline` -- compute/memory-bound classification.
"""

from repro.sim.des import SimulationResult, simulate_epochs
from repro.sim.latency import op_cycles, op_cost
from repro.sim.layer_pipeline import (
    interlayer_overlap_headroom,
    simulate_layer_pipeline,
)
from repro.sim.loopnest import build_loop_nest, validate_loop_nest
from repro.sim.mapper import search_mappings, table1_optimality_gap
from repro.sim.mapping import TABLE1_MAPPING, inner_tile_extents
from repro.sim.registers import (
    register_pressure,
    supports_register_retention,
)
from repro.sim.roofline import classify_report, machine_balance
from repro.sim.stats import EnergyBreakdown, OpCost, PhaseStats, RunReport

__all__ = [
    "EnergyBreakdown",
    "OpCost",
    "PhaseStats",
    "RunReport",
    "SimulationResult",
    "TABLE1_MAPPING",
    "build_loop_nest",
    "classify_report",
    "inner_tile_extents",
    "interlayer_overlap_headroom",
    "machine_balance",
    "op_cost",
    "op_cycles",
    "register_pressure",
    "search_mappings",
    "simulate_epochs",
    "simulate_layer_pipeline",
    "supports_register_retention",
    "table1_optimality_gap",
    "validate_loop_nest",
]
