"""Discrete-event execution of cascade schedules.

The analytical pipeline model (``fill + (n-1) * window + drain``)
approximates steady state; this module *executes* the schedule instead:
every (epoch, op) instance becomes a task, dependencies include both
the intra-epoch DAG edges and the **cross-epoch state edges** the
analytical window model abstracts away (e.g. ``PRM`` of epoch ``e``
reads the running max committed by ``RMn`` of epoch ``e-1``), and a
greedy event-driven dispatcher applies DPipe's Eq. 45 rule online --
each ready op goes to whichever PE array finishes it first.

Used to cross-validate the DPipe planner: the simulated steady-state
epoch period must track the analytical one (tests pin the tolerance),
and it reports per-array busy time and an op-level trace for
inspection.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from typing import TYPE_CHECKING

from repro.arch.pe import PEArrayKind
from repro.einsum.cascade import Cascade
from repro.graph.dag import ComputationDAG

if TYPE_CHECKING:  # typing only; avoids a circular package import
    from repro.dpipe.latency import LatencyTable

#: A task instance: (epoch index, op name).
TaskId = Tuple[int, str]

ARRAYS = (PEArrayKind.ARRAY_2D, PEArrayKind.ARRAY_1D)


@dataclass(frozen=True)
class TaskRecord:
    """One executed (epoch, op) instance."""

    epoch: int
    op: str
    array: PEArrayKind
    start: float
    end: float


@dataclass
class SimulationResult:
    """Outcome of simulating ``n_epochs`` of a cascade.

    Attributes:
        makespan: Completion time of the last task.
        busy_seconds: Total execution time per PE array.
        trace: Every executed task, in completion order.
        steady_period: Fitted per-epoch period over the second half of
            the run (warm pipeline), ``makespan / n_epochs`` for short
            runs.
    """

    makespan: float
    busy_seconds: Dict[PEArrayKind, float]
    trace: List[TaskRecord] = field(default_factory=list)
    steady_period: float = 0.0

    def utilization(self, seconds_per_array: float) -> Dict[
        PEArrayKind, float
    ]:
        """Busy fraction per array over the makespan."""
        if self.makespan <= 0:
            return {kind: 0.0 for kind in ARRAYS}
        return {
            kind: self.busy_seconds[kind] / self.makespan
            for kind in ARRAYS
        }


def _cross_epoch_deps(cascade: Cascade) -> List[Tuple[str, str]]:
    """Edges spanning epoch e-1 -> e (shared with the planner)."""
    from repro.dpipe.pipeline import cross_epoch_state_edges

    return cross_epoch_state_edges(cascade)


def _tile_words(
    dims: Tuple[str, ...], tile: Mapping[str, int]
) -> int:
    words = 1
    for dim in dims:
        words *= int(tile.get(dim, 1))
    return words


def staging_occupancy_words(
    trace: List[TaskRecord],
    cascade: Cascade,
    tile: Mapping[str, int],
) -> float:
    """High-water staging footprint of a simulated trace, in words.

    Each task's output tile is alive from its completion until its
    last consumer (same epoch, or next epoch for state handoffs)
    finishes.  The sweep-line maximum is the on-chip staging the
    schedule actually needs -- the dynamic counterpart of Table 2's
    closed-form per-Einsum staging terms, and a direct check that
    deeper pipelining costs buffer space.
    """
    if not trace:
        return 0.0
    out_words = {
        op.name: float(_tile_words(op.output.dims, tile))
        for op in cascade.all_ops
    }
    producers = {
        op.output.name: op.name for op in cascade.all_ops
    }
    consumers: Dict[str, List[str]] = {}
    for op in cascade.all_ops:
        for name in op.dataflow_input_names():
            if name in producers:
                consumers.setdefault(
                    producers[name], []
                ).append(op.name)
    cross_consumers: Dict[str, List[str]] = {}
    for producer, consumer in _cross_epoch_deps(cascade):
        cross_consumers.setdefault(producer, []).append(consumer)

    end_of: Dict[TaskId, float] = {
        (rec.epoch, rec.op): rec.end for rec in trace
    }
    events: List[Tuple[float, float]] = []
    for rec in trace:
        death = rec.end
        for consumer in consumers.get(rec.op, ()):
            death = max(
                death, end_of.get((rec.epoch, consumer), rec.end)
            )
        for consumer in cross_consumers.get(rec.op, ()):
            death = max(
                death,
                end_of.get((rec.epoch + 1, consumer), rec.end),
            )
        words = out_words[rec.op]
        events.append((rec.end, words))
        events.append((death, -words))
    events.sort(key=lambda ev: (ev[0], ev[1]))
    level = high = 0.0
    for _, delta in events:
        level += delta
        high = max(high, level)
    return high


def simulate_epochs(
    cascade: Cascade,
    table: "LatencyTable",
    n_epochs: int,
    assignment: Optional[Mapping[str, PEArrayKind]] = None,
    keep_trace: bool = False,
    max_in_flight: Optional[int] = 2,
) -> SimulationResult:
    """Event-driven execution of ``n_epochs`` cascade repetitions.

    Args:
        cascade: The sub-layer cascade (body + epilogue; the epilogue
            executes each epoch, matching the scheduling model).
        table: Per-(op, array) latencies at tile granularity.
        n_epochs: Epoch instances to execute.
        assignment: Optional fixed op -> array map; by default each
            dispatch greedily picks the earliest-finishing array
            (Eq. 45 applied online).
        keep_trace: Record every task (memory grows with epochs).
        max_in_flight: Epochs allowed in flight concurrently.  2
            models double-buffered staging (DPipe's two-subgraph
            window); ``None`` removes the bound, showing the headroom
            deeper on-chip buffering would expose.

    Returns:
        The simulation result.
    """
    if n_epochs <= 0:
        raise ValueError("n_epochs must be positive")
    if max_in_flight is not None and max_in_flight <= 0:
        raise ValueError("max_in_flight must be positive or None")
    dag = ComputationDAG.from_cascade(cascade)
    intra_preds = dag.pred_map()
    cross = _cross_epoch_deps(cascade)
    cross_by_consumer: Dict[str, List[str]] = {}
    for producer, consumer in cross:
        cross_by_consumer.setdefault(consumer, []).append(producer)

    # Dependency counting per task.
    ops = list(dag.nodes)
    succs = dag.succ_map()
    cross_by_producer: Dict[str, List[str]] = {}
    for producer, consumer in cross:
        cross_by_producer.setdefault(producer, []).append(consumer)

    def dep_count(epoch: int, op: str) -> int:
        count = len(intra_preds[op])
        if epoch > 0:
            count += len(cross_by_consumer.get(op, ()))
        return count

    remaining: Dict[TaskId, int] = {}
    for epoch in range(n_epochs):
        for op in ops:
            remaining[(epoch, op)] = dep_count(epoch, op)

    ready_time: Dict[TaskId, float] = {}
    # Min-heap of (ready_time, epoch, topo index, op).
    topo_index = {op: i for i, op in enumerate(
        dag.topological_order()
    )}
    heap: List[Tuple[float, int, int, str]] = []
    # Epoch gating: tasks of epoch >= epoch_limit wait until earlier
    # epochs fully retire (double-buffered staging).
    epoch_limit = (
        n_epochs if max_in_flight is None
        else min(max_in_flight, n_epochs)
    )
    gated: Dict[int, List[Tuple[str, float]]] = {}

    def push(epoch: int, op: str, ready: float) -> None:
        if epoch >= epoch_limit:
            gated.setdefault(epoch, []).append((op, ready))
        else:
            heapq.heappush(
                heap, (ready, epoch, topo_index[op], op)
            )

    for epoch in range(n_epochs):
        for op in ops:
            if remaining[(epoch, op)] == 0:
                ready_time[(epoch, op)] = 0.0
                push(epoch, op, 0.0)

    free: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    busy: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    end_times: Dict[TaskId, float] = {}
    epoch_done: Dict[int, float] = {}
    epoch_remaining = {
        epoch: len(ops) for epoch in range(n_epochs)
    }
    trace: List[TaskRecord] = []

    def release(epoch: int, op: str, finish: float) -> None:
        for succ in succs[op]:
            task = (epoch, succ)
            remaining[task] -= 1
            ready_time[task] = max(
                ready_time.get(task, 0.0), finish
            )
            if remaining[task] == 0:
                push(epoch, succ, ready_time[task])
        if epoch + 1 < n_epochs:
            for succ in cross_by_producer.get(op, ()):
                task = (epoch + 1, succ)
                remaining[task] -= 1
                ready_time[task] = max(
                    ready_time.get(task, 0.0), finish
                )
                if remaining[task] == 0:
                    push(epoch + 1, succ, ready_time[task])

    makespan = 0.0
    while heap:
        ready, epoch, _, op = heapq.heappop(heap)
        task = (epoch, op)
        if task in end_times:
            continue
        if assignment is not None:
            kind = assignment[op]
            start = max(ready, free[kind])
            finish = start + table.latency(op, kind)
        else:
            # Eq. 45 online: earliest completion across arrays.
            best = None
            for kind in ARRAYS:
                start = max(ready, free[kind])
                finish = start + table.latency(op, kind)
                if best is None or finish < best[2]:
                    best = (kind, start, finish)
            kind, start, finish = best
        free[kind] = finish
        busy[kind] += finish - start
        end_times[task] = finish
        makespan = max(makespan, finish)
        if keep_trace:
            trace.append(
                TaskRecord(epoch, op, kind, start, finish)
            )
        epoch_remaining[epoch] -= 1
        if epoch_remaining[epoch] == 0:
            epoch_done[epoch] = finish
            if max_in_flight is not None and \
                    epoch_limit < n_epochs:
                epoch_limit += 1
                for op_name, ready in gated.pop(
                    epoch_limit - 1, ()
                ):
                    heapq.heappush(
                        heap,
                        (max(ready, finish),
                         epoch_limit - 1,
                         topo_index[op_name], op_name),
                    )
        release(epoch, op, finish)

    # Steady-state period: average epoch-to-epoch completion gap over
    # the second half of the run (the warm pipeline).
    if n_epochs >= 4:
        half = n_epochs // 2
        steady = (
            epoch_done[n_epochs - 1] - epoch_done[half - 1]
        ) / (n_epochs - half)
    else:
        steady = makespan / n_epochs
    return SimulationResult(
        makespan=makespan,
        busy_seconds=busy,
        trace=trace,
        steady_period=steady,
    )
