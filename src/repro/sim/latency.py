"""Per-Einsum latency estimation (Section 4.2, Eq. 40-42).

The compute load of an Einsum is the product of its output-dimension
extents and reduction-dimension extents (Eq. 40).  Cycles divide the
load by the PEs the op occupies (Eq. 41); seconds divide by the clock
(Eq. 42).  An array-fit efficiency factor prices ops on a *non-native*
array -- e.g. a tree reduction on a systolic 2D array, or a map op
staged through the systolic fabric -- which is what lets DPipe's DP
rule (Eq. 45) trade arrays off against each other realistically.
"""

from __future__ import annotations

from typing import Mapping

from repro.arch.pe import PEArray, PEArrayKind
from repro.einsum.operation import EinsumOp, OpKind
from repro.sim.mapping import DimMapping, used_pes
from repro.sim.stats import OpCost


def array_fit_efficiency(op: EinsumOp, array: PEArray) -> float:
    """Throughput factor in (0, 1] for running ``op`` on ``array``.

    Contractions run at full rate on both arrays (2D: systolic MACs;
    1D: lane-local multiply-accumulate).  Map and reduction Einsums are
    native to the 1D array; on the 2D array they pay the array's
    ``map_efficiency`` / ``reduction_efficiency``.
    """
    if op.kind is OpKind.CONTRACTION:
        return 1.0
    if array.kind is PEArrayKind.ARRAY_1D:
        return 1.0
    if op.kind is OpKind.MAP:
        return array.map_efficiency
    return array.reduction_efficiency


def op_cycles(
    op: EinsumOp,
    extents: Mapping[str, int],
    array: PEArray,
    mapping: DimMapping,
) -> float:
    """Eq. 41: compute cycles for one execution of ``op``.

    Args:
        op: The Einsum operation.
        extents: Tile-local dimension extents.
        array: The PE array executing the op.
        mapping: Row/column dim assignment (Table 1).

    Returns:
        Estimated cycles (>= 1 for any non-empty op).
    """
    load = op.compute_load(extents)
    pes = used_pes(op.output_dims, extents, array, mapping)
    efficiency = array_fit_efficiency(op, array)
    return max(1.0, load / (pes * efficiency))


def op_cost(
    op: EinsumOp,
    extents: Mapping[str, int],
    array: PEArray,
    mapping: DimMapping,
    clock_hz: float,
) -> OpCost:
    """Full cost record for one op execution on one array."""
    cycles = op_cycles(op, extents, array, mapping)
    return OpCost(
        name=op.name,
        array=array.kind,
        load=op.compute_load(extents),
        cycles=cycles,
        seconds=cycles / clock_hz,
    )
