"""Inter-layer (cross-sub-layer) pipeline simulation.

Figure 3's dataflow propagates each Q tile through the whole layer --
QKV -> MHA -> Add & LayerNorm -> FFN -> Add & LayerNorm -- before the
next tile starts.  The executors price sub-layers additively, which is
faithful to that per-tile ordering but conservative across *tiles*:
while tile ``k`` runs its 1D-heavy LayerNorm, tile ``k+1``'s GEMM-heavy
QKV could already occupy the 2D array.

This module simulates exactly that: each (tile, phase) task splits
into a 2D and a 1D part (a phase's internal pipeline uses both
arrays), phases chain per tile, and both arrays are global serial
resources.  The gap between the simulated makespan and the additive
phase sum is the cross-phase overlap headroom -- an upper bound on
what a whole-layer DPipe (the natural future-work extension of the
paper's intra-layer scheduler) could still win.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from typing import TYPE_CHECKING

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec
from repro.model.workload import Workload

if TYPE_CHECKING:  # avoid a circular import at runtime
    from repro.baselines.base import ExecutorBase

ARRAYS = (PEArrayKind.ARRAY_2D, PEArrayKind.ARRAY_1D)


@dataclass(frozen=True)
class PhaseLoad:
    """Per-Q-tile busy time of one sub-layer phase."""

    name: str
    seconds_2d: float
    seconds_1d: float

    @property
    def serial_seconds(self) -> float:
        """Lower bound for this phase of one tile (its internal
        pipeline overlaps the arrays)."""
        return max(self.seconds_2d, self.seconds_1d)


def phase_loads_per_tile(
    executor: "ExecutorBase",
    workload: Workload,
    arch: ArchitectureSpec,
    n_tiles: int,
) -> List[PhaseLoad]:
    """Split an executor's per-phase busy time across ``n_tiles``
    outer Q tiles."""
    if n_tiles <= 0:
        raise ValueError("n_tiles must be positive")
    report = executor.run(workload, arch)
    loads: List[PhaseLoad] = []
    for phase in report.phases:
        loads.append(PhaseLoad(
            name=phase.name,
            seconds_2d=phase.busy_seconds.get(
                PEArrayKind.ARRAY_2D, 0.0
            ) / n_tiles,
            seconds_1d=phase.busy_seconds.get(
                PEArrayKind.ARRAY_1D, 0.0
            ) / n_tiles,
        ))
    return loads


@dataclass(frozen=True)
class LayerPipelineResult:
    """Simulated whole-layer execution across Q tiles.

    Attributes:
        makespan: Pipelined completion time of all tiles.
        additive_seconds: The executors' additive phase model for the
            same work (per-tile phase maxima, summed, times tiles).
        overlap_headroom: ``additive / makespan`` -- how much the
            additive model overestimates (1.0 = no headroom).
    """

    makespan: float
    additive_seconds: float

    @property
    def overlap_headroom(self) -> float:
        if self.makespan <= 0:
            return 1.0
        return self.additive_seconds / self.makespan


def simulate_layer_pipeline(
    loads: List[PhaseLoad],
    n_tiles: int,
    max_tiles_in_flight: int = 2,
) -> LayerPipelineResult:
    """Run ``n_tiles`` Q tiles through the phase chain.

    Each (tile, phase) task runs its 2D and 1D parts concurrently on
    the two global arrays (earliest fit, FIFO per array); phase ``i+1``
    of a tile starts when both parts of phase ``i`` finished.  At most
    ``max_tiles_in_flight`` tiles are live (on-chip activation
    double-buffering).
    """
    if n_tiles <= 0:
        raise ValueError("n_tiles must be positive")
    if max_tiles_in_flight <= 0:
        raise ValueError("max_tiles_in_flight must be positive")
    free: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    tile_done: Dict[int, float] = {}
    # Event-driven dispatch: (ready time, tile, phase index).  The
    # heap interleaves tiles so an early phase of tile k+1 can claim
    # an array before a late phase of tile k.
    heap: List[Tuple[float, int, int]] = []
    for tile in range(min(max_tiles_in_flight, n_tiles)):
        heapq.heappush(heap, (0.0, tile, 0))
    makespan = 0.0
    while heap:
        ready, tile, phase_idx = heapq.heappop(heap)
        load = loads[phase_idx]
        end_2d = end_1d = ready
        if load.seconds_2d > 0:
            start = max(free[PEArrayKind.ARRAY_2D], ready)
            end_2d = start + load.seconds_2d
            free[PEArrayKind.ARRAY_2D] = end_2d
        if load.seconds_1d > 0:
            start = max(free[PEArrayKind.ARRAY_1D], ready)
            end_1d = start + load.seconds_1d
            free[PEArrayKind.ARRAY_1D] = end_1d
        finish = max(end_2d, end_1d)
        if phase_idx + 1 < len(loads):
            heapq.heappush(heap, (finish, tile, phase_idx + 1))
        else:
            tile_done[tile] = finish
            makespan = max(makespan, finish)
            admit = tile + max_tiles_in_flight
            if admit < n_tiles:
                heapq.heappush(heap, (finish, admit, 0))
    additive = n_tiles * sum(
        load.serial_seconds for load in loads
    )
    return LayerPipelineResult(
        makespan=makespan,
        additive_seconds=additive,
    )


def interlayer_overlap_headroom(
    executor: "ExecutorBase",
    workload: Workload,
    arch: ArchitectureSpec,
    q_tile_tokens: int,
    max_tiles_in_flight: int = 2,
) -> LayerPipelineResult:
    """End-to-end: derive per-tile phase loads and simulate the
    whole-layer pipeline for one executor/workload."""
    n_tiles = workload.batch * math.ceil(
        workload.seq_len / max(q_tile_tokens, 1)
    )
    loads = phase_loads_per_tile(executor, workload, arch, n_tiles)
    return simulate_layer_pipeline(
        loads, n_tiles, max_tiles_in_flight
    )
