"""Explicit loop-nest mappings (the Timeloop view of an Einsum).

Timeloop describes how an Einsum runs on a spatial accelerator as a
*mapping*: an ordered loop nest whose levels are either **temporal**
(sequenced in time) or **spatial** (unrolled across PE rows/columns).
The fast-path cost model (:mod:`repro.sim.latency`) bakes the Table-1
mapping in; this module makes the same mapping explicit and auditable:

* build the canonical mapping for any cascade op under Table 1,
* validate it (complete dim coverage, spatial extents within the
  array, reduction dims never spatial across columns on a 1D array),
* derive occupancy, trip counts and per-level data-reuse factors, and
* verify it agrees with the fast-path ``used_pes``/``op_cycles``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.arch.pe import PEArray, PEArrayKind
from repro.einsum.operation import EinsumOp
from repro.sim.latency import array_fit_efficiency
from repro.sim.mapping import DimMapping


class LoopKind(enum.Enum):
    """How one loop level executes."""

    TEMPORAL = "temporal"
    SPATIAL_ROW = "spatial_row"
    SPATIAL_COL = "spatial_col"


@dataclass(frozen=True)
class LoopLevel:
    """One level of the loop nest.

    Attributes:
        dim: Dimension name this level iterates.
        extent: Full extent of the dimension in the tile.
        unroll: Spatial unroll factor (1 for temporal levels).
        kind: Temporal or spatial placement.
    """

    dim: str
    extent: int
    unroll: int
    kind: LoopKind

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise ValueError(f"extent of {self.dim!r} must be > 0")
        if self.unroll <= 0:
            raise ValueError(f"unroll of {self.dim!r} must be > 0")
        if self.kind is LoopKind.TEMPORAL and self.unroll != 1:
            raise ValueError("temporal levels cannot unroll")
        if self.unroll > self.extent:
            raise ValueError(
                f"unroll {self.unroll} exceeds extent {self.extent} "
                f"for dim {self.dim!r}"
            )

    @property
    def trips(self) -> int:
        """Sequential iterations at this level."""
        return math.ceil(self.extent / self.unroll)


@dataclass(frozen=True)
class LoopNest:
    """A complete mapping of one Einsum op onto one PE array."""

    op_name: str
    array_kind: PEArrayKind
    levels: Tuple[LoopLevel, ...]

    def spatial_rows(self) -> int:
        """Total row unrolling."""
        product = 1
        for level in self.levels:
            if level.kind is LoopKind.SPATIAL_ROW:
                product *= level.unroll
        return product

    def spatial_cols(self) -> int:
        """Total column unrolling."""
        product = 1
        for level in self.levels:
            if level.kind is LoopKind.SPATIAL_COL:
                product *= level.unroll
        return product

    def occupied_pes(self) -> int:
        """PEs this mapping keeps busy."""
        return self.spatial_rows() * self.spatial_cols()

    def temporal_trips(self) -> int:
        """Product of all sequential trip counts."""
        product = 1
        for level in self.levels:
            product *= level.trips
        return product

    def dims(self) -> Tuple[str, ...]:
        return tuple(level.dim for level in self.levels)


def build_loop_nest(
    op: EinsumOp,
    tile: Mapping[str, int],
    array: PEArray,
    mapping: DimMapping,
) -> LoopNest:
    """The canonical Table-1 mapping of ``op`` onto ``array``.

    Output row dims unroll across PE rows, remaining output dims
    across PE columns (greedy, bounded by the array geometry), and
    everything left over -- including all reduction dims -- runs
    temporally.
    """
    row_dims, col_dims = mapping.split_output_dims(op.output_dims)
    levels: List[LoopLevel] = []
    if array.kind is PEArrayKind.ARRAY_1D:
        budget_rows, budget_cols = 1, array.cols
        # A 1D array has no row dimension: everything output-side
        # flattens along the lanes.
        col_dims = row_dims + col_dims
        row_dims = ()
    else:
        budget_rows, budget_cols = array.rows, array.cols
    for dim in row_dims:
        extent = int(tile[dim])
        unroll = min(extent, max(budget_rows, 1))
        levels.append(LoopLevel(dim, extent, unroll,
                                LoopKind.SPATIAL_ROW
                                if unroll > 1 or extent == 1
                                else LoopKind.TEMPORAL))
        budget_rows = max(budget_rows // max(unroll, 1), 1)
    for dim in col_dims:
        extent = int(tile[dim])
        unroll = min(extent, max(budget_cols, 1))
        levels.append(LoopLevel(dim, extent, unroll,
                                LoopKind.SPATIAL_COL
                                if unroll > 1 or extent == 1
                                else LoopKind.TEMPORAL))
        budget_cols = max(budget_cols // max(unroll, 1), 1)
    for dim in op.reduction_dims:
        levels.append(
            LoopLevel(dim, int(tile[dim]), 1, LoopKind.TEMPORAL)
        )
    return LoopNest(
        op_name=op.name, array_kind=array.kind,
        levels=tuple(levels),
    )


def validate_loop_nest(
    nest: LoopNest,
    op: EinsumOp,
    tile: Mapping[str, int],
    array: PEArray,
) -> None:
    """Raise ``ValueError`` unless ``nest`` is a legal mapping.

    Checks: every op dim covered exactly once with the tile extent;
    spatial unrolling within the array geometry; reduction dims only
    temporal (partial sums stay PE-local, as the paper's 1-pass
    dataflow requires).
    """
    wanted = set(op.output_dims) | set(op.reduction_dims)
    seen = list(nest.dims())
    if len(set(seen)) != len(seen):
        raise ValueError(f"{nest.op_name}: dim mapped twice")
    if set(seen) != wanted:
        raise ValueError(
            f"{nest.op_name}: mapping covers {sorted(seen)}, "
            f"op needs {sorted(wanted)}"
        )
    for level in nest.levels:
        if level.extent != int(tile[level.dim]):
            raise ValueError(
                f"{nest.op_name}: level {level.dim!r} extent "
                f"{level.extent} != tile {tile[level.dim]}"
            )
        if level.dim in op.reduction_dims and \
                level.kind is not LoopKind.TEMPORAL:
            raise ValueError(
                f"{nest.op_name}: reduction dim {level.dim!r} must "
                "be temporal"
            )
    rows = array.rows if array.kind is PEArrayKind.ARRAY_2D else 1
    if nest.spatial_rows() > rows:
        raise ValueError(f"{nest.op_name}: row unrolling exceeds "
                         "array rows")
    if nest.spatial_cols() > array.cols:
        raise ValueError(f"{nest.op_name}: column unrolling exceeds "
                         "array columns")


def nest_cycles(
    nest: LoopNest,
    op: EinsumOp,
    array: PEArray,
) -> float:
    """Cycles implied by the loop nest (temporal trips over the
    spatially unrolled work), with the array-fit efficiency applied.

    Agrees with the fast-path :func:`repro.sim.latency.op_cycles`
    up to ceil-rounding of uneven unroll factors.
    """
    efficiency = array_fit_efficiency(op, array)
    return max(1.0, nest.temporal_trips() / efficiency)


def reuse_factors(
    nest: LoopNest, op: EinsumOp
) -> Dict[str, float]:
    """Per-input data reuse: how many times each fetched input element
    is consumed before being replaced.

    An input is reused across every loop level whose dim it does *not*
    index -- the classic stationarity argument Timeloop reports.
    """
    factors: Dict[str, float] = {}
    for spec in op.inputs:
        reuse = 1.0
        for level in nest.levels:
            if level.dim not in spec.dims:
                reuse *= level.extent
        factors[spec.name] = reuse
    return factors
