"""Mapping search: is Table 1 the right dimension assignment?

Timeloop couples a cost model with a *mapper* that searches the space
of loop-nest mappings.  The paper fixes the mapping by hand (Table 1:
sequence dims on PE rows, feature dims on columns).  This module
implements the search the authors implicitly did: enumerate every way
of splitting an op's output dims between rows and columns, price each
with the loop-nest model, and return the best -- letting tests verify
that Table 1's choices are optimal (or how far off they are) for each
cascade op on each architecture.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Mapping, Tuple

from repro.arch.pe import PEArray
from repro.einsum.operation import EinsumOp
from repro.sim.loopnest import LoopNest, build_loop_nest, nest_cycles
from repro.sim.mapping import DimMapping


@dataclass(frozen=True)
class MappingCandidate:
    """One priced mapping for an op."""

    mapping: DimMapping
    nest: LoopNest
    cycles: float


def enumerate_mappings(
    op: EinsumOp,
) -> List[DimMapping]:
    """Every row/column split of the op's output dims.

    Each output dim independently goes to rows or columns; reduction
    dims always stay temporal (partial sums are PE-local).
    """
    dims = op.output_dims
    mappings: List[DimMapping] = []
    for r in range(len(dims) + 1):
        for rows in itertools.combinations(dims, r):
            cols = tuple(d for d in dims if d not in rows)
            mappings.append(
                DimMapping(row_dims=rows, col_dims=cols)
            )
    return mappings


def search_mappings(
    op: EinsumOp,
    tile: Mapping[str, int],
    array: PEArray,
) -> Tuple[MappingCandidate, List[MappingCandidate]]:
    """Price every mapping of ``op`` on ``array``.

    Returns:
        ``(best, all_candidates)`` with candidates sorted by cycles.
    """
    candidates: List[MappingCandidate] = []
    for mapping in enumerate_mappings(op):
        nest = build_loop_nest(op, tile, array, mapping)
        candidates.append(
            MappingCandidate(
                mapping=mapping,
                nest=nest,
                cycles=nest_cycles(nest, op, array),
            )
        )
    candidates.sort(key=lambda c: c.cycles)
    return candidates[0], candidates


def table1_optimality_gap(
    op: EinsumOp,
    tile: Mapping[str, int],
    array: PEArray,
    table1_mapping: DimMapping,
) -> float:
    """Cycles of the Table-1 mapping relative to the searched best.

    1.0 means Table 1 is optimal for this op/tile/array; 2.0 means a
    better mapping exists at half the cycles.
    """
    best, _ = search_mappings(op, tile, array)
    nest = build_loop_nest(op, tile, array, table1_mapping)
    table1_cycles = nest_cycles(nest, op, array)
    if best.cycles <= 0:
        return 1.0
    return table1_cycles / best.cycles
