"""Table-1 dimension mapping and inner-tile sizing.

TransFusion forms *inner tiles* by mapping shared Einsum dimensions
onto the 2D PE array (Section 3.3, Table 1):

========== ============ =============
layer      2D PE rows   2D PE columns
========== ============ =============
QKV        p / m0       h, e
MHA        p            m0
LayerNorm  p            h, f
FFN        p            s
========== ============ =============

On a 1D array the row mapping (sequence dimension) is retained and
column dims unfold along the lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.arch.pe import PEArray, PEArrayKind

#: Layer kind -> (row dims, column dims) per Table 1 of the paper.
TABLE1_MAPPING: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "qkv": (("p", "m0"), ("h", "e")),
    "mha": (("p",), ("m0",)),
    "layernorm": (("p",), ("h", "f")),
    "ffn": (("p",), ("s",)),
}

#: Dims that tile in lockstep with another dim (paper assumes E = F, so
#: the V projection's ``(h, f)`` column mapping mirrors ``(h, e)``).
PAIRED_DIMS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "qkv": (("f", "e"),),
}


@dataclass(frozen=True)
class DimMapping:
    """Row/column dimension assignment for one op or layer."""

    row_dims: Tuple[str, ...]
    col_dims: Tuple[str, ...]

    def split_output_dims(
        self, output_dims: Tuple[str, ...]
    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Partition an op's output dims into (row, col) groups.

        Dims declared as row dims map to PE rows; everything else maps
        to PE columns (whether or not Table 1 names it -- e.g. the
        head dim rides along the columns for MHA score tiles).
        """
        rows = tuple(d for d in output_dims if d in self.row_dims)
        cols = tuple(d for d in output_dims if d not in self.row_dims)
        return rows, cols


def layer_mapping(layer: str) -> DimMapping:
    """The Table-1 mapping for a sub-layer kind."""
    if layer not in TABLE1_MAPPING:
        raise KeyError(
            f"unknown layer {layer!r}; choose from "
            f"{sorted(TABLE1_MAPPING)}"
        )
    rows, cols = TABLE1_MAPPING[layer]
    return DimMapping(row_dims=rows, col_dims=cols)


def inner_tile_extents(
    layer: str,
    problem_extents: Mapping[str, int],
    array: PEArray,
) -> Dict[str, int]:
    """Clip per-layer dims to the PE array, forming the inner tile.

    The inner tile is the unit of pipelined execution (one *epoch* in
    DPipe's terminology): the sequence dims are clipped to the array's
    rows and the column dims jointly to the array's columns.

    Args:
        layer: Sub-layer kind (``qkv``/``mha``/``layernorm``/``ffn``).
        problem_extents: Full-problem dimension extents.
        array: Target PE array (its geometry bounds the tile).

    Returns:
        Extents mapping with the tile-local dims reduced; dims not in
        the mapping pass through unchanged.
    """
    mapping = layer_mapping(layer)
    tile = dict(problem_extents)
    rows = array.rows if array.kind is PEArrayKind.ARRAY_2D else 1
    cols = array.cols
    for dim in mapping.row_dims:
        if dim in tile:
            tile[dim] = min(tile[dim], max(rows, 1))
    remaining = cols
    for dim in mapping.col_dims:
        if dim in tile:
            clipped = min(tile[dim], max(remaining, 1))
            tile[dim] = clipped
            remaining = max(remaining // max(clipped, 1), 1)
    for paired, source in PAIRED_DIMS.get(layer, ()):
        if paired in tile and source in tile:
            tile[paired] = min(tile[paired], tile[source])
    return tile


def used_pes(
    output_dims: Tuple[str, ...],
    extents: Mapping[str, int],
    array: PEArray,
    mapping: DimMapping,
) -> int:
    """Processing elements an op can actually occupy (Eq. 41's NumPEs).

    For a 2D array, row dims fill rows and the remaining output dims
    fill columns; for a 1D array all output dims flatten along the
    lanes.  Occupancy never exceeds the array size.
    """
    total = 1
    for dim in output_dims:
        total *= int(extents[dim])
    if array.kind is PEArrayKind.ARRAY_1D:
        return max(1, min(total, array.num_pes))
    row_dims, col_dims = mapping.split_output_dims(output_dims)
    rows = 1
    for dim in row_dims:
        rows *= int(extents[dim])
    cols = 1
    for dim in col_dims:
        cols *= int(extents[dim])
    used = min(rows, array.rows) * min(cols, array.cols)
    return max(1, min(used, total))
