"""Per-PE register-pressure analysis.

FuseMax's key enabler (Section 1) is an expanded register file --
"10 entries per PE" -- that lets the whole 1-pass attention cascade
retain its intermediates in registers.  This module derives that
number from first principles: walk the cascade in execution order,
track which tensors are *live* (produced but not yet dead) per PE, and
report the high-water mark.

Per-PE footprint model: with the Table-1 spatial mapping, each PE owns
one element of every fully spatially mapped tensor and streams one
element at a time of temporally iterated tensors, so each live tensor
costs one register entry; recurrent state tensors are live for the
whole loop body, and a state's *update* tensor stays live until the
end-of-iteration commit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.einsum.cascade import Cascade


@dataclass(frozen=True)
class RegisterPressure:
    """Liveness summary of one cascade.

    Attributes:
        max_live: Peak concurrently live register entries per PE.
        live_after: Op name -> live-entry count right after it runs.
        state_entries: Entries pinned for recurrent state.
    """

    max_live: int
    live_after: Dict[str, int]
    state_entries: int

    def fits(self, registers_per_pe: int) -> bool:
        """Whether full in-register retention is possible."""
        return self.max_live <= registers_per_pe


def _last_uses(cascade: Cascade) -> Dict[str, str]:
    """Tensor name -> name of the op that consumes it last."""
    last: Dict[str, str] = {}
    for op in cascade.all_ops:
        for name in op.input_names():
            last[name] = op.name
    return last


def register_pressure(cascade: Cascade) -> RegisterPressure:
    """Liveness-analyse a cascade's per-PE register demand.

    Counts one entry per live intermediate tensor, one per recurrent
    state, and keeps each state's update tensor live until the commit
    at the end of the loop body (the running max/denominator/numerator
    handoff of Cascade 1).
    """
    last_use = _last_uses(cascade)
    state_updates = {
        sspec.update_from for sspec in cascade.state.values()
    }
    live: Set[str] = set(cascade.state)  # states pinned throughout
    state_entries = len(cascade.state)
    max_live = len(live)
    live_after: Dict[str, int] = {}
    for op in cascade.all_ops:
        live.add(op.output.name)
        if len(live) > max_live:
            max_live = len(live)
        # Kill tensors whose last consumer this op was -- except
        # state-update tensors, which stay live until the loop-end
        # commit (they overwrite the state registers only after every
        # reader of the *old* state value has run).
        for name in list(live):
            if name in cascade.state or name in state_updates:
                continue
            if last_use.get(name) == op.name:
                live.discard(name)
        live_after[op.name] = len(live)
    return RegisterPressure(
        max_live=max_live,
        live_after=live_after,
        state_entries=state_entries,
    )


def supports_register_retention(
    cascade: Cascade, registers_per_pe: int
) -> bool:
    """Whether a PE with ``registers_per_pe`` entries can retain every
    intermediate of ``cascade`` (FuseMax's deep-fusion requirement)."""
    if registers_per_pe <= 0:
        raise ValueError("registers_per_pe must be positive")
    return register_pressure(cascade).fits(registers_per_pe)
