"""Roofline analysis: is a phase compute- or memory-bound?

The paper's discussion of *why* fusion helps at short sequences and
pipelining at long ones (Sections 6.2) is a roofline argument: each
phase sits either under the memory-bandwidth roof or the compute roof.
This module classifies report phases accordingly and computes the
crossover sequence length analytically -- used by tests and the
long-context example to pin down the regime boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.arch.spec import ArchitectureSpec
from repro.sim.stats import PhaseStats, RunReport


class Regime(enum.Enum):
    """Which roof limits a phase."""

    COMPUTE_BOUND = "compute"
    MEMORY_BOUND = "memory"
    BALANCED = "balanced"


@dataclass(frozen=True)
class PhaseRoofline:
    """Roofline coordinates of one phase.

    Attributes:
        phase: Phase name.
        arithmetic_intensity: Scalar ops per DRAM word moved
            (``inf`` for phases with no DRAM traffic).
        compute_seconds: Time under the compute roof.
        memory_seconds: Time under the bandwidth roof.
        regime: The binding roof (within a 10% band = balanced).
    """

    phase: str
    arithmetic_intensity: float
    compute_seconds: float
    memory_seconds: float
    regime: Regime

    @property
    def boundedness(self) -> float:
        """memory time / compute time (>1 = memory-bound)."""
        if self.compute_seconds <= 0:
            return float("inf")
        return self.memory_seconds / self.compute_seconds


def classify_phase(
    phase: PhaseStats, arch: ArchitectureSpec
) -> PhaseRoofline:
    """Roofline-classify one phase of a report."""
    ops = phase.ops_2d + phase.ops_1d
    words = phase.dram_words
    intensity = ops / words if words > 0 else float("inf")
    memory = phase.dram_seconds(arch)
    compute = phase.compute_seconds
    if compute <= 0 and memory <= 0:
        regime = Regime.BALANCED
    elif memory > 1.1 * compute:
        regime = Regime.MEMORY_BOUND
    elif compute > 1.1 * memory:
        regime = Regime.COMPUTE_BOUND
    else:
        regime = Regime.BALANCED
    return PhaseRoofline(
        phase=phase.name,
        arithmetic_intensity=intensity,
        compute_seconds=compute,
        memory_seconds=memory,
        regime=regime,
    )


def classify_report(
    report: RunReport, arch: ArchitectureSpec
) -> List[PhaseRoofline]:
    """Roofline-classify every phase of a report."""
    return [classify_phase(phase, arch) for phase in report.phases]


def machine_balance(arch: ArchitectureSpec) -> float:
    """Ops per word at which compute and bandwidth roofs meet.

    Peak compute counts both PE arrays at the clock; peak bandwidth is
    the DRAM interface.  Phases with arithmetic intensity above this
    balance are compute-bound on this machine.
    """
    peak_ops = (
        (arch.array_2d.num_pes + arch.array_1d.num_pes)
        * arch.clock_hz
    )
    peak_words = arch.dram.bandwidth_bytes_per_s / arch.word_bytes
    return peak_ops / peak_words


def regime_summary(
    report: RunReport, arch: ArchitectureSpec
) -> Dict[str, Regime]:
    """Phase name -> binding regime."""
    return {
        entry.phase: entry.regime
        for entry in classify_report(report, arch)
    }
