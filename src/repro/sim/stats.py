"""Execution statistics, reports and energy accounting.

Executors decompose one Transformer layer into *phases* (QKV, MHA,
Add & LayerNorm, FFN).  Each phase records its compute makespan, how
long each PE array was busy, its DRAM traffic and its access/op counts;
reports aggregate phases into end-to-end latency, utilization
(Figure 10) and an Accelergy-style energy breakdown (Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec


@dataclass(frozen=True)
class OpCost:
    """Cost of one Einsum execution on one PE array."""

    name: str
    array: PEArrayKind
    load: float
    cycles: float
    seconds: float


@dataclass
class PhaseStats:
    """Statistics for one execution phase of a layer.

    Attributes:
        name: Phase name (``qkv``/``mha``/``layernorm``/``ffn``).
        compute_seconds: Compute-schedule makespan of the phase.
        busy_seconds: Busy time per PE array within the makespan.
        dram_words: Words moved across the DRAM interface.
        overlap_dram: Whether DRAM traffic is double-buffered behind
            compute (fused dataflows) or serialized with it (unfused
            staging).
        ops_2d: Scalar operations executed on the 2D array.
        ops_1d: Scalar operations executed on the 1D array.
        buffer_words: Global-buffer access count (words).
        rf_words: Register-file access count (words).
    """

    name: str
    compute_seconds: float
    busy_seconds: Dict[PEArrayKind, float] = field(default_factory=dict)
    dram_words: float = 0.0
    overlap_dram: bool = True
    ops_2d: float = 0.0
    ops_1d: float = 0.0
    buffer_words: float = 0.0
    rf_words: float = 0.0

    def dram_seconds(self, arch: ArchitectureSpec) -> float:
        """Time to move this phase's DRAM traffic."""
        return arch.dram_seconds(self.dram_words)

    def latency_seconds(self, arch: ArchitectureSpec) -> float:
        """Phase latency: compute/DRAM overlapped or serialized."""
        dram = self.dram_seconds(arch)
        if self.overlap_dram:
            return max(self.compute_seconds, dram)
        return self.compute_seconds + dram

    def scaled(self, factor: float) -> "PhaseStats":
        """This phase with every extensive quantity multiplied."""
        return PhaseStats(
            name=self.name,
            compute_seconds=self.compute_seconds * factor,
            busy_seconds={
                k: v * factor for k, v in self.busy_seconds.items()
            },
            dram_words=self.dram_words * factor,
            overlap_dram=self.overlap_dram,
            ops_2d=self.ops_2d * factor,
            ops_1d=self.ops_1d * factor,
            buffer_words=self.buffer_words * factor,
            rf_words=self.rf_words * factor,
        )


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy by memory-hierarchy component (Figure 13), in pJ."""

    dram_pj: float
    buffer_pj: float
    rf_pj: float
    pe_pj: float

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.buffer_pj + self.rf_pj + self.pe_pj

    def fractions(self) -> Dict[str, float]:
        """Component shares of total energy (sum to 1)."""
        total = self.total_pj or 1.0
        return {
            "dram": self.dram_pj / total,
            "buffer": self.buffer_pj / total,
            "rf": self.rf_pj / total,
            "pe": self.pe_pj / total,
        }


@dataclass
class RunReport:
    """End-to-end report for one executor on one workload layer.

    Latencies and energies are *per Transformer layer*; multiply by the
    model's layer count for stack totals (ratios are unchanged).
    """

    executor: str
    workload: str
    architecture: str
    phases: List[PhaseStats] = field(default_factory=list)
    #: Worst search outcome behind the report's phases: ``complete``,
    #: ``budget_exhausted`` or ``fallback:<rung>`` (see
    #: :mod:`repro.resilience.budget`).
    provenance: str = "complete"

    def phase(self, name: str) -> PhaseStats:
        """Look up a phase by name."""
        for ph in self.phases:
            if ph.name == name:
                return ph
        raise KeyError(
            f"report for {self.executor!r} has no phase {name!r}"
        )

    def latency_seconds(self, arch: ArchitectureSpec) -> float:
        """Total per-layer latency (phases run back to back)."""
        return sum(ph.latency_seconds(arch) for ph in self.phases)

    def phase_latencies(
        self, arch: ArchitectureSpec
    ) -> Dict[str, float]:
        """Phase name -> latency seconds."""
        return {
            ph.name: ph.latency_seconds(arch) for ph in self.phases
        }

    def utilization(
        self, arch: ArchitectureSpec
    ) -> Dict[PEArrayKind, float]:
        """Useful-work utilization per PE array (Figure 10).

        The fraction of the array's peak op throughput actually spent
        on the layer's scalar operations: ``ops / (PEs * clock *
        latency)``.  Occupancy of *stalled or inefficiently mapped*
        cycles does not count -- a dataflow that strands PE rows (FLAT
        on a 256-row array) or leaves an array idle behind a serialized
        stage reads low, exactly as the paper measures it.
        """
        total = self.latency_seconds(arch)
        if total <= 0:
            return {kind: 0.0 for kind in PEArrayKind}
        ops: Dict[PEArrayKind, float] = {
            PEArrayKind.ARRAY_2D: 0.0,
            PEArrayKind.ARRAY_1D: 0.0,
        }
        for ph in self.phases:
            ops[PEArrayKind.ARRAY_2D] += ph.ops_2d
            ops[PEArrayKind.ARRAY_1D] += ph.ops_1d
        result: Dict[PEArrayKind, float] = {}
        for kind, total_ops in ops.items():
            peak = arch.array(kind).num_pes * arch.clock_hz * total
            result[kind] = min(1.0, total_ops / peak)
        return result

    def busy_fraction(
        self, arch: ArchitectureSpec
    ) -> Dict[PEArrayKind, float]:
        """Occupancy (busy time / latency) per array -- a diagnostic
        complement to :meth:`utilization`."""
        total = self.latency_seconds(arch)
        if total <= 0:
            return {kind: 0.0 for kind in PEArrayKind}
        busy: Dict[PEArrayKind, float] = {
            kind: 0.0 for kind in PEArrayKind
        }
        for ph in self.phases:
            for kind, seconds in ph.busy_seconds.items():
                busy[kind] += seconds
        return {
            kind: min(1.0, seconds / total)
            for kind, seconds in busy.items()
        }

    def dram_words(self) -> float:
        """Total DRAM traffic in words."""
        return sum(ph.dram_words for ph in self.phases)

    def energy(self, arch: ArchitectureSpec) -> EnergyBreakdown:
        """Aggregate Accelergy-style energy breakdown."""
        model = arch.energy
        dram = buffer = rf = pe = 0.0
        for ph in self.phases:
            dram += model.dram_energy_pj(ph.dram_words)
            buffer += model.buffer_energy_pj(ph.buffer_words)
            rf += model.rf_energy_pj(ph.rf_words)
            pe += model.pe_energy_pj(ph.ops_2d, ph.ops_1d)
        return EnergyBreakdown(
            dram_pj=dram, buffer_pj=buffer, rf_pj=rf, pe_pj=pe
        )
