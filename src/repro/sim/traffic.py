"""DRAM traffic models.

Traffic is where fusion pays off: unfused execution round-trips every
intermediate (including the ``B*H*P^2`` attention-score matrices)
through DRAM, while fused dataflows keep them on chip.  Weight
*streaming* is unavoidable whenever a layer's weights exceed the global
buffer (always true for the large models here), so the streaming policy
-- how often weights are refetched while iterating over tokens --
separates naive staging from TileSeek-optimized tiling.

All quantities are in words.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.arch.spec import ArchitectureSpec
from repro.model.workload import Workload


def gemm_traffic_optimal(
    m: int, n: int, k: int, buffer_words: int
) -> float:
    """Near-optimal tiled-GEMM DRAM traffic.

    Classic communication lower bound: beyond compulsory traffic for
    the operands and result, a GEMM of ``m x k @ k x n`` with on-chip
    capacity ``S`` moves at least ``2*m*n*k / sqrt(S)`` words.
    TileSeek-style tiling approaches this bound.
    """
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dims must be positive")
    if buffer_words <= 0:
        raise ValueError("buffer_words must be positive")
    compulsory = m * k + k * n + m * n
    refetch = 2.0 * m * n * k / math.sqrt(buffer_words)
    return float(compulsory) + refetch


def gemm_traffic_streamed(
    m: int, n: int, k: int, buffer_words: int,
    residency_fraction: float = 0.5,
) -> float:
    """Token-stationary streamed-GEMM DRAM traffic (naive staging).

    Unfused kernels keep a chunk of ``T`` token rows resident (inputs
    plus outputs) and stream the whole ``k x n`` weight matrix once per
    chunk.  The weight refetch count is ``ceil(m / T)`` with
    ``T = residency_fraction * buffer / (k + n)``.

    Args:
        m: Token rows (``B * P``).
        n: Output features.
        k: Input features (weights are ``k x n``).
        buffer_words: On-chip buffer capacity in words.
        residency_fraction: Buffer share usable for token residency
            (the rest double-buffers streamed weights).
    """
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dims must be positive")
    if not 0.0 < residency_fraction <= 1.0:
        raise ValueError("residency_fraction must be in (0, 1]")
    tokens_resident = max(
        1, int(residency_fraction * buffer_words // (k + n))
    )
    weight_passes = math.ceil(m / tokens_resident)
    weights = float(k) * n
    activations = float(m) * (k + n)
    return weights * weight_passes + activations


def weight_stream_traffic(
    m: int, n: int, k: int, buffer_words: int, optimal: bool
) -> float:
    """Weight-only DRAM traffic of a fused GEMM.

    Fused dataflows keep activations on chip, so a layer's GEMM only
    moves its ``k x n`` weights (which never fit on chip for the models
    evaluated).  With heuristic token-stationary staging the weights
    are refetched once per resident token chunk; TileSeek-style tiling
    approaches the ``2*m*n*k/sqrt(S)`` communication bound instead.
    """
    if min(m, n, k) <= 0:
        raise ValueError("GEMM dims must be positive")
    weights = float(k) * n
    if optimal:
        return weights + 2.0 * m * n * k / math.sqrt(buffer_words)
    tokens_resident = max(1, int(0.5 * buffer_words // (k + n)))
    return weights * math.ceil(m / tokens_resident)


def spill_words(tensor_words: float) -> float:
    """Round-trip cost of spilling an intermediate (write + read)."""
    return 2.0 * tensor_words


def kv_cache_words(workload: Workload) -> float:
    """Words to hold the K and V tensors of one layer
    (``2 * B * M * D``)."""
    return workload.kv_words


def kv_reload_traffic(
    workload: Workload,
    arch: ArchitectureSpec,
    q_tile_tokens: int,
) -> Tuple[float, int]:
    """K/V spill-and-reload traffic for the 1-pass attention loop.

    Every Q outer tile streams the full K/V sequence from off-chip
    memory (Figure 3) unless K/V fit in the buffer, in which case they
    are fetched once.  Larger Q tiles mean fewer K/V passes -- the main
    lever TileSeek's ``P`` tiling factor controls.

    Args:
        workload: The problem instance.
        arch: Target architecture (buffer capacity gates residency).
        q_tile_tokens: Tokens per Q outer tile (per batch element).

    Returns:
        ``(words, passes)``: total K/V DRAM words (initial write plus
        reloads) and the number of read passes.
    """
    if q_tile_tokens <= 0:
        raise ValueError("q_tile_tokens must be positive")
    kv_words = kv_cache_words(workload)
    per_batch_kv = kv_words / workload.batch
    q_tiles = math.ceil(workload.seq_len / q_tile_tokens)
    if per_batch_kv <= 0.5 * arch.buffer_words:
        passes = 1
        read = kv_words
    else:
        passes = q_tiles
        # Under a causal mask each Q tile only reads keys up to its
        # own position: half the dense reads on average.
        read = kv_words * passes * workload.attention_work_fraction
    write = workload.kv_spill_words
    return write + read, passes


def unfused_attention_spills(workload: Workload) -> float:
    """DRAM round trips of unfused attention intermediates.

    The score matrix ``QK^T`` (``B*H*P^2``) is written once and read by
    softmax; the softmax output is written and read by the ``A x V``
    GEMM: four score-sized transfers, plus the attention output spill.
    """
    scores = workload.score_elements
    av = workload.activation_words
    return 4.0 * scores + spill_words(av)
