"""TileSeek: MCTS-based outer-tiling search (Section 5).

TileSeek chooses the *outer* tiling factors ``[B, D, M1, P, S]`` that
govern off-chip <-> on-chip data movement for the fully fused layer.
Candidate configurations are validated against the Table-2 per-module
buffer model; feasible leaves are scored by the analytical simulator
(DRAM energy or latency) and the scores drive UCB-guided Monte Carlo
Tree Search.

Evaluation runs batched by default: rollout frontiers and prune
probes are priced through :class:`BatchedTilingEvaluator`'s
vectorized array math, with the scalar path retained as a
byte-identical differential oracle (``REPRO_SCALAR_EVAL``).
"""

from repro.tileseek.batched import (
    BatchedAssessment,
    BatchedTilingEvaluator,
    exactly_priceable,
    table2_module_words,
)
from repro.tileseek.buffer_model import (
    TilingConfig,
    fused_buffer_requirement,
    layer_buffer_requirement,
)
from repro.tileseek.evaluate import TilingAssessment, assess_tiling
from repro.tileseek.mcts import (
    MCTSStats,
    mcts_search,
    mcts_search_batched,
)
from repro.tileseek.search import TileSeek, TileSeekResult

__all__ = [
    "BatchedAssessment",
    "BatchedTilingEvaluator",
    "MCTSStats",
    "TileSeek",
    "TileSeekResult",
    "TilingAssessment",
    "TilingConfig",
    "assess_tiling",
    "exactly_priceable",
    "fused_buffer_requirement",
    "layer_buffer_requirement",
    "mcts_search",
    "mcts_search_batched",
    "table2_module_words",
]
