"""TileSeek: MCTS-based outer-tiling search (Section 5).

TileSeek chooses the *outer* tiling factors ``[B, D, M1, P, S]`` that
govern off-chip <-> on-chip data movement for the fully fused layer.
Candidate configurations are validated against the Table-2 per-module
buffer model; feasible leaves are scored by the analytical simulator
(DRAM energy or latency) and the scores drive UCB-guided Monte Carlo
Tree Search.
"""

from repro.tileseek.buffer_model import (
    TilingConfig,
    fused_buffer_requirement,
    layer_buffer_requirement,
)
from repro.tileseek.evaluate import TilingAssessment, assess_tiling
from repro.tileseek.mcts import MCTSStats, mcts_search
from repro.tileseek.search import TileSeek, TileSeekResult

__all__ = [
    "MCTSStats",
    "TileSeek",
    "TileSeekResult",
    "TilingAssessment",
    "TilingConfig",
    "assess_tiling",
    "fused_buffer_requirement",
    "layer_buffer_requirement",
    "mcts_search",
]
