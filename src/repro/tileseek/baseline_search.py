"""Baseline tiling searchers for the TileSeek ablation.

Random search and exhaustive grid search over the same candidate
space, used to show (tests + ablation benchmark) that MCTS reaches the
exhaustive optimum with far fewer leaf evaluations and beats random
search at equal budget.
"""

from __future__ import annotations

import itertools
import random
from typing import Tuple

from repro.arch.spec import ArchitectureSpec
from repro.model.workload import Workload
from repro.tileseek.evaluate import assess_tiling, reward_for
from repro.tileseek.mcts import MCTSStats
from repro.tileseek.search import (
    FACTOR_ORDER,
    TileSeek,
    TileSeekResult,
)


class RandomTilingSearch(TileSeek):
    """Uniform random sampling over the candidate grid."""

    def search(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> TileSeekResult:
        grid = self.candidate_grid(workload, arch)
        fixed = self.fixed_factors(arch)
        reference = self._reference_words(workload, arch, fixed,
                                          grid=grid)
        rng = random.Random(self.seed)
        best_reward = -1.0
        best: Tuple[int, ...] = tuple(
            min(grid[name]) for name in FACTOR_ORDER
        )
        for _ in range(self.iterations):
            assignment = tuple(
                rng.choice(grid[name]) for name in FACTOR_ORDER
            )
            cfg = self._config_from(assignment, fixed)
            reward = reward_for(
                assess_tiling(cfg, workload, arch),
                reference,
                self.reward_metric,
            )
            if reward > best_reward:
                best_reward = reward
                best = assignment
        config = self._config_from(best, fixed)
        return TileSeekResult(
            config=config,
            assessment=assess_tiling(config, workload, arch),
            stats=MCTSStats(
                iterations=self.iterations,
                evaluations=self.iterations,
                best_reward=best_reward,
                best_assignment=best,
                tree_nodes=0,
            ),
        )


class ExhaustiveTilingSearch(TileSeek):
    """Full grid enumeration (the ground-truth optimum)."""

    def search(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> TileSeekResult:
        grid = self.candidate_grid(workload, arch)
        fixed = self.fixed_factors(arch)
        reference = self._reference_words(workload, arch, fixed,
                                          grid=grid)
        best_reward = -1.0
        best: Tuple[int, ...] = tuple(
            min(grid[name]) for name in FACTOR_ORDER
        )
        evaluations = 0
        for assignment in itertools.product(
            *(grid[name] for name in FACTOR_ORDER)
        ):
            cfg = self._config_from(assignment, fixed)
            reward = reward_for(
                assess_tiling(cfg, workload, arch),
                reference,
                self.reward_metric,
            )
            evaluations += 1
            if reward > best_reward:
                best_reward = reward
                best = assignment
        config = self._config_from(best, fixed)
        return TileSeekResult(
            config=config,
            assessment=assess_tiling(config, workload, arch),
            stats=MCTSStats(
                iterations=evaluations,
                evaluations=evaluations,
                best_reward=best_reward,
                best_assignment=best,
                tree_nodes=0,
            ),
        )
