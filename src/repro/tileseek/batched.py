"""Vectorized candidate evaluation: the Table-2 buffer model, the
fused-dataflow traffic model and the MCTS reward as batched NumPy
array math.

The scalar modules (:mod:`repro.tileseek.buffer_model`,
:mod:`repro.tileseek.evaluate`) price one :class:`TilingConfig` at a
time -- pure Python all the way down, which makes them the search hot
loop's bottleneck.  This module re-expresses the same formulas over an
``(N, 5)`` matrix of ``[b, d, m1, p, s]`` candidate vectors so a whole
frontier is priced in one call.  The scalar path stays the
differential oracle (``REPRO_SCALAR_EVAL``): every array here is
required to be *bit-identical* to a loop over the scalar functions,
which the property suite (``tests/tileseek/test_batched.py``) and the
throughput benchmark both assert.

Two exactness rules make that possible:

* **Integer exactness.**  Table-2 footprints are exact integer word
  counts.  The batch kernel evaluates them in ``int64`` when a
  monotonicity corner check (the formulas at the columnwise maxima)
  proves no intermediate can overflow, and falls back to
  object-dtype arrays -- elementwise Python integers -- when it
  cannot.  Feasibility compares are therefore always exact, never
  rounded through a float.
* **Float-operation identity.**  The traffic/energy/reward numbers are
  floats; the batch kernel performs *the same IEEE operations in the
  same order* as the scalar code (same associativity, same
  divisions), so results match bit for bit, not just within an
  epsilon.  Inputs big enough to round during the int -> float64
  conversion (beyond :data:`EXACT_FLOAT_LIMIT`) are routed back
  through the scalar path by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.arch.spec import ArchitectureSpec
from repro.model.config import ModelConfig
from repro.model.workload import Workload
from repro.tileseek.buffer_model import (
    TilingConfig,
    fused_buffer_requirement,
    intra_tile_p_prime,
)
from repro.tileseek.evaluate import TilingAssessment

#: Column order of a candidate matrix (mirrors ``FACTOR_ORDER``).
FACTOR_COLUMNS: Tuple[str, ...] = ("b", "d", "m1", "p", "s")

#: Largest value a factor may take before int -> float64 conversion
#: could round (2**53 exactly; kept with headroom for products that
#: feed float division, e.g. ``b * p``).
EXACT_FLOAT_LIMIT = 1 << 50

_INT64_LIMIT = (1 << 63) - 1

#: float64 has 53 significand bits; integers beyond this round.
_FLOAT64_EXACT = 1 << 53


def exactly_priceable(assignment: Sequence[int]) -> bool:
    """Whether float64 batch math is bit-identical to the scalar path.

    The scalar traffic model divides exact Python integers
    (``total_tokens / (b * p)``, correctly rounded by CPython); the
    batch path divides their float64 conversions.  Both round
    identically only when every operand converts exactly: each factor
    below :data:`EXACT_FLOAT_LIMIT` and the ``b * p`` token-group
    product within float64's 53-bit significand.  Grid candidates
    always qualify; pathological warm starts may not, and callers
    route those rows through the scalar evaluator instead.
    """
    b, _, _, p, _ = (int(v) for v in assignment)
    return (
        max(int(v) for v in assignment) <= EXACT_FLOAT_LIMIT
        and b * p <= _FLOAT64_EXACT
    )


def table2_module_words(model: ModelConfig, b, d, m1, m0, p, s,
                        p_prime) -> dict:
    """Table-2 footprints for columns of tiling factors.

    Accepts NumPy arrays (``int64`` or object-dtype Python integers)
    or plain scalars; every expression matches the scalar functions in
    :mod:`repro.tileseek.buffer_model` term for term, so results are
    exact integers.

    Returns:
        ``{"qkv": ..., "mha": ..., "layernorm": ..., "ffn": ...}``
        with one words value (or array) per module.
    """
    h, e, f = model.heads, model.e_head, model.f_head
    hk = model.effective_kv_heads
    qkv = (
        b * d * (4 * p + 3 * m1 * m0)
        + d * e * (h + 2 * hk)
        + 2 * b * h * p
    )
    mha = (
        b * e * (h * p + 2 * hk * m1 * m0)
        + b * h * p * (2 + 2 * f)
        + 4 * m0 * p_prime
        + 18 * p_prime
    )
    layernorm = 3 * b * h * f * p + 4 * h * f * p_prime
    ffn = (
        h * f * (2 * b * p + s)
        + s * (p + 2)
        + 2 * s * p_prime
    )
    return {"qkv": qkv, "mha": mha, "layernorm": layernorm,
            "ffn": ffn}


def words_dtype_for(model: ModelConfig, corner: TilingConfig):
    """The narrowest exact dtype for Table-2 math up to ``corner``.

    ``corner`` holds the columnwise maxima of the batch.  The Table-2
    formulas are sums of non-negative products and monotone in every
    factor, so every elementwise intermediate is bounded by the fused
    requirement at the corner; if that fits ``int64``, the whole batch
    does.  Otherwise fall back to object dtype (exact Python ints).
    """
    bound = fused_buffer_requirement(corner, model)
    return np.int64 if bound <= _INT64_LIMIT else object


@dataclass(frozen=True)
class BatchedAssessment:
    """Columnar :class:`TilingAssessment`: one array per field.

    ``kv_passes`` / ``weight_passes`` are float64 arrays holding exact
    integer values (the scalar path's ``math.ceil`` results); they are
    cast back to ``int`` on materialization.
    """

    feasible: np.ndarray
    buffer_words_required: np.ndarray
    dram_words: np.ndarray
    dram_seconds: np.ndarray
    energy_pj: np.ndarray
    kv_passes: np.ndarray
    weight_passes: np.ndarray

    def __len__(self) -> int:
        return len(self.dram_words)


class BatchedTilingEvaluator:
    """Prices ``(N, 5)`` candidate matrices against one workload/arch.

    All workload- and architecture-level constants are hoisted at
    construction; each :meth:`assess` call is then a short sequence of
    elementwise array operations mirroring
    :func:`repro.tileseek.evaluate.assess_tiling` exactly.

    Args:
        workload: The problem instance.
        arch: Target architecture.
        m0: Inner K/V tile length (2D-array columns).
        rows: 2D-array rows (sets ``p' = ceil(p / rows)``).
        reward_metric: ``"energy"`` or ``"latency"`` (both monotone in
            DRAM words, as in the scalar reward).
    """

    def __init__(
        self,
        workload: Workload,
        arch: ArchitectureSpec,
        m0: int,
        rows: int,
        reward_metric: str = "energy",
    ) -> None:
        if reward_metric not in ("energy", "latency"):
            raise ValueError(
                f"unknown reward metric {reward_metric!r}"
            )
        model = workload.model
        self.model = model
        self.m0 = m0
        self.rows = rows
        self.reward_metric = reward_metric
        self._buffer_words = arch.buffer_words
        # Traffic-model constants, precomputed exactly as the scalar
        # expressions in ``dram_traffic_words`` spell them.
        self._qkv_weights = (
            model.d_model * model.e_head
            * (model.heads + 2 * model.effective_kv_heads)
        )
        self._ffn_weights = 2.0 * model.d_model * model.ffn_hidden
        self._weight_words = self._qkv_weights + self._ffn_weights
        self._total_tokens = workload.batch * workload.seq_len
        self._activations = workload.activation_words
        self._kv_cache = workload.kv_words
        self._kv_spill = workload.kv_spill_words
        self._awf = workload.attention_work_fraction
        self._batch = workload.batch
        self._seq_len = workload.seq_len
        self._word_bytes = arch.word_bytes
        self._dram_bandwidth = arch.dram.bandwidth_bytes_per_s
        self._dram_pj_per_word = arch.energy.dram_pj_per_word

    # ------------------------------------------------------------------
    # Candidate-matrix construction
    # ------------------------------------------------------------------
    def matrix_from(
        self, assignments: Sequence[Sequence[int]]
    ) -> np.ndarray:
        """An ``(N, 5)`` candidate matrix in the narrowest exact dtype.

        Values arrive as Python integers (tuples in ``FACTOR_ORDER``);
        the dtype is chosen by the corner check so Table-2 math cannot
        overflow.
        """
        matrix = np.array(list(assignments), dtype=object)
        maxima = [int(column.max()) for column in matrix.T]
        if self.words_dtype(maxima) is np.int64:
            return matrix.astype(np.int64)
        return matrix

    def words_dtype(self, maxima: Sequence[int]):
        """Exact Table-2 dtype for candidates bounded by ``maxima``."""
        b, d, m1, p, s = (int(v) for v in maxima)
        corner = TilingConfig(
            b=b, d=d, m1=m1, m0=self.m0, p=p, s=s,
            p_prime=intra_tile_p_prime(p, self.rows),
        )
        return words_dtype_for(self.model, corner)

    def completion_matrix(
        self,
        prefix: Sequence[int],
        values: Sequence[int],
        minima: Sequence[int],
        dtype=np.int64,
    ) -> np.ndarray:
        """Minimal-completion rows for a whole prefix frontier.

        Row ``i`` is ``prefix + (values[i],)`` completed with the
        per-level ``minima`` -- exactly the lower-bound configuration
        the scalar prune prices one candidate at a time.
        """
        level = len(prefix)
        matrix = np.empty((len(values), len(FACTOR_COLUMNS)),
                          dtype=dtype)
        for column, value in enumerate(prefix):
            matrix[:, column] = value
        matrix[:, level] = values
        for column in range(level + 1, len(FACTOR_COLUMNS)):
            matrix[:, column] = minima[column]
        return matrix

    # ------------------------------------------------------------------
    # Vectorized Table-2 buffer model
    # ------------------------------------------------------------------
    def _columns(self, matrix: np.ndarray):
        b, d, m1, p, s = (matrix[:, i] for i in range(5))
        p_prime = -(-p // self.rows)
        return b, d, m1, p, s, p_prime

    def module_words(self, matrix: np.ndarray) -> dict:
        """Per-module Table-2 words, one array per fused module."""
        b, d, m1, p, s, p_prime = self._columns(matrix)
        return table2_module_words(
            self.model, b, d, m1, self.m0, p, s, p_prime
        )

    def buffer_words(self, matrix: np.ndarray) -> np.ndarray:
        """Peak fused footprint per candidate (exact integers)."""
        words = self.module_words(matrix)
        return np.maximum.reduce(list(words.values()))

    def feasible(self, matrix: np.ndarray) -> np.ndarray:
        """Whether each candidate's footprint fits the buffer."""
        mask = self.buffer_words(matrix) <= self._buffer_words
        return np.asarray(mask, dtype=bool)

    def viable_values(
        self,
        prefix: Sequence[int],
        values: Sequence[int],
        minima: Sequence[int],
        dtype=np.int64,
    ) -> List[int]:
        """The level's candidates whose minimal completion fits.

        The batched equivalent of filtering a level through the scalar
        ``prune`` callback: one vectorized call per prefix frontier
        instead of one Table-2 evaluation per candidate.
        """
        matrix = self.completion_matrix(prefix, values, minima,
                                        dtype=dtype)
        mask = self.feasible(matrix)
        return [value for value, ok in zip(values, mask) if ok]

    # ------------------------------------------------------------------
    # Vectorized traffic / energy / reward
    # ------------------------------------------------------------------
    def assess(self, matrix: np.ndarray) -> BatchedAssessment:
        """Batched :func:`assess_tiling`: same IEEE operations in the
        same order, so every column matches the scalar path bitwise."""
        required = self.buffer_words(matrix)
        feasible = np.asarray(required <= self._buffer_words,
                              dtype=bool)
        b_float = matrix[:, 0].astype(np.float64)
        p_float = matrix[:, 3].astype(np.float64)
        bp_float = (matrix[:, 0] * matrix[:, 3]).astype(np.float64)
        # Weight passes: one per resident token group (scalar:
        # ``max(1, ceil(total_tokens / (b * p)))``).
        groups = np.maximum(
            1.0, np.ceil(self._total_tokens / bp_float)
        )
        # K/V passes: a per-batch-element cache that fits half the
        # buffer is fetched once; otherwise one reload per Q tile.
        per_batch_kv = self._kv_cache / self._batch * b_float
        kv_fits = per_batch_kv <= 0.5 * self._buffer_words
        reload_passes = np.ceil(self._seq_len / p_float)
        kv_passes = np.where(kv_fits, 1.0, reload_passes)
        kv_reads = np.where(
            kv_fits,
            self._kv_cache,
            self._kv_cache * reload_passes * self._awf,
        )
        kv_words = self._kv_spill + kv_reads
        total = (
            self._activations  # layer input read
            + self._activations  # layer output write
            + self._weight_words * groups
            + kv_words
        )
        dram_seconds = (
            total * self._word_bytes
        ) / self._dram_bandwidth
        energy_pj = total * self._dram_pj_per_word
        return BatchedAssessment(
            feasible=feasible,
            buffer_words_required=required,
            dram_words=total,
            dram_seconds=dram_seconds,
            energy_pj=energy_pj,
            kv_passes=kv_passes,
            weight_passes=groups,
        )

    def rewards(
        self, assessment: BatchedAssessment, reference: float
    ) -> np.ndarray:
        """Batched :func:`reward_for`: 0 for infeasible candidates,
        else the traffic ratio against ``reference``."""
        total = assessment.dram_words
        safe = np.where(total > 0.0, total, 1.0)
        ratio = np.where(total <= 0.0, 1.0, reference / safe)
        return np.where(assessment.feasible, ratio, 0.0)

    def price(
        self, matrix: np.ndarray, reference: float
    ) -> Tuple[np.ndarray, BatchedAssessment]:
        """Assess a candidate matrix and score it in one call."""
        assessment = self.assess(matrix)
        return self.rewards(assessment, reference), assessment

    # ------------------------------------------------------------------
    # Scalar materialization
    # ------------------------------------------------------------------
    def assessment_at(
        self, assessment: BatchedAssessment, index: int
    ) -> TilingAssessment:
        """Row ``index`` as a scalar :class:`TilingAssessment`.

        Native Python types throughout (``int``/``float``/``bool``),
        so serialized results keep the scalar path's byte layout.
        """
        return TilingAssessment(
            feasible=bool(assessment.feasible[index]),
            buffer_words_required=int(
                assessment.buffer_words_required[index]
            ),
            dram_words=float(assessment.dram_words[index]),
            dram_seconds=float(assessment.dram_seconds[index]),
            energy_pj=float(assessment.energy_pj[index]),
            kv_passes=int(assessment.kv_passes[index]),
            weight_passes=int(assessment.weight_passes[index]),
        )
