"""The Table-2 on-chip buffer model.

End-to-end fusion executes a complete tile per layer, so the buffer
must hold each layer's input/output activations, recurrent MHA state
and pipeline staging buffers simultaneously (Section 5.2).  Table 2
gives the per-module requirement in words:

=================  ====================================================
module             buffer requirement
=================  ====================================================
QKV projection     ``B*D*(4P + 3*M1*M0) + 3*D*H*E + 2*B*H*P``
MHA                ``B*H*E*(P + 2*M1*M0) + B*H*P*(2 + 2F)``
                   ``+ 4*M0*P' + 18*P'``
Add & LayerNorm    ``3*B*H*F*P + 4*H*F*P'``
FFN                ``H*F*(2*B*P + S) + S*(P + 2) + 2*S*P'``
=================  ====================================================

Capitals denote *per-tile* extents: ``B`` batch per tile, ``D`` the
resident model-dimension chunk, ``P`` the Q-tile token count,
``M1*M0`` the resident key/value chunk, ``S`` the resident FFN hidden
chunk and ``P'`` the intra-tile rows handled per PE row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.model.config import ModelConfig

#: The fused sub-layers whose tiles must all fit (Section 5.2).
FUSED_MODULES = ("qkv", "mha", "layernorm", "ffn")


@dataclass(frozen=True)
class TilingConfig:
    """One outer-tiling configuration (a TileSeek search point).

    Attributes:
        b: Batch elements per outer tile.
        d: Resident model-dimension chunk (weight-slice depth).
        m1: Resident inner key/value tiles (the ``M1`` factor).
        m0: Inner key/value tile length (set by the PE mapping).
        p: Q-tile token count per batch element.
        s: Resident FFN hidden chunk.
        p_prime: Intra-tile sequence rows per PE row (2D array rows).
    """

    b: int
    d: int
    m1: int
    m0: int
    p: int
    s: int
    p_prime: int

    def __post_init__(self) -> None:
        for name in ("b", "d", "m1", "m0", "p", "s", "p_prime"):
            if getattr(self, name) <= 0:
                raise ValueError(f"tiling factor {name} must be positive")

    def as_dict(self) -> Dict[str, int]:
        """Factor name -> value."""
        return {
            "b": self.b, "d": self.d, "m1": self.m1, "m0": self.m0,
            "p": self.p, "s": self.s, "p_prime": self.p_prime,
        }


def qkv_buffer_words(cfg: TilingConfig, model: ModelConfig) -> int:
    """Table 2, row 1: QKV projection tile footprint.

    The weight-slice term generalizes to grouped-query attention: the
    K and V slices carry ``kv_heads`` instead of ``heads`` (equal for
    classic MHA, recovering the paper's ``3*D*H*E``).

    All Table-2 footprints are exact integer word counts: every term
    is a product of integer tile factors, and the one fractional
    quantity in the model -- tokens per PE row -- is ceil'd into
    ``p_prime`` before it ever enters a formula.  Feasibility
    comparisons against the (integer) buffer capacity are therefore
    exact, with no float rounding at the boundary.
    """
    h, e = model.heads, model.e_head
    hk = model.effective_kv_heads
    return (
        cfg.b * cfg.d * (4 * cfg.p + 3 * cfg.m1 * cfg.m0)
        + cfg.d * e * (h + 2 * hk)
        + 2 * cfg.b * h * cfg.p
    )


def mha_buffer_words(cfg: TilingConfig, model: ModelConfig) -> int:
    """Table 2, row 2: MHA tile footprint (inputs, recurrent state,
    output and per-Einsum staging buffers).

    The resident K/V chunk carries ``kv_heads`` under grouped-query
    attention (= ``heads`` for MHA, the paper's form).
    """
    h, e, f = model.heads, model.e_head, model.f_head
    hk = model.effective_kv_heads
    return (
        cfg.b * e * (h * cfg.p + 2 * hk * cfg.m1 * cfg.m0)
        + cfg.b * h * cfg.p * (2 + 2 * f)
        + 4 * cfg.m0 * cfg.p_prime
        + 18 * cfg.p_prime
    )


def layernorm_buffer_words(
    cfg: TilingConfig, model: ModelConfig
) -> int:
    """Table 2, row 3: Add & LayerNorm tile footprint."""
    h, f = model.heads, model.f_head
    return 3 * cfg.b * h * f * cfg.p + 4 * h * f * cfg.p_prime


def ffn_buffer_words(cfg: TilingConfig, model: ModelConfig) -> int:
    """Table 2, row 4: FFN tile footprint."""
    h, f = model.heads, model.f_head
    return (
        h * f * (2 * cfg.b * cfg.p + cfg.s)
        + cfg.s * (cfg.p + 2)
        + 2 * cfg.s * cfg.p_prime
    )


_MODULE_FNS = {
    "qkv": qkv_buffer_words,
    "mha": mha_buffer_words,
    "layernorm": layernorm_buffer_words,
    "ffn": ffn_buffer_words,
}


def layer_buffer_requirement(
    module: str, cfg: TilingConfig, model: ModelConfig
) -> int:
    """Buffer words one fused module needs under ``cfg``."""
    if module not in _MODULE_FNS:
        raise KeyError(
            f"unknown module {module!r}; choose from "
            f"{sorted(_MODULE_FNS)}"
        )
    return _MODULE_FNS[module](cfg, model)


def fused_buffer_requirement(
    cfg: TilingConfig, model: ModelConfig
) -> int:
    """Peak buffer words across the fused encoder layer.

    Modules execute one tile at a time, so the binding constraint is
    the largest per-module footprint.
    """
    return max(
        layer_buffer_requirement(module, cfg, model)
        for module in FUSED_MODULES
    )


def intra_tile_p_prime(p: int, rows: int) -> int:
    """Table 2's ``P'``: intra-tile sequence length per PE row.

    A ``p``-token tile spread over ``rows`` PE rows leaves each row
    ``ceil(p / rows)`` tokens of pipeline-staging state.  Integer
    ceiling division (not float division + round) keeps the boundary
    exact for tiles whose footprint lands on the capacity itself.
    """
    if p <= 0 or rows <= 0:
        raise ValueError("p and rows must be positive")
    return -(-p // rows)


#: Conservative minimal values for the factors a Q-tile bound does not
#: search: one batch element, thin weight/hidden slices, one resident
#: K/V tile.  Shared by the heuristic tiler, TileSeek's grid anchor
#: and the tiling auditor, so their feasibility frontiers agree.
MIN_COMPANION_FACTORS = {"b": 1, "d": 16, "m1": 1, "s": 16}


def q_tile_fits(
    p: int,
    model: ModelConfig,
    buffer_words: int,
    m0: int,
    rows: int,
    modules: tuple = FUSED_MODULES,
) -> bool:
    """Whether a ``p``-token Q tile fits the buffer.

    Evaluated with :data:`MIN_COMPANION_FACTORS` for the non-sequence
    factors -- the most generous assumption, so this is the exact
    feasibility frontier :func:`max_feasible_q_tile` bisects.
    """
    cfg = TilingConfig(
        m0=m0, p=p, p_prime=intra_tile_p_prime(p, rows),
        **MIN_COMPANION_FACTORS,
    )
    need = max(
        layer_buffer_requirement(module, cfg, model)
        for module in modules
    )
    return need <= buffer_words


def max_feasible_q_tile(
    model: ModelConfig,
    seq_len: int,
    buffer_words: int,
    m0: int,
    rows: int,
    modules: tuple = FUSED_MODULES,
) -> int:
    """Largest Q-tile token count whose tile footprint fits the buffer.

    Evaluated with conservative minimal values for the non-sequence
    factors (``b = 1``, thin ``d``/``s`` slices, one resident K/V
    tile), so it is the upper bound any outer tiling can reach on the
    ``p`` axis.  Both the baselines' heuristic tiler and TileSeek's
    candidate grid anchor on this bound.

    Args:
        model: Model shapes.
        seq_len: Upper bound for the tile (the full sequence).
        buffer_words: On-chip buffer capacity in words.
        m0: Inner key/value tile length (2D-array columns).
        rows: 2D-array rows (sets ``P' = ceil(p / rows)``).
        modules: Which Table-2 rows constrain the tile -- all four for
            end-to-end fusion, just ``("mha",)`` for attention-only
            fusion (FLAT / FuseMax).

    Returns:
        The largest feasible ``p`` in ``[1, seq_len]`` (the bound is
        *tight*: ``p`` fits and ``p + 1`` does not, unless ``p`` is
        the full sequence or even ``p = 1`` overflows).
    """

    def feasible(p: int) -> bool:
        return q_tile_fits(
            p, model, buffer_words, m0=m0, rows=rows,
            modules=modules,
        )

    low, high = 1, max(1, seq_len)
    if feasible(high):
        return high
    if not feasible(low):
        return 1
    while high - low > 1:
        mid = (low + high) // 2
        if feasible(mid):
            low = mid
        else:
            high = mid
    return low
