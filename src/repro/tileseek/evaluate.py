"""Tiling-configuration assessment (TileSeek's simulation step).

Where the paper calls Timeloop/Accelergy on each MCTS leaf, this module
prices a configuration analytically: constraint validation against the
Table-2 buffer model, then DRAM traffic and energy under the fused
dataflow.  The traffic terms are exactly the levers the outer factors
control:

* ``b`` and ``p`` set how often the layer's weights re-stream
  (one pass per outer token group),
* ``p`` sets the number of K/V reload passes in the ``m1`` loop,
* ``d``, ``m1`` and ``s`` buy feasibility (smaller resident slices)
  at no traffic cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.spec import ArchitectureSpec
from repro.model.workload import Workload
from repro.tileseek.buffer_model import (
    TilingConfig,
    fused_buffer_requirement,
)


@dataclass(frozen=True)
class TilingAssessment:
    """Outcome of evaluating one tiling configuration.

    Attributes:
        feasible: Whether the Table-2 footprint fits the buffer.
        buffer_words_required: Peak fused footprint (words).
        dram_words: Total per-layer DRAM traffic (words).
        dram_seconds: Transfer time for that traffic.
        energy_pj: DRAM energy (the reward's energy metric).
        kv_passes: K/V read passes implied by the ``p`` factor.
        weight_passes: Weight streaming passes implied by ``b``/``p``.
    """

    feasible: bool
    buffer_words_required: float
    dram_words: float
    dram_seconds: float
    energy_pj: float
    kv_passes: int
    weight_passes: int


def dram_traffic_words(
    cfg: TilingConfig, workload: Workload, buffer_words: int
) -> dict:
    """Per-layer fused-dataflow DRAM traffic under ``cfg``.

    Args:
        cfg: The tiling configuration.
        workload: The problem instance.
        buffer_words: On-chip capacity (a per-batch-element K/V cache
            that fits in half the buffer is fetched once, not per
            Q tile).

    Returns:
        A dict with ``total``, ``kv_passes``, ``weight_passes``,
        ``qkv_weight_words``, ``ffn_weight_words`` and ``kv_words``.
    """
    model = workload.model
    activations = workload.activation_words
    qkv_weights = (
        model.d_model * model.e_head
        * (model.heads + 2 * model.effective_kv_heads)
    )
    ffn_weights = 2.0 * model.d_model * model.ffn_hidden
    # Weight passes: one per resident token group over the flat
    # batch-token pool (token-parallel layers share weights across
    # the batch, so groups never exceed total_tokens / (b * p)).
    total_tokens = workload.batch * workload.seq_len
    groups = max(1, math.ceil(total_tokens / (cfg.b * cfg.p)))
    kv_cache = workload.kv_words
    per_batch_kv = kv_cache / workload.batch * cfg.b
    if per_batch_kv <= 0.5 * buffer_words:
        kv_passes = 1
        kv_reads = kv_cache
    else:
        kv_passes = math.ceil(workload.seq_len / cfg.p)
        kv_reads = (
            kv_cache * kv_passes * workload.attention_work_fraction
        )
    kv_words = workload.kv_spill_words + kv_reads  # spill + reloads
    total = (
        activations  # layer input read
        + activations  # layer output write
        + (qkv_weights + ffn_weights) * groups
        + kv_words
    )
    return {
        "total": total,
        "kv_passes": kv_passes,
        "weight_passes": groups,
        "qkv_weight_words": qkv_weights * groups,
        "ffn_weight_words": ffn_weights * groups,
        "kv_words": kv_words,
    }


def assess_tiling(
    cfg: TilingConfig,
    workload: Workload,
    arch: ArchitectureSpec,
) -> TilingAssessment:
    """Validate and price one tiling configuration."""
    required = fused_buffer_requirement(cfg, workload.model)
    feasible = required <= arch.buffer_words
    traffic = dram_traffic_words(cfg, workload, arch.buffer_words)
    words = traffic["total"]
    return TilingAssessment(
        feasible=feasible,
        buffer_words_required=required,
        dram_words=words,
        dram_seconds=arch.dram_seconds(words),
        energy_pj=arch.energy.dram_energy_pj(words),
        kv_passes=int(traffic["kv_passes"]),
        weight_passes=int(traffic["weight_passes"]),
    )


def reward_for(
    assessment: TilingAssessment,
    reference_words: float,
    metric: str = "energy",
) -> float:
    """MCTS reward: 0 for infeasible leaves, else the traffic ratio
    against a reference configuration (higher is better).

    Both supported metrics (``energy``, ``latency``) are monotone in
    DRAM words under a fixed architecture, matching the paper's note
    that either estimate can serve as the reward signal.
    """
    if metric not in ("energy", "latency"):
        raise ValueError(f"unknown reward metric {metric!r}")
    if not assessment.feasible:
        return 0.0
    if assessment.dram_words <= 0:
        return 1.0
    return reference_words / assessment.dram_words
