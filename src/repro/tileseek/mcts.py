"""Generic Monte Carlo Tree Search over ordered discrete decisions.

TileSeek's search tree (Section 5.1) assigns one outer tiling factor
per tree level; a root-to-leaf path is a complete configuration.  This
module implements the four MCTS phases generically:

* **Selection** -- UCB1 descent through fully expanded nodes,
* **Expansion** -- materialize one untried child,
* **Simulation** -- random rollout to a complete assignment, scored by
  the caller's evaluation function,
* **Backpropagation** -- reward statistics flow back up the path.

The evaluator returns a reward in ``[0, inf)`` (0 = invalid leaf), so
constraint validation is part of the reward signal as well as the
optional ``prune`` callback that drops provably infeasible subtrees.

Two resilience behaviours (both deterministic):

* A level whose candidates are *all* pruned under the current prefix
  is a recorded **dead-end** -- the iteration backpropagates zero
  reward without calling the evaluator and the count is reported in
  :attr:`MCTSStats.dead_ends`.  (Historically this silently fell back
  to the unpruned candidate list, wasting an evaluation on a
  known-infeasible completion.)
* An optional :class:`~repro.resilience.budget.Budget` is charged one
  unit per iteration; on exhaustion the search stops and returns its
  best-so-far incumbent with :attr:`MCTSStats.exhausted` set -- the
  anytime contract.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.resilience.budget import Budget

Assignment = Tuple[int, ...]
Evaluate = Callable[[Assignment], float]
Prune = Callable[[Assignment], bool]


@dataclass
class _Node:
    """One search-tree node: a partial assignment prefix."""

    prefix: Assignment
    untried: List[int]
    children: Dict[int, "_Node"] = field(default_factory=dict)
    visits: int = 0
    total_reward: float = 0.0

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0

    def ucb_score(self, child: "_Node", c: float) -> float:
        """UCB1: exploitation plus exploration bonus."""
        if child.visits == 0:
            return float("inf")
        explore = math.sqrt(math.log(self.visits) / child.visits)
        return child.mean_reward + c * explore


@dataclass(frozen=True)
class MCTSStats:
    """Search summary returned alongside the best assignment.

    Attributes:
        iterations: Rounds actually performed (less than requested
            when a budget ran out).
        evaluations: Evaluator calls (dead-end rollouts skip it).
        dead_ends: Iterations that hit a level with zero viable
            candidates under the current prefix.
        exhausted: Whether a budget stopped the search early.
    """

    iterations: int
    evaluations: int
    best_reward: float
    best_assignment: Assignment
    tree_nodes: int
    dead_ends: int = 0
    exhausted: bool = False


def mcts_search(
    levels: Sequence[Sequence[int]],
    evaluate: Evaluate,
    iterations: int,
    seed: int = 0,
    exploration: float = 1.4,
    prune: Optional[Prune] = None,
    budget: Optional[Budget] = None,
) -> MCTSStats:
    """Run MCTS over a fixed-depth decision tree.

    Args:
        levels: Candidate values per decision level, in order.
        evaluate: Scores a *complete* assignment; 0 marks invalid.
        iterations: Selection/expansion/simulation/backprop rounds.
        seed: RNG seed (search is fully deterministic given it).
        exploration: UCB1 exploration constant.
        prune: Optional predicate on *partial* assignments; True means
            no completion can be feasible, so the child is never
            expanded.  A prefix under which *every* candidate at some
            level is pruned makes the iteration a dead-end: zero
            reward is backpropagated and the evaluator is not called.
        budget: Optional deterministic unit budget, charged one unit
            per iteration; exhaustion ends the search with its
            best-so-far result.

    Returns:
        Search statistics including the best complete assignment seen.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if any(len(values) == 0 for values in levels):
        raise ValueError("every level needs at least one candidate")
    rng = random.Random(seed)
    depth = len(levels)

    def viable_values(prefix: Assignment, level: int) -> List[int]:
        values = list(levels[level])
        if prune is not None:
            values = [v for v in values if not prune(prefix + (v,))]
        return values

    root = _Node(prefix=(), untried=viable_values((), 0))
    best_reward = -1.0
    best_assignment: Assignment = tuple(
        values[0] for values in levels
    )
    evaluations = 0
    dead_ends = 0
    node_count = 1
    performed = 0
    exhausted = False

    for _ in range(iterations):
        if budget is not None and not budget.charge():
            exhausted = True
            break
        performed += 1
        # Selection: descend while fully expanded and not a leaf.
        node = root
        path = [node]
        while (
            not node.untried
            and node.children
            and len(node.prefix) < depth
        ):
            node = max(
                node.children.values(),
                key=lambda ch: path[-1].ucb_score(ch, exploration),
            )
            path.append(node)
        # Expansion: materialize one untried child.
        if node.untried and len(node.prefix) < depth:
            value = node.untried.pop(
                rng.randrange(len(node.untried))
            )
            level = len(node.prefix) + 1
            child = _Node(
                prefix=node.prefix + (value,),
                untried=(
                    viable_values(node.prefix + (value,), level)
                    if level < depth
                    else []
                ),
            )
            node.children[value] = child
            node = child
            path.append(node)
            node_count += 1
        # Simulation: random rollout to a full assignment.  A level
        # with zero viable candidates is a dead-end: every completion
        # is provably infeasible, so back up zero reward and move on
        # rather than burning an evaluation on it.
        assignment = list(node.prefix)
        reward = 0.0
        dead_end = False
        for level in range(len(assignment), depth):
            choices = viable_values(tuple(assignment), level)
            if not choices:
                dead_end = True
                break
            assignment.append(rng.choice(choices))
        if dead_end:
            dead_ends += 1
        else:
            reward = evaluate(tuple(assignment))
            evaluations += 1
            if reward > best_reward:
                best_reward = reward
                best_assignment = tuple(assignment)
        # Backpropagation.
        for visited in path:
            visited.visits += 1
            visited.total_reward += reward

    return MCTSStats(
        iterations=performed,
        evaluations=evaluations,
        best_reward=best_reward,
        best_assignment=best_assignment,
        tree_nodes=node_count,
        dead_ends=dead_ends,
        exhausted=exhausted,
    )
