"""Generic Monte Carlo Tree Search over ordered discrete decisions.

TileSeek's search tree (Section 5.1) assigns one outer tiling factor
per tree level; a root-to-leaf path is a complete configuration.  This
module implements the four MCTS phases generically:

* **Selection** -- UCB1 descent through fully expanded nodes,
* **Expansion** -- materialize one untried child,
* **Simulation** -- random rollout to a complete assignment, scored by
  the caller's evaluation function,
* **Backpropagation** -- reward statistics flow back up the path.

The evaluator returns a reward in ``[0, inf)`` (0 = invalid leaf), so
constraint validation is part of the reward signal as well as the
optional ``prune`` callback that drops provably infeasible subtrees.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

Assignment = Tuple[int, ...]
Evaluate = Callable[[Assignment], float]
Prune = Callable[[Assignment], bool]


@dataclass
class _Node:
    """One search-tree node: a partial assignment prefix."""

    prefix: Assignment
    untried: List[int]
    children: Dict[int, "_Node"] = field(default_factory=dict)
    visits: int = 0
    total_reward: float = 0.0

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0

    def ucb_score(self, child: "_Node", c: float) -> float:
        """UCB1: exploitation plus exploration bonus."""
        if child.visits == 0:
            return float("inf")
        explore = math.sqrt(math.log(self.visits) / child.visits)
        return child.mean_reward + c * explore


@dataclass(frozen=True)
class MCTSStats:
    """Search summary returned alongside the best assignment."""

    iterations: int
    evaluations: int
    best_reward: float
    best_assignment: Assignment
    tree_nodes: int


def mcts_search(
    levels: Sequence[Sequence[int]],
    evaluate: Evaluate,
    iterations: int,
    seed: int = 0,
    exploration: float = 1.4,
    prune: Optional[Prune] = None,
) -> MCTSStats:
    """Run MCTS over a fixed-depth decision tree.

    Args:
        levels: Candidate values per decision level, in order.
        evaluate: Scores a *complete* assignment; 0 marks invalid.
        iterations: Selection/expansion/simulation/backprop rounds.
        seed: RNG seed (search is fully deterministic given it).
        exploration: UCB1 exploration constant.
        prune: Optional predicate on *partial* assignments; True means
            no completion can be feasible, so the child is never
            expanded.

    Returns:
        Search statistics including the best complete assignment seen.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if any(len(values) == 0 for values in levels):
        raise ValueError("every level needs at least one candidate")
    rng = random.Random(seed)
    depth = len(levels)

    def viable_values(prefix: Assignment, level: int) -> List[int]:
        values = list(levels[level])
        if prune is not None:
            values = [v for v in values if not prune(prefix + (v,))]
        return values or list(levels[level])

    root = _Node(prefix=(), untried=viable_values((), 0))
    best_reward = -1.0
    best_assignment: Assignment = tuple(
        values[0] for values in levels
    )
    evaluations = 0
    node_count = 1

    for _ in range(iterations):
        # Selection: descend while fully expanded and not a leaf.
        node = root
        path = [node]
        while not node.untried and len(node.prefix) < depth:
            node = max(
                node.children.values(),
                key=lambda ch: path[-1].ucb_score(ch, exploration),
            )
            path.append(node)
        # Expansion: materialize one untried child.
        if node.untried and len(node.prefix) < depth:
            value = node.untried.pop(
                rng.randrange(len(node.untried))
            )
            level = len(node.prefix) + 1
            child = _Node(
                prefix=node.prefix + (value,),
                untried=(
                    viable_values(node.prefix + (value,), level)
                    if level < depth
                    else []
                ),
            )
            node.children[value] = child
            node = child
            path.append(node)
            node_count += 1
        # Simulation: random rollout to a full assignment.
        assignment = list(node.prefix)
        for level in range(len(assignment), depth):
            choices = viable_values(tuple(assignment), level)
            assignment.append(rng.choice(choices))
        reward = evaluate(tuple(assignment))
        evaluations += 1
        if reward > best_reward:
            best_reward = reward
            best_assignment = tuple(assignment)
        # Backpropagation.
        for visited in path:
            visited.visits += 1
            visited.total_reward += reward

    return MCTSStats(
        iterations=iterations,
        evaluations=evaluations,
        best_reward=best_reward,
        best_assignment=best_assignment,
        tree_nodes=node_count,
    )
