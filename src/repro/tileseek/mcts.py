"""Generic Monte Carlo Tree Search over ordered discrete decisions.

TileSeek's search tree (Section 5.1) assigns one outer tiling factor
per tree level; a root-to-leaf path is a complete configuration.  This
module implements the four MCTS phases generically:

* **Selection** -- UCB1 descent through fully expanded nodes,
* **Expansion** -- materialize one untried child,
* **Simulation** -- random rollout to a complete assignment, scored by
  the caller's evaluation function,
* **Backpropagation** -- reward statistics flow back up the path.

The evaluator returns a reward in ``[0, inf)`` (0 = invalid leaf), so
constraint validation is part of the reward signal as well as the
optional ``prune`` callback that drops provably infeasible subtrees.

Two resilience behaviours (both deterministic):

* A level whose candidates are *all* pruned under the current prefix
  is a recorded **dead-end** -- the iteration backpropagates zero
  reward without calling the evaluator and the count is reported in
  :attr:`MCTSStats.dead_ends`.  (Historically this silently fell back
  to the unpruned candidate list, wasting an evaluation on a
  known-infeasible completion.)
* An optional :class:`~repro.resilience.budget.Budget` is charged one
  unit per iteration; on exhaustion the search stops and returns its
  best-so-far incumbent with :attr:`MCTSStats.exhausted` set -- the
  anytime contract.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.resilience.budget import Budget

Assignment = Tuple[int, ...]
Evaluate = Callable[[Assignment], float]
EvaluateBatch = Callable[[Sequence[Assignment]], Sequence[float]]
Prune = Callable[[Assignment], bool]
Viable = Callable[[Assignment, int], List[int]]

#: Child count below which UCB1 selection runs as a scalar loop --
#: NumPy's per-ufunc dispatch overhead dominates tiny arrays (typical
#: tiling grids have 8-25 candidates per level).  Both engines compute
#: the same correctly-rounded expression, so the choice is invisible
#: in results.
VECTOR_SELECT_MIN = 32


@dataclass
class _Node:
    """One search-tree node: a partial assignment prefix."""

    prefix: Assignment
    untried: List[int]
    children: Dict[int, "_Node"] = field(default_factory=dict)
    visits: int = 0
    total_reward: float = 0.0

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.visits if self.visits else 0.0

    def ucb_score(self, child: "_Node", c: float) -> float:
        """UCB1: exploitation plus exploration bonus."""
        if child.visits == 0:
            return float("inf")
        explore = math.sqrt(math.log(self.visits) / child.visits)
        return child.mean_reward + c * explore


@dataclass(frozen=True)
class MCTSStats:
    """Search summary returned alongside the best assignment.

    Attributes:
        iterations: Rounds actually performed (less than requested
            when a budget ran out).
        evaluations: Evaluator calls (dead-end rollouts skip it).
        dead_ends: Iterations that hit a level with zero viable
            candidates under the current prefix.
        exhausted: Whether a budget stopped the search early.
    """

    iterations: int
    evaluations: int
    best_reward: float
    best_assignment: Assignment
    tree_nodes: int
    dead_ends: int = 0
    exhausted: bool = False


def mcts_search(
    levels: Sequence[Sequence[int]],
    evaluate: Evaluate,
    iterations: int,
    seed: int = 0,
    exploration: float = 1.4,
    prune: Optional[Prune] = None,
    budget: Optional[Budget] = None,
) -> MCTSStats:
    """Run MCTS over a fixed-depth decision tree.

    Args:
        levels: Candidate values per decision level, in order.
        evaluate: Scores a *complete* assignment; 0 marks invalid.
        iterations: Selection/expansion/simulation/backprop rounds.
        seed: RNG seed (search is fully deterministic given it).
        exploration: UCB1 exploration constant.
        prune: Optional predicate on *partial* assignments; True means
            no completion can be feasible, so the child is never
            expanded.  A prefix under which *every* candidate at some
            level is pruned makes the iteration a dead-end: zero
            reward is backpropagated and the evaluator is not called.
        budget: Optional deterministic unit budget, charged one unit
            per iteration; exhaustion ends the search with its
            best-so-far result.

    Returns:
        Search statistics including the best complete assignment seen.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if any(len(values) == 0 for values in levels):
        raise ValueError("every level needs at least one candidate")
    rng = random.Random(seed)
    depth = len(levels)

    def viable_values(prefix: Assignment, level: int) -> List[int]:
        values = list(levels[level])
        if prune is not None:
            values = [v for v in values if not prune(prefix + (v,))]
        return values

    root = _Node(prefix=(), untried=viable_values((), 0))
    best_reward = -1.0
    best_assignment: Assignment = tuple(
        values[0] for values in levels
    )
    evaluations = 0
    dead_ends = 0
    node_count = 1
    performed = 0
    exhausted = False

    for _ in range(iterations):
        if budget is not None and not budget.charge():
            exhausted = True
            break
        performed += 1
        # Selection: descend while fully expanded and not a leaf.
        node = root
        path = [node]
        while (
            not node.untried
            and node.children
            and len(node.prefix) < depth
        ):
            node = max(
                node.children.values(),
                key=lambda ch: path[-1].ucb_score(ch, exploration),
            )
            path.append(node)
        # Expansion: materialize one untried child.
        if node.untried and len(node.prefix) < depth:
            value = node.untried.pop(
                rng.randrange(len(node.untried))
            )
            level = len(node.prefix) + 1
            child = _Node(
                prefix=node.prefix + (value,),
                untried=(
                    viable_values(node.prefix + (value,), level)
                    if level < depth
                    else []
                ),
            )
            node.children[value] = child
            node = child
            path.append(node)
            node_count += 1
        # Simulation: random rollout to a full assignment.  A level
        # with zero viable candidates is a dead-end: every completion
        # is provably infeasible, so back up zero reward and move on
        # rather than burning an evaluation on it.
        assignment = list(node.prefix)
        reward = 0.0
        dead_end = False
        for level in range(len(assignment), depth):
            choices = viable_values(tuple(assignment), level)
            if not choices:
                dead_end = True
                break
            assignment.append(rng.choice(choices))
        if dead_end:
            dead_ends += 1
        else:
            reward = evaluate(tuple(assignment))
            evaluations += 1
            if reward > best_reward:
                best_reward = reward
                best_assignment = tuple(assignment)
        # Backpropagation.
        for visited in path:
            visited.visits += 1
            visited.total_reward += reward

    return MCTSStats(
        iterations=performed,
        evaluations=evaluations,
        best_reward=best_reward,
        best_assignment=best_assignment,
        tree_nodes=node_count,
        dead_ends=dead_ends,
        exhausted=exhausted,
    )


class _BNode:
    """Array-backed search-tree node for the batched driver.

    Child statistics live in preallocated NumPy arrays on the
    *parent* (``child_visits`` / ``child_totals``, one slot per
    expansion in expansion order -- the same iteration order as the
    scalar driver's insertion-ordered ``children`` dict), so UCB1
    selection is one vectorized expression instead of a ``max`` over
    per-child lambdas.  Scalar ``visits`` / ``total_reward`` mirrors
    are kept per node for ``log(N)`` and backpropagation.
    """

    __slots__ = (
        "prefix", "untried", "parent", "slot", "visits",
        "total_reward", "children", "n_children", "child_visits",
        "child_totals",
    )

    def __init__(
        self,
        prefix: Assignment,
        untried: List[int],
        parent: Optional["_BNode"] = None,
        slot: int = 0,
    ) -> None:
        self.prefix = prefix
        self.untried = untried
        self.parent = parent
        self.slot = slot
        self.visits = 0
        self.total_reward = 0.0
        self.children: List["_BNode"] = []
        self.n_children = 0
        capacity = len(untried)
        self.child_visits = np.zeros(capacity, dtype=np.int64)
        self.child_totals = np.zeros(capacity, dtype=np.float64)

    def add_child(self, child: "_BNode") -> None:
        child.slot = self.n_children
        self.children.append(child)
        self.n_children += 1

    def select_child(self, exploration: float) -> "_BNode":
        """Vectorized UCB1, bit-identical to the scalar rule.

        Zero-visit children score ``inf``; ``argmax`` returns the
        first, matching Python ``max``'s first-max tie-break.  For the
        visited case every float operation mirrors the scalar
        ``mean + c * sqrt(log(N) / n)`` term for term: true division
        and ``sqrt`` are correctly rounded IEEE operations, and
        ``log(N)`` stays a scalar ``math.log`` call (NumPy's
        vectorized ``log`` is not guaranteed bit-equal).

        Below :data:`VECTOR_SELECT_MIN` children the arrays lose to
        ufunc dispatch overhead, so a plain loop computes the same
        correctly-rounded expression from the nodes' scalar mirrors
        -- identical bits either way, only the arithmetic engine
        differs.
        """
        n = self.n_children
        children = self.children
        if n < VECTOR_SELECT_MIN:
            for child in children:
                if child.visits == 0:
                    return child
            log_n = math.log(self.visits)
            best = children[0]
            count = best.visits
            best_score = (
                best.total_reward / count
                + exploration * math.sqrt(log_n / count)
            )
            for child in children[1:]:
                count = child.visits
                score = (
                    child.total_reward / count
                    + exploration * math.sqrt(log_n / count)
                )
                if score > best_score:
                    best_score = score
                    best = child
            return best
        visits = self.child_visits[:n]
        if visits.min() == 0:
            choice = int(np.argmax(visits == 0))
        else:
            totals = self.child_totals[:n]
            log_n = math.log(self.visits)
            scores = totals / visits + exploration * np.sqrt(
                log_n / visits
            )
            choice = int(np.argmax(scores))
        return self.children[choice]


def mcts_search_batched(
    levels: Sequence[Sequence[int]],
    evaluate_batch: EvaluateBatch,
    iterations: int,
    seed: int = 0,
    exploration: float = 1.4,
    viable: Optional[Viable] = None,
    budget: Optional[Budget] = None,
) -> MCTSStats:
    """Frontier-batched MCTS, byte-identical to :func:`mcts_search`.

    Same contract and statistics as the scalar driver, but leaves are
    priced through ``evaluate_batch`` -- whole frontiers in one call --
    and candidate filtering goes through a ``viable`` oracle (the
    batched minimal-completion prune) instead of a per-candidate
    ``prune`` predicate.

    Byte-identity rests on two invariants:

    * **RNG order.**  Expansion draws ``randrange(len(untried))`` and
      rollouts draw ``choice(viable_list)``; both consume seed bits as
      a function of *list lengths only*, and ``viable`` must return
      exactly the lists the scalar prune induces, so the random
      trajectory is identical.
    * **Reward independence of the frontier.**  Iterations are batched
      only while the root still has untried children: UCB1 selection
      never runs before the root is fully expanded, so none of those
      iterations reads statistics the others write.  Rewards are
      folded back in original iteration order (best-incumbent updates
      and backpropagation included), after which the driver proceeds
      one leaf per batch -- selection is reward-dependent from then
      on, and the remaining speedup comes from vectorized selection
      and the batched prune/evaluator underneath.

    Args:
        levels: Candidate values per decision level, in order.
        evaluate_batch: Scores a list of *complete* assignments,
            returning one reward each, in order; must equal a scalar
            evaluator called sequentially (caching included).
        iterations: Selection/expansion/simulation/backprop rounds.
        seed: RNG seed (search is fully deterministic given it).
        exploration: UCB1 exploration constant.
        viable: ``(prefix, level) -> values`` returning the level's
            candidates with a feasible minimal completion under the
            prefix, in level order; ``None`` means no pruning.
        budget: Optional deterministic unit budget, charged one unit
            per iteration; exhaustion ends the search with its
            best-so-far result.

    Returns:
        Search statistics, equal to the scalar driver's field by
        field.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if any(len(values) == 0 for values in levels):
        raise ValueError("every level needs at least one candidate")
    rng = random.Random(seed)
    depth = len(levels)

    def viable_values(prefix: Assignment, level: int) -> List[int]:
        if viable is None:
            return list(levels[level])
        return viable(prefix, level)

    root = _BNode(prefix=(), untried=viable_values((), 0))
    best_reward = -1.0
    best_assignment: Assignment = tuple(
        values[0] for values in levels
    )
    evaluations = 0
    dead_ends = 0
    node_count = 1
    performed = 0
    exhausted = False

    while performed < iterations and not exhausted:
        # Collect one frontier: the whole root-expansion burst while
        # selection cannot run, then single iterations.
        walks: List[Tuple[List[_BNode], Optional[Assignment]]] = []
        while performed < iterations:
            if budget is not None and not budget.charge():
                exhausted = True
                break
            performed += 1
            # Selection: descend while fully expanded and not a leaf.
            node = root
            path = [node]
            while (
                not node.untried
                and node.children
                and len(node.prefix) < depth
            ):
                node = node.select_child(exploration)
                path.append(node)
            # Expansion: materialize one untried child.
            if node.untried and len(node.prefix) < depth:
                value = node.untried.pop(
                    rng.randrange(len(node.untried))
                )
                level = len(node.prefix) + 1
                child = _BNode(
                    prefix=node.prefix + (value,),
                    untried=(
                        viable_values(node.prefix + (value,), level)
                        if level < depth
                        else []
                    ),
                    parent=node,
                )
                node.add_child(child)
                node = child
                path.append(node)
                node_count += 1
            # Simulation: random rollout to a full assignment; a level
            # with zero viable candidates is a dead-end.
            assignment = list(node.prefix)
            dead_end = False
            for level in range(len(assignment), depth):
                choices = viable_values(tuple(assignment), level)
                if not choices:
                    dead_end = True
                    break
                assignment.append(rng.choice(choices))
            walks.append(
                (path, None if dead_end else tuple(assignment))
            )
            # Past the root burst, selection reads reward statistics:
            # close the frontier so they are folded in first.
            if not root.untried:
                break
        # Price the frontier's live leaves in one batched call.
        pending = [leaf for _, leaf in walks if leaf is not None]
        rewards = list(evaluate_batch(pending)) if pending else []
        # Fold back in original iteration order.
        cursor = 0
        for path, leaf in walks:
            if leaf is None:
                dead_ends += 1
                reward = 0.0
            else:
                reward = rewards[cursor]
                cursor += 1
                evaluations += 1
                if reward > best_reward:
                    best_reward = reward
                    best_assignment = leaf
            for visited in path:
                visited.visits += 1
                visited.total_reward += reward
                parent = visited.parent
                if parent is not None:
                    parent.child_visits[visited.slot] += 1
                    parent.child_totals[visited.slot] += reward

    return MCTSStats(
        iterations=performed,
        evaluations=evaluations,
        best_reward=best_reward,
        best_assignment=best_assignment,
        tree_nodes=node_count,
        dead_ends=dead_ends,
        exhausted=exhausted,
    )
