"""The TileSeek search driver.

Binds the generic MCTS to the tiling problem: candidate grids for the
``[B, D, M1, P, S]`` factors, Table-2 feasibility pruning, the
analytical reward, and a memoized evaluation cache (MCTS revisits
leaves; Timeloop-style evaluation is the expensive step in the paper).

Two interchangeable evaluation paths drive the same search:

* the **batched** default, which prices rollout frontiers and prune
  probes through :mod:`repro.tileseek.batched` (vectorized NumPy
  array math), and
* the **scalar oracle** (``REPRO_SCALAR_EVAL=1`` or
  ``search(..., scalar=True)``), the original one-candidate-at-a-time
  path, kept verbatim as the differential reference.

The two are byte-identical by contract -- same
:class:`TileSeekResult` (config, assessment, stats, provenance) for
every input -- which the property suite asserts; see DESIGN.md §10
for the exactness argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.spec import ArchitectureSpec
from repro.model.workload import Workload
from repro.resilience.budget import (
    PROVENANCE_BUDGET_EXHAUSTED,
    PROVENANCE_COMPLETE,
    Budget,
    fallback_provenance,
    resolve_budget,
)
from repro.resilience.ladder import classify_rung
from repro.settings import env_bool
from repro.tileseek.batched import (
    BatchedTilingEvaluator,
    exactly_priceable,
)
from repro.tileseek.buffer_model import (
    TilingConfig,
    fused_buffer_requirement,
    intra_tile_p_prime,
    max_feasible_q_tile,
)
from repro.tileseek.evaluate import (
    TilingAssessment,
    assess_tiling,
    reward_for,
)
from repro.tileseek.mcts import (
    MCTSStats,
    mcts_search,
    mcts_search_batched,
)

#: Search order of the outer tiling factors (one MCTS tree level each).
FACTOR_ORDER: Tuple[str, ...] = ("b", "d", "m1", "p", "s")

#: Fresh-candidate count below which a batch is priced by the scalar
#: evaluator instead of the vectorized one (NumPy dispatch overhead
#: dominates one-row matrices; both produce identical bits).
VECTOR_PRICE_MIN = 4


def _tile_candidates(limit: int, minimum: int = 1) -> List[int]:
    """Ascending tile-size candidates in ``[minimum, limit]``.

    Powers of two plus the ``3 * 2^k`` midpoints -- buffer constraints
    often land between powers of two (e.g. a 384-token Q tile fits
    where 512 does not), and the extra values cost MCTS little.
    """
    values = set()
    value = 1
    while value <= limit:
        if value >= minimum:
            values.add(value)
        if 3 * value // 2 >= minimum and 3 * value // 2 <= limit \
                and value >= 2:
            values.add(3 * value // 2)
        value *= 2
    return sorted(values) or [max(1, min(minimum, limit))]


@dataclass(frozen=True)
class TileSeekResult:
    """Outcome of one TileSeek search.

    ``provenance`` labels how the winning config was obtained:
    ``complete`` (full search), ``budget_exhausted`` (anytime MCTS
    incumbent under a spent budget) or ``fallback:<rung>`` (a
    degradation-ladder rung supplied the result; see
    :mod:`repro.resilience.ladder`).
    """

    config: TilingConfig
    assessment: TilingAssessment
    stats: MCTSStats
    provenance: str = PROVENANCE_COMPLETE

    @property
    def feasible(self) -> bool:
        return self.assessment.feasible


class TileSeek:
    """MCTS outer-tiling search (Section 5).

    Args:
        iterations: MCTS rounds (each runs one leaf evaluation).
        seed: RNG seed; results are deterministic given it.
        reward_metric: ``"energy"`` or ``"latency"`` (both monotone in
            DRAM traffic under this cost model).
        exploration: UCB1 exploration constant.
    """

    def __init__(
        self,
        iterations: int = 400,
        seed: int = 0,
        reward_metric: str = "energy",
        exploration: float = 1.4,
    ) -> None:
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.iterations = iterations
        self.seed = seed
        self.reward_metric = reward_metric
        self.exploration = exploration

    # ------------------------------------------------------------------
    # Candidate grids
    # ------------------------------------------------------------------
    def candidate_grid(
        self, workload: Workload, arch: ArchitectureSpec
    ) -> Dict[str, List[int]]:
        """Candidate values per tiling factor.

        Powers of two bounded by the problem dims; ``m0`` and ``p'``
        are fixed by the PE mapping (2D columns / rows) rather than
        searched, matching Section 5's scope.
        """
        model = workload.model
        p_values = _tile_candidates(min(workload.seq_len, 1 << 14))
        # Anchor the grid on the largest feasible Q tile -- the best
        # value often sits between powers of two (e.g. 301 tokens on a
        # 16 MB buffer) and dominates the K/V and weight pass counts.
        anchor = max_feasible_q_tile(
            model,
            workload.seq_len,
            arch.buffer_words,
            m0=arch.array_2d.cols,
            rows=arch.array_2d.rows,
        )
        if anchor not in p_values:
            p_values = sorted(set(p_values) | {anchor})
        return {
            "b": _tile_candidates(workload.batch),
            "d": _tile_candidates(model.d_model, minimum=16),
            "m1": _tile_candidates(64),
            "p": p_values,
            "s": _tile_candidates(model.ffn_hidden, minimum=16),
        }

    def fixed_factors(
        self, arch: ArchitectureSpec
    ) -> Dict[str, int]:
        """The non-searched factors (set by the PE arrays)."""
        return {
            "m0": arch.array_2d.cols,
            "rows": arch.array_2d.rows,
        }

    def _config_from(
        self,
        assignment: Sequence[int],
        fixed: Dict[str, int],
    ) -> TilingConfig:
        values = dict(zip(FACTOR_ORDER, assignment))
        return TilingConfig(
            b=values["b"],
            d=values["d"],
            m1=values["m1"],
            m0=fixed["m0"],
            p=values["p"],
            s=values["s"],
            p_prime=intra_tile_p_prime(values["p"], fixed["rows"]),
        )

    @staticmethod
    def _minimal_point(
        grid: Dict[str, List[int]],
    ) -> Tuple[int, ...]:
        """The most conservative assignment the grid contains.

        Doubles as the reward-normalization reference and the
        minimal-completion base of the feasibility prune (the Table-2
        formulas are monotone in every factor).
        """
        return tuple(min(grid[name]) for name in FACTOR_ORDER)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        workload: Workload,
        arch: ArchitectureSpec,
        warm_start: Sequence[Sequence[int]] = (),
        budget: Optional[int] = None,
        allow_fallback: Optional[bool] = None,
        scalar: Optional[bool] = None,
        learned: Sequence[Sequence[int]] = (),
    ) -> TileSeekResult:
        """Find the best feasible outer tiling for one fused layer.

        Args:
            workload: The problem instance.
            arch: Target architecture.
            warm_start: Optional known-good assignments (in
                :data:`FACTOR_ORDER`), typically the best assignment
                of an adjacent search (same model/architecture,
                neighboring sequence length).  Each is evaluated as an
                additional incumbent: the returned config is never
                worse than any warm start, and the MCTS tree itself is
                untouched, so results stay deterministic.
            budget: Deterministic unit budget (MCTS iterations) for
                this search; ``None`` defers to ``REPRO_BUDGET`` /
                ``REPRO_DEADLINE``.  On exhaustion the best-so-far
                result is returned with degraded provenance.
            allow_fallback: Whether the degradation ladder may supply
                the result when the budgeted search yields nothing
                better; ``None`` defers to ``REPRO_NO_FALLBACK``.
            scalar: Force the scalar differential oracle (``True``) or
                the batched path (``False``); ``None`` defers to
                ``REPRO_SCALAR_EVAL`` (batched by default).  Both
                return byte-identical results.
            learned: Optional predicted assignments (in
                :data:`FACTOR_ORDER`) from the fitted corpus model
                (:mod:`repro.learn`).  Treated exactly like warm
                starts -- extra incumbents, never budget-charged --
                but classified on their own ``learned`` ladder rung
                when one supplies a budget-exhausted result.  Empty
                (the default) leaves every byte of the search output
                unchanged.

        Raises:
            InfeasiblePoint: When even the minimal configuration in
                the grid overflows the buffer -- by Table-2
                monotonicity nothing in the space fits, and the error
                carries the buffer-level diagnosis.
            RuntimeError: When the result would be a fallback rung and
                fallback is disabled.
        """
        if scalar is None:
            scalar = env_bool("REPRO_SCALAR_EVAL", default=False)
        if scalar:
            return self.search_scalar(
                workload, arch, warm_start=warm_start,
                budget=budget, allow_fallback=allow_fallback,
                learned=learned,
            )
        return self._search_batched(
            workload, arch, warm_start=warm_start,
            budget=budget, allow_fallback=allow_fallback,
            learned=learned,
        )

    def search_scalar(
        self,
        workload: Workload,
        arch: ArchitectureSpec,
        warm_start: Sequence[Sequence[int]] = (),
        budget: Optional[int] = None,
        allow_fallback: Optional[bool] = None,
        learned: Sequence[Sequence[int]] = (),
    ) -> TileSeekResult:
        """The scalar evaluation path (the differential oracle).

        One candidate at a time through :func:`assess_tiling` and the
        per-candidate prune -- the original implementation, retained
        verbatim so the batched path has a bit-for-bit reference.  See
        :meth:`search` for the contract.
        """
        grid = self.candidate_grid(workload, arch)
        fixed = self.fixed_factors(arch)
        levels = [grid[name] for name in FACTOR_ORDER]
        warm = self._validated_assignments(warm_start)
        predicted = self._validated_assignments(learned)
        if allow_fallback is None:
            from repro.resilience.budget import fallback_enabled

            allow_fallback = fallback_enabled()
        limit = resolve_budget(budget)
        unit_budget = Budget(limit) if limit is not None else None
        # The minimal (most conservative) assignment doubles as the
        # reward-normalization reference; seed the evaluation cache
        # with its assessment so it is never priced twice.
        minimal = self._minimal_point(grid)
        minimal_cfg = self._config_from(minimal, fixed)
        # If even the minimal tile overflows the buffer, monotonicity
        # says nothing in the grid fits: diagnose instead of
        # searching.  Imported lazily -- diagnostics imports the
        # buffer model from this package, so a module-level import
        # would cycle through ``repro.resilience.__init__``.
        from repro.resilience.diagnostics import diagnose_infeasible

        diagnosis = diagnose_infeasible(
            workload.model,
            arch.buffer_words,
            m0=fixed["m0"],
            rows=fixed["rows"],
            cfg=minimal_cfg,
        )
        if diagnosis is not None:
            # Imported lazily: the taxonomy lives in the runner layer,
            # which imports back into tileseek via serialization.
            from repro.runner.faults import InfeasiblePoint

            raise InfeasiblePoint(
                f"{workload.describe()} on {arch.name}",
                diagnosis.as_dict(),
            )
        reference_assessment = assess_tiling(
            minimal_cfg, workload, arch
        )
        reference = reference_assessment.dram_words
        cache: Dict[
            Tuple[int, ...], Tuple[float, TilingAssessment]
        ] = {
            minimal: (
                reward_for(
                    reference_assessment, reference,
                    self.reward_metric,
                ),
                reference_assessment,
            )
        }

        def evaluate(assignment: Tuple[int, ...]) -> float:
            entry = cache.get(assignment)
            if entry is None:
                cfg = self._config_from(assignment, fixed)
                assessment = assess_tiling(cfg, workload, arch)
                entry = (
                    reward_for(
                        assessment, reference, self.reward_metric
                    ),
                    assessment,
                )
                cache[assignment] = entry
            return entry[0]

        # Rollouts revisit the same prefixes constantly; the Table-2
        # completion check is pure, so memoize it per prefix.
        prune_cache: Dict[Tuple[int, ...], bool] = {}

        def prune(partial: Tuple[int, ...]) -> bool:
            # Lower-bound feasibility: complete the prefix with the
            # smallest remaining candidates; if even that overflows
            # the buffer, no completion is feasible (the Table-2
            # formulas are monotone in every factor).
            infeasible = prune_cache.get(partial)
            if infeasible is None:
                full = list(partial) + [
                    min(grid[name])
                    for name in FACTOR_ORDER[len(partial):]
                ]
                cfg = self._config_from(full, fixed)
                required = fused_buffer_requirement(
                    cfg, workload.model
                )
                infeasible = required > arch.buffer_words
                prune_cache[partial] = infeasible
            return infeasible

        stats = mcts_search(
            levels,
            evaluate,
            iterations=self.iterations,
            seed=self.seed,
            exploration=self.exploration,
            prune=prune,
            budget=unit_budget,
        )
        best_assignment = stats.best_assignment
        best_reward = stats.best_reward
        # Greedy incumbent: the anchor line (maximal feasible p with
        # minimal companions) is a strong known-good starting point;
        # never return anything worse than it.  Warm starts from
        # adjacent searches and learned predictions join the same
        # incumbent pool.  When a budget cut the MCTS short, these
        # candidates double as the degradation ladder (anchor =
        # ``heuristic`` rung, warm starts = ``warm_start``,
        # predictions = ``learned``); they are deterministic, never
        # budget-charged, and feasible by construction/validation.
        anchor_p = max(
            (p for p in grid["p"] if not prune(
                (min(grid["b"]), min(grid["d"]), min(grid["m1"]), p)
            )),
            default=min(grid["p"]),
        )
        incumbent = (
            min(grid["b"]), min(grid["d"]), min(grid["m1"]),
            anchor_p, min(grid["s"]),
        )
        winner_index = -1  # the MCTS incumbent
        fresh = 0  # incumbents priced by a real evaluator call
        for index, candidate in enumerate(
            (incumbent,) + warm + predicted
        ):
            if candidate not in cache:
                fresh += 1
            candidate_reward = evaluate(candidate)
            if candidate_reward > best_reward:
                best_assignment = candidate
                best_reward = candidate_reward
                winner_index = index
        if not stats.exhausted:
            provenance = PROVENANCE_COMPLETE
        elif winner_index < 0:
            provenance = PROVENANCE_BUDGET_EXHAUSTED
        else:
            provenance = fallback_provenance(classify_rung(
                winner_index,
                n_warm=len(warm),
                anchor_is_minimal=anchor_p == min(grid["p"]),
                n_learned=len(predicted),
            ))
            if not allow_fallback:
                raise RuntimeError(
                    f"search for {workload.describe()} on "
                    f"{arch.name} degraded to {provenance} and "
                    f"fallback is disabled (REPRO_NO_FALLBACK)"
                )
        # The winner was priced through the cache -- reuse its
        # assessment instead of re-running the simulation step.
        assessment = cache[best_assignment][1]
        config = self._config_from(best_assignment, fixed)
        return TileSeekResult(
            config=config,
            assessment=assessment,
            stats=MCTSStats(
                iterations=stats.iterations,
                evaluations=stats.evaluations + fresh,
                best_reward=best_reward,
                best_assignment=best_assignment,
                tree_nodes=stats.tree_nodes,
                dead_ends=stats.dead_ends,
                exhausted=stats.exhausted,
            ),
            provenance=provenance,
        )

    def _search_batched(
        self,
        workload: Workload,
        arch: ArchitectureSpec,
        warm_start: Sequence[Sequence[int]] = (),
        budget: Optional[int] = None,
        allow_fallback: Optional[bool] = None,
        learned: Sequence[Sequence[int]] = (),
    ) -> TileSeekResult:
        """The batched evaluation path (the default).

        Mirrors :meth:`search_scalar` decision for decision -- same
        grid, RNG trajectory, budget charging, caching and provenance
        -- but prices rollout frontiers, prune probes and the
        incumbent pool through the vectorized evaluator.  Candidates
        whose factors are too large for exact float64 conversion
        (pathological warm starts) route through the scalar evaluator
        row by row, keeping results bit-identical.
        """
        grid = self.candidate_grid(workload, arch)
        fixed = self.fixed_factors(arch)
        levels = [grid[name] for name in FACTOR_ORDER]
        warm = self._validated_assignments(warm_start)
        predicted = self._validated_assignments(learned)
        if allow_fallback is None:
            from repro.resilience.budget import fallback_enabled

            allow_fallback = fallback_enabled()
        limit = resolve_budget(budget)
        unit_budget = Budget(limit) if limit is not None else None
        minimal = self._minimal_point(grid)
        minimal_cfg = self._config_from(minimal, fixed)
        # Lazy imports: same cycle constraints as the scalar path.
        from repro.resilience.diagnostics import (
            diagnose_infeasible_batch,
        )

        diagnosis = diagnose_infeasible_batch(
            workload.model,
            arch.buffer_words,
            m0=fixed["m0"],
            rows=fixed["rows"],
            cfgs=[minimal_cfg],
        )[0]
        if diagnosis is not None:
            from repro.runner.faults import InfeasiblePoint

            raise InfeasiblePoint(
                f"{workload.describe()} on {arch.name}",
                diagnosis.as_dict(),
            )
        evaluator = BatchedTilingEvaluator(
            workload,
            arch,
            m0=fixed["m0"],
            rows=fixed["rows"],
            reward_metric=self.reward_metric,
        )
        reference_assessment = evaluator.assessment_at(
            evaluator.assess(evaluator.matrix_from([minimal])), 0
        )
        reference = reference_assessment.dram_words
        cache: Dict[
            Tuple[int, ...], Tuple[float, TilingAssessment]
        ] = {
            minimal: (
                reward_for(
                    reference_assessment, reference,
                    self.reward_metric,
                ),
                reference_assessment,
            )
        }

        def evaluate_batch(
            assignments: Sequence[Tuple[int, ...]],
        ) -> List[float]:
            # One vectorized pricing pass over the batch's unique
            # cache misses; equivalent to calling the scalar
            # ``evaluate`` closure sequentially (duplicates within a
            # batch hit the first occurrence's cached entry).
            fresh = []
            seen = set()
            for assignment in assignments:
                if assignment not in cache and assignment not in seen:
                    seen.add(assignment)
                    fresh.append(assignment)
            exact = [a for a in fresh if exactly_priceable(a)]
            # Tiny batches (a single rollout leaf once the root burst
            # is spent) lose to per-ufunc dispatch overhead: price
            # them scalar -- bit-identical either way.
            if len(exact) >= VECTOR_PRICE_MIN:
                batch = evaluator.assess(
                    evaluator.matrix_from(exact)
                )
                for row, assignment in enumerate(exact):
                    assessment = evaluator.assessment_at(batch, row)
                    cache[assignment] = (
                        reward_for(
                            assessment, reference,
                            self.reward_metric,
                        ),
                        assessment,
                    )
            for assignment in fresh:
                if assignment in cache:
                    continue
                cfg = self._config_from(assignment, fixed)
                assessment = assess_tiling(cfg, workload, arch)
                cache[assignment] = (
                    reward_for(
                        assessment, reference, self.reward_metric
                    ),
                    assessment,
                )
            return [cache[a][0] for a in assignments]

        # The minimal-completion prune, one vectorized call per
        # unique prefix covering the whole candidate level (the
        # scalar path prices the same completions one at a time).
        grid_dtype = evaluator.words_dtype(
            [max(grid[name]) for name in FACTOR_ORDER]
        )
        viable_cache: Dict[Tuple[int, ...], List[int]] = {}

        def viable(
            prefix: Tuple[int, ...], level: int
        ) -> List[int]:
            values = viable_cache.get(prefix)
            if values is None:
                values = evaluator.viable_values(
                    prefix, levels[level], minimal,
                    dtype=grid_dtype,
                )
                viable_cache[prefix] = values
            return values

        stats = mcts_search_batched(
            levels,
            evaluate_batch,
            iterations=self.iterations,
            seed=self.seed,
            exploration=self.exploration,
            viable=viable,
            budget=unit_budget,
        )
        best_assignment = stats.best_assignment
        best_reward = stats.best_reward
        # Greedy incumbent pool (anchor line + warm starts), priced
        # in one batch; the fold mirrors the scalar loop in order.
        anchor_p = max(
            viable((minimal[0], minimal[1], minimal[2]), 3),
            default=minimal[3],
        )
        incumbent = (
            minimal[0], minimal[1], minimal[2], anchor_p, minimal[4],
        )
        pool = (incumbent,) + warm + predicted
        fresh = 0  # incumbents priced by a real evaluator call
        seen = set()
        for candidate in pool:
            if candidate not in cache and candidate not in seen:
                seen.add(candidate)
                fresh += 1
        pool_rewards = evaluate_batch(pool)
        winner_index = -1  # the MCTS incumbent
        for index, candidate in enumerate(pool):
            candidate_reward = pool_rewards[index]
            if candidate_reward > best_reward:
                best_assignment = candidate
                best_reward = candidate_reward
                winner_index = index
        if not stats.exhausted:
            provenance = PROVENANCE_COMPLETE
        elif winner_index < 0:
            provenance = PROVENANCE_BUDGET_EXHAUSTED
        else:
            provenance = fallback_provenance(classify_rung(
                winner_index,
                n_warm=len(warm),
                anchor_is_minimal=anchor_p == minimal[3],
                n_learned=len(predicted),
            ))
            if not allow_fallback:
                raise RuntimeError(
                    f"search for {workload.describe()} on "
                    f"{arch.name} degraded to {provenance} and "
                    f"fallback is disabled (REPRO_NO_FALLBACK)"
                )
        assessment = cache[best_assignment][1]
        config = self._config_from(best_assignment, fixed)
        return TileSeekResult(
            config=config,
            assessment=assessment,
            stats=MCTSStats(
                iterations=stats.iterations,
                evaluations=stats.evaluations + fresh,
                best_reward=best_reward,
                best_assignment=best_assignment,
                tree_nodes=stats.tree_nodes,
                dead_ends=stats.dead_ends,
                exhausted=stats.exhausted,
            ),
            provenance=provenance,
        )

    @staticmethod
    def _validated_assignments(
        assignments: Sequence[Sequence[int]],
    ) -> Tuple[Tuple[int, ...], ...]:
        """Normalize warm-start/learned assignments, rejecting
        malformed ones."""
        validated = []
        for raw in assignments:
            assignment = tuple(int(v) for v in raw)
            if len(assignment) != len(FACTOR_ORDER):
                raise ValueError(
                    f"candidate assignment {assignment} must have "
                    f"{len(FACTOR_ORDER)} factors ({FACTOR_ORDER})"
                )
            if any(v <= 0 for v in assignment):
                raise ValueError(
                    f"candidate factors must be positive: "
                    f"{assignment}"
                )
            validated.append(assignment)
        return tuple(validated)

    def _reference_words(
        self,
        workload: Workload,
        arch: ArchitectureSpec,
        fixed: Dict[str, int],
        grid: Optional[Dict[str, List[int]]] = None,
    ) -> float:
        """Traffic of the minimal (most conservative) configuration,
        used to normalize rewards to O(1).

        Args:
            grid: The candidate grid, if the caller already built it
                (avoids recomputing :meth:`candidate_grid`).
        """
        if grid is None:
            grid = self.candidate_grid(workload, arch)
        minimal = self._config_from(self._minimal_point(grid), fixed)
        return assess_tiling(minimal, workload, arch).dram_words
