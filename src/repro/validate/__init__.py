"""Runtime invariant auditors for schedules, tilings and reports.

The validation layer proves that every artifact the simulator produces
is *internally consistent*:

* :mod:`repro.validate.schedule` -- every
  :class:`~repro.dpipe.scheduler.ScheduleResult` respects dependency
  order, books each PE array exclusively, interleaves epochs legally
  and reports the exact earliest-finish makespan of Eq. 43-46.
* :mod:`repro.validate.tiling` -- every accepted
  :class:`~repro.tileseek.buffer_model.TilingConfig` genuinely fits
  the Table-2 buffer capacities, and its traffic/energy assessment is
  reproducible from first principles.
* :mod:`repro.validate.conservation` -- every
  :class:`~repro.sim.stats.RunReport` conserves words and energy:
  per-phase DRAM traffic balances against tensor footprints, and
  energy equals accesses times the per-access table.
* :mod:`repro.validate.oracle` -- the cascade DAGs imply exactly the
  operation counts the simulator charges, and the cascades compute
  the same numbers as :mod:`repro.reference.functional`.

Auditors run automatically behind the ``REPRO_VALIDATE`` flag (see
:mod:`repro.validate.config`): on by default in the test suite, off in
hot sweep paths.  ``python -m repro validate`` audits one grid point
end to end.

This package ``__init__`` deliberately exports only the flag handling
and the report types; the auditors and the orchestration layer
(:mod:`repro.validate.runner`) are imported lazily by their consumers
to keep hot modules import-cycle-free.
"""

from repro.validate.config import (
    ENV_VALIDATE,
    force_validation,
    validation_enabled,
)
from repro.validate.report import (
    AuditCheck,
    AuditReport,
    AuditViolation,
)

__all__ = [
    "ENV_VALIDATE",
    "AuditCheck",
    "AuditReport",
    "AuditViolation",
    "force_validation",
    "validation_enabled",
]
