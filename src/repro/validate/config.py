"""Validation flag resolution (``REPRO_VALIDATE``).

Auditing every schedule and tiling roughly doubles the cost of the
planner's inner loops, so validation is *opt-in at runtime*: hot sweep
paths leave it off, the test suite turns it on (``tests/conftest.py``
defaults the environment variable to ``1``), and the ``repro
validate`` CLI forces it for the point being audited.

This module must stay nearly dependency-free: it is imported at
module level by scheduler/executor hot paths, where any import back
into the simulator would create a cycle.  :mod:`repro.settings` is
the one allowed import -- it is standard-library-only at import time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.settings import env_bool

#: Environment flag: truthy values enable auditing everywhere.
ENV_VALIDATE = "REPRO_VALIDATE"

#: Programmatic override; ``None`` defers to the environment.
_forced: Optional[bool] = None


def validation_enabled() -> bool:
    """Whether auditors should run (override, else environment)."""
    if _forced is not None:
        return _forced
    return env_bool(ENV_VALIDATE, default=False)


@contextmanager
def force_validation(enabled: bool) -> Iterator[None]:
    """Force validation on or off within a scope.

    Used by the ``repro validate`` CLI (audit one point regardless of
    the environment) and by sweep internals that must *never* audit
    (e.g. when re-pricing a plan whose audit already ran).
    """
    global _forced
    saved = _forced
    _forced = bool(enabled)
    try:
        yield
    finally:
        _forced = saved
