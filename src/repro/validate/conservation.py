"""Conservation auditor: words and energy must balance.

Checks a :class:`~repro.sim.stats.RunReport` for physical
consistency:

* every extensive quantity is finite and non-negative,
* per phase and per PE array, busy time never exceeds the phase
  makespan, and the scalar-op count never exceeds what the array
  could execute in its busy time (``PEs x clock x busy``),
* register-file traffic covers at least the two accesses every scalar
  op performs (operand fetch + accumulate),
* the report's energy breakdown equals an independent
  Sum(accesses x per-access energy) over the
  :class:`~repro.arch.energy.EnergyModel` table, component by
  component,
* for the fused executor (when the TileSeek traffic decomposition is
  supplied), per-phase DRAM words balance exactly against the tensor
  footprints and streaming terms: activations + QKV weights for QKV,
  K/V spill + reloads for MHA, zero for the on-chip LayerNorm, FFN
  weights + activations for FFN -- and the phase total equals the
  assessment's total.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

from repro.arch.pe import PEArrayKind
from repro.arch.spec import ArchitectureSpec
from repro.model.workload import Workload
from repro.sim.stats import RunReport
from repro.validate.report import AuditReport

AUDITOR = "conservation"

#: Relative slack for inequalities over accumulated floats.
REL_TOL = 1e-9


def _close_or_below(value: float, bound: float) -> bool:
    """``value <= bound`` up to accumulated rounding."""
    return value <= bound * (1.0 + REL_TOL) + 1e-300


def audit_conservation(
    run: RunReport,
    arch: ArchitectureSpec,
    workload: Optional[Workload] = None,
    traffic: Optional[Mapping[str, float]] = None,
    subject: Optional[str] = None,
    report: Optional[AuditReport] = None,
) -> AuditReport:
    """Audit one run report's word/energy balance."""
    out = report if report is not None else AuditReport(
        subject or f"{run.executor}:{run.workload}"
    )

    finite_ok = True
    for phase in run.phases:
        values = [
            phase.compute_seconds, phase.dram_words, phase.ops_2d,
            phase.ops_1d, phase.buffer_words, phase.rf_words,
            *phase.busy_seconds.values(),
        ]
        bad = [v for v in values if not math.isfinite(v) or v < 0.0]
        if bad:
            finite_ok = out.record(
                AUDITOR, "finite_nonnegative", False,
                f"phase {phase.name!r} has {bad[0]!r}",
            )
            break
    if finite_ok:
        out.record(AUDITOR, "finite_nonnegative", True)
    if not finite_ok:
        return out

    busy_ok = throughput_ok = rf_ok = True
    for phase in run.phases:
        ops = {
            PEArrayKind.ARRAY_2D: phase.ops_2d,
            PEArrayKind.ARRAY_1D: phase.ops_1d,
        }
        for kind, busy in phase.busy_seconds.items():
            if busy_ok and not _close_or_below(
                busy, phase.compute_seconds
            ):
                busy_ok = out.record(
                    AUDITOR, "busy_within_makespan", False,
                    f"phase {phase.name!r}: {kind.value} busy "
                    f"{busy!r} > makespan {phase.compute_seconds!r}",
                )
            peak = arch.array(kind).num_pes * arch.clock_hz * busy
            if throughput_ok and not _close_or_below(
                ops[kind], peak
            ):
                throughput_ok = out.record(
                    AUDITOR, "throughput_bound", False,
                    f"phase {phase.name!r}: {ops[kind]!r} ops on "
                    f"{kind.value} exceed peak {peak!r} for busy "
                    f"{busy!r}s",
                )
        floor = 2.0 * (phase.ops_2d + phase.ops_1d)
        if rf_ok and not _close_or_below(floor, phase.rf_words):
            rf_ok = out.record(
                AUDITOR, "register_floor", False,
                f"phase {phase.name!r}: rf accesses "
                f"{phase.rf_words!r} below 2 x ops = {floor!r}",
            )
    if busy_ok:
        out.record(AUDITOR, "busy_within_makespan", True)
    if throughput_ok:
        out.record(AUDITOR, "throughput_bound", True)
    if rf_ok:
        out.record(AUDITOR, "register_floor", True)

    # Energy: independent accumulation against the per-access table.
    model = arch.energy
    dram = buffer = rf = pe = 0.0
    for phase in run.phases:
        dram += phase.dram_words * model.dram_pj_per_word
        buffer += phase.buffer_words * model.buffer_pj_per_word
        rf += phase.rf_words * model.rf_pj_per_word
        pe += (
            phase.ops_2d * model.pe_2d_pj_per_op
            + phase.ops_1d * model.pe_1d_pj_per_op
        )
    breakdown = run.energy(arch)
    out.record(
        AUDITOR, "energy_recompute",
        breakdown.dram_pj == dram
        and breakdown.buffer_pj == buffer
        and breakdown.rf_pj == rf
        and breakdown.pe_pj == pe,
        f"recomputed (dram={dram!r}, buffer={buffer!r}, rf={rf!r}, "
        f"pe={pe!r}) vs report ({breakdown.dram_pj!r}, "
        f"{breakdown.buffer_pj!r}, {breakdown.rf_pj!r}, "
        f"{breakdown.pe_pj!r})",
    )

    if traffic is not None and workload is not None:
        activations = workload.activation_words
        expected = {
            "qkv": activations + traffic["qkv_weight_words"],
            "mha": traffic["kv_words"],
            "layernorm": 0.0,
            "ffn": traffic["ffn_weight_words"] + activations,
        }
        balance_ok = True
        for phase in run.phases:
            want = expected.get(phase.name)
            if want is None:
                continue
            if phase.dram_words != want:
                balance_ok = out.record(
                    AUDITOR, "phase_traffic_balance", False,
                    f"phase {phase.name!r}: {phase.dram_words!r} "
                    f"words, footprint model says {want!r}",
                )
                break
        if balance_ok:
            out.record(AUDITOR, "phase_traffic_balance", True)
        total = sum(ph.dram_words for ph in run.phases)
        out.record(
            AUDITOR, "total_traffic_balance",
            total == traffic["total"],
            f"phase sum {total!r} vs assessment "
            f"{traffic['total']!r}",
        )
        model_cfg = workload.model
        qkv_floor = (
            model_cfg.d_model * model_cfg.e_head
            * (model_cfg.heads + 2 * model_cfg.effective_kv_heads)
        )
        ffn_floor = 2.0 * model_cfg.d_model * model_cfg.ffn_hidden
        out.record(
            AUDITOR, "weight_footprint_floor",
            traffic["qkv_weight_words"] >= qkv_floor
            and traffic["ffn_weight_words"] >= ffn_floor,
            "streamed weights cover at least one full pass",
        )
        out.record(
            AUDITOR, "kv_spill_floor",
            traffic["kv_words"] >= workload.kv_spill_words,
            f"K/V traffic {traffic['kv_words']!r} vs spill "
            f"footprint {workload.kv_spill_words!r}",
        )
    return out
