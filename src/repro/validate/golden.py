"""Golden-corpus specification and canonical rendering.

The corpus freezes the fused executor's reports for a small grid --
3 models x 2 architectures x 2 sequence lengths -- as pretty-printed,
key-sorted JSON under ``tests/golden/``.  A regression test re-prices
every point and diffs the canonical rendering byte for byte;
``scripts/update_golden.py`` regenerates the snapshots after an
intentional model change.

Two *degraded* snapshots ride along: the same executor priced under a
tiny deterministic search budget (``REPRO_BUDGET``), freezing the
fallback ladder's output.  Degradation is part of the reproducible
surface -- the same budget must yield the same (labeled) plan on any
host -- so its plans are frozen exactly like the healthy ones.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List

from repro.runner.parallel import GridPoint
from repro.sim.stats import RunReport

#: The frozen corpus grid (kept small: ~2 s to re-price in full).
GOLDEN_MODELS = ("bert", "t5", "llama3")
GOLDEN_ARCHS = ("cloud", "edge")
GOLDEN_SEQS = (512, 1024)
GOLDEN_BATCH = 4
GOLDEN_EXECUTOR = "transfusion"


def golden_dir() -> Path:
    """The checked-in snapshot directory (``tests/golden/``)."""
    return (
        Path(__file__).resolve().parents[3] / "tests" / "golden"
    )


def golden_points() -> List[GridPoint]:
    """The corpus grid, in deterministic order."""
    return [
        GridPoint(
            executor=GOLDEN_EXECUTOR, model=model, seq_len=seq,
            arch=arch, batch=GOLDEN_BATCH,
        )
        for model in GOLDEN_MODELS
        for arch in GOLDEN_ARCHS
        for seq in GOLDEN_SEQS
    ]


#: Search-unit budget behind the degraded snapshots: small enough to
#: exhaust every search (TileSeek runs 400 iterations by default) and
#: force the fallback ladder, large enough to exercise the budgeted
#: search loop itself.
GOLDEN_DEGRADED_BUDGET = 16


def golden_degraded_points() -> List[GridPoint]:
    """The degraded-corpus points (priced under
    ``REPRO_BUDGET=GOLDEN_DEGRADED_BUDGET``)."""
    return [
        GridPoint(
            executor=GOLDEN_EXECUTOR, model="t5", seq_len=512,
            arch="cloud", batch=GOLDEN_BATCH,
        ),
        GridPoint(
            executor=GOLDEN_EXECUTOR, model="llama3", seq_len=1024,
            arch="edge", batch=GOLDEN_BATCH,
        ),
    ]


def golden_filename(point: GridPoint) -> str:
    """Snapshot filename for one corpus point."""
    return (
        f"{point.executor}-{point.model}-{point.arch}"
        f"-p{point.seq_len}-b{point.batch}.json"
    )


def golden_degraded_filename(point: GridPoint) -> str:
    """Snapshot filename for one degraded corpus point."""
    return golden_filename(point).replace(
        ".json", f"-budget{GOLDEN_DEGRADED_BUDGET}.json"
    )


def golden_document(
    point: GridPoint, report: RunReport
) -> Dict[str, Any]:
    """The JSON document frozen for one corpus point."""
    from repro.core.serialize import report_to_dict

    return {"point": asdict(point), "report": report_to_dict(report)}


def golden_degraded_document(
    point: GridPoint, report: RunReport
) -> Dict[str, Any]:
    """The JSON document frozen for one degraded corpus point.

    Records the budget alongside the report so the snapshot is
    self-describing (the report's ``provenance`` says *how* the
    search degraded; the budget says *why*).
    """
    document = golden_document(point, report)
    document["budget"] = GOLDEN_DEGRADED_BUDGET
    return document


def render_golden(document: Dict[str, Any]) -> str:
    """Canonical byte rendering (diff-stable across platforms)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
