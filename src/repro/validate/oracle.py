"""Differential oracle: cascade DAGs vs simulator vs NumPy reference.

Two independent cross-checks tie the simulator's compute accounting to
ground truth:

* **Operation counts** (:func:`audit_compute_counts`) -- the scalar-op
  counts a fused report charges per phase must equal the cascade DAG's
  Eq. 40 compute load summed over its operations: ``ops_2d + ops_1d =
  scale x n_epochs x Sum(op loads on one tile)``, with ``scale`` the
  causal work fraction for masked MHA and 2 for the twice-executed
  Add & LayerNorm.  Independently, the cascade's GEMM loads at the
  *full-problem* extents must reproduce the workload's closed-form MAC
  counts (Eq. 25-27, QK/AV, Eq. 37/39) -- two derivations of the same
  quantity that share no code.
* **Numerics** (:func:`audit_cascade_numerics`) -- small random
  problems executed through every Einsum cascade must match the
  textbook :mod:`repro.reference.functional` implementation to float
  tolerance, including the 1-pass streaming-softmax attention.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.arch.spec import ArchitectureSpec
from repro.baselines.base import SUBLAYERS
from repro.model.workload import Workload
from repro.reference.functional import (
    causal_mask,
    feed_forward,
    layer_norm,
    multi_head_attention,
    qkv_projection,
)
from repro.sim.stats import RunReport
from repro.validate.report import AuditReport

AUDITOR = "oracle"

#: Relative tolerance for count identities (pure-float re-derivations).
REL_TOL = 1e-9

#: Absolute tolerance for numeric cascade-vs-reference comparisons.
NUMERIC_ATOL = 1e-8


def _isclose(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1.0)


def audit_compute_counts(
    executor,
    workload: Workload,
    arch: ArchitectureSpec,
    run: RunReport,
    subject: str = "compute-counts",
    report: Optional[AuditReport] = None,
) -> AuditReport:
    """Check a fused report's op counts against the cascade DAG.

    Args:
        executor: A fused executor exposing ``cascades`` /
            ``inner_tile`` / ``epoch_count`` (the TransFusion
            executor); its phase op counts are
            ``n_epochs x per-tile cascade load``.
        workload: The problem instance.
        arch: Target architecture.
        run: The report whose counts are audited.
    """
    out = report if report is not None else AuditReport(subject)
    cascades = executor.cascades(
        workload.model, masked=workload.causal
    )
    phase_scale = {
        "mha": workload.attention_work_fraction,
        "layernorm": 2.0,
    }
    counts_ok = True
    for layer in SUBLAYERS:
        cascade = cascades[layer]
        tile = executor.inner_tile(workload, layer, arch)
        n_epochs = executor.epoch_count(workload, layer, tile)
        per_tile = sum(
            op.compute_load(tile) for op in cascade.all_ops
        )
        expected = phase_scale.get(layer, 1.0) * n_epochs * per_tile
        phase = run.phase(layer)
        actual = phase.ops_2d + phase.ops_1d
        if counts_ok and not _isclose(actual, expected):
            counts_ok = out.record(
                AUDITOR, "phase_op_counts", False,
                f"phase {layer!r}: report charges {actual!r} ops, "
                f"cascade DAG implies {expected!r} "
                f"({n_epochs} epochs x {per_tile!r}/tile)",
            )
    if counts_ok:
        out.record(AUDITOR, "phase_op_counts", True)

    # GEMM loads at full extents vs the workload's closed-form MACs.
    # The cascade prices dense attention; divide the analytic count by
    # the causal work fraction to compare like with like.
    analytic = {
        "qkv": workload.qkv_macs / workload.batch,
        "mha": (
            workload.attention_macs
            / workload.batch
            / workload.attention_work_fraction
        ),
        "ffn": workload.ffn_macs / workload.batch,
    }
    macs_ok = True
    for layer, expected in analytic.items():
        extents = executor.layer_extents(workload, layer)
        gemm_load = sum(
            op.compute_load(extents)
            for op in cascades[layer].all_ops
            if op.is_gemm_like
        )
        if macs_ok and not _isclose(gemm_load, expected):
            macs_ok = out.record(
                AUDITOR, "gemm_macs_identity", False,
                f"layer {layer!r}: cascade GEMMs carry "
                f"{gemm_load!r} MACs/batch, closed form says "
                f"{expected!r}",
            )
    if macs_ok:
        out.record(AUDITOR, "gemm_macs_identity", True)
    return out


def audit_cascade_numerics(
    activation: str = "gelu",
    masked: bool = False,
    seed: int = 1234,
    extents: Optional[Dict[str, int]] = None,
    subject: str = "cascade-numerics",
    report: Optional[AuditReport] = None,
) -> AuditReport:
    """Execute every cascade on a small problem vs the NumPy reference."""
    from repro.einsum.builders import (
        attention_cascade,
        ffn_cascade,
        layernorm_cascade,
        qkv_cascade,
    )
    from repro.einsum.evaluator import evaluate_cascade

    out = report if report is not None else AuditReport(subject)
    ext = dict(extents) if extents else {
        "h": 2, "e": 3, "f": 3, "p": 4, "m1": 2, "m0": 3,
        "d": 6, "s": 5,
    }
    rng = np.random.default_rng(seed)
    h, e, f = ext["h"], ext["e"], ext["f"]
    p, m1, m0 = ext["p"], ext["m1"], ext["m0"]
    d, s = ext["d"], ext["s"]
    m = m1 * m0

    def close(label: str, got: np.ndarray, want: np.ndarray) -> None:
        delta = float(np.max(np.abs(got - want))) if got.size else 0.0
        out.record(
            AUDITOR, label,
            bool(np.all(np.isfinite(got)))
            and delta <= NUMERIC_ATOL,
            f"max abs deviation {delta:.3e}",
        )

    inp_q = rng.normal(size=(d, p))
    inp_kv = rng.normal(size=(d, m1, m0))
    wq = rng.normal(size=(d, h, e))
    wk = rng.normal(size=(d, h, e))
    wv = rng.normal(size=(d, h, f))
    got = evaluate_cascade(
        qkv_cascade(),
        {"INP_Q": inp_q, "INP_KV": inp_kv, "WQ": wq, "WK": wk,
         "WV": wv},
        ext,
    )
    ref = qkv_projection(inp_q, inp_kv.reshape(d, m), wq, wk, wv)
    close("qkv_numerics_q", got["Q"], ref["Q"])
    close("qkv_numerics_k", got["BK"].reshape(h, e, m), ref["K"])
    close("qkv_numerics_v", got["BV"].reshape(h, f, m), ref["V"])

    q = rng.normal(size=(h, e, p))
    bk = rng.normal(size=(h, e, m1, m0))
    bv = rng.normal(size=(h, f, m1, m0))
    inputs = {"Q": q, "BK": bk, "BV": bv}
    mask = None
    if masked:
        mask = causal_mask(m, p)
        inputs["MASK"] = mask.reshape(m1, m0, p)
    got = evaluate_cascade(attention_cascade(masked=masked),
                           inputs, ext)
    ref_av = multi_head_attention(
        q, bk.reshape(h, e, m), bv.reshape(h, f, m), mask=mask
    )
    close("attention_numerics", got["AV"], ref_av)

    inp = rng.normal(size=(h, f, p))
    av = rng.normal(size=(h, f, p))
    got = evaluate_cascade(
        layernorm_cascade(), {"INP": inp, "AV": av}, ext
    )
    close("layernorm_numerics", got["NR"], layer_norm(inp, av))

    nr = rng.normal(size=(h, f, p))
    wf1 = rng.normal(size=(h, f, s))
    bf1 = rng.normal(size=(s,))
    wf2 = rng.normal(size=(h, f, s))
    bf2 = rng.normal(size=(h, f))
    got = evaluate_cascade(
        ffn_cascade(activation),
        {"NR": nr, "WF1": wf1, "BF1": bf1, "WF2": wf2, "BF2": bf2},
        ext,
    )
    ref_ffn = feed_forward(nr, wf1, bf1, wf2, bf2,
                           activation=activation)
    close("ffn_numerics", got["FFN2"], ref_ffn)
    return out
