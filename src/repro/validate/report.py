"""Structured audit outcomes.

Every auditor records its individual checks into an
:class:`AuditReport`; hooks raise :class:`AuditViolation` (carrying
the report) when any check fails, and the ``repro validate`` CLI
serializes the full report via :mod:`repro.core.serialize`.

This module must stay free of simulator imports -- it is re-exported
from ``repro.validate`` and imported by :mod:`repro.core.serialize`,
which sits underneath most of the stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class AuditCheck:
    """One verified invariant.

    Attributes:
        auditor: Which auditor ran the check (``schedule`` /
            ``tiling`` / ``conservation`` / ``oracle``).
        name: Short invariant identifier (e.g. ``dependency_order``).
        passed: Whether the invariant held.
        detail: Human-readable context; failure details include the
            observed vs expected quantities.
    """

    auditor: str
    name: str
    passed: bool
    detail: str = ""


class AuditViolation(AssertionError):
    """An audited invariant failed.

    Derives from :class:`AssertionError` so hook-raised violations
    fail tests loudly; carries the full report for diagnostics.
    """

    def __init__(self, report: "AuditReport") -> None:
        self.report = report
        lines = [
            f"{check.auditor}.{check.name}: {check.detail or 'failed'}"
            for check in report.failures()
        ]
        super().__init__(
            f"audit of {report.subject!r} failed "
            f"{len(lines)} check(s):\n  " + "\n  ".join(lines)
        )


@dataclass
class AuditReport:
    """Accumulated checks from one or more auditors.

    Attributes:
        subject: What was audited (a workload/schedule label).
        checks: Every check recorded, in execution order.
    """

    subject: str
    checks: List[AuditCheck] = field(default_factory=list)

    def record(
        self,
        auditor: str,
        name: str,
        passed: bool,
        detail: str = "",
    ) -> bool:
        """Append one check outcome; returns ``passed`` for chaining."""
        self.checks.append(
            AuditCheck(
                auditor=auditor, name=name, passed=bool(passed),
                detail=detail,
            )
        )
        return bool(passed)

    @property
    def ok(self) -> bool:
        """Whether every recorded check passed."""
        return all(check.passed for check in self.checks)

    def failures(self) -> List[AuditCheck]:
        """The failed checks, in order."""
        return [check for check in self.checks if not check.passed]

    def merge(self, other: "AuditReport") -> "AuditReport":
        """Absorb another report's checks (returns ``self``)."""
        self.checks.extend(other.checks)
        return self

    def counts(self) -> Dict[str, Tuple[int, int]]:
        """Per-auditor ``(passed, total)`` counts."""
        totals: Dict[str, Tuple[int, int]] = {}
        for check in self.checks:
            passed, total = totals.get(check.auditor, (0, 0))
            totals[check.auditor] = (
                passed + (1 if check.passed else 0), total + 1
            )
        return totals

    def raise_if_failed(self) -> None:
        """Raise :class:`AuditViolation` if any check failed."""
        if not self.ok:
            raise AuditViolation(self)
