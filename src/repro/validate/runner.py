"""Audit orchestration: run every auditor against one grid point.

:func:`validate_point` is the engine behind ``python -m repro
validate``: it prices (or fetches from the PR-1 plan cache) one
:class:`~repro.runner.parallel.GridPoint`, then runs the tiling,
conservation, oracle and schedule auditors over the resulting
artifacts and returns one merged :class:`AuditReport`.

Imported lazily by its consumers (CLI, tests, golden scripts) -- it
pulls in the sweep engine, which sits above the modules the hook
layer instruments.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.spec import named_architecture
from repro.baselines.base import SUBLAYERS
from repro.baselines.registry import named_executor
from repro.runner.parallel import GridPoint, compute_report
from repro.sim.stats import RunReport
from repro.tileseek.evaluate import dram_traffic_words
from repro.validate.config import force_validation
from repro.validate.conservation import audit_conservation
from repro.validate.oracle import (
    audit_cascade_numerics,
    audit_compute_counts,
)
from repro.validate.report import AuditReport, AuditViolation
from repro.validate.tiling import audit_tiling


def validate_point(
    point: GridPoint,
    cache: Optional[object] = None,
) -> Tuple[AuditReport, RunReport]:
    """Audit one grid point end to end.

    Args:
        point: The (executor, model, sequence, architecture) point.
        cache: A :class:`~repro.runner.cache.PlanCache`, or ``None``
            for the environment default -- cached plans from PR 1's
            store are audited without being recomputed.

    Returns:
        The merged audit report and the run report it audited.
    """
    arch = named_architecture(point.arch)
    workload = point.workload()
    audit = AuditReport(
        f"{point.executor}:{workload.describe()}:{arch.name}"
    )
    # Hooks raise on the *first* violation; the explicit audit below
    # records every check instead, so disable them while computing.
    with force_validation(False):
        run = compute_report(point, cache=cache)
        executor = named_executor(point.executor)
        traffic = None
        if hasattr(executor, "tiling"):
            tiling = executor.tiling(workload, arch)
            traffic = dram_traffic_words(
                tiling.config, workload, arch.buffer_words
            )
            audit_tiling(
                tiling.config, tiling.assessment, workload, arch,
                report=audit,
            )
    audit_conservation(
        run, arch, workload=workload, traffic=traffic, report=audit
    )
    if hasattr(executor, "tiling"):
        audit_compute_counts(
            executor, workload, arch, run, report=audit
        )
    if hasattr(executor, "layer_plan"):
        # Re-plan each sub-layer with the dp_schedule hook forced on:
        # every DP pass of the bipartition/topological-order search is
        # audited in place (dependency order, booking, epoch legality,
        # exact earliest-finish replay).
        with force_validation(True):
            for layer in SUBLAYERS:
                try:
                    executor.layer_plan(workload, arch, layer)
                except AuditViolation as violation:
                    audit.merge(violation.report)
                else:
                    audit.record(
                        "schedule", f"replan_{layer}", True,
                        "every DP pass audited during re-planning",
                    )
    audit_cascade_numerics(
        activation=workload.model.activation,
        masked=workload.causal,
        report=audit,
    )
    return audit, run
