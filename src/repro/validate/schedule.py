"""Schedule auditor: is a :class:`ScheduleResult` self-consistent?

Given the same inputs the DP scheduler saw (topological order,
predecessor map, latency table), the auditor proves four properties of
a recorded schedule:

* **Coverage / dependency order** -- every node is scheduled exactly
  once and no node precedes a predecessor.
* **Epoch legality** -- inside a pipeline window (Figure 7d), the
  current epoch's subgraph may feed the next epoch's, never the
  reverse: a ``cur.``-prefixed node must not depend on a ``nxt.`` one.
* **Exclusive PE-array booking** -- the execution intervals implied by
  the recorded end times and latencies never overlap on either array.
* **Exact earliest-finish replay** -- re-running the Eq. 43-46
  arithmetic under the *recorded* array choices reproduces every end
  time, the busy accounting and the makespan bit-for-bit, and every
  recorded choice is Eq. 45's argmin (with the 2D tie-break).

All comparisons are exact float equality: the replay performs the
identical arithmetic, so any drift signals a real inconsistency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.arch.pe import PEArrayKind
from repro.dpipe.latency import LatencyTable
from repro.dpipe.pipeline import CURRENT, NEXT
from repro.dpipe.scheduler import ARRAYS, ScheduleResult, _strip_epoch
from repro.validate.report import AuditReport

AUDITOR = "schedule"


def _node_latency(
    node: str,
    kind: PEArrayKind,
    table: LatencyTable,
    zero_latency: Set[str],
) -> float:
    if node in zero_latency:
        return 0.0
    return table.latency(_strip_epoch(node), kind)


def audit_schedule(
    order: Sequence[str],
    preds: Mapping[str, Set[str]],
    table: LatencyTable,
    result: ScheduleResult,
    zero_latency: Set[str] = frozenset(),
    subject: str = "schedule",
    report: Optional[AuditReport] = None,
) -> AuditReport:
    """Audit one schedule against the inputs that produced it."""
    out = report if report is not None else AuditReport(subject)
    nodes = list(order)
    node_set = set(nodes)

    out.record(
        AUDITOR, "coverage",
        len(nodes) == len(node_set)
        and set(result.assignment) == node_set
        and set(result.end_times) == node_set,
        f"{len(nodes)} order entries, "
        f"{len(result.assignment)} assigned, "
        f"{len(result.end_times)} end times",
    )

    seen: Set[str] = set()
    order_ok = True
    for node in nodes:
        for pred in preds.get(node, ()):
            if pred in node_set and pred not in seen:
                order_ok = out.record(
                    AUDITOR, "dependency_order", False,
                    f"{node!r} scheduled before predecessor {pred!r}",
                )
                break
        seen.add(node)
        if not order_ok:
            break
    if order_ok:
        out.record(AUDITOR, "dependency_order", True)

    epoch_ok = True
    for node in nodes:
        if not node.startswith(CURRENT):
            continue
        bad = [
            pred for pred in preds.get(node, ())
            if pred.startswith(NEXT)
        ]
        if bad:
            epoch_ok = out.record(
                AUDITOR, "epoch_legality", False,
                f"current-epoch node {node!r} depends on "
                f"next-epoch {bad[0]!r}",
            )
            break
    if epoch_ok:
        out.record(AUDITOR, "epoch_legality", True)

    if not out.ok:
        return out  # replay needs a well-formed schedule

    # Exact replay of Eq. 43-46 under the recorded assignment.
    time: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    end: Dict[str, float] = {}
    busy: Dict[PEArrayKind, float] = {kind: 0.0 for kind in ARRAYS}
    intervals: Dict[PEArrayKind, List[Tuple[float, float, str]]] = {
        kind: [] for kind in ARRAYS
    }
    replay_ok = greedy_ok = True
    for node in nodes:
        dep_ready = max(
            (end[p] for p in preds.get(node, ()) if p in end),
            default=0.0,
        )
        best_kind = ARRAYS[0]
        best_end = float("inf")
        for kind in ARRAYS:
            latency = _node_latency(node, kind, table, zero_latency)
            finish = max(time[kind], dep_ready) + latency
            if finish < best_end:  # strict: 2D wins ties (Eq. 45)
                best_kind = kind
                best_end = finish
        kind = result.assignment[node]
        if greedy_ok and (
            kind is not best_kind
            or best_end != result.end_times[node]
        ):
            greedy_ok = out.record(
                AUDITOR, "greedy_optimality", False,
                f"{node!r} assigned to {kind.value} finishing at "
                f"{result.end_times[node]!r}; Eq. 45 picks "
                f"{best_kind.value} finishing at {best_end!r}",
            )
        latency = _node_latency(node, kind, table, zero_latency)
        start = max(time[kind], dep_ready)  # Eq. 43
        finish = start + latency  # Eq. 44
        if replay_ok and finish != result.end_times.get(node):
            replay_ok = out.record(
                AUDITOR, "earliest_finish", False,
                f"{node!r}: recorded end "
                f"{result.end_times.get(node)!r}, replay {finish!r}",
            )
        if latency > 0.0:
            intervals[kind].append((start, finish, node))
        end[node] = finish
        time[kind] = finish  # Eq. 46
        busy[kind] += latency
    if replay_ok:
        out.record(AUDITOR, "earliest_finish", True)
    if greedy_ok:
        out.record(AUDITOR, "greedy_optimality", True)

    booking_ok = True
    for kind in ARRAYS:
        slots = sorted(intervals[kind])
        for (s0, e0, n0), (s1, e1, n1) in zip(slots, slots[1:]):
            if s1 < e0:
                booking_ok = out.record(
                    AUDITOR, "array_exclusive", False,
                    f"{kind.value}: {n0!r} [{s0!r}, {e0!r}) overlaps "
                    f"{n1!r} [{s1!r}, {e1!r})",
                )
                break
        if not booking_ok:
            break
    if booking_ok:
        out.record(AUDITOR, "array_exclusive", True)

    expected_makespan = max(end.values(), default=0.0)
    out.record(
        AUDITOR, "makespan",
        result.makespan == expected_makespan,
        f"recorded {result.makespan!r}, "
        f"recomputed {expected_makespan!r}",
    )
    out.record(
        AUDITOR, "busy_accounting",
        all(result.busy_seconds[kind] == busy[kind]
            for kind in ARRAYS),
        "per-array assigned-latency totals",
    )
    return out
