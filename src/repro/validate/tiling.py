"""Tiling auditor: accepted tilings fit, rejected ones don't.

Re-derives every quantity in a :class:`TilingAssessment` from first
principles -- the Table-2 buffer model and the fused-dataflow traffic
model -- and compares exactly:

* the tiling's fixed factors match the PE mapping (``m0`` = 2D-array
  columns, ``p' = ceil(p / rows)``),
* the recorded peak buffer requirement equals a fresh
  :func:`fused_buffer_requirement` evaluation, and the feasibility
  flag equals ``requirement <= capacity``,
* an *accepted* configuration (TileSeek's winner) genuinely fits,
* DRAM words, transfer seconds, DRAM energy and the K/V / weight pass
  counts all equal a fresh :func:`dram_traffic_words` pricing,
* the heuristic Q-tile bound is *tight*: the returned ``p`` fits and
  ``p + 1`` does not (unless ``p`` is the full sequence),
* every explicitly *rejected* incumbent genuinely overflows the
  buffer.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.arch.spec import ArchitectureSpec
from repro.model.workload import Workload
from repro.tileseek.buffer_model import (
    TilingConfig,
    fused_buffer_requirement,
    intra_tile_p_prime,
    max_feasible_q_tile,
    q_tile_fits,
)
from repro.tileseek.evaluate import (
    TilingAssessment,
    dram_traffic_words,
)
from repro.validate.report import AuditReport

AUDITOR = "tiling"


def audit_tiling(
    config: TilingConfig,
    assessment: TilingAssessment,
    workload: Workload,
    arch: ArchitectureSpec,
    rejected: Sequence[TilingConfig] = (),
    subject: str = "tiling",
    report: Optional[AuditReport] = None,
) -> AuditReport:
    """Audit one accepted tiling (and optional rejected incumbents)."""
    out = report if report is not None else AuditReport(subject)
    model = workload.model
    array = arch.array_2d

    out.record(
        AUDITOR, "m0_matches_array",
        config.m0 == array.cols,
        f"m0={config.m0}, 2D columns={array.cols}",
    )
    expected_p_prime = intra_tile_p_prime(config.p, array.rows)
    out.record(
        AUDITOR, "p_prime_ceil",
        config.p_prime == expected_p_prime,
        f"p'={config.p_prime}, ceil({config.p}/{array.rows})="
        f"{expected_p_prime}",
    )

    required = fused_buffer_requirement(config, model)
    out.record(
        AUDITOR, "buffer_recompute",
        required == assessment.buffer_words_required,
        f"recorded {assessment.buffer_words_required!r}, "
        f"recomputed {required!r}",
    )
    fits = required <= arch.buffer_words
    out.record(
        AUDITOR, "feasibility_flag",
        assessment.feasible == fits,
        f"flag {assessment.feasible}, requirement {required!r} vs "
        f"capacity {arch.buffer_words}",
    )
    out.record(
        AUDITOR, "accepted_fits",
        fits,
        f"accepted tiling needs {required!r} of "
        f"{arch.buffer_words} words",
    )

    traffic = dram_traffic_words(config, workload, arch.buffer_words)
    out.record(
        AUDITOR, "traffic_recompute",
        traffic["total"] == assessment.dram_words,
        f"recorded {assessment.dram_words!r}, "
        f"recomputed {traffic['total']!r}",
    )
    out.record(
        AUDITOR, "pass_counts",
        int(traffic["kv_passes"]) == assessment.kv_passes
        and int(traffic["weight_passes"])
        == assessment.weight_passes,
        f"kv {assessment.kv_passes} vs {traffic['kv_passes']}, "
        f"weights {assessment.weight_passes} vs "
        f"{traffic['weight_passes']}",
    )
    out.record(
        AUDITOR, "dram_seconds",
        assessment.dram_seconds == arch.dram_seconds(
            traffic["total"]
        ),
        "transfer time equals words / bandwidth",
    )
    out.record(
        AUDITOR, "dram_energy",
        assessment.energy_pj == arch.energy.dram_energy_pj(
            traffic["total"]
        ),
        "DRAM energy equals words x per-access energy",
    )

    bound = max_feasible_q_tile(
        model, workload.seq_len, arch.buffer_words,
        m0=array.cols, rows=array.rows,
    )
    tight = q_tile_fits(
        bound, model, arch.buffer_words, m0=array.cols,
        rows=array.rows,
    ) and (
        bound == max(1, workload.seq_len)
        or not q_tile_fits(
            bound + 1, model, arch.buffer_words, m0=array.cols,
            rows=array.rows,
        )
    )
    # A fully infeasible axis legitimately returns the p=1 floor.
    if bound == 1 and not q_tile_fits(
        1, model, arch.buffer_words, m0=array.cols, rows=array.rows
    ):
        tight = True
    out.record(
        AUDITOR, "q_tile_bound_tight",
        tight,
        f"max_feasible_q_tile={bound} for P={workload.seq_len}",
    )

    for index, incumbent in enumerate(rejected):
        need = fused_buffer_requirement(incumbent, model)
        out.record(
            AUDITOR, "rejected_overflows",
            need > arch.buffer_words,
            f"rejected[{index}] {incumbent.as_dict()} needs "
            f"{need!r} of {arch.buffer_words} words",
        )
    return out
