"""Tests for the architecture models (PE arrays, memory, energy,
Table-3 presets)."""

import pytest

from repro.arch.energy import (
    EnergyModel,
    energy_model_for_buffer,
    sram_pj_per_word,
)
from repro.arch.memory import MemoryLevel, MemoryLevelKind
from repro.arch.pe import PEArray, PEArrayKind
from repro.arch.spec import (
    cloud_architecture,
    edge_architecture,
    named_architecture,
)


class TestPEArray:
    def test_num_pes(self):
        array = PEArray(PEArrayKind.ARRAY_2D, rows=16, cols=16)
        assert array.num_pes == 256

    def test_1d_requires_single_row(self):
        with pytest.raises(ValueError, match="exactly one row"):
            PEArray(PEArrayKind.ARRAY_1D, rows=2, cols=8)

    def test_efficiency_bounds_enforced(self):
        with pytest.raises(ValueError):
            PEArray(
                PEArrayKind.ARRAY_2D, rows=4, cols=4,
                map_efficiency=0.0,
            )
        with pytest.raises(ValueError):
            PEArray(
                PEArrayKind.ARRAY_2D, rows=4, cols=4,
                reduction_efficiency=1.5,
            )

    def test_str(self):
        assert str(
            PEArray(PEArrayKind.ARRAY_2D, rows=4, cols=8)
        ) == "2D[4x8]"
        assert str(
            PEArray(PEArrayKind.ARRAY_1D, rows=1, cols=8)
        ) == "1D[8]"


class TestMemoryLevel:
    def test_transfer_time(self):
        level = MemoryLevel(
            MemoryLevelKind.DRAM, capacity_bytes=0,
            bandwidth_bytes_per_s=100.0,
        )
        assert level.transfer_seconds(50.0) == 0.5
        assert level.unbounded

    def test_fits(self):
        level = MemoryLevel(
            MemoryLevelKind.GLOBAL_BUFFER, capacity_bytes=100,
            bandwidth_bytes_per_s=1.0,
        )
        assert level.fits(100)
        assert not level.fits(101)

    def test_negative_transfer_rejected(self):
        level = MemoryLevel(
            MemoryLevelKind.DRAM, capacity_bytes=0,
            bandwidth_bytes_per_s=1.0,
        )
        with pytest.raises(ValueError):
            level.transfer_seconds(-1.0)


class TestEnergyModel:
    def test_dram_dominates_sram_per_access(self):
        model = EnergyModel()
        assert (
            model.dram_pj_per_word > 10 * model.buffer_pj_per_word
        )

    def test_sram_energy_scales_with_sqrt_capacity(self):
        small = sram_pj_per_word(1 << 20)
        big = sram_pj_per_word(4 << 20)
        assert big == pytest.approx(2.0 * small)

    def test_energy_model_for_buffer_tracks_capacity(self):
        model_small = energy_model_for_buffer(1 << 20)
        model_big = energy_model_for_buffer(16 << 20)
        assert (
            model_big.buffer_pj_per_word
            > model_small.buffer_pj_per_word
        )

    def test_pe_energy_combines_arrays(self):
        model = EnergyModel(
            pe_2d_pj_per_op=2.0, pe_1d_pj_per_op=1.0
        )
        assert model.pe_energy_pj(10, 20) == 40.0

    def test_positive_constants_enforced(self):
        with pytest.raises(ValueError):
            EnergyModel(dram_pj_per_word=0.0)


class TestPresets:
    def test_cloud_matches_table3(self):
        arch = cloud_architecture()
        assert arch.array_2d.rows == arch.array_2d.cols == 256
        assert arch.array_1d.cols == 256
        assert arch.buffer.capacity_bytes == 16 << 20
        assert arch.dram.bandwidth_bytes_per_s == 400e9

    def test_edge_matches_table3(self):
        arch = edge_architecture()
        assert arch.array_2d.rows == arch.array_2d.cols == 16
        assert arch.array_1d.cols == 256
        assert arch.buffer.capacity_bytes == 5 << 20
        assert arch.dram.bandwidth_bytes_per_s == 30e9

    def test_edge64_gets_8mb_buffer(self):
        arch = edge_architecture(64)
        assert arch.buffer.capacity_bytes == 8 << 20

    def test_invalid_edge_size_rejected(self):
        with pytest.raises(ValueError):
            edge_architecture(48)

    def test_named_architecture_lookup(self):
        assert named_architecture("cloud").name == "cloud"
        assert named_architecture("edge32").array_2d.rows == 32
        with pytest.raises(KeyError):
            named_architecture("gpu")

    def test_wavefront_efficiency_scales_inverse_rows(self):
        cloud = cloud_architecture()
        edge = edge_architecture()
        assert cloud.array_2d.map_efficiency == pytest.approx(1 / 256)
        assert edge.array_2d.map_efficiency == pytest.approx(1 / 16)

    def test_with_2d_array_recomputes_efficiencies(self):
        resized = edge_architecture().with_2d_array(32, 32)
        assert resized.array_2d.rows == 32
        assert resized.array_2d.map_efficiency == pytest.approx(1 / 32)

    def test_buffer_words(self):
        arch = cloud_architecture()
        assert arch.buffer_words == (16 << 20) // 2

    def test_cycles_and_dram_seconds(self):
        arch = cloud_architecture()
        assert arch.cycles_to_seconds(arch.clock_hz) == 1.0
        words = arch.dram.bandwidth_bytes_per_s / arch.word_bytes
        assert arch.dram_seconds(words) == pytest.approx(1.0)

    def test_array_lookup_by_kind(self):
        from repro.arch.pe import PEArrayKind

        arch = cloud_architecture()
        assert arch.array(PEArrayKind.ARRAY_2D) is arch.array_2d
        assert arch.array(PEArrayKind.ARRAY_1D) is arch.array_1d
