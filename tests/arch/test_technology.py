"""Tests for technology-node energy scaling."""

import pytest

from repro.arch.energy import EnergyModel
from repro.arch.technology import (
    TECHNOLOGY_NODES,
    TechnologyNode,
    scaled_energy_model,
)


class TestNodes:
    def test_45nm_is_identity(self):
        model = EnergyModel()
        scaled = scaled_energy_model(model, "45nm")
        assert scaled == model

    def test_smaller_nodes_cheaper_logic(self):
        model = EnergyModel()
        previous = model.pe_2d_pj_per_op
        for name in ("22nm", "14nm", "7nm"):
            scaled = scaled_energy_model(model, name)
            assert scaled.pe_2d_pj_per_op < previous
            previous = scaled.pe_2d_pj_per_op

    def test_dram_scales_slower_than_logic(self):
        model = EnergyModel()
        scaled = scaled_energy_model(model, "7nm")
        logic_ratio = scaled.pe_2d_pj_per_op / model.pe_2d_pj_per_op
        dram_ratio = scaled.dram_pj_per_word / model.dram_pj_per_word
        assert dram_ratio > logic_ratio
        # Consequence: at advanced nodes, data movement dominates even
        # more -- fusion's energy argument strengthens.
        scaled_gap = scaled.dram_pj_per_word / scaled.pe_2d_pj_per_op
        base_gap = model.dram_pj_per_word / model.pe_2d_pj_per_op
        assert scaled_gap > base_gap

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            scaled_energy_model(EnergyModel(), "3nm")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            TechnologyNode("bad", 45.0, 0.0, 1.0, 1.0)

    def test_all_nodes_have_positive_scales(self):
        for node in TECHNOLOGY_NODES.values():
            assert node.logic_scale > 0
            assert node.sram_scale > 0
            assert node.dram_scale > 0
