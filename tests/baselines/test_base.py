"""Tests for the shared executor machinery."""

import pytest

from repro.arch.pe import PEArrayKind
from repro.baselines.base import ExecutorBase, default_assignment
from repro.baselines.unfused import UnfusedExecutor
from repro.einsum.builders import attention_cascade, qkv_cascade
from repro.model.workload import Workload


@pytest.fixture
def executor():
    return UnfusedExecutor()


class TestAssignment:
    def test_gemms_go_to_2d(self):
        cascade = attention_cascade()
        assert default_assignment(
            cascade.op("BQK")
        ) is PEArrayKind.ARRAY_2D

    def test_vector_ops_go_to_1d(self):
        cascade = attention_cascade()
        for name in ("LM", "SLN", "RMn", "AV"):
            assert default_assignment(
                cascade.op(name)
            ) is PEArrayKind.ARRAY_1D


class TestEpochCount:
    def test_mha_epochs(self, executor, llama_workload, cloud):
        tile = executor.inner_tile(llama_workload, "mha", cloud)
        count = executor.epoch_count(llama_workload, "mha", tile)
        p_tiles = 65536 // 256
        m_tiles = 65536 // 256
        assert count == 64 * p_tiles * m_tiles

    def test_qkv_lockstep_rows_counted_once(
        self, executor, llama_workload, cloud
    ):
        tile = executor.inner_tile(llama_workload, "qkv", cloud)
        count = executor.epoch_count(llama_workload, "qkv", tile)
        p_tiles = 65536 // tile["p"]
        col_tiles = (32 // tile["h"]) * (128 // tile["e"])
        assert count == 64 * p_tiles * col_tiles

    def test_epoch_count_times_tile_load_covers_problem(
        self, executor, llama_workload, cloud
    ):
        # Energy consistency: dominant-op load per epoch x epochs ==
        # total problem load for that op.
        cascade = executor.cascades(llama_workload.model)["mha"]
        tile = executor.inner_tile(llama_workload, "mha", cloud)
        count = executor.epoch_count(llama_workload, "mha", tile)
        bqk = cascade.op("BQK")
        per_epoch = bqk.compute_load(tile)
        total_expected = (
            llama_workload.batch
            * llama_workload.model.heads
            * llama_workload.seq_len ** 2
            * llama_workload.model.e_head
        )
        assert count * per_epoch == pytest.approx(total_expected)


class TestStaticSchedule:
    def test_pipelined_at_most_serial(
        self, executor, llama_workload, cloud
    ):
        cascade = executor.cascades(llama_workload.model)["mha"]
        tile = executor.inner_tile(llama_workload, "mha", cloud)
        serial = executor.static_schedule(
            cascade, "mha", tile, cloud, 100, pipelined=False
        )
        piped = executor.static_schedule(
            cascade, "mha", tile, cloud, 100, pipelined=True
        )
        assert piped.compute_seconds < serial.compute_seconds
        # Busy time (work) is schedule independent.
        assert piped.busy_seconds == serial.busy_seconds

    def test_vector_pass_factor_scales_1d_only(
        self, executor, llama_workload, cloud
    ):
        cascade = executor.cascades(llama_workload.model)["mha"]
        tile = executor.inner_tile(llama_workload, "mha", cloud)
        one = executor.static_schedule(
            cascade, "mha", tile, cloud, 10, pipelined=False,
            vector_pass_factor=1.0,
        )
        two = executor.static_schedule(
            cascade, "mha", tile, cloud, 10, pipelined=False,
            vector_pass_factor=2.0,
        )
        assert two.ops_1d == pytest.approx(2 * one.ops_1d)
        assert two.ops_2d == pytest.approx(one.ops_2d)


class TestAccessCounts:
    def test_retention_moves_intermediates_to_rf(
        self, executor, llama_workload, cloud
    ):
        cascade = executor.cascades(llama_workload.model)["mha"]
        tile = executor.inner_tile(llama_workload, "mha", cloud)
        no_ret = executor.static_schedule(
            cascade, "mha", tile, cloud, 10, pipelined=False
        )
        executor.add_access_counts(no_ret, cascade, tile, 10, False)
        with_ret = executor.static_schedule(
            cascade, "mha", tile, cloud, 10, pipelined=False
        )
        executor.add_access_counts(with_ret, cascade, tile, 10, True)
        assert with_ret.buffer_words < no_ret.buffer_words
        assert with_ret.rf_words > no_ret.rf_words


class TestHeuristicQTile:
    def test_fused_scope_tighter_than_mha_scope(
        self, executor, llama_workload, cloud
    ):
        mha = executor.heuristic_q_tile_tokens(
            llama_workload, cloud, scope="mha"
        )
        fused = executor.heuristic_q_tile_tokens(
            llama_workload, cloud, scope="fused"
        )
        assert fused <= mha

    def test_unknown_scope_rejected(
        self, executor, llama_workload, cloud
    ):
        with pytest.raises(ValueError):
            executor.heuristic_q_tile_tokens(
                llama_workload, cloud, scope="everything"
            )

    def test_small_sequence_fully_resident(
        self, executor, tiny_model, cloud
    ):
        workload = Workload(tiny_model, seq_len=64, batch=2)
        assert executor.heuristic_q_tile_tokens(
            workload, cloud
        ) == 64
