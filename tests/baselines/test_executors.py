"""Cross-executor behaviour: fusion scope, schedules and the paper's
qualitative orderings."""

import pytest

from repro.arch.spec import named_architecture
from repro.baselines.registry import EXECUTORS, named_executor
from repro.model.config import named_model
from repro.model.workload import Workload

@pytest.fixture(scope="module")
def reports_cloud():
    workload = Workload(named_model("llama3"), seq_len=65536,
                        batch=64)
    arch = named_architecture("cloud")
    return (
        {
            name: named_executor(name).run(workload, arch)
            for name in EXECUTORS
        },
        arch,
    )


@pytest.fixture(scope="module")
def reports_edge():
    workload = Workload(named_model("llama3"), seq_len=65536,
                        batch=64)
    arch = named_architecture("edge")
    return (
        {
            name: named_executor(name).run(workload, arch)
            for name in EXECUTORS
        },
        arch,
    )


class TestRegistry:
    def test_all_five_executors_registered(self):
        assert set(EXECUTORS) == {
            "unfused", "flat", "fusemax", "fusemax+lf",
            "transfusion",
        }

    def test_unknown_executor_rejected(self):
        with pytest.raises(KeyError):
            named_executor("tpu-magic")

    def test_names_match_registry_keys(self):
        for key in EXECUTORS:
            assert named_executor(key).name == key


class TestReportStructure:
    def test_every_report_has_four_phases(self, reports_cloud):
        reports, _ = reports_cloud
        for report in reports.values():
            assert [p.name for p in report.phases] == [
                "qkv", "mha", "layernorm", "ffn",
            ]

    def test_positive_latency_everywhere(self, reports_cloud):
        reports, arch = reports_cloud
        for report in reports.values():
            assert report.latency_seconds(arch) > 0


class TestFusionScope:
    def test_unfused_moves_scores_through_dram(self, reports_cloud):
        reports, _ = reports_cloud
        workload_scores = 4 * 64 * 32 * 65536**2
        assert reports["unfused"].phase(
            "mha"
        ).dram_words >= workload_scores

    def test_fused_attention_avoids_score_traffic(
        self, reports_cloud
    ):
        reports, _ = reports_cloud
        scores = 64 * 32 * 65536**2
        for name in ("flat", "fusemax", "fusemax+lf",
                     "transfusion"):
            assert reports[name].phase("mha").dram_words < scores

    def test_layer_fusion_zeroes_layernorm_traffic(
        self, reports_cloud
    ):
        reports, _ = reports_cloud
        assert reports["fusemax+lf"].phase(
            "layernorm"
        ).dram_words == 0.0
        assert reports["transfusion"].phase(
            "layernorm"
        ).dram_words == 0.0
        assert reports["fusemax"].phase(
            "layernorm"
        ).dram_words > 0.0

    def test_total_traffic_shrinks_with_fusion_scope(
        self, reports_cloud
    ):
        reports, _ = reports_cloud
        assert (
            reports["transfusion"].dram_words()
            <= reports["fusemax+lf"].dram_words() + 1e-6
        )
        assert (
            reports["fusemax+lf"].dram_words()
            < reports["fusemax"].dram_words()
        )
        assert (
            reports["fusemax"].dram_words()
            < reports["unfused"].dram_words()
        )


class TestPaperOrderings:
    """The qualitative results of Figure 8 at 64K."""

    def test_cloud_speedup_ordering(self, reports_cloud):
        reports, arch = reports_cloud
        latency = {
            name: rep.latency_seconds(arch)
            for name, rep in reports.items()
        }
        assert latency["transfusion"] < latency["fusemax+lf"]
        assert latency["fusemax+lf"] < latency["fusemax"]
        assert latency["fusemax"] < latency["unfused"]
        # FLAT collapses at long sequences on cloud (consistent with
        # TransFusion = 1.6x FuseMax but 7x FLAT in the paper).
        assert latency["flat"] > latency["unfused"]

    def test_edge_speedup_ordering(self, reports_edge):
        reports, arch = reports_edge
        latency = {
            name: rep.latency_seconds(arch)
            for name, rep in reports.items()
        }
        assert latency["transfusion"] < latency["fusemax+lf"]
        assert latency["fusemax+lf"] < latency["fusemax"]
        assert latency["fusemax"] < latency["flat"]
        assert latency["flat"] < latency["unfused"]

    def test_cloud_transfusion_vs_fusemax_band(self, reports_cloud):
        reports, arch = reports_cloud
        ratio = (
            reports["fusemax"].latency_seconds(arch)
            / reports["transfusion"].latency_seconds(arch)
        )
        assert 1.2 < ratio < 2.5  # paper: avg 1.6x on cloud

    def test_edge_transfusion_vs_fusemax_band(self, reports_edge):
        reports, arch = reports_edge
        ratio = (
            reports["fusemax"].latency_seconds(arch)
            / reports["transfusion"].latency_seconds(arch)
        )
        assert 1.4 < ratio < 3.0  # paper: avg 2.2x on edge

    def test_transfusion_energy_not_worse_than_fusemax(
        self, reports_cloud, reports_edge
    ):
        for reports, arch in (reports_cloud, reports_edge):
            assert (
                reports["transfusion"].energy(arch).total_pj
                <= reports["fusemax"].energy(arch).total_pj
            )


class TestFlatGranularity:
    def test_flat_q_rows_param_validated(self):
        from repro.baselines.flat import FlatExecutor

        with pytest.raises(ValueError):
            FlatExecutor(q_rows=0)

    def test_flat_cloud_utilization_collapses(self, reports_cloud):
        from repro.arch.pe import PEArrayKind

        reports, arch = reports_cloud
        util_flat = reports["flat"].utilization(arch)
        util_tf = reports["transfusion"].utilization(arch)
        assert (
            util_tf[PEArrayKind.ARRAY_2D]
            > 3 * util_flat[PEArrayKind.ARRAY_2D]
        )
