"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.arch.spec import cloud_architecture, edge_architecture
from repro.model.config import ModelConfig, named_model
from repro.model.workload import Workload


#: Validation is on by default in the suite (explicit REPRO_VALIDATE=0
#: still wins): every schedule, tiling and report the tests produce is
#: audited in place.
os.environ.setdefault("REPRO_VALIDATE", "1")


@pytest.fixture(scope="session", autouse=True)
def _isolated_sweep_cache(tmp_path_factory):
    """Point the persistent sweep cache at a per-session temp dir so
    tests never touch (or depend on) the user's real cache."""
    root = tmp_path_factory.mktemp("sweep-cache")
    saved = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(root)
    yield
    if saved is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = saved


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_extents() -> dict:
    """Small dimension extents exercising every cascade dim."""
    return {
        "h": 3, "e": 4, "f": 4, "p": 5,
        "m1": 4, "m0": 2, "d": 12, "s": 7,
    }


@pytest.fixture
def tiny_model() -> ModelConfig:
    """A small but structurally complete model config."""
    return ModelConfig(
        name="tiny", d_model=64, heads=4, e_head=16,
        ffn_hidden=128, layers=2, activation="gelu",
    )


@pytest.fixture
def llama3() -> ModelConfig:
    return named_model("llama3")


@pytest.fixture
def cloud():
    return cloud_architecture()


@pytest.fixture
def edge():
    return edge_architecture()


@pytest.fixture
def small_workload(tiny_model) -> Workload:
    return Workload(tiny_model, seq_len=256, batch=4)


@pytest.fixture
def llama_workload(llama3) -> Workload:
    return Workload(llama3, seq_len=65536, batch=64)
