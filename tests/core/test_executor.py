"""Tests for the TransFusion executor."""

import pytest

from repro.arch.pe import PEArrayKind
from repro.core.executor import TransFusionExecutor
from repro.dpipe.planner import DPipeOptions
from repro.model.config import named_model
from repro.model.workload import Workload


@pytest.fixture
def executor():
    return TransFusionExecutor()


class TestTilingIntegration:
    def test_tiling_is_memoized(self, executor, llama_workload,
                                cloud):
        first = executor.tiling(llama_workload, cloud)
        second = executor.tiling(llama_workload, cloud)
        assert first is second

    def test_tiling_is_feasible(self, executor, llama_workload,
                                cloud, edge):
        for arch in (cloud, edge):
            result = executor.tiling(llama_workload, arch)
            assert result.feasible

    def test_different_arch_different_cache_entry(
        self, executor, llama_workload, cloud, edge
    ):
        a = executor.tiling(llama_workload, cloud)
        b = executor.tiling(llama_workload, edge)
        assert a is not b


class TestLayerPlans:
    def test_plans_for_all_sublayers(self, executor, llama_workload,
                                     cloud):
        for layer in ("qkv", "mha", "layernorm", "ffn"):
            plan = executor.layer_plan(llama_workload, cloud, layer)
            assert plan.total_seconds > 0
            assert plan.n_epochs >= 1

    def test_mha_plan_pipelines(self, executor, llama_workload,
                                cloud):
        plan = executor.layer_plan(llama_workload, cloud, "mha")
        assert plan.pipelined


class TestPhases:
    def test_phase_traffic_apportionment(self, executor,
                                         llama_workload, cloud):
        report = executor.run(llama_workload, cloud)
        assert report.phase("layernorm").dram_words == 0.0
        assert report.phase("qkv").dram_words > 0
        assert report.phase("mha").dram_words > 0
        assert report.phase("ffn").dram_words > 0

    def test_layernorm_phase_counted_twice(self, executor,
                                           llama_workload, cloud):
        report = executor.run(llama_workload, cloud)
        single = executor.layer_plan(
            llama_workload, cloud, "layernorm"
        )
        assert report.phase(
            "layernorm"
        ).compute_seconds == pytest.approx(
            2 * single.total_seconds
        )

    def test_all_phases_overlap_dram(self, executor, llama_workload,
                                     cloud):
        report = executor.run(llama_workload, cloud)
        assert all(p.overlap_dram for p in report.phases)

    def test_ops_split_across_both_arrays_on_edge(
        self, executor, llama_workload, edge
    ):
        report = executor.run(llama_workload, edge)
        total_2d = sum(p.ops_2d for p in report.phases)
        total_1d = sum(p.ops_1d for p in report.phases)
        # DPipe load balancing: neither array idles on edge.
        assert total_1d > 0.3 * total_2d


class TestAblationOptions:
    def test_static_options_slow_it_down(self, llama_workload, edge):
        full = TransFusionExecutor().run(llama_workload, edge)
        static = TransFusionExecutor(
            dpipe_options=DPipeOptions(
                enable_pipelining=False,
                enable_dp_assignment=False,
            )
        ).run(llama_workload, edge)
        assert static.latency_seconds(edge) > full.latency_seconds(
            edge
        )
