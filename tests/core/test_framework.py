"""Tests for the public TransFusion facade."""

import pytest

from repro import TransFusion, Workload, named_model
from repro.core.framework import DEFAULT_EXECUTORS, compare_executors
from repro.model.config import named_model as _named_model


@pytest.fixture(scope="module")
def compiled():
    from repro.arch.spec import cloud_architecture

    arch = cloud_architecture()
    tf = TransFusion(arch)
    workload = Workload(
        _named_model("bert"), seq_len=4096, batch=16
    )
    return tf.compile(workload), arch


class TestCompile:
    def test_plan_has_all_layers(self, compiled):
        plan, _ = compiled
        assert [c.layer for c in plan.layers] == [
            "qkv", "mha", "layernorm", "ffn",
        ]

    def test_layer_plan_lookup(self, compiled):
        plan, _ = compiled
        assert plan.layer_plan("mha").layer == "mha"
        with pytest.raises(KeyError):
            plan.layer_plan("conv")

    def test_tiling_feasible(self, compiled):
        plan, _ = compiled
        assert plan.tiling.feasible

    def test_summary_fields(self, compiled):
        plan, arch = compiled
        summary = plan.summary(arch)
        assert summary["latency_s"] > 0
        assert summary["energy_pj"] > 0
        assert summary["dram_words"] > 0
        assert (
            summary["buffer_words_required"] <= arch.buffer_words
        )

    def test_interlayer_plan_attached(self, compiled):
        plan, _ = compiled
        assert plan.interlayer.on_chip()

    def test_estimate_matches_compiled_report(self, compiled):
        plan, arch = compiled
        tf = TransFusion(arch)
        workload = Workload(
            _named_model("bert"), seq_len=4096, batch=16
        )
        report = tf.estimate(workload)
        assert report.latency_seconds(arch) == pytest.approx(
            plan.report.latency_seconds(arch)
        )


class TestCompareExecutors:
    def test_default_order(self, cloud):
        workload = Workload(named_model("t5"), seq_len=2048, batch=8)
        reports = compare_executors(workload, cloud)
        assert tuple(reports) == DEFAULT_EXECUTORS

    def test_subset_selection(self, cloud):
        workload = Workload(named_model("t5"), seq_len=2048, batch=8)
        reports = compare_executors(
            workload, cloud, executors=("unfused", "transfusion")
        )
        assert tuple(reports) == ("unfused", "transfusion")

    def test_lazy_core_import(self):
        import repro

        assert repro.TransFusion is TransFusion
        with pytest.raises(AttributeError):
            repro.does_not_exist
