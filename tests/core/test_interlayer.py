"""Tests for the inter-layer residency plan (Section 3.2)."""

import pytest

from repro.core.interlayer import (
    Residency,
    build_interlayer_plan,
)
from repro.model.config import named_model
from repro.model.workload import Workload


class TestResidencyPlan:
    def test_activations_stay_on_chip(self, llama_workload, cloud):
        plan = build_interlayer_plan(
            llama_workload, cloud, q_tile_tokens=256
        )
        on_chip = {b.name for b in plan.on_chip()}
        assert {"Q", "AV", "NR", "FFN2"} <= on_chip

    def test_kv_spills_on_long_sequences(self, llama_workload,
                                         cloud):
        plan = build_interlayer_plan(
            llama_workload, cloud, q_tile_tokens=256
        )
        spilled = {b.name for b in plan.spilled()}
        assert spilled == {"BK", "BV"}
        assert plan.spill_words_per_tile() > 0

    def test_kv_resident_on_short_sequences(self, cloud):
        workload = Workload(named_model("t5"), seq_len=256, batch=4)
        plan = build_interlayer_plan(
            workload, cloud, q_tile_tokens=256
        )
        assert plan.spilled() == []

    def test_every_boundary_has_reason(self, llama_workload, edge):
        plan = build_interlayer_plan(
            llama_workload, edge, q_tile_tokens=128
        )
        for boundary in plan.boundaries:
            assert boundary.reason
            assert boundary.words_per_tile > 0
            assert boundary.residency in Residency
