"""Tests for compiled-plan serialization."""

import json

import pytest

from repro import TransFusion, Workload
from repro.core.serialize import (
    load_plan_dict,
    plan_to_dict,
    save_plan,
)
from repro.model.config import named_model


@pytest.fixture(scope="module")
def compiled_plan():
    from repro.arch.spec import cloud_architecture

    arch = cloud_architecture()
    tf = TransFusion(arch)
    workload = Workload(named_model("bert"), seq_len=4096, batch=8)
    return tf.compile(workload), arch


class TestPlanToDict:
    def test_document_is_json_safe(self, compiled_plan):
        plan, arch = compiled_plan
        document = plan_to_dict(plan, arch)
        text = json.dumps(document)  # must not raise
        assert json.loads(text) == document

    def test_layers_and_tiling_present(self, compiled_plan):
        plan, arch = compiled_plan
        document = plan_to_dict(plan, arch)
        assert [e["layer"] for e in document["layers"]] == [
            "qkv", "mha", "layernorm", "ffn",
        ]
        assert set(document["tiling"]["factors"]) == {
            "b", "d", "m1", "m0", "p", "s", "p_prime",
        }

    def test_pipelined_layers_record_bipartition(
        self, compiled_plan
    ):
        plan, arch = compiled_plan
        document = plan_to_dict(plan, arch)
        mha = next(
            e for e in document["layers"] if e["layer"] == "mha"
        )
        if mha["pipelined"] and "bipartition" in mha:
            first = set(mha["bipartition"]["first"])
            second = set(mha["bipartition"]["second"])
            assert first and second and not first & second

    def test_interlayer_residencies_serialized(self, compiled_plan):
        plan, arch = compiled_plan
        document = plan_to_dict(plan, arch)
        residencies = {
            entry["residency"] for entry in document["interlayer"]
        }
        assert residencies <= {"on_chip", "dram"}

    def test_summary_matches_plan(self, compiled_plan):
        plan, arch = compiled_plan
        document = plan_to_dict(plan, arch)
        assert document["summary"] == plan.summary(arch)


class TestRoundTrip:
    def test_save_and_load(self, compiled_plan, tmp_path):
        plan, arch = compiled_plan
        path = save_plan(plan, arch, tmp_path / "plan.json")
        loaded = load_plan_dict(path)
        assert loaded == plan_to_dict(plan, arch)
