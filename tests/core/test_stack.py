"""Tests for encoder/decoder stack composition and the generalized
(cross / causal) workloads."""

import pytest

from repro.baselines.registry import named_executor
from repro.core.stack import StackConfig, estimate_stack
from repro.model.config import named_model
from repro.model.workload import Workload


class TestWorkloadGeneralization:
    def test_kv_len_defaults_to_seq_len(self, tiny_model):
        workload = Workload(tiny_model, seq_len=128)
        assert workload.kv_len == 128

    def test_cross_attention_kv_len(self, tiny_model):
        workload = Workload(tiny_model, seq_len=64, kv_seq_len=256)
        assert workload.kv_len == 256
        assert "M=256" in workload.describe()

    def test_causal_halves_attention_work(self, tiny_model):
        dense = Workload(tiny_model, seq_len=128)
        causal = Workload(tiny_model, seq_len=128, causal=True)
        assert causal.attention_macs == pytest.approx(
            dense.attention_macs / 2
        )
        assert causal.score_elements == pytest.approx(
            dense.score_elements / 2
        )

    def test_causal_cross_attention_rejected(self, tiny_model):
        with pytest.raises(ValueError, match="causal"):
            Workload(tiny_model, seq_len=64, kv_seq_len=128,
                     causal=True)

    def test_attention_macs_scale_with_kv_len(self, tiny_model):
        short = Workload(tiny_model, seq_len=64, kv_seq_len=128)
        long = Workload(tiny_model, seq_len=64, kv_seq_len=256)
        assert long.attention_macs == pytest.approx(
            2 * short.attention_macs
        )
        # QKV/FFN work depends on the query side only.
        assert long.ffn_macs == short.ffn_macs


class TestCausalExecution:
    @pytest.mark.parametrize(
        "executor", ["fusemax", "transfusion"]
    )
    def test_causal_mha_cheaper_than_dense(self, cloud, executor):
        model = named_model("bert")
        dense = named_executor(executor).run(
            Workload(model, seq_len=8192, batch=8), cloud
        )
        causal = named_executor(executor).run(
            Workload(model, seq_len=8192, batch=8, causal=True),
            cloud,
        )
        assert (
            causal.phase("mha").compute_seconds
            < dense.phase("mha").compute_seconds
        )
        # Non-attention phases are unchanged.
        assert causal.phase("ffn").compute_seconds == pytest.approx(
            dense.phase("ffn").compute_seconds
        )

    def test_cross_attention_scales_with_memory_length(self, cloud):
        model = named_model("bert")
        runner = named_executor("fusemax")
        short = runner.run(
            Workload(model, seq_len=1024, batch=8,
                     kv_seq_len=4096),
            cloud,
        )
        long = runner.run(
            Workload(model, seq_len=1024, batch=8,
                     kv_seq_len=16384),
            cloud,
        )
        assert (
            long.phase("mha").compute_seconds
            > 2 * short.phase("mha").compute_seconds
        )


class TestStackConfig:
    def test_validation(self, tiny_model):
        with pytest.raises(ValueError, match="at least one layer"):
            StackConfig(tiny_model)
        with pytest.raises(ValueError, match="require src_len"):
            StackConfig(tiny_model, encoder_layers=2)
        with pytest.raises(ValueError, match="require tgt_len"):
            StackConfig(tiny_model, decoder_layers=2)

    def test_decoder_only_has_no_cross_attention(self, tiny_model):
        stack = StackConfig(tiny_model, decoder_layers=2,
                            tgt_len=128)
        with pytest.raises(ValueError, match="no cross-attention"):
            stack.cross_attention_workload()

    def test_workload_construction(self, tiny_model):
        stack = StackConfig(
            tiny_model, encoder_layers=2, decoder_layers=2,
            src_len=512, tgt_len=256, batch=4,
        )
        assert stack.encoder_workload().seq_len == 512
        assert stack.decoder_self_workload().causal
        cross = stack.cross_attention_workload()
        assert cross.seq_len == 256
        assert cross.kv_len == 512


class TestEstimateStack:
    @pytest.fixture(scope="class")
    def stack(self):
        return StackConfig(
            named_model("t5"), encoder_layers=6, decoder_layers=6,
            src_len=4096, tgt_len=2048, batch=8,
        )

    def test_hybrid_stack_has_three_blocks(self, stack, cloud):
        estimate = estimate_stack(stack, cloud, "transfusion")
        labels = [label for label, _, _ in estimate.blocks]
        assert labels == ["encoder", "decoder.self",
                          "decoder.cross"]

    def test_cross_block_excludes_ffn(self, stack, cloud):
        estimate = estimate_stack(stack, cloud, "fusemax")
        cross = estimate.blocks[2][2]
        assert [p.name for p in cross.phases] == [
            "qkv", "mha", "layernorm",
        ]

    def test_transfusion_beats_fusemax_on_stacks(self, stack, cloud):
        fusemax = estimate_stack(stack, cloud, "fusemax")
        transfusion = estimate_stack(stack, cloud, "transfusion")
        assert (
            transfusion.latency_seconds(cloud)
            < fusemax.latency_seconds(cloud)
        )
        assert transfusion.energy_pj(cloud) <= fusemax.energy_pj(
            cloud
        )

    def test_totals_are_layer_weighted(self, stack, cloud):
        estimate = estimate_stack(stack, cloud, "unfused")
        total = estimate.latency_seconds(cloud)
        by_block = estimate.block_latencies(cloud)
        assert total == pytest.approx(sum(by_block.values()))
        label, count, report = estimate.blocks[0]
        assert by_block[label] == pytest.approx(
            count * report.latency_seconds(cloud)
        )

    def test_decoder_only_stack(self, cloud):
        stack = StackConfig(
            named_model("llama3"), decoder_layers=32,
            tgt_len=8192, batch=4,
        )
        estimate = estimate_stack(stack, cloud, "transfusion")
        labels = [label for label, _, _ in estimate.blocks]
        assert labels == ["decoder.self"]
        assert estimate.latency_seconds(cloud) > 0
