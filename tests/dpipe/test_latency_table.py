"""Tests for DPipe latency tables."""

import pytest

from repro.arch.pe import PEArrayKind
from repro.dpipe.latency import build_latency_table
from repro.einsum.builders import attention_cascade


@pytest.fixture
def tile():
    return {"h": 32, "e": 128, "f": 128, "p": 256, "m0": 256,
            "m1": 1}


class TestLatencyTable:
    def test_covers_all_ops_on_both_arrays(self, cloud, tile):
        cascade = attention_cascade()
        table = build_latency_table(cascade, "mha", tile, cloud)
        for op in cascade.all_ops:
            for kind in PEArrayKind:
                assert table.latency(op.name, kind) > 0
            assert table.load(op.name) > 0

    def test_gemm_prefers_2d_on_cloud(self, cloud, tile):
        table = build_latency_table(
            attention_cascade(), "mha", tile, cloud
        )
        assert table.latency(
            "BQK", PEArrayKind.ARRAY_2D
        ) < table.latency("BQK", PEArrayKind.ARRAY_1D)

    def test_gemm_equal_speed_on_edge_arrays(self, edge):
        tile = {"h": 32, "e": 128, "f": 128, "p": 16, "m0": 16,
                "m1": 1}
        table = build_latency_table(
            attention_cascade(), "mha", tile, edge
        )
        # Edge: 16x16 = 256 2D PEs vs 256 1D lanes at full MAC rate.
        assert table.latency(
            "BQK", PEArrayKind.ARRAY_2D
        ) == pytest.approx(
            table.latency("BQK", PEArrayKind.ARRAY_1D)
        )

    def test_loads_are_array_independent(self, cloud, tile):
        cascade = attention_cascade()
        table = build_latency_table(cascade, "mha", tile, cloud)
        op = cascade.op("SLN")
        assert table.load("SLN") == op.compute_load(tile)
